// Command fimd serves the mining engine over HTTP: POST /mine runs one
// guarded mining request through the weighted admission gate, POST /tx
// and GET /closed drive the durable incremental miner behind a circuit
// breaker, and /healthz, /readyz, /statusz expose liveness, readiness
// and the admission/breaker state. See DESIGN.md §5h for the serving
// model and the status-code ↔ CLI-exit-code table.
//
// SIGTERM (or SIGINT) starts the graceful drain: the server stops
// admitting new requests (/readyz flips to 503), waits for every
// admitted request to finish — bounded by -drain-timeout — writes a
// final store snapshot, and exits 0. A second signal aborts the drain.
//
// Exit codes: 0 clean (including a drained shutdown), 1 internal
// failure, 2 bad flags, 4 corrupt store state.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/serve"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:8080", "listen address")

		maxWeight = flag.Int64("max-weight", serve.DefaultMaxWeight, "admission capacity in transaction-weight units")
		maxQueue  = flag.Int("max-queue", serve.DefaultMaxQueue, "admission wait-queue bound; beyond it requests are shed with 429")
		timeout   = flag.Duration("timeout", serve.DefaultTimeout, "default per-request mining deadline")
		maxTime   = flag.Duration("max-timeout", serve.DefaultMaxTimeout, "upper bound on the deadline a request may ask for")
		maxPat    = flag.Int("max-patterns", 0, "server-side cap on per-request patterns (0 = unlimited); exceeding it answers 206")
		maxNodes  = flag.Int("max-nodes", 0, "server-side cap on the miner repository size (0 = unlimited)")
		maxTxLen  = flag.Int("max-tx-len", 0, "reject transactions longer than this many items (0 = unlimited)")
		maxItems  = flag.Int("max-items", 0, "reject item codes >= this bound (0 = unlimited)")
		maxBody   = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size cap in bytes")

		store     = flag.String("store", "", "durable store directory; enables POST /tx and GET /closed")
		items     = flag.Int("items", 0, "item universe size when -store creates a fresh directory")
		snapEvery = flag.Int("snapshot-every", 0, "with -store: snapshot and rotate the WAL every n transactions (0 = 1024)")
		syncEvery = flag.Int("sync-every", 0, "with -store: fsync the WAL every n appends (0/1 = every append)")
		brFails   = flag.Int("breaker-failures", serve.DefaultBreakerFailures, "consecutive store-write failures that open the circuit breaker")
		brCool    = flag.Duration("breaker-cooldown", serve.DefaultBreakerCooldown, "circuit-breaker open → half-open probe delay")

		drainTime = flag.Duration("drain-timeout", 15*time.Second, "bound on waiting for in-flight requests during shutdown")
		trace     = flag.Bool("trace", false, "write one JSON observability event per request/drain span to stderr")
		publish   = flag.Bool("expvar", true, "publish admission/breaker gauges to the expvar map and serve /debug/vars")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: fimd [flags]")
		flag.Usage()
		os.Exit(2)
	}
	if *store == "" && *items != 0 {
		fmt.Fprintln(os.Stderr, "fimd: -items without -store has no effect")
		os.Exit(2)
	}

	var sinks []obs.Sink
	if *trace {
		sinks = append(sinks, obs.NewJSONSink(os.Stderr))
	}
	if *publish {
		sinks = append(sinks, obs.NewExpvarSink(""))
	}

	srv, err := serve.New(serve.Options{
		MaxWeight:       *maxWeight,
		MaxQueue:        *maxQueue,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTime,
		MaxPatterns:     *maxPat,
		MaxTreeNodes:    *maxNodes,
		Limits:          dataset.Limits{MaxTxLen: *maxTxLen, MaxItems: *maxItems},
		MaxBodyBytes:    *maxBody,
		StoreDir:        *store,
		StoreOptions:    persist.Options{Items: *items, SnapshotEvery: *snapEvery, SyncEvery: *syncEvery},
		BreakerFailures: *brFails,
		BreakerCooldown: *brCool,
		DrainTimeout:    *drainTime,
		Obs:             obs.Multi(sinks...),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fimd: %v\n", err)
		if errors.Is(err, persist.ErrCorrupt) {
			os.Exit(4)
		}
		os.Exit(1)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *publish {
		mux.Handle("GET /debug/vars", expvar.Handler())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fimd: %v\n", err)
		os.Exit(1)
	}
	// The announce line goes to stderr like fim's -debug-addr one, so
	// scripts (and the smoke test) can scrape the bound port.
	fmt.Fprintf(os.Stderr, "fimd: listening on http://%s/\n", ln.Addr())

	hs := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "fimd: serve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "fimd: %v: draining\n", sig)
	}

	// Graceful drain: application level first (stop admitting, wait for
	// admitted work, final snapshot), then the connection level. A
	// second signal aborts the wait.
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()
	var drainErr error
	select {
	case drainErr = <-drainDone:
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "fimd: %v: drain aborted\n", sig)
		os.Exit(1)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(shutdownCtx)
	cancel()
	if err := srv.Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "fimd: drain: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "fimd: drained, exiting")
}
