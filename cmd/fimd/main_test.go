package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name)
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// lockedBuffer collects a child's stderr safely while the process is
// still writing it.
type lockedBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func newLockedBuffer() *lockedBuffer {
	b := &lockedBuffer{mu: make(chan struct{}, 1)}
	b.mu <- struct{}{}
	return b
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.String()
}

// startFimd launches the daemon and scrapes the announced address.
func startFimd(t *testing.T, bin string, args ...string) (*exec.Cmd, *lockedBuffer, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr := newLockedBuffer()
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting fimd: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	re := regexp.MustCompile(`listening on http://([^/]+)/`)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(stderr.String()); m != nil {
			return cmd, stderr, m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("fimd never announced its address:\n%s", stderr.String())
	return nil, nil, ""
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestFimdServesAndExitsCleanly is the smoke path: healthz answers,
// /mine mines, SIGTERM exits 0.
func TestFimdServesAndExitsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "fimd")
	cmd, stderr, addr := startFimd(t, bin)
	base := "http://" + addr

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	resp, err := http.Post(base+"/mine", "application/json",
		strings.NewReader(`{"transactions":[[0,1],[0,1],[0,2]],"minSupport":2}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"support":3`) {
		t.Fatalf("/mine = %d %s", resp.StatusCode, body)
	}
	if code, body := get(t, base+"/debug/vars"); code != 200 || !strings.Contains(body, "serve_admitted_total") {
		t.Fatalf("/debug/vars = %d, want the serve gauges (body %.200s)", code, body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("fimd exit: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Errorf("stderr does not report the drain:\n%s", stderr.String())
	}
}

// TestFimdDrainMidRequest is the binary-level drain drill: SIGTERM
// lands while a request is mid-flight; the in-flight request must
// complete with its full 200 answer, /readyz must flip to 503
// immediately, the process must exit 0, and the final drain snapshot
// generation must appear in the store directory.
func TestFimdDrainMidRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "fimd")
	store := filepath.Join(dir, "state")
	cmd, stderr, addr := startFimd(t, bin, "-store", store, "-items", "8", "-snapshot-every", "-1")
	base := "http://" + addr

	// Seed the durable store so the drain snapshot has something to hold.
	resp, err := http.Post(base+"/tx", "application/json", strings.NewReader(`{"items":[0,1]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/tx = %d", resp.StatusCode)
	}

	// Hold a /mine request mid-flight: send the headers and half the
	// body, so the handler is inside the pipeline waiting on the rest.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	reqBody := `{"transactions":[[0,1],[0,1],[0,2]],"minSupport":2}`
	half := len(reqBody) / 2
	fmt.Fprintf(conn, "POST /mine HTTP/1.1\r\nHost: fimd\r\nContent-Type: application/json\r\n"+
		"Content-Length: %d\r\nConnection: close\r\n\r\n%s", len(reqBody), reqBody[:half])

	// The handler has entered the pipeline once /statusz counts it.
	waitFor(t, func() bool {
		_, body := get(t, base+"/statusz")
		var snap struct {
			InFlight int `json:"inFlight"`
		}
		json.Unmarshal([]byte(body), &snap)
		return snap.InFlight >= 1
	})

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Readiness flips while the held request keeps the drain waiting.
	waitFor(t, func() bool {
		code, _ := get(t, base+"/readyz")
		return code == 503
	})

	// Finish the held request: it must complete with the full answer.
	if _, err := io.WriteString(conn, reqBody[half:]); err != nil {
		t.Fatalf("finishing held request: %v", err)
	}
	answer, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("reading held answer: %v", err)
	}
	if !strings.Contains(string(answer), "200 OK") || !strings.Contains(string(answer), `"support":3`) {
		t.Fatalf("held request answered:\n%s", answer)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("fimd exit after drain: %v\nstderr:\n%s", err, stderr.String())
	}

	// The drain wrote a final snapshot generation.
	entries, err := os.ReadDir(store)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".ista") {
			snaps = append(snaps, e.Name())
		}
	}
	if len(snaps) == 0 {
		t.Errorf("no drain snapshot in %s (entries: %v)", store, entries)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 10s")
}
