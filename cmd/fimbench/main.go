// Command fimbench regenerates the paper's evaluation artifacts (Figures
// 5–8, Table 1, and the §3/§5 ablations) on synthetic stand-in workloads.
//
// Usage:
//
//	fimbench -list
//	fimbench -exp fig5 [-scale 0.1] [-seed 1] [-timeout 20s]
//	fimbench -all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

// errWriter forwards to an underlying writer and latches the first write
// error, so a report cut short (full disk, closed pipe) turns into a
// non-zero exit instead of a silently truncated table.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil // swallow the rest; the first error decides
	}
	if _, err := e.w.Write(p); err != nil {
		e.err = err
	}
	return len(p), nil
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiments")
		scale   = flag.Float64("scale", 0, "workload scale factor (0 = experiment default)")
		seed    = flag.Int64("seed", 0, "workload seed (0 = experiment default)")
		timeout = flag.Duration("timeout", 0, "per-run timeout (0 = experiment default)")
		par     = flag.Int("p", 0, "worker count for the par experiment (0 = measure 2/4/8)")
		jsonDir = flag.String("json", "", "additionally write each experiment's measurements as BENCH_<id>.json into this directory")
	)
	flag.Parse()
	out := &errWriter{w: os.Stdout}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Fprintf(out, "%-8s  %s\n          paper: %s\n", e.ID, e.Title, e.Notes)
		}
		finish(out)
		return
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, Timeout: *timeout, Parallelism: *par, JSONDir: *jsonDir}
	run := func(e bench.Experiment) {
		fmt.Fprintf(out, "=== %s: %s ===\n", e.ID, e.Title)
		fmt.Fprintf(out, "paper's reported shape: %s\n\n", e.Notes)
		start := time.Now()
		if err := e.Run(cfg, out); err != nil {
			fmt.Fprintf(os.Stderr, "fimbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "(%s took %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	switch {
	case *all:
		for _, e := range bench.Registry() {
			run(e)
		}
	case *exp != "":
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "fimbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run(e)
	default:
		flag.Usage()
		os.Exit(2)
	}
	finish(out)
}

// finish fails the process if any output write was lost.
func finish(out *errWriter) {
	if out.err != nil {
		fmt.Fprintln(os.Stderr, "fimbench:", out.err)
		os.Exit(1)
	}
}
