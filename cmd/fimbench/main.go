// Command fimbench regenerates the paper's evaluation artifacts (Figures
// 5–8, Table 1, and the §3/§5 ablations) on synthetic stand-in workloads.
//
// Usage:
//
//	fimbench -list
//	fimbench -exp fig5 [-scale 0.1] [-seed 1] [-timeout 20s]
//	fimbench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiments")
		scale   = flag.Float64("scale", 0, "workload scale factor (0 = experiment default)")
		seed    = flag.Int64("seed", 0, "workload seed (0 = experiment default)")
		timeout = flag.Duration("timeout", 0, "per-run timeout (0 = experiment default)")
		par     = flag.Int("p", 0, "worker count for the par experiment (0 = measure 2/4/8)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s  %s\n          paper: %s\n", e.ID, e.Title, e.Notes)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, Timeout: *timeout, Parallelism: *par}
	run := func(e bench.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		fmt.Printf("paper's reported shape: %s\n\n", e.Notes)
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fimbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	switch {
	case *all:
		for _, e := range bench.Registry() {
			run(e)
		}
	case *exp != "":
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "fimbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run(e)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
