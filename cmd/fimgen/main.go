// Command fimgen writes synthetic transaction databases shaped like the
// paper's evaluation data sets (see DESIGN.md §3) in FIMI format.
//
// Usage:
//
//	fimgen -kind yeast -scale 0.15 -seed 1 -out yeast.dat
//	fimgen -kind quest -items 500 -trans 10000 -out baskets.dat
//	fimgen -kind thrombin -scale 1 -out thrombin.dat   # full 139k features
//	fimgen -kind yeast -transpose -out yeast-by-gene.dat
package main

import (
	"flag"
	"fmt"
	"os"

	fim "repro"
)

func main() {
	var (
		kind      = flag.String("kind", "yeast", "workload: yeast | ncbi60 | thrombin | webview | quest")
		scale     = flag.Float64("scale", 0.15, "size relative to the paper's data set (yeast/ncbi60/thrombin/webview)")
		seed      = flag.Int64("seed", 1, "generator seed (same seed, same data)")
		out       = flag.String("out", "", "output file (default stdout)")
		transpose = flag.Bool("transpose", false, "transpose before writing (swap items and transactions)")

		items    = flag.Int("items", 500, "quest: number of items")
		trans    = flag.Int("trans", 10000, "quest: number of transactions")
		avgLen   = flag.Int("avglen", 10, "quest: average transaction length")
		patterns = flag.Int("patterns", 50, "quest: number of base patterns")
	)
	flag.Parse()

	var db *fim.Columnar
	switch *kind {
	case "yeast":
		db = fim.GenYeast(*scale, *seed)
	case "ncbi60":
		db = fim.GenNCBI60(*scale, *seed)
	case "thrombin":
		db = fim.GenThrombin(*scale, *seed)
	case "webview":
		db = fim.GenWebView(*scale, *seed)
	case "quest":
		db = fim.GenQuest(fim.QuestConfig{
			Items: *items, Transactions: *trans, AvgLen: *avgLen,
			Patterns: *patterns, AvgPatternLen: 4, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "fimgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *transpose {
		db = fim.Transpose(db)
	}

	fmt.Fprintf(os.Stderr, "fimgen: %s\n", db.Stats())
	if *out == "" {
		if err := fim.Write(os.Stdout, db); err != nil {
			fail(err)
		}
		return
	}
	if err := fim.WriteFile(*out, db); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fimgen:", err)
	os.Exit(1)
}
