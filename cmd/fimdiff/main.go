// Command fimdiff compares two mining result files (in the output format
// of cmd/fim: "item item ... (support)") and reports the differences. It
// exits 0 when the results are identical, 1 when they differ — handy for
// validating one implementation against another, which is how this
// repository's algorithms are held to each other.
//
// Usage:
//
//	fim -algo ista     -support 8 data.dat -out a.txt
//	fim -algo fpclose  -support 8 data.dat -out b.txt
//	fimdiff a.txt b.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/result"
)

func main() {
	max := flag.Int("max", 20, "maximum differences to print per category")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: fimdiff [-max N] <a.txt> <b.txt>")
		os.Exit(2)
	}
	a := load(flag.Arg(0))
	b := load(flag.Arg(1))
	// The report goes through a checked writer: a verdict that never
	// reached the caller (full disk, closed pipe) must not exit as if it
	// had been delivered.
	w := bufio.NewWriter(os.Stdout)
	if a.Equal(b) {
		fmt.Fprintf(w, "identical: %d patterns\n", a.Len())
		flushOrDie(w)
		return
	}
	fmt.Fprintf(w, "results differ (A=%s, B=%s):\n", flag.Arg(0), flag.Arg(1))
	fmt.Fprintln(w, a.Diff(b, *max))
	flushOrDie(w)
	os.Exit(1)
}

// flushOrDie flushes the report; a write failure is a usage-level error
// (exit 2), distinct from exit 1, which means "the results differ".
func flushOrDie(w *bufio.Writer) {
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "fimdiff:", err)
		os.Exit(2)
	}
}

func load(path string) *result.Set {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fimdiff:", err)
		os.Exit(2)
	}
	defer f.Close()
	s, err := result.Parse(f, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fimdiff: %s: %v\n", path, err)
		os.Exit(2)
	}
	return s
}
