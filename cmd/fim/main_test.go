package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// buildTool compiles one of this repository's commands into dir and
// returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name)
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// writeDataset writes a small FIMI database and returns its path.
func writeDataset(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "db.dat")
	var sb strings.Builder
	// 60 transactions over 8 items with heavy overlap, so snapshots and
	// a non-trivial pattern set both happen.
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb, "0 1 %d\n", 2+i%6)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(t *testing.T, bin string, stdin io.Reader, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = stdin
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s: %v", bin, err)
	}
	return out.String(), errb.String(), code
}

// TestSnapshotDirStats verifies the -stats -snapshot-dir fix: the
// durable path must report real counters (added, snapshots, patterns)
// instead of zeroed ones, and a resumed run must report the replayed
// count.
func TestSnapshotDirStats(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	fim := buildTool(t, dir, "fim")
	db := writeDataset(t, dir)
	snap := filepath.Join(dir, "state")

	_, stderr, code := run(t, fim, nil, "-support", "2", "-stats",
		"-snapshot-dir", snap, "-snapshot-every", "16", db)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr)
	}
	stats := statsLine(t, stderr)
	for _, want := range []string{"algo=ista", "added=60", "replayed=0"} {
		if !strings.Contains(stats, want) {
			t.Errorf("stats line missing %q: %s", want, stats)
		}
	}
	if m := regexp.MustCompile(`snapshots=(\d+)`).FindStringSubmatch(stats); m == nil || m[1] == "0" {
		t.Errorf("stats line reports no snapshots: %s", stats)
	}
	if m := regexp.MustCompile(`patterns=(\d+)`).FindStringSubmatch(stats); m == nil || m[1] == "0" {
		t.Errorf("stats line reports no patterns: %s", stats)
	}

	// Resume: everything is already durable, so all 60 replay.
	_, stderr, code = run(t, fim, nil, "-support", "2", "-stats",
		"-snapshot-dir", snap, "-resume", db)
	if code != 0 {
		t.Fatalf("resume exit %d\n%s", code, stderr)
	}
	stats = statsLine(t, stderr)
	for _, want := range []string{"replayed=60", "added=0"} {
		if !strings.Contains(stats, want) {
			t.Errorf("resume stats line missing %q: %s", want, stats)
		}
	}
}

// statsLine extracts the counter line ("fim: algo=...") from stderr.
func statsLine(t *testing.T, stderr string) string {
	t.Helper()
	for _, line := range strings.Split(stderr, "\n") {
		if strings.HasPrefix(line, "fim: algo=") {
			return line
		}
	}
	t.Fatalf("no stats line in stderr:\n%s", stderr)
	return ""
}

// TestProgressFlag verifies that -progress emits at least the final
// monotone snapshot and that the pattern output is unaffected.
func TestProgressFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	fim := buildTool(t, dir, "fim")
	db := writeDataset(t, dir)

	plain, _, code := run(t, fim, nil, "-support", "2", db)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	stdout, stderr, code := run(t, fim, nil, "-support", "2", "-progress", "-p", "4", db)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr)
	}
	if stdout != plain {
		t.Error("-progress -p 4 changed the pattern output")
	}
	re := regexp.MustCompile(`fim: progress elapsed=\S+ patterns=(\d+) ops=\d+ checks=\d+ nodes=\d+( final)?`)
	matches := re.FindAllStringSubmatch(stderr, -1)
	if len(matches) == 0 {
		t.Fatalf("no progress lines in stderr:\n%s", stderr)
	}
	last := matches[len(matches)-1]
	if last[2] != " final" {
		t.Errorf("last progress line not final:\n%s", stderr)
	}
}

// TestDebugAddr starts fim with -debug-addr reading the database from
// stdin (so the process deterministically stays alive), fetches
// /debug/vars and /debug/pprof/, then feeds the database and expects a
// clean exit with the run's metrics published.
func TestDebugAddr(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	fim := buildTool(t, dir, "fim")
	data, err := os.ReadFile(writeDataset(t, dir))
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(fim, "-support", "2", "-debug-addr", "127.0.0.1:0", "-")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	addr := waitForAddr(t, &stderr)
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if path == "/debug/vars" && !strings.Contains(string(body), "cmdline") {
			t.Fatalf("/debug/vars lacks expvar output: %.200s", body)
		}
	}

	if _, err := stdin.Write(data); err != nil {
		t.Fatal(err)
	}
	stdin.Close()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("fim exited with %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "(60)") {
		t.Errorf("pattern output missing a full-support set:\n%s", stdout.String())
	}

	// The run published its counters into the expvar map before exit; we
	// cannot query the dead process, but the mine must at least have
	// produced patterns — rely on stdout above for that.
}

// waitForAddr polls stderr for the debug server's listen line and
// returns the host:port.
func waitForAddr(t *testing.T, stderr *bytes.Buffer) string {
	t.Helper()
	re := regexp.MustCompile(`listening on http://([^/]+)/debug/vars`)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(stderr.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("debug server never announced its address:\n%s", stderr.String())
	return ""
}

// TestWriterFailuresExitNonZero verifies the write-error audit: fimdiff
// and fimgen must exit non-zero when their output cannot be written
// (/dev/full), and fim must fail cleanly on an unwritable -out.
func TestWriterFailuresExitNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	dir := t.TempDir()
	fim := buildTool(t, dir, "fim")
	fimdiff := buildTool(t, dir, "fimdiff")
	fimgen := buildTool(t, dir, "fimgen")
	db := writeDataset(t, dir)

	// Produce a result file for fimdiff.
	res := filepath.Join(dir, "res.txt")
	if _, stderr, code := run(t, fim, nil, "-support", "2", "-out", res, db); code != 0 {
		t.Fatalf("fim exit %d\n%s", code, stderr)
	}

	// fimdiff with a full stdout: the identical-verdict must not exit 0.
	cmd := exec.Command(fimdiff, res, res)
	full, err := os.OpenFile("/dev/full", os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	cmd.Stdout = full
	var diffErr bytes.Buffer
	cmd.Stderr = &diffErr
	err = cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("fimdiff with full stdout: err=%v stderr=%s (want exit 2)", err, diffErr.String())
	}

	// fimgen writing to /dev/full must exit 1.
	_, _, code := run(t, fimgen, nil, "-kind", "quest", "-items", "20", "-trans", "100", "-out", "/dev/full")
	if code != 1 {
		t.Errorf("fimgen -out /dev/full exit %d, want 1", code)
	}

	// fim writing its patterns to /dev/full must exit 1.
	_, _, code = run(t, fim, nil, "-support", "2", "-out", "/dev/full", db)
	if code != 1 {
		t.Errorf("fim -out /dev/full exit %d, want 1", code)
	}
}

// TestInterruptFlushesPartial sends SIGINT to a durable-path run mid-feed
// and requires the documented interrupt behavior: the process stops
// cooperatively, writes the valid partial output it has, exits 3, and a
// -resume rerun completes to exactly the result an uninterrupted run
// produces.
func TestInterruptFlushesPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	fim := buildTool(t, dir, "fim")

	// A stream long enough that the fsync-per-add feed far outlives the
	// signal delivery below.
	db := filepath.Join(dir, "big.dat")
	var sb strings.Builder
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&sb, "0 1 %d %d\n", 2+i%6, 8+i%5)
	}
	if err := os.WriteFile(db, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "state")

	cmd := exec.Command(fim, "-support", "2", "-snapshot-dir", snap, db)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("interrupted run exited cleanly — the feed finished before the signal; stderr:\n%s", errb.String())
	}
	if code := ee.ExitCode(); code != 3 {
		t.Fatalf("interrupted run exit %d, want 3; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "truncated") {
		t.Errorf("stderr does not report truncation:\n%s", errb.String())
	}
	// The flushed partial output is well-formed: every line is items
	// followed by a support in parentheses.
	lineRE := regexp.MustCompile(`^[0-9 ]+ \(\d+\)$`)
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if line != "" && !lineRE.MatchString(line) {
			t.Fatalf("malformed partial output line %q", line)
		}
	}

	// Resume and compare against an uninterrupted batch run.
	resumed, stderr, code := run(t, fim, nil, "-support", "2",
		"-snapshot-dir", snap, "-resume", db)
	if code != 0 {
		t.Fatalf("resume exit %d\n%s", code, stderr)
	}
	batch, stderr, code := run(t, fim, nil, "-support", "2", db)
	if code != 0 {
		t.Fatalf("batch exit %d\n%s", code, stderr)
	}
	if resumed != batch {
		t.Errorf("resumed result differs from uninterrupted batch run:\nresumed:\n%s\nbatch:\n%s", resumed, batch)
	}
}

// TestInputLimitsExitTwo covers the hardened reader flags on both input
// paths: a violating transaction (stdin or file) exits 2 and the error
// names the offending input line, while at-limit inputs mine normally.
func TestInputLimitsExitTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	fimBin := buildTool(t, dir, "fim")

	// Stdin path: line 3 (the comment counts) exceeds -max-tx-len.
	stdin := strings.NewReader("0 1\n# note\n0 1 2 3 4\n")
	_, stderr, code := run(t, fimBin, stdin, "-support", "1", "-max-tx-len", "4", "-")
	if code != 2 {
		t.Fatalf("stdin over -max-tx-len: exit %d, want 2 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "line 3") {
		t.Errorf("stderr %q does not name line 3", stderr)
	}

	// File path: a huge item code trips -max-items before any allocation
	// is sized by it.
	path := filepath.Join(dir, "big.dat")
	if err := os.WriteFile(path, []byte("0 1\n7 2000000000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code = run(t, fimBin, nil, "-support", "1", "-max-items", "1000", path)
	if code != 2 {
		t.Fatalf("file over -max-items: exit %d, want 2 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "line 2") || !strings.Contains(stderr, path) {
		t.Errorf("stderr %q does not name line 2 of %s", stderr, path)
	}

	// At the limit everything still mines.
	stdout, stderr, code := run(t, fimBin, strings.NewReader("0 1 2\n0 1\n"),
		"-support", "2", "-max-tx-len", "3", "-max-items", "3", "-")
	if code != 0 {
		t.Fatalf("at-limit input: exit %d (stderr %q)", code, stderr)
	}
	if !strings.Contains(stdout, "0 1") {
		t.Errorf("at-limit output %q misses the expected pattern", stdout)
	}
}
