// Command fim mines closed (or all / maximal) frequent item sets from a
// transaction database file in FIMI format (one transaction per line,
// whitespace-separated items).
//
// Usage:
//
//	fim -algo ista -support 8 data.dat            # closed sets to stdout
//	fim -algo carpenter-table -support 0.05 data.dat   # relative support
//	fim -target all -support 10 -out out.txt data.dat
//
// Output lines follow Borgelt's format: the items of the set separated by
// spaces, followed by the absolute support in parentheses.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	fim "repro"
)

func main() {
	var (
		algo    = flag.String("algo", "ista", "algorithm: ista | carpenter-table | carpenter-lists | cobbler | fpclose | lcm | eclat | sam | flat")
		target  = flag.String("target", "closed", "target: closed | all | maximal")
		support = flag.Float64("support", 2, "minimum support: absolute if >= 1, else a fraction of the transactions")
		out     = flag.String("out", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print workload statistics and timing to stderr")
		timeout = flag.Duration("timeout", 0, "optional wall-clock limit")
		par     = flag.Int("p", 0, "parallel workers for ista and carpenter-table (0 or 1 = sequential, -1 = all cores); the pattern set is identical to the sequential run")

		expr      = flag.Bool("expr", false, "input is a gene expression matrix (CSV/TSV of log ratios), discretized per the paper's §4")
		threshold = flag.Float64("threshold", 0.2, "with -expr: |log ratio| above this is over-/under-expressed")
		orient    = flag.String("orient", "conditions", "with -expr: conditions | genes — what becomes the transactions")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fim [flags] <database.dat | matrix.csv>")
		flag.Usage()
		os.Exit(2)
	}

	var db *fim.Database
	var err error
	if *expr {
		db, err = loadExpression(flag.Arg(0), *threshold, *orient)
	} else {
		db, err = fim.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fail(err)
	}
	minsup := int(*support)
	if *support > 0 && *support < 1 {
		minsup = int(math.Ceil(*support * float64(len(db.Trans))))
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "fim: workload %s, minsup %d\n", db.Stats(), minsup)
	}

	var done chan struct{}
	if *timeout > 0 {
		done = make(chan struct{})
		time.AfterFunc(*timeout, func() { close(done) })
	}

	start := time.Now()
	var patterns *fim.ResultSet
	switch *target {
	case "closed":
		var set fim.ResultSet
		err = fim.Mine(db, fim.Options{
			MinSupport:  minsup,
			Algorithm:   fim.Algorithm(*algo),
			Done:        done,
			Parallelism: *par,
		}, set.Collect())
		patterns = &set
	case "all":
		patterns, err = fim.MineAll(db, minsup)
	case "maximal":
		patterns, err = fim.MineMaximal(db, minsup)
	default:
		fail(fmt.Errorf("unknown target %q", *target))
	}
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := patterns.Write(w, db.Names); err != nil {
		fail(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "fim: %d %s sets in %s\n", patterns.Len(), *target, elapsed.Round(time.Millisecond))
	}
}

// loadExpression runs the paper's §4 pipeline: parse a log-ratio matrix
// and discretize it into over-/under-expression items (code 2x = "x
// over-expressed", 2x+1 = "x under-expressed").
func loadExpression(path string, threshold float64, orient string) (*fim.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := fim.ReadMatrixCSV(f)
	if err != nil {
		return nil, err
	}
	switch orient {
	case "conditions":
		return fim.Discretize(m, threshold, threshold, fim.ConditionsAsTransactions), nil
	case "genes":
		return fim.Discretize(m, threshold, threshold, fim.GenesAsTransactions), nil
	}
	return nil, fmt.Errorf("unknown orientation %q (want conditions or genes)", orient)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fim:", err)
	os.Exit(1)
}
