// Command fim mines closed (or all / maximal) frequent item sets from a
// transaction database file in FIMI format (one transaction per line,
// whitespace-separated items).
//
// Usage:
//
//	fim -algo ista -support 8 data.dat            # closed sets to stdout
//	fim -algo carpenter-table -support 0.05 data.dat   # relative support
//	fim -target all -support 10 -out out.txt data.dat
//
// Output lines follow Borgelt's format: the items of the set separated by
// spaces, followed by the absolute support in parentheses. A database
// argument of "-" reads the database from standard input.
//
// -progress prints rate-limited progress snapshots (elapsed time,
// patterns, operations, repository size) to stderr while mining;
// -debug-addr serves expvar counters on /debug/vars and the pprof
// profiles on /debug/pprof/ for the lifetime of the process.
//
// With -snapshot-dir the transactions are fed through the crash-safe
// incremental miner instead of the batch engine: every transaction is
// write-ahead logged and periodically snapshotted into the directory,
// and a rerun with -resume skips the transactions already durable there
// and continues from the exact point a previous (possibly crashed) run
// reached.
//
// An interrupt (SIGINT / SIGTERM) cancels the run cooperatively: the
// patterns found so far are still written — a valid prefix of the full
// result — and fim exits 3, like an expired -timeout.
//
// Exit codes distinguish failure modes for scripting:
//
//	0  complete result written
//	1  internal failure (I/O error writing output, miner fault)
//	2  malformed input or bad flags — nothing mined
//	3  deadline or budget exhausted, or interrupted — the output is a
//	   valid but truncated prefix of the full result
//	4  corrupt persistent state in -snapshot-dir — recovery refused
//	   rather than silently dropping durable transactions
//	5  degraded result — with -retries, one or more parallel shards
//	   stayed failed after retry exhaustion; the output holds the
//	   surviving shards' patterns (each genuinely closed, support a
//	   lower bound) and the abandoned shards are reported to stderr
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug-addr serves /debug/pprof/
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	fim "repro"
)

// algoHelp derives the -algo usage text from the engine registry, so a
// newly registered miner shows up without touching this file.
func algoHelp() string {
	return "algorithm: " + strings.Join(algoNames(), " | ") + " (default depends on -target)"
}

func algoNames() []string {
	infos := fim.AlgorithmInfos()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = string(info.Name)
	}
	return names
}

// defaultAlgorithm picks the miner used when -algo is not given: the
// paper's IsTa for closed sets, and the conventional choices for the
// other targets.
func defaultAlgorithm(target fim.Target) fim.Algorithm {
	switch target {
	case fim.TargetAll:
		return fim.FPClose
	case fim.TargetMaximal:
		return fim.EclatClosed
	}
	return fim.IsTa
}

func main() {
	var (
		algo    = flag.String("algo", "", algoHelp())
		target  = flag.String("target", "closed", "target: closed | all | maximal")
		support = flag.Float64("support", 2, "minimum support: absolute if >= 1, else a fraction of the transactions")
		out     = flag.String("out", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print workload statistics, per-run counters and timing to stderr")
		timeout = flag.Duration("timeout", 0, "optional wall-clock limit; on expiry the patterns found so far are written and fim exits 3")
		maxPat  = flag.Int("max-patterns", 0, "stop after this many patterns (0 = unlimited); the truncated output is written and fim exits 3")
		maxNode = flag.Int("max-nodes", 0, "cap the miner's repository (prefix-tree nodes / stored sets, 0 = unlimited); on excess fim writes the prefix found so far and exits 3")
		par     = flag.Int("p", 0, "parallel workers for the algorithms with a parallel engine (0 or 1 = sequential, -1 = all cores); the pattern set is identical to the sequential run")
		retries = flag.Int("retries", 0, "self-healing: retry a failed parallel shard (or transient durable-store I/O) up to n times before degrading; a run that still lost shards writes the surviving patterns and exits 5")
		repair  = flag.Bool("repair", false, "with -snapshot-dir: quarantine damaged newer snapshot generations that recovery had to skip (renamed aside, reported to stderr) instead of leaving them in place")

		progress  = flag.Bool("progress", false, "print rate-limited progress snapshots to stderr while mining")
		debugAddr = flag.String("debug-addr", "", "serve debug endpoints (expvar on /debug/vars, pprof on /debug/pprof/) on this address for the process lifetime")

		snapDir   = flag.String("snapshot-dir", "", "mine through the crash-safe incremental miner, persisting state into this directory (closed target, ista only)")
		resume    = flag.Bool("resume", false, "with -snapshot-dir: continue from the state recovered there, skipping the transactions it already holds")
		snapEvery = flag.Int("snapshot-every", 0, "with -snapshot-dir: snapshot and rotate the log every n transactions (0 = 1024, negative = only at exit)")

		maxTxLen = flag.Int("max-tx-len", 0, "reject input transactions longer than this many items (0 = unlimited); fim exits 2 naming the offending line")
		maxItems = flag.Int("max-items", 0, "reject item codes (or distinct named items) at or above this bound (0 = unlimited); fim exits 2 naming the offending line")

		expr      = flag.Bool("expr", false, "input is a gene expression matrix (CSV/TSV of log ratios), discretized per the paper's §4")
		threshold = flag.Float64("threshold", 0.2, "with -expr: |log ratio| above this is over-/under-expressed")
		orient    = flag.String("orient", "conditions", "with -expr: conditions | genes — what becomes the transactions")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fim [flags] <database.dat | matrix.csv>")
		flag.Usage()
		os.Exit(2)
	}
	var tgt fim.Target
	switch *target {
	case "closed":
		tgt = fim.TargetClosed
	case "all":
		tgt = fim.TargetAll
	case "maximal":
		tgt = fim.TargetMaximal
	default:
		failUsage(fmt.Errorf("unknown target %q (want closed, all or maximal)", *target))
	}
	name := fim.Algorithm(*algo)
	if name == "" {
		name = defaultAlgorithm(tgt)
	}
	info, known := algorithmInfo(name)
	if !known {
		failUsage(fmt.Errorf("unknown algorithm %q (available: %s)", name, strings.Join(algoNames(), ", ")))
	}
	if !supportsTarget(info, tgt) {
		failUsage(fmt.Errorf("algorithm %q does not mine %s sets", name, *target))
	}
	if *timeout < 0 || *maxPat < 0 || *maxNode < 0 {
		failUsage(errors.New("-timeout, -max-patterns and -max-nodes must not be negative"))
	}
	if *snapDir != "" {
		// The durable path is the online IsTa miner: the prefix tree is
		// the state being checkpointed, so it cannot serve other
		// algorithms or targets, and the guard/parallel knobs of the
		// batch engine do not apply.
		if tgt != fim.TargetClosed {
			failUsage(errors.New("-snapshot-dir mines closed sets only"))
		}
		if name != fim.IsTa {
			failUsage(fmt.Errorf("-snapshot-dir requires the ista algorithm, not %q", name))
		}
		if *par != 0 || *timeout != 0 || *maxPat != 0 || *maxNode != 0 {
			failUsage(errors.New("-snapshot-dir cannot be combined with -p, -timeout, -max-patterns or -max-nodes"))
		}
	} else if *resume {
		failUsage(errors.New("-resume requires -snapshot-dir"))
	} else if *repair {
		failUsage(errors.New("-repair requires -snapshot-dir"))
	}
	if *retries < 0 {
		failUsage(errors.New("-retries must not be negative"))
	}
	if *maxTxLen < 0 || *maxItems < 0 {
		failUsage(errors.New("-max-tx-len and -max-items must not be negative"))
	}

	// Start the debug server before the input is read, so the endpoints
	// are reachable while fim blocks on a slow reader (e.g. stdin). The
	// expvar import (via the fim package) and the pprof import above hook
	// the default mux, which is all http.Serve(ln, nil) needs.
	if *debugAddr != "" {
		ln, lerr := net.Listen("tcp", *debugAddr)
		if lerr != nil {
			fail(lerr)
		}
		fmt.Fprintf(os.Stderr, "fim: debug server listening on http://%s/debug/vars\n", ln.Addr())
		go http.Serve(ln, nil)
	}

	var db fim.Source
	var err error
	lim := fim.ReadLimits{MaxTxLen: *maxTxLen, MaxItems: *maxItems}
	switch {
	case *expr:
		db, err = loadExpression(flag.Arg(0), *threshold, *orient)
	case flag.Arg(0) == "-":
		db, err = fim.ReadLimited(os.Stdin, lim)
	default:
		db, err = fim.ReadFileLimited(flag.Arg(0), lim)
	}
	if err != nil {
		failUsage(err)
	}
	// Named input keeps its name table for the output; generated and
	// columnar sources carry numeric codes only.
	var names []string
	if d, ok := db.(*fim.Database); ok {
		names = d.Names
	}
	minsup := int(*support)
	if *support > 0 && *support < 1 {
		minsup = int(math.Ceil(*support * float64(fim.TotalWeight(db))))
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "fim: workload %s, minsup %d\n", fim.StatsOf(db), minsup)
	}

	// An interrupt cancels the run cooperatively instead of killing the
	// process: the miners poll the context at their budget checks, the
	// patterns found so far are flushed, and fim exits 3. A second signal
	// falls back to the default handler (immediate death) so a hung run
	// can still be killed.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	opts := fim.Options{
		MinSupport:   minsup,
		Algorithm:    name,
		Target:       tgt,
		Parallelism:  *par,
		MaxPatterns:  *maxPat,
		MaxTreeNodes: *maxNode,
		Context:      ctx,
		Retry:        fim.RetryPolicy{MaxAttempts: *retries},
	}
	if *timeout > 0 {
		opts.Deadline = time.Now().Add(*timeout)
	}
	var runStats fim.MiningStats
	if *stats {
		opts.Stats = &runStats
	}
	if *progress {
		opts.OnProgress = printProgress
	}
	opts.PublishExpvar = *debugAddr != ""

	start := time.Now()
	var patterns *fim.ResultSet
	truncated := false
	var partial *fim.PartialError
	if *snapDir != "" {
		patterns, truncated = mineDurable(ctx, db, minsup, *snapDir, *snapEvery, *retries, *resume, *repair, *progress, &runStats)
		if truncated {
			err = fim.ErrCanceled
		}
	} else {
		var set fim.ResultSet
		err = fim.Mine(db, opts, set.Collect())
		set.Sort()
		patterns = &set
		// A tripped deadline, budget, or cancellation (including an
		// interrupt surfacing as the context's error) still produced a
		// valid prefix of the result; write it before exiting so callers
		// can use what was found. A degraded run — shards abandoned after
		// retry exhaustion — likewise wrote every surviving shard's
		// patterns; it is reported with its own exit code.
		truncated = errors.Is(err, fim.ErrDeadline) || errors.Is(err, fim.ErrBudget) ||
			errors.Is(err, fim.ErrCanceled) || errors.Is(err, context.Canceled)
		if err != nil && !truncated && !errors.As(err, &partial) {
			fail(err)
		}
	}
	elapsed := time.Since(start)

	// The result is only complete once the output is flushed and closed;
	// both can fail (full disk, quota), so both are checked — a close
	// error with the bytes already gone must not exit 0.
	w := io.Writer(os.Stdout)
	var closeOut func() error
	if *out != "" {
		f, cerr := os.Create(*out)
		if cerr != nil {
			fail(cerr)
		}
		bw := bufio.NewWriter(f)
		w = bw
		closeOut = func() error {
			if err := bw.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	if werr := patterns.Write(w, names); werr != nil {
		if closeOut != nil {
			closeOut()
		}
		fail(werr)
	}
	if closeOut != nil {
		if cerr := closeOut(); cerr != nil {
			fail(cerr)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "fim: %s\n", runStats.String())
		fmt.Fprintf(os.Stderr, "fim: %d %s sets in %s\n", patterns.Len(), *target, elapsed.Round(time.Millisecond))
	}
	if truncated {
		fmt.Fprintf(os.Stderr, "fim: truncated: %v (%d patterns written)\n", err, patterns.Len())
		os.Exit(3)
	}
	if partial != nil {
		fmt.Fprintf(os.Stderr, "fim: degraded: %v (%d patterns written)\n", partial, patterns.Len())
		os.Exit(5)
	}
}

// printProgress renders one progress snapshot as a stderr line; it is
// the -progress callback for both the batch and the durable path.
func printProgress(p fim.ProgressEvent) {
	final := ""
	if p.Final {
		final = " final"
	}
	fmt.Fprintf(os.Stderr, "fim: progress elapsed=%s patterns=%d ops=%d checks=%d nodes=%d%s\n",
		p.Elapsed.Round(time.Millisecond), p.Patterns, p.Ops, p.Checks, p.Nodes, final)
}

// mineDurable feeds the database through the crash-safe incremental
// miner backed by dir, resuming past the transactions already durable
// there, and returns the closed sets at minsup; st receives the
// durable-path run counters (replayed and added transactions, snapshot
// writes, repository peak). Corrupt persistent state exits 4; a prior
// state without -resume exits 2 so a stale directory is never extended
// by accident. An interrupt (ctx canceled) stops the feed between
// transactions, snapshots the durable prefix and returns it with
// truncated set — every transaction fed so far stays durable, and a
// -resume rerun continues exactly where the interrupt landed.
func mineDurable(ctx context.Context, db fim.Source, minsup int, dir string, every, retries int, resume, repair, progress bool, st *fim.MiningStats) (_ *fim.ResultSet, truncated bool) {
	start := time.Now()
	n := db.NumTx()
	dm, err := fim.OpenDurable(dir, fim.DurableOptions{
		Items:         db.NumItems(),
		SnapshotEvery: every,
		Retry:         fim.RetryPolicy{MaxAttempts: retries},
		Repair:        repair,
	})
	if err != nil {
		if errors.Is(err, fim.ErrCorrupt) {
			failCorrupt(err)
		}
		fail(err)
	}
	if rep := dm.RepairReport(); !rep.Empty() {
		fmt.Fprintf(os.Stderr, "fim: repair: %s\n", rep.String())
	}
	done := dm.Transactions()
	switch {
	case done > 0 && !resume:
		failUsage(fmt.Errorf("%s already holds %d transactions; pass -resume to continue or point -snapshot-dir at a fresh directory", dir, done))
	case done > n:
		failUsage(fmt.Errorf("%s holds %d transactions but the database has only %d — wrong directory for this input", dir, done, n))
	}
	if done > 0 {
		fmt.Fprintf(os.Stderr, "fim: resuming at transaction %d of %d\n", done+1, n)
	}
	lastProgress := start
	for k := done; k < n; k++ {
		if ctx.Err() != nil {
			// Interrupted: stop feeding, keep everything already durable.
			truncated = true
			break
		}
		if err := dm.AddSet(db.Tx(k)); err != nil {
			fail(err)
		}
		if progress && time.Since(lastProgress) >= 200*time.Millisecond {
			lastProgress = time.Now()
			fmt.Fprintf(os.Stderr, "fim: progress elapsed=%s added=%d/%d nodes=%d\n",
				time.Since(start).Round(time.Millisecond), k+1, n, dm.NodeCount())
		}
	}
	// Leave a snapshot at the final (or interrupted) state so the next
	// open replays nothing.
	if err := dm.Snapshot(); err != nil {
		fail(err)
	}
	patterns := dm.ClosedSet(minsup)
	*st = fim.MiningStats{
		Algorithm:           string(fim.IsTa),
		Target:              fim.TargetClosed,
		MinSupport:          minsup,
		Transactions:        n,
		Items:               db.NumItems(),
		PreppedTransactions: dm.Transactions(),
		PreppedItems:        dm.Items(),
		Patterns:            int64(patterns.Len()),
		NodesPeak:           int64(dm.NodeCount()),
		MineTime:            time.Since(start),
		Replayed:            done,
		Added:               dm.Transactions() - done,
		Snapshots:           dm.Snapshots(),
		Retries:             int64(dm.Retries()),
	}
	if err := dm.Close(); err != nil {
		fail(err)
	}
	return patterns, truncated
}

// algorithmInfo finds the registry entry for name, so a typo fails fast
// with exit 2 instead of after the database is loaded.
func algorithmInfo(name fim.Algorithm) (fim.AlgorithmInfo, bool) {
	for _, info := range fim.AlgorithmInfos() {
		if info.Name == name {
			return info, true
		}
	}
	return fim.AlgorithmInfo{}, false
}

// supportsTarget reports whether the algorithm declared the target.
func supportsTarget(info fim.AlgorithmInfo, tgt fim.Target) bool {
	for _, t := range info.Targets {
		if t == tgt {
			return true
		}
	}
	return false
}

// loadExpression runs the paper's §4 pipeline: parse a log-ratio matrix
// and discretize it into over-/under-expression items (code 2x = "x
// over-expressed", 2x+1 = "x under-expressed").
func loadExpression(path string, threshold float64, orient string) (fim.Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := fim.ReadMatrixCSV(f)
	if err != nil {
		return nil, err
	}
	switch orient {
	case "conditions":
		return fim.Discretize(m, threshold, threshold, fim.ConditionsAsTransactions), nil
	case "genes":
		return fim.Discretize(m, threshold, threshold, fim.GenesAsTransactions), nil
	}
	return nil, fmt.Errorf("unknown orientation %q (want conditions or genes)", orient)
}

// fail reports an internal failure (exit 1): the input was fine but the
// run could not complete or its output could not be written.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "fim:", err)
	os.Exit(1)
}

// failUsage reports a usage error (exit 2): malformed input or bad flags;
// nothing was mined.
func failUsage(err error) {
	fmt.Fprintln(os.Stderr, "fim:", err)
	os.Exit(2)
}

// failCorrupt reports unrecoverable persistent state (exit 4): the
// snapshot directory holds damage that would silently lose durable
// transactions, so mining refused to proceed.
func failCorrupt(err error) {
	fmt.Fprintln(os.Stderr, "fim:", err)
	os.Exit(4)
}
