// Recovery conformance suite: every point at which a crash can
// interrupt the durable miner's I/O is exercised — by failing the k-th
// mutating file-system operation (cleanly or with a torn write) and by
// flipping bits in the files a clean session leaves behind — and
// recovery after each is cross-checked against a from-scratch miner
// over the recovered prefix. The invariant under test is the one
// DESIGN.md §5d states: reopen restores a consistent prefix of the
// stream containing every acknowledged transaction, or fails with
// ErrCorrupt; it never panics and never fabricates state.
package fim

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/itemset"
	"repro/internal/persist"
)

// durStream builds a reproducible transaction stream.
func durStream(items, n int, seed int64) []ItemSet {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ItemSet, n)
	for i := range out {
		t := make([]Item, rng.Intn(6))
		for j := range t {
			t[j] = Item(rng.Intn(items))
		}
		out[i] = itemset.New(t...)
	}
	return out
}

// durOracle mines the closed sets of a stream prefix from scratch with
// the batch engine — an independent path from the incremental miner the
// store recovers into.
func durOracle(t *testing.T, items int, prefix []ItemSet) map[int]*ResultSet {
	t.Helper()
	db := &Database{Items: items, Trans: prefix}
	n := len(prefix)
	out := make(map[int]*ResultSet)
	for _, minsup := range []int{1, 2, (n + 1) / 2, n} {
		if minsup < 1 {
			minsup = 1
		}
		if _, ok := out[minsup]; ok {
			continue
		}
		rs, err := MineClosed(db, minsup)
		if err != nil {
			t.Fatal(err)
		}
		out[minsup] = rs
	}
	return out
}

// checkRecovered verifies that d holds exactly trans[:n] by comparing
// its closed sets against the batch oracle at several thresholds.
func checkRecovered(t *testing.T, d *persist.Durable, items int, trans []ItemSet, n int) {
	t.Helper()
	for minsup, want := range durOracle(t, items, trans[:n]) {
		if have := d.ClosedSet(minsup); !have.Equal(want) {
			t.Fatalf("minsup=%d over %d recovered transactions: closed sets differ from batch oracle:\n%s",
				minsup, n, have.Diff(want, 10))
		}
	}
}

// crashSession opens a store on a faulty file system and feeds it the
// stream until a fault (or the end), returning how many Adds were
// acknowledged. The store is abandoned, as a crash would.
func crashSession(dir string, fs persist.FS, trans []ItemSet, opt persist.Options) (acked int) {
	opt.FS = fs
	d, err := persist.Open(dir, opt)
	if err != nil {
		return 0
	}
	for _, tr := range trans {
		if err := d.AddSet(tr); err != nil {
			break
		}
		acked++
	}
	return acked
}

// TestCrashPointSweep fails every mutating file-system operation of a
// full session in turn — once as a clean error, once as a torn
// (half-completed) write — and requires reopen on the real files to
// recover a consistent prefix: at least every acknowledged transaction,
// at most one past them (an Add whose record reached the log before its
// error), matching the batch oracle exactly. Pure crash faults must
// never surface as ErrCorrupt.
func TestCrashPointSweep(t *testing.T) {
	const items = 10
	trans := durStream(items, 40, 77)
	opt := persist.Options{Items: items, SnapshotEvery: 7}

	// Sizing pass: count the mutating operations of a fault-free run.
	counter := faultinject.NewFaultFS(persist.OS, 0, false)
	dir := t.TempDir()
	if acked := crashSession(dir, counter, trans, opt); acked != len(trans) {
		t.Fatalf("clean run acknowledged %d of %d transactions", acked, len(trans))
	}
	total := counter.Ops()
	if total < 50 {
		t.Fatalf("suspiciously few mutating operations: %d", total)
	}

	stride := int64(1)
	if testing.Short() {
		stride = 3
	}
	for _, short := range []bool{false, true} {
		for k := int64(1); k <= total; k += stride {
			dir := t.TempDir()
			ffs := faultinject.NewFaultFS(persist.OS, k, short)
			acked := crashSession(dir, ffs, trans, opt)

			d, err := persist.Open(dir, persist.Options{FS: persist.OS})
			if err != nil {
				t.Fatalf("fail op %d (short=%v): reopen after crash failed: %v", k, short, err)
			}
			n := d.Transactions()
			if n < acked || n > acked+1 || n > len(trans) {
				t.Fatalf("fail op %d (short=%v): recovered %d transactions, acknowledged %d", k, short, n, acked)
			}
			checkRecovered(t, d, items, trans, n)
			d.Close()
		}
	}
}

// TestBitFlipRecovery closes a store cleanly, then flips a bit at every
// offset of every file it left behind: reopen must either fail with
// ErrCorrupt or recover a valid prefix — everything, or everything but
// the final transaction when the flip mimics a torn final record —
// and must never panic or deliver wrong closed sets.
func TestBitFlipRecovery(t *testing.T) {
	const items = 9
	trans := durStream(items, 33, 12)
	dir := t.TempDir()
	d, err := persist.Open(dir, persist.Options{Items: items, SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trans {
		if err := d.AddSet(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := persist.OS.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if testing.Short() {
		stride = 5
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		for off := int64(0); off < info.Size(); off += int64(stride) {
			if err := faultinject.FlipBit(path, off, uint(off)%8); err != nil {
				t.Fatal(err)
			}
			d, err := persist.Open(dir, persist.Options{FS: persist.OS})
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("%s offset %d: reopen error not ErrCorrupt: %v", name, off, err)
				}
			} else {
				n := d.Transactions()
				if n < len(trans)-1 || n > len(trans) {
					t.Fatalf("%s offset %d: flip silently dropped to %d of %d transactions", name, off, n, len(trans))
				}
				checkRecovered(t, d, items, trans, n)
				d.Close()
			}
			if err := faultinject.FlipBit(path, off, uint(off)%8); err != nil {
				t.Fatal(err) // restore for the next offset
			}
		}
	}
}

// TestOpenDurableFacade exercises the public fim surface end to end:
// write through one DurableMiner, crash (abandon it), recover through
// OpenDurable, and continue mining.
func TestOpenDurableFacade(t *testing.T) {
	const items = 8
	trans := durStream(items, 26, 5)
	dir := t.TempDir()
	dm, err := OpenDurable(dir, DurableOptions{Items: items, SnapshotEvery: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trans[:17] {
		if err := dm.AddSet(tr); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close, no Snapshot.
	dm, err = OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dm.Transactions() != 17 {
		t.Fatalf("recovered %d transactions, want 17", dm.Transactions())
	}
	for _, tr := range trans[17:] {
		if err := dm.AddSet(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := dm.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := dm.Close(); err != nil {
		t.Fatal(err)
	}
	dm, err = OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()
	oracle := durOracle(t, items, trans)
	for minsup, want := range oracle {
		if have := dm.ClosedSet(minsup); !have.Equal(want) {
			t.Fatalf("minsup=%d: recovered closed sets differ:\n%s", minsup, have.Diff(want, 10))
		}
	}
}

// TestSnapshotRoundTripDatasets round-trips IncrementalMiner snapshots
// across generated benchmark-family datasets and hand-built edge cases,
// checking the restored miner's closed sets at several thresholds and
// that it keeps mining identically after restore.
func TestSnapshotRoundTripDatasets(t *testing.T) {
	dbs := map[string]Source{
		"empty":       &Database{Items: 5, Trans: nil},
		"single":      &Database{Items: 5, Trans: []ItemSet{itemset.New(0, 2, 4)}},
		"empty-trans": &Database{Items: 3, Trans: []ItemSet{{}, {}}},
		"quest": GenQuest(QuestConfig{
			Items: 40, Transactions: 120, AvgLen: 8,
			Patterns: 10, AvgPatternLen: 4, Seed: 3,
		}),
		"yeast": GenYeast(0.02, 11),
	}
	for name, db := range dbs {
		n := db.NumTx()
		cut := n / 2
		m := NewIncrementalMiner(db.NumItems())
		for k := 0; k < cut; k++ {
			if err := m.AddSet(db.Tx(k)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		var buf bytes.Buffer
		if err := m.Snapshot(&buf); err != nil {
			t.Fatalf("%s: snapshot: %v", name, err)
		}
		got, err := RestoreIncrementalMiner(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		if got.Transactions() != cut || got.Items() != db.NumItems() || got.NodeCount() != m.NodeCount() {
			t.Fatalf("%s: restored state differs: %d/%d trans, %d/%d items, %d/%d nodes", name,
				got.Transactions(), cut, got.Items(), db.NumItems(), got.NodeCount(), m.NodeCount())
		}
		// Both miners continue over the second half and must agree with
		// the batch oracle on the full database.
		for k := cut; k < n; k++ {
			if err := m.AddSet(db.Tx(k)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := got.AddSet(db.Tx(k)); err != nil {
				t.Fatalf("%s: restored miner rejected transaction: %v", name, err)
			}
		}
		for _, minsup := range []int{1, 2, n} {
			if minsup < 1 {
				minsup = 1
			}
			want, err := MineClosed(db, minsup)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if have := got.ClosedSet(minsup); !have.Equal(want) {
				t.Fatalf("%s minsup=%d: restored miner diverged from batch oracle:\n%s", name, minsup, have.Diff(want, 10))
			}
		}
	}
}
