package fim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// healDB is a workload large enough that every parallel shard grows a
// prefix tree well past the injected fault thresholds below.
func healDB() *Columnar {
	return GenQuest(QuestConfig{
		Transactions: 500, Items: 40, AvgLen: 8, Patterns: 12, AvgPatternLen: 4, Seed: 31,
	})
}

// TestHealShardFallback is the self-healing acceptance check: a shard
// worker panics once (a consume-once tree fault), the supervisor re-mines
// the shard sequentially, and the run completes with the exact sequential
// result — no error, no partial, just a nonzero retry counter.
func TestHealShardFallback(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	db := healDB()
	const minsup = 10

	ref, err := MineClosed(db, minsup)
	if err != nil {
		t.Fatal(err)
	}

	for _, algo := range []Algorithm{IsTa, CarpenterTable} {
		t.Run(string(algo), func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			restore := faultinject.PanicAtTreeNodeOnce(40)
			defer restore()

			var st MiningStats
			var out ResultSet
			err := Mine(db, Options{
				MinSupport:  minsup,
				Algorithm:   algo,
				Parallelism: 4,
				Retry:       RetryPolicy{MaxAttempts: 2},
				Stats:       &st,
			}, out.Collect())
			if err != nil {
				t.Fatalf("healed run failed: %v", err)
			}
			out.Sort()
			if !out.Equal(ref) {
				t.Fatalf("healed result differs from sequential:\n%s", out.Diff(ref, 10))
			}
			if algo == IsTa {
				// Only IsTa's shard workers grow core prefix trees, so only
				// there is the fault guaranteed to have fired and healed.
				if st.Retries < 1 {
					t.Fatalf("Stats.Retries = %d, want >= 1", st.Retries)
				}
			}
			if st.Degraded != 0 {
				t.Fatalf("Stats.Degraded = %d, want 0 (the run healed)", st.Degraded)
			}
		})
	}
}

// TestHealExhaustedPartial drives retry exhaustion: a persistent fault
// fails every shard on every attempt, so the run degrades all the way to
// a typed partial result with a per-shard report and consistent
// degradation counters — never a panic or a silent empty success.
func TestHealExhaustedPartial(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	db := healDB()
	const minsup, workers = 10, 4

	t.Run("ista-tree-panic", func(t *testing.T) {
		defer faultinject.LeakCheck(t)()
		restore := faultinject.PanicAtTreeNode(2) // persistent: retries refail
		defer restore()

		var st MiningStats
		var out ResultSet
		err := Mine(db, Options{
			MinSupport:  minsup,
			Parallelism: workers,
			Retry:       RetryPolicy{MaxAttempts: 2},
			Stats:       &st,
		}, out.Collect())
		assertAllShardsDegraded(t, err, &st, workers)
		if out.Len() != 0 {
			t.Fatalf("all shards degraded but %d patterns reported", out.Len())
		}
	})

	t.Run("carpenter-transient-err", func(t *testing.T) {
		defer faultinject.LeakCheck(t)()
		// From tick 400 on every cooperative check fails with a transient
		// error: late enough that prep and the engine's entry tick pass,
		// early enough that every branch worker (and every retry) hits it.
		restore := faultinject.TransientErrAtTick(400)
		defer restore()

		var st MiningStats
		var out ResultSet
		err := Mine(db, Options{
			MinSupport:  minsup,
			Algorithm:   CarpenterTable,
			Parallelism: workers,
			Retry:       RetryPolicy{MaxAttempts: 2},
			Stats:       &st,
		}, out.Collect())
		if errors.Is(err, faultinject.ErrChaos) && !errors.Is(err, ErrPartial) {
			// The injected failure may fire before the workers start (the
			// engine's own entry tick); then the run aborts fail-stop,
			// which is the documented non-degradable outcome.
			return
		}
		assertAllShardsDegraded(t, err, &st, workers)
	})
}

// assertAllShardsDegraded checks the typed shape of a fully degraded run:
// a *PartialError wrapping ErrPartial, one ShardError per worker, and a
// Degraded counter that agrees.
func assertAllShardsDegraded(t *testing.T, err error, st *MiningStats, workers int) {
	t.Helper()
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if !errors.Is(err, ErrPartial) {
		t.Fatalf("err = %v does not wrap ErrPartial", err)
	}
	if len(pe.Shards) != workers {
		t.Fatalf("PartialError reports %d shards, want %d", len(pe.Shards), workers)
	}
	for _, se := range pe.Shards {
		if se.Err == nil {
			t.Fatalf("shard %d degraded without a cause", se.Shard)
		}
	}
	if st.Degraded != int64(workers) {
		t.Fatalf("Stats.Degraded = %d, want %d", st.Degraded, workers)
	}
	if st.Retries < int64(workers) {
		t.Fatalf("Stats.Retries = %d, want >= %d (every shard retried)", st.Retries, workers)
	}
}

// TestHealPartialSoundness pins the degraded-result contract: with some
// shards abandoned, every reported pattern is closed in the full database
// (it appears in the sequential result) and its reported support is a
// valid lower bound of the true support, at or above minsup.
func TestHealPartialSoundness(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	db := healDB()
	const minsup = 10

	ref, err := MineClosed(db, minsup)
	if err != nil {
		t.Fatal(err)
	}

	// A one-shot tree panic with a disabled-in-practice budget (one
	// attempt, but the fault refires on the retry because PanicAtTreeNode
	// is persistent) degrades exactly the shards that hit it.
	restore := faultinject.PanicAtTreeNode(40)
	defer restore()

	var out ResultSet
	errMine := Mine(db, Options{
		MinSupport:  minsup,
		Parallelism: 4,
		Retry:       RetryPolicy{MaxAttempts: 1},
		Stats:       nil,
	}, out.Collect())
	var pe *PartialError
	if !errors.As(errMine, &pe) {
		t.Skipf("run did not degrade (err = %v); fault landed outside the shard phase", errMine)
	}
	out.Sort()
	refm := make(map[string]int, ref.Len())
	for _, p := range ref.Patterns {
		refm[p.Items.Key()] = p.Support
	}
	for _, p := range out.Patterns {
		true_, ok := refm[p.Items.Key()]
		if !ok {
			t.Errorf("degraded result contains %v, not closed-frequent in the full database", p)
			continue
		}
		if p.Support > true_ {
			t.Errorf("degraded result overstates support of %v: %d > true %d", p.Items, p.Support, true_)
		}
		if p.Support < minsup {
			t.Errorf("degraded result reports %v below minsup: %d < %d", p.Items, p.Support, minsup)
		}
	}
}

// TestHealProgressAudit is the counter audit for healed runs (run under
// -race in CI): a retried shard must not corrupt the observability
// contract — snapshots stay monotone, the final snapshot agrees exactly
// with Stats, and the pattern count matches the reference (retried
// shards never double-report patterns).
func TestHealProgressAudit(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	db := healDB()
	const minsup = 10

	ref, err := MineClosed(db, minsup)
	if err != nil {
		t.Fatal(err)
	}

	restore := faultinject.PanicAtTreeNodeOnce(40)
	defer restore()

	var log progressLog
	var st MiningStats
	var out ResultSet
	err = Mine(db, Options{
		MinSupport:       minsup,
		Parallelism:      4,
		Retry:            RetryPolicy{MaxAttempts: 2},
		Stats:            &st,
		OnProgress:       log.add,
		ProgressInterval: time.Nanosecond,
	}, out.Collect())
	if err != nil {
		t.Fatalf("healed run failed: %v", err)
	}
	out.Sort()
	if !out.Equal(ref) {
		t.Fatalf("healed result differs from sequential:\n%s", out.Diff(ref, 10))
	}
	if st.Retries < 1 {
		t.Fatalf("Stats.Retries = %d, want >= 1 (the fault must have fired)", st.Retries)
	}
	if st.Patterns != int64(ref.Len()) {
		t.Fatalf("Stats.Patterns = %d, want %d (retried shard must not double-count)", st.Patterns, ref.Len())
	}
	events := log.snapshot()
	checkMonotone(t, events)
	final := events[len(events)-1]
	if final.Patterns != st.Patterns || final.Ops != st.Ops ||
		final.Checks != st.Checks || final.Nodes != st.NodesPeak {
		t.Fatalf("final snapshot %+v disagrees with stats %+v", final.Counts, st)
	}
}
