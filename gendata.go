package fim

import (
	"io"

	"repro/internal/gendata"
	"repro/internal/txdb"
)

// The synthetic workload generators stand in for the paper's evaluation
// data sets (which are not redistributable); see DESIGN.md §3 for the
// substitution rationale. All generators are deterministic in their seed.

// GenYeast generates a yeast-compendium-like database in the Figure 5
// orientation: few transactions (conditions), very many items
// (gene/polarity pairs). Scale 1 approximates the paper's 300 × ~12,000.
func GenYeast(scale float64, seed int64) *Columnar { return gendata.Yeast(scale, seed) }

// GenNCBI60 generates an NCBI60-like database: 60 cell-line transactions
// with items frequent in most of them (the Figure 6 regime).
func GenNCBI60(scale float64, seed int64) *Columnar { return gendata.NCBI60(scale, seed) }

// GenThrombin generates a thrombin-like database: 64 transactions over a
// very wide, sparse, block-correlated binary feature space (Figure 7).
// Scale 1 gives the paper's 139,351 features.
func GenThrombin(scale float64, seed int64) *Columnar { return gendata.Thrombin(scale, seed) }

// GenWebView generates a transposed clickstream database like the
// transposed BMS-WebView-1 of Figure 8.
func GenWebView(scale float64, seed int64) *Columnar { return gendata.WebView(scale, seed) }

// QuestConfig parameterises GenQuest.
type QuestConfig = gendata.QuestConfig

// GenQuest generates a classic market-basket database (many transactions,
// few items) in the spirit of the IBM Quest generator.
func GenQuest(cfg QuestConfig) *Columnar { return gendata.Quest(cfg) }

// ExpressionConfig parameterises GenExpression.
type ExpressionConfig = gendata.ExpressionConfig

// ExpressionMatrix is a synthetic genes × conditions log-ratio matrix.
type ExpressionMatrix = gendata.Matrix

// GenExpression generates a synthetic gene expression matrix with
// co-regulated modules (§4 of the paper describes the real counterpart).
func GenExpression(cfg ExpressionConfig) *ExpressionMatrix { return gendata.Expression(cfg) }

// Orientation selects how Discretize turns a matrix into transactions.
type Orientation = gendata.Orientation

// Discretization orientations (§4: the matrix "may also be transposed").
const (
	GenesAsTransactions      = gendata.GenesAsTransactions
	ConditionsAsTransactions = gendata.ConditionsAsTransactions
)

// Discretize converts an expression matrix into a Boolean transaction
// database with the paper's over-/under-expression thresholds: values
// above hi become "over-expressed" items, values below -lo become
// "under-expressed" items (the paper uses hi = lo = 0.2).
func Discretize(m *ExpressionMatrix, hi, lo float64, orient Orientation) *Columnar {
	return gendata.Discretize(m, hi, lo, orient)
}

// ReadMatrixCSV loads an expression matrix from CSV/TSV text (one gene
// per row, one numeric column per condition; label headers are skipped).
// Together with Discretize it completes the §4 pipeline for real data.
func ReadMatrixCSV(r io.Reader) (*ExpressionMatrix, error) { return gendata.ReadMatrixCSV(r) }

// WriteMatrixCSV renders an expression matrix as CSV.
func WriteMatrixCSV(w io.Writer, m *ExpressionMatrix) error { return gendata.WriteMatrixCSV(w, m) }

// Stats summarises the shape of a database (any Source).
type Stats = txdb.Stats

// StatsOf computes the summary statistics of any database.
func StatsOf(db Source) Stats { return txdb.StatsOf(db) }

// TotalWeight returns the weighted transaction count of any database —
// the denominator for relative support thresholds. For databases without
// merged duplicates it equals the number of rows.
func TotalWeight(db Source) int { return txdb.TotalWeightOf(db) }
