package fim

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/mining"
)

// progressLog collects OnProgress events thread-safely.
type progressLog struct {
	mu     sync.Mutex
	events []ProgressEvent
}

func (l *progressLog) add(p ProgressEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, p)
}

func (l *progressLog) snapshot() []ProgressEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]ProgressEvent(nil), l.events...)
}

// checkMonotone fails the test unless every counter and the elapsed time
// are non-decreasing across the events and exactly the last is Final.
func checkMonotone(t *testing.T, events []ProgressEvent) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no progress events delivered")
	}
	for i, p := range events {
		if got, want := p.Final, i == len(events)-1; got != want {
			t.Fatalf("event %d/%d: Final=%v", i, len(events), got)
		}
		if i == 0 {
			continue
		}
		prev := events[i-1]
		if p.Elapsed < prev.Elapsed || p.Patterns < prev.Patterns ||
			p.Ops < prev.Ops || p.Checks < prev.Checks || p.Nodes < prev.Nodes {
			t.Fatalf("event %d not monotone: %+v after %+v", i, p, prev)
		}
	}
}

// TestProgressConformance is the observability conformance check: with
// progress enabled, snapshots are monotone, the final snapshot agrees
// exactly with MiningStats, and the parallel run reports the identical
// pattern set to the sequential one.
func TestProgressConformance(t *testing.T) {
	restore := mining.SetCheckInterval(1)
	defer restore()

	db := GenQuest(QuestConfig{
		Transactions: 500, Items: 40, AvgLen: 8, Patterns: 12, AvgPatternLen: 4, Seed: 31,
	})
	const minsup = 10

	seq, err := MineClosed(db, minsup)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 4} {
		var log progressLog
		var st MiningStats
		var out ResultSet
		err := Mine(db, Options{
			MinSupport:       minsup,
			Parallelism:      workers,
			Stats:            &st,
			OnProgress:       log.add,
			ProgressInterval: time.Nanosecond,
		}, out.Collect())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out.Sort()
		if !out.Equal(seq) {
			t.Fatalf("workers=%d: pattern set differs from sequential:\n%s", workers, out.Diff(seq, 10))
		}

		events := log.snapshot()
		checkMonotone(t, events)
		final := events[len(events)-1]
		if final.Patterns != st.Patterns || final.Ops != st.Ops ||
			final.Checks != st.Checks || final.Nodes != st.NodesPeak {
			t.Fatalf("workers=%d: final snapshot %+v disagrees with stats %+v", workers, final.Counts, st)
		}
	}
}

// TestProgressStopsAfterCancellation verifies that no progress event is
// delivered after a canceled Mine returns, and that the terminal event
// is still the Final snapshot.
func TestProgressStopsAfterCancellation(t *testing.T) {
	restore := mining.SetCheckInterval(1)
	defer restore()

	db := GenQuest(QuestConfig{
		Transactions: 2000, Items: 60, AvgLen: 10, Patterns: 20, AvgPatternLen: 4, Seed: 33,
	})

	var log progressLog
	done := make(chan struct{})
	var once sync.Once
	err := Mine(db, Options{
		MinSupport:  20,
		Parallelism: 4,
		Done:        done,
		OnProgress: func(p ProgressEvent) {
			log.add(p)
			once.Do(func() { close(done) }) // cancel at the first snapshot
		},
		ProgressInterval: time.Nanosecond,
	}, ReporterFunc(func(ItemSet, int) {}))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}

	after := len(log.snapshot())
	time.Sleep(50 * time.Millisecond)
	events := log.snapshot()
	if len(events) != after {
		t.Fatalf("%d progress events arrived after Mine returned", len(events)-after)
	}
	checkMonotone(t, events)
}

// TestNoSinkBuildsNoCounters pins the overhead contract at the API
// level: without Stats and without any observability surface, Mine runs
// the counter-free control path (no panic, same result), and with only
// Stats it still delivers no progress callbacks.
func TestNoSinkBuildsNoCounters(t *testing.T) {
	db := GenQuest(QuestConfig{
		Transactions: 200, Items: 30, AvgLen: 6, Patterns: 8, AvgPatternLen: 3, Seed: 35,
	})
	want, err := MineClosed(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	var st MiningStats
	var out ResultSet
	if err := Mine(db, Options{MinSupport: 5, Stats: &st}, out.Collect()); err != nil {
		t.Fatal(err)
	}
	out.Sort()
	if !out.Equal(want) {
		t.Fatal("stats-only run changed the pattern set")
	}
	if st.Patterns != int64(want.Len()) {
		t.Fatalf("stats patterns = %d, want %d", st.Patterns, want.Len())
	}
}
