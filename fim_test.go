package fim

import (
	"math/rand"
	"testing"

	"repro/internal/mining"
	"repro/internal/txdb"
)

func paperExample() *Database {
	return NewDatabase([][]int{
		{0, 1, 2},
		{0, 3, 4},
		{1, 2, 3},
		{0, 1, 2, 3},
		{1, 2},
		{0, 1, 3},
		{3, 4},
		{2, 3, 4},
	})
}

// TestAllAlgorithmsAgree runs every public closed-set algorithm on the
// paper's example database and checks they produce the identical result.
func TestAllAlgorithmsAgree(t *testing.T) {
	db := paperExample()
	for _, minsup := range []int{1, 2, 3, 4, 6} {
		ref, err := MineClosed(db, minsup)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range Algorithms() {
			var got ResultSet
			if err := Mine(db, Options{MinSupport: minsup, Algorithm: algo}, got.Collect()); err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			if !got.Equal(ref) {
				t.Fatalf("%s disagrees at minsup %d:\n%s", algo, minsup, got.Diff(ref, 10))
			}
		}
	}
}

func TestMineClosedPaperExample(t *testing.T) {
	got, err := MineClosed(paperExample(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 {
		t.Fatalf("closed sets at minsup 3: %d, want 10", got.Len())
	}
	for _, p := range got.Patterns {
		if !IsClosed(paperExample(), p.Items) {
			t.Errorf("%v reported but not closed", p)
		}
		if Support(paperExample(), p.Items) != p.Support {
			t.Errorf("%v support mismatch", p)
		}
	}
}

func TestMineUnknownAlgorithm(t *testing.T) {
	err := Mine(paperExample(), Options{MinSupport: 1, Algorithm: "nope"}, ReporterFunc(func(ItemSet, int) {}))
	if err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestMineAllVsClosed(t *testing.T) {
	db := paperExample()
	all, err := MineAll(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := MineClosed(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	apr, err := MineApriori(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !all.Equal(apr) {
		t.Fatalf("FP-growth(all) and Apriori disagree:\n%s", all.Diff(apr, 10))
	}
	if all.Len() <= closed.Len() {
		t.Fatal("all frequent sets should outnumber closed ones here")
	}
	// Every closed set is frequent; every frequent set has a closed
	// superset with the same support.
	for _, p := range all.Patterns {
		found := false
		for _, c := range closed.Patterns {
			if c.Support == p.Support && p.Items.SubsetOf(c.Items) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("frequent set %v has no closed superset with equal support", p)
		}
	}
}

func TestMineMaximal(t *testing.T) {
	db := paperExample()
	maximal, err := MineMaximal(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := MineClosed(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if maximal.Len() == 0 || maximal.Len() >= closed.Len() {
		t.Fatalf("maximal = %d, closed = %d", maximal.Len(), closed.Len())
	}
	for i := range maximal.Patterns {
		for j := range maximal.Patterns {
			if i != j && maximal.Patterns[i].Items.SubsetOf(maximal.Patterns[j].Items) {
				t.Fatal("maximal output contains nested sets")
			}
		}
	}
}

func TestCancellationSurfacesError(t *testing.T) {
	done := make(chan struct{})
	close(done)
	db := GenYeast(0.05, 1)
	err := Mine(db, Options{MinSupport: 2, Done: done}, ReporterFunc(func(ItemSet, int) {}))
	if err != mining.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestCancellationConformance: every algorithm — and the parallel engines —
// must return ErrCanceled promptly when Done is closed before the run
// starts, without reporting a single pattern.
func TestCancellationConformance(t *testing.T) {
	done := make(chan struct{})
	close(done)
	db := paperExample()
	check := func(name string, opts Options) {
		reported := 0
		err := Mine(db, opts, ReporterFunc(func(ItemSet, int) { reported++ }))
		if err != mining.ErrCanceled {
			t.Errorf("%s: err = %v, want ErrCanceled", name, err)
		}
		if reported != 0 {
			t.Errorf("%s: reported %d patterns after pre-closed Done", name, reported)
		}
	}
	for _, algo := range Algorithms() {
		check(string(algo), Options{MinSupport: 2, Algorithm: algo, Done: done})
	}
	check("ista-parallel", Options{MinSupport: 2, Algorithm: IsTa, Done: done, Parallelism: 4})
	check("carpenter-table-parallel", Options{MinSupport: 2, Algorithm: CarpenterTable, Done: done, Parallelism: 4})
}

// TestParallelismRouting: Parallelism must leave the result unchanged for
// the algorithms with a parallel engine and be ignored by the others.
func TestParallelismRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]int, 80)
	for i := range rows {
		for item := 0; item < 14; item++ {
			if rng.Intn(3) == 0 {
				rows[i] = append(rows[i], item)
			}
		}
	}
	db := NewDatabase(rows)
	ref, err := MineClosed(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range Algorithms() {
		for _, p := range []int{-1, 0, 1, 2, 8} {
			var got ResultSet
			if err := Mine(db, Options{MinSupport: 3, Algorithm: algo, Parallelism: p}, got.Collect()); err != nil {
				t.Fatalf("%s at parallelism %d: %v", algo, p, err)
			}
			got.Sort()
			if !got.Equal(ref) {
				t.Fatalf("%s at parallelism %d disagrees:\n%s", algo, p, got.Diff(ref, 10))
			}
		}
	}
}

func TestMineParallel(t *testing.T) {
	db := paperExample()
	ref, err := MineClosed(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 8} {
		got, err := MineParallel(db, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref) {
			t.Fatalf("MineParallel(%d workers) disagrees:\n%s", workers, got.Diff(ref, 10))
		}
	}
}

func TestRulesFromClosed(t *testing.T) {
	db := paperExample()
	closed, err := MineClosed(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs := Rules(closed, len(db.Trans), RuleOptions{MinConfidence: 0.8})
	if len(rs) == 0 {
		t.Fatal("no rules")
	}
	for _, r := range rs {
		if r.Confidence < 0.8 {
			t.Errorf("rule %v below confidence threshold", r)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := paperExample()
	if err := WriteFile(dir+"/x.dat", db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(dir + "/x.dat")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := MineClosed(db, 2)
	b, err := MineClosed(back, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("round-tripped database mines differently")
	}
}

func TestTransposeAndGenerators(t *testing.T) {
	db := GenQuest(QuestConfig{Items: 30, Transactions: 100, AvgLen: 6, Patterns: 8, AvgPatternLen: 3, Seed: 1})
	tr := Transpose(db)
	if tr.NumTx() != 30 {
		t.Fatalf("transposed rows = %d", tr.NumTx())
	}
	for _, gen := range []*Columnar{
		GenYeast(0.03, 1), GenNCBI60(0.03, 2), GenThrombin(0.003, 3), GenWebView(0.02, 4),
	} {
		if err := txdb.Validate(gen); err != nil {
			t.Fatal(err)
		}
		// High support keeps this a shape smoke test (low supports on the
		// dense generators produce millions of closed sets).
		if _, err := MineClosed(gen, gen.NumTx()*19/20+1); err != nil {
			t.Fatal(err)
		}
	}
	m := GenExpression(ExpressionConfig{Genes: 40, Conditions: 10, Modules: 2,
		ModuleGeneFrac: 0.5, ModuleCondFrac: 0.4, Effect: 0.5, Noise: 0.1, Seed: 9})
	d1 := Discretize(m, 0.2, 0.2, GenesAsTransactions)
	d2 := Discretize(m, 0.2, 0.2, ConditionsAsTransactions)
	if d1.NumTx() != 40 || d2.NumTx() != 10 {
		t.Fatalf("orientation shapes: %d, %d", d1.NumTx(), d2.NumTx())
	}
}

func TestNewItemSetAndSupport(t *testing.T) {
	db := paperExample()
	s := NewItemSet(2, 1) // canonicalized to {1,2}
	if Support(db, s) != 4 {
		t.Fatalf("Support({1,2}) = %d", Support(db, s))
	}
	if !IsClosed(db, s) {
		t.Fatal("{1,2} is closed")
	}
	if IsClosed(db, NewItemSet(0, 2)) {
		t.Fatal("{0,2} is not closed")
	}
}

func TestIncrementalMinerFacade(t *testing.T) {
	db := paperExample()
	m := NewIncrementalMiner(db.Items)
	for _, tr := range db.Trans {
		if err := m.AddSet(tr); err != nil {
			t.Fatal(err)
		}
	}
	want, err := MineClosed(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := m.ClosedSet(3)
	if !got.Equal(want) {
		t.Fatalf("incremental disagrees with batch:\n%s", got.Diff(want, 10))
	}
}

func TestSupportIndexFacade(t *testing.T) {
	db := paperExample()
	closed, err := MineClosed(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewSupportIndex(closed, len(db.Trans))
	for _, tc := range []struct {
		items ItemSet
		want  int
	}{
		{NewItemSet(1, 2), 4},
		{NewItemSet(0, 2), 2}, // not closed, support via closed superset
		{NewItemSet(3), 6},
	} {
		got, ok := idx.Support(tc.items)
		if !ok || got != tc.want {
			t.Errorf("Support(%v) = %d/%v, want %d", tc.items, got, ok, tc.want)
		}
	}
}

// TestAllAlgorithmsAgreeRandom extends the agreement check to randomized
// databases large enough to exercise every code path (pruning, perfect
// extensions, repositories, row switches) in all nine miners.
func TestAllAlgorithmsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 8; trial++ {
		items := 15 + rng.Intn(25)
		n := 20 + rng.Intn(40)
		rows := make([][]int, n)
		for k := range rows {
			for i := 0; i < items; i++ {
				if rng.Float64() < 0.15+rng.Float64()*0.2 {
					rows[k] = append(rows[k], i)
				}
			}
		}
		db := NewDatabase(rows)
		minsup := 2 + rng.Intn(4)
		ref, err := MineClosed(db, minsup)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range Algorithms() {
			var got ResultSet
			if err := Mine(db, Options{MinSupport: minsup, Algorithm: algo}, got.Collect()); err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			if !got.Equal(ref) {
				t.Fatalf("%s disagrees (trial %d, minsup %d):\n%s", algo, trial, minsup, got.Diff(ref, 10))
			}
		}
	}
}
