package fim_test

import (
	"fmt"

	fim "repro"
)

// The example transaction database from Table 1 of the paper
// (a=0, b=1, c=2, d=3, e=4).
func exampleDB() *fim.Database {
	return fim.NewDatabase([][]int{
		{0, 1, 2}, {0, 3, 4}, {1, 2, 3}, {0, 1, 2, 3},
		{1, 2}, {0, 1, 3}, {3, 4}, {2, 3, 4},
	})
}

func ExampleMineClosed() {
	closed, err := fim.MineClosed(exampleDB(), 4)
	if err != nil {
		panic(err)
	}
	for _, p := range closed.Patterns {
		fmt.Printf("%v support %d\n", p.Items, p.Support)
	}
	// Output:
	// {0} support 4
	// {1} support 5
	// {2} support 5
	// {3} support 6
	// {1 2} support 4
}

func ExampleMine() {
	// Any algorithm produces the identical closed sets; here Carpenter's
	// table-based transaction set enumeration.
	var set fim.ResultSet
	err := fim.Mine(exampleDB(), fim.Options{
		MinSupport: 4,
		Algorithm:  fim.CarpenterTable,
	}, set.Collect())
	if err != nil {
		panic(err)
	}
	set.Sort()
	fmt.Println(set.Len(), "closed sets")
	// Output:
	// 5 closed sets
}

func ExampleRules() {
	db := exampleDB()
	closed, err := fim.MineClosed(db, 1)
	if err != nil {
		panic(err)
	}
	rules := fim.Rules(closed, len(db.Trans), fim.RuleOptions{MinConfidence: 1.0})
	for _, r := range rules[:2] {
		fmt.Printf("%v -> %v (conf %.0f%%)\n", r.Antecedent, r.Consequent, 100*r.Confidence)
	}
	// Output:
	// {4} -> {3} (conf 100%)
	// {0 2} -> {1} (conf 100%)
}

func ExampleIncrementalMiner() {
	m := fim.NewIncrementalMiner(5)
	for _, t := range [][]fim.Item{{0, 1}, {0, 1, 2}, {1, 2}} {
		if err := m.Add(t...); err != nil {
			panic(err)
		}
	}
	closed := m.ClosedSet(2)
	for _, p := range closed.Patterns {
		fmt.Printf("%v support %d\n", p.Items, p.Support)
	}
	// Output:
	// {1} support 3
	// {0 1} support 2
	// {1 2} support 2
}

func ExampleTranspose() {
	// §4 of the paper: swapping the roles of items and transactions turns
	// a many-transactions/few-items problem into the few-transactions/
	// many-items regime that the intersection algorithms target.
	db := fim.NewDatabase([][]int{{0, 1}, {1, 2}})
	tr := fim.Transpose(db)
	fmt.Println(len(db.Trans), "x", db.Items, "->", tr.NumTx(), "x", tr.NumItems())
	// Output:
	// 2 x 3 -> 3 x 2
}

func ExampleSupportIndex() {
	db := exampleDB()
	closed, _ := fim.MineClosed(db, 1)
	idx := fim.NewSupportIndex(closed, len(db.Trans))
	// {a,c} is not closed, but its support is recoverable from the closed
	// collection (§2.3 of the paper).
	supp, ok := idx.Support(fim.NewItemSet(0, 2))
	fmt.Println(supp, ok)
	// Output:
	// 2 true
}
