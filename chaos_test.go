// Seeded chaos conformance: every registered algorithm (and the
// parallel engines) is driven under deterministic fault schedules drawn
// from fixed seeds, and every run must land in one of the documented
// outcomes — healed to the oracle-identical result, a typed partial
// result whose patterns are sound, or a typed abort with a valid result
// prefix. Never a process panic, never silent loss, never a leaked
// goroutine. A failure names its schedule (chaos.String() is in the
// subtest name via the seed), so the exact run reproduces from the log.
package fim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/naive"
)

// chaosDB builds a database at the brute-force oracle's transaction
// limit, dense enough that every miner performs enough work (ticks, tree
// nodes) to give the drawn fault points a chance to fire.
func chaosDB() *Database {
	rng := rand.New(rand.NewSource(17))
	rows := make([][]int, 20)
	for k := range rows {
		for i := 0; i < 12; i++ {
			if rng.Float64() < 0.45 {
				rows[k] = append(rows[k], i)
			}
		}
		if len(rows[k]) == 0 {
			rows[k] = append(rows[k], k%12)
		}
	}
	return NewDatabase(rows)
}

// chaosSeeds is the fixed seed matrix CI sweeps; each seed yields one
// deterministic fault schedule per run.
func chaosSeeds(short bool) []int64 {
	if short {
		return []int64{1, 2, 3}
	}
	return []int64{1, 2, 3, 4, 5, 6, 7, 8}
}

// TestChaosConformance sweeps the algorithm registry across the seeded
// fault schedules and asserts the self-healing outcome contract.
func TestChaosConformance(t *testing.T) {
	db := chaosDB()
	const minsup = 3

	want, err := naive.ClosedByTransactionSubsets(db, minsup)
	if err != nil {
		t.Fatal(err)
	}
	wantSupp := make(map[string]int, want.Len())
	for _, p := range want.Patterns {
		wantSupp[p.Items.Key()] = p.Support
	}

	for _, seed := range chaosSeeds(testing.Short()) {
		for _, c := range guardCases() {
			c := c
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", c.name, seed), func(t *testing.T) {
				defer faultinject.LeakCheck(t)()
				chaos := faultinject.NewChaos(seed, faultinject.ChaosConfig{
					PanicTicks: 2, ErrTicks: 2, TreeNodes: 1,
					MaxTick: 300, MaxTreeNode: 40,
				})
				restore := chaos.Arm()
				defer restore()

				var st MiningStats
				var out ResultSet
				err := Mine(db, Options{
					MinSupport:  minsup,
					Algorithm:   c.algo,
					Parallelism: c.par,
					Retry:       RetryPolicy{MaxAttempts: 3, Seed: seed},
					Stats:       &st,
				}, out.Collect())
				out.Sort()

				var pe *PartialError
				switch {
				case err == nil:
					// Healed (or the schedule never fired): the result must
					// be exactly the oracle's.
					if !out.Equal(want) {
						t.Errorf("%v: fired=%d, healed run differs from oracle:\n%s",
							chaos, chaos.Fired(), out.Diff(want, 10))
					}
				case errors.As(err, &pe):
					// Degraded: a typed partial result with a per-shard
					// report, every pattern closed in the full database with
					// a support that is a lower bound at or above minsup.
					if !errors.Is(err, ErrPartial) {
						t.Errorf("%v: partial error does not wrap ErrPartial: %v", chaos, err)
					}
					if len(pe.Shards) == 0 {
						t.Errorf("%v: partial result without a shard report", chaos)
					}
					for _, p := range out.Patterns {
						trueSupp, ok := wantSupp[p.Items.Key()]
						switch {
						case !ok:
							t.Errorf("%v: degraded result contains %v, not in the oracle", chaos, p)
						case p.Support > trueSupp:
							t.Errorf("%v: degraded result overstates %v: %d > %d", chaos, p.Items, p.Support, trueSupp)
						case p.Support < minsup:
							t.Errorf("%v: degraded result reports %v below minsup", chaos, p.Items)
						}
					}
				case isChaosAbort(err):
					// Typed abort: whatever was reported before the stop is a
					// valid prefix — exact supports, all in the oracle.
					assertPrefix(t, want, &out)
				default:
					t.Errorf("%v: fired=%d, undocumented failure: %v", chaos, chaos.Fired(), err)
				}
			})
		}
	}
}

// isChaosAbort reports whether err is one of the documented typed aborts
// a chaos schedule can cause: a contained panic, the injected transient
// error surfacing where no supervisor covers it, or a latched stop.
func isChaosAbort(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe) ||
		errors.Is(err, faultinject.ErrChaos) ||
		errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrBudget)
}

// TestChaosDeterminism pins the harness itself: equal seeds draw equal
// schedules, different seeds draw different ones (for this config), and
// a schedule prints itself for reproduction.
func TestChaosDeterminism(t *testing.T) {
	cfg := faultinject.ChaosConfig{
		PanicTicks: 2, ErrTicks: 2, TreeNodes: 1, MaxTick: 300, MaxTreeNode: 40,
	}
	a := faultinject.NewChaos(42, cfg)
	b := faultinject.NewChaos(42, cfg)
	if a.String() != b.String() {
		t.Fatalf("equal seeds drew different schedules:\n%s\n%s", a, b)
	}
	c := faultinject.NewChaos(43, cfg)
	if a.String() == c.String() {
		t.Fatalf("different seeds drew the same schedule: %s", a)
	}
	if a.Fired() != 0 {
		t.Fatalf("unarmed schedule reports %d fired faults", a.Fired())
	}
}
