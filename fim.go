// Package fim is the public API of this repository: closed frequent item
// set mining by intersecting transactions, reproducing
//
//	C. Borgelt, X. Yang, R. Nogales-Cadenas, P. Carmona-Sáez,
//	A. Pascual-Montano: "Finding Closed Frequent Item Sets by
//	Intersecting Transactions", EDBT 2011.
//
// The package exposes the paper's two intersection algorithms — IsTa
// (cumulative intersection with a prefix tree repository) and Carpenter
// (transaction set enumeration, list- and table-based) — together with
// the enumeration baselines the paper compares against (FP-growth /
// FP-close, LCM, Eclat, Apriori), the flat cumulative baseline, synthetic
// workload generators shaped like the paper's data sets, and association
// rule induction from closed item sets.
//
// Quick start:
//
//	db := fim.NewDatabase([][]int{{0, 1, 2}, {0, 2}, {1, 2}})
//	patterns, err := fim.MineClosed(db, 2) // IsTa, minimum support 2
//
// All mining functions report absolute supports and accept any database
// produced by NewDatabase, ReadFile or the generators. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for the reproduced evaluation.
package fim

import (
	"fmt"
	"io"

	"repro/internal/apriori"
	"repro/internal/carpenter"
	"repro/internal/cobbler"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eclat"
	"repro/internal/fpgrowth"
	"repro/internal/itemset"
	"repro/internal/lcm"
	"repro/internal/naive"
	"repro/internal/parallel"
	"repro/internal/result"
	"repro/internal/rules"
	"repro/internal/sam"
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Item is an item code.
	Item = itemset.Item
	// ItemSet is a canonical (strictly ascending) set of item codes.
	ItemSet = itemset.Set
	// Database is a transaction database.
	Database = dataset.Database
	// Pattern is a mined item set with its absolute support.
	Pattern = result.Pattern
	// ResultSet is a collected, comparable set of patterns.
	ResultSet = result.Set
	// Reporter receives patterns as they are mined.
	Reporter = result.Reporter
	// ReporterFunc adapts a function to Reporter.
	ReporterFunc = result.ReporterFunc
	// Rule is an association rule derived from closed item sets.
	Rule = rules.Rule
)

// Algorithm names a mining algorithm.
type Algorithm string

// The available algorithms. IsTa is the paper's primary contribution and
// the default.
const (
	IsTa           Algorithm = "ista"            // §3.2-3.4: cumulative intersection, prefix tree
	CarpenterTable Algorithm = "carpenter-table" // §3.1.2: transaction set enumeration, matrix
	CarpenterLists Algorithm = "carpenter-lists" // §3.1.1: transaction set enumeration, tid lists
	FPClose        Algorithm = "fpclose"         // FP-growth, closed output (Grahne & Zhu)
	LCM            Algorithm = "lcm"             // ppc-extension closed miner (Uno et al.)
	EclatClosed    Algorithm = "eclat"           // Eclat with closed output (Zaki et al.)
	Cobbler        Algorithm = "cobbler"         // combined column/row enumeration (Pan et al.)
	SaM            Algorithm = "sam"             // split-and-merge (Borgelt & Wang), closed via filter
	FlatCumulative Algorithm = "flat"            // Mielikäinen's flat cumulative scheme
)

// Algorithms lists the closed-set mining algorithms in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{IsTa, CarpenterTable, CarpenterLists, Cobbler, FPClose, LCM, EclatClosed, SaM, FlatCumulative}
}

// Options configures Mine.
type Options struct {
	// MinSupport is the absolute minimum support (number of
	// transactions); values below 1 act as 1.
	MinSupport int
	// Algorithm selects the miner; empty selects IsTa.
	Algorithm Algorithm
	// Done, when closed, cancels the run; Mine returns an error and the
	// already reported patterns form an incomplete prefix of the result.
	Done <-chan struct{}
	// Parallelism selects the number of worker goroutines for the
	// algorithms with a parallel engine (IsTa and CarpenterTable): 0 or 1
	// run the sequential miner unchanged, n >= 2 runs n workers, and
	// negative values use runtime.GOMAXPROCS(0). The parallel engines
	// report exactly the pattern set of the sequential run in a
	// deterministic order (see internal/parallel). Other algorithms
	// ignore the field and always run sequentially.
	Parallelism int
}

// Mine streams the closed frequent item sets of db into rep using the
// selected algorithm. All algorithms produce the identical pattern set
// (the test suite cross-checks them); they differ in performance
// characteristics — see DESIGN.md and the fimbench tool.
func Mine(db *Database, opts Options, rep Reporter) error {
	par := opts.Parallelism < 0 || opts.Parallelism >= 2
	switch opts.Algorithm {
	case IsTa, "":
		if par {
			return parallel.MineIsTa(db, parallel.Options{
				MinSupport: opts.MinSupport, Workers: opts.Parallelism, Done: opts.Done,
			}, rep)
		}
		return core.Mine(db, core.Options{MinSupport: opts.MinSupport, Done: opts.Done}, rep)
	case CarpenterTable:
		if par {
			return parallel.MineCarpenterTable(db, parallel.Options{
				MinSupport: opts.MinSupport, Workers: opts.Parallelism, Done: opts.Done,
			}, rep)
		}
		return carpenter.Mine(db, carpenter.Options{
			MinSupport: opts.MinSupport, Variant: carpenter.Table, Done: opts.Done,
		}, rep)
	case CarpenterLists:
		return carpenter.Mine(db, carpenter.Options{
			MinSupport: opts.MinSupport, Variant: carpenter.Lists, Done: opts.Done,
		}, rep)
	case FPClose:
		return fpgrowth.Mine(db, fpgrowth.Options{
			MinSupport: opts.MinSupport, Target: fpgrowth.Closed, Done: opts.Done,
		}, rep)
	case LCM:
		return lcm.Mine(db, lcm.Options{MinSupport: opts.MinSupport, Done: opts.Done}, rep)
	case EclatClosed:
		return eclat.Mine(db, eclat.Options{
			MinSupport: opts.MinSupport, Target: eclat.Closed, Done: opts.Done,
		}, rep)
	case Cobbler:
		return cobbler.Mine(db, cobbler.Options{
			MinSupport: opts.MinSupport, Done: opts.Done,
		}, rep)
	case SaM:
		return sam.Mine(db, sam.Options{
			MinSupport: opts.MinSupport, Target: sam.Closed, Done: opts.Done,
		}, rep)
	case FlatCumulative:
		return naive.FlatCumulative(db, naive.FlatOptions{
			MinSupport: opts.MinSupport, Done: opts.Done,
		}, rep)
	}
	return fmt.Errorf("fim: unknown algorithm %q", opts.Algorithm)
}

// MineClosed mines the closed frequent item sets of db with IsTa and
// returns them in canonical order.
func MineClosed(db *Database, minSupport int) (*ResultSet, error) {
	var out ResultSet
	if err := Mine(db, Options{MinSupport: minSupport}, out.Collect()); err != nil {
		return nil, err
	}
	out.Sort()
	return &out, nil
}

// MineParallel mines the closed frequent item sets of db with the
// parallel IsTa engine on the given number of workers (values < 1 select
// runtime.GOMAXPROCS(0)) and returns them in canonical order — the same
// patterns MineClosed returns, mined on multiple cores.
func MineParallel(db *Database, minSupport, workers int) (*ResultSet, error) {
	if workers == 0 {
		workers = -1 // Options.Parallelism uses 0 for "sequential"
	}
	var out ResultSet
	if err := Mine(db, Options{MinSupport: minSupport, Parallelism: workers}, out.Collect()); err != nil {
		return nil, err
	}
	out.Sort()
	return &out, nil
}

// MineAll mines every frequent item set (not only closed ones) with
// FP-growth and returns them in canonical order. The output can be
// exponentially larger than MineClosed's (§2.3 of the paper).
func MineAll(db *Database, minSupport int) (*ResultSet, error) {
	var out ResultSet
	err := fpgrowth.Mine(db, fpgrowth.Options{MinSupport: minSupport, Target: fpgrowth.All}, out.Collect())
	if err != nil {
		return nil, err
	}
	out.Sort()
	return &out, nil
}

// MineMaximal mines the maximal frequent item sets (closed sets without a
// frequent proper superset) and returns them in canonical order.
func MineMaximal(db *Database, minSupport int) (*ResultSet, error) {
	var out ResultSet
	err := eclat.Mine(db, eclat.Options{MinSupport: minSupport, Target: eclat.Maximal}, out.Collect())
	if err != nil {
		return nil, err
	}
	out.Sort()
	return &out, nil
}

// MineApriori mines every frequent item set with the classic level-wise
// Apriori algorithm. It exists mainly for didactic comparison; prefer
// MineAll for real use.
func MineApriori(db *Database, minSupport int) (*ResultSet, error) {
	var out ResultSet
	err := apriori.Mine(db, apriori.Options{MinSupport: minSupport, Target: apriori.All}, out.Collect())
	if err != nil {
		return nil, err
	}
	out.Sort()
	return &out, nil
}

// NewDatabase builds a database from rows of item codes. Rows are
// canonicalized (sorted, duplicates dropped); the item universe is the
// smallest one containing every item.
func NewDatabase(rows [][]int) *Database {
	trans := make([]ItemSet, len(rows))
	for i, r := range rows {
		trans[i] = itemset.FromInts(r...)
	}
	return dataset.New(trans, 0)
}

// NewItemSet builds a canonical item set from item codes.
func NewItemSet(items ...int) ItemSet { return itemset.FromInts(items...) }

// ReadFile loads a transaction database in FIMI format (one transaction
// per line, whitespace-separated items — numeric codes or names).
func ReadFile(path string) (*Database, error) { return dataset.ReadFile(path) }

// WriteFile stores a database in FIMI format.
func WriteFile(path string, db *Database) error { return dataset.WriteFile(path, db) }

// Read parses a FIMI-format database from r.
func Read(r io.Reader) (*Database, error) { return dataset.Read(r) }

// Write renders db in FIMI format to w.
func Write(w io.Writer, db *Database) error { return dataset.Write(w, db) }

// Transpose exchanges the roles of items and transactions (§4 of the
// paper: the gene-expression duality).
func Transpose(db *Database) *Database { return db.Transpose() }

// Support counts the transactions of db containing items.
func Support(db *Database, items ItemSet) int { return result.Support(db, items) }

// IsClosed reports whether items equals the intersection of all
// transactions of db containing it (§2.4).
func IsClosed(db *Database, items ItemSet) bool { return result.IsClosed(db, items) }

// IncrementalMiner is an online closed item set miner: transactions are
// added one at a time (e.g. as they arrive on a stream) and the closed
// frequent item sets of everything seen so far can be queried at any
// moment, at any support threshold. It is a direct consequence of the
// paper's cumulative intersection scheme (§3.2); see
// internal/core.Incremental for the trade-offs against batch mining.
type IncrementalMiner = core.Incremental

// NewIncrementalMiner returns an online miner over item codes
// 0..items-1.
func NewIncrementalMiner(items int) *IncrementalMiner {
	return core.NewIncremental(items)
}

// RuleOptions configures association rule induction.
type RuleOptions = rules.Options

// Rules induces association rules from closed frequent patterns (closed
// sets preserve all support information, §2.3). total is the number of
// transactions in the mined database.
func Rules(closed *ResultSet, total int, opts RuleOptions) []Rule {
	return rules.FromClosed(closed, total, opts)
}

// SupportIndex answers support queries for arbitrary item sets from a
// mined closed collection: the support of any frequent item set is the
// maximum support of the closed sets containing it (§2.3).
type SupportIndex = rules.Index

// NewSupportIndex builds a support index over closed patterns mined from
// a database with total transactions.
func NewSupportIndex(closed *ResultSet, total int) *SupportIndex {
	return rules.NewIndex(closed, total)
}
