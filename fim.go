// Package fim is the public API of this repository: closed frequent item
// set mining by intersecting transactions, reproducing
//
//	C. Borgelt, X. Yang, R. Nogales-Cadenas, P. Carmona-Sáez,
//	A. Pascual-Montano: "Finding Closed Frequent Item Sets by
//	Intersecting Transactions", EDBT 2011.
//
// The package exposes the paper's two intersection algorithms — IsTa
// (cumulative intersection with a prefix tree repository) and Carpenter
// (transaction set enumeration, list- and table-based) — together with
// the enumeration baselines the paper compares against (FP-growth /
// FP-close, LCM, Eclat, Apriori), the flat cumulative baseline, synthetic
// workload generators shaped like the paper's data sets, and association
// rule induction from closed item sets.
//
// Quick start:
//
//	db := fim.NewDatabase([][]int{{0, 1, 2}, {0, 2}, {1, 2}})
//	patterns, err := fim.MineClosed(db, 2) // IsTa, minimum support 2
//
// All mining functions report absolute supports and accept any database
// produced by NewDatabase, ReadFile or the generators. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for the reproduced evaluation.
package fim

import (
	"context"
	"errors"
	"io"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/result"
	"repro/internal/retry"
	"repro/internal/rules"
	"repro/internal/txdb"
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Item is an item code.
	Item = itemset.Item
	// ItemSet is a canonical (strictly ascending) set of item codes.
	ItemSet = itemset.Set
	// Database is the row-oriented transaction database of the I/O layer
	// (FIMI reading/writing, item names). It implements Source, so it can
	// be passed to every mining function; internally the miners convert it
	// once into the flat columnar representation.
	Database = dataset.Database
	// Source is any transaction database representation the miners
	// accept: a *Database, a *Columnar store, or any other implementation
	// of the minimal read-only contract (NumItems/NumTx/Tx/Weight).
	Source = txdb.Source
	// Columnar is the flat, immutable columnar transaction store every
	// miner runs on (see DESIGN.md §5g): one items array, one offsets
	// array, optional row weights. The generators produce it directly,
	// and the parallel engines shard it zero-copy.
	Columnar = txdb.DB
	// Pattern is a mined item set with its absolute support.
	Pattern = result.Pattern
	// ResultSet is a collected, comparable set of patterns.
	ResultSet = result.Set
	// Reporter receives patterns as they are mined.
	Reporter = result.Reporter
	// ReporterFunc adapts a function to Reporter.
	ReporterFunc = result.ReporterFunc
	// Rule is an association rule derived from closed item sets.
	Rule = rules.Rule
)

// Algorithm names a mining algorithm.
type Algorithm string

// The available algorithms. IsTa is the paper's primary contribution and
// the default. The set of valid names is defined by the engine registry
// (each algorithm package registers itself); these constants cover the
// built-in miners.
const (
	IsTa           Algorithm = "ista"            // §3.2-3.4: cumulative intersection, prefix tree
	CarpenterTable Algorithm = "carpenter-table" // §3.1.2: transaction set enumeration, matrix
	CarpenterLists Algorithm = "carpenter-lists" // §3.1.1: transaction set enumeration, tid lists
	FPClose        Algorithm = "fpclose"         // FP-growth, closed output (Grahne & Zhu)
	LCM            Algorithm = "lcm"             // ppc-extension closed miner (Uno et al.)
	EclatClosed    Algorithm = "eclat"           // Eclat with closed output (Zaki et al.)
	Cobbler        Algorithm = "cobbler"         // combined column/row enumeration (Pan et al.)
	SaM            Algorithm = "sam"             // split-and-merge (Borgelt & Wang), closed via filter
	FlatCumulative Algorithm = "flat"            // Mielikäinen's flat cumulative scheme
	Apriori        Algorithm = "apriori"         // level-wise candidate generation (Agrawal & Srikant)
)

// Algorithms lists the registered mining algorithms in presentation
// order (the paper's contributions first).
func Algorithms() []Algorithm {
	names := engine.Names()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm(n)
	}
	return out
}

// Target selects which family of frequent item sets Mine reports. The
// zero value is TargetClosed.
type Target = engine.Target

// The available targets. Not every algorithm supports every target; see
// AlgorithmInfo.Targets.
const (
	// TargetClosed mines the closed frequent item sets (the default).
	TargetClosed = engine.Closed
	// TargetAll mines every frequent item set.
	TargetAll = engine.All
	// TargetMaximal mines the maximal frequent item sets.
	TargetMaximal = engine.Maximal
)

// MiningStats carries per-run observability: pattern counts, operation
// and budget-check counters, repository peak size, and prep/mine timings.
type MiningStats = engine.Stats

// ProgressEvent is one rate-limited progress snapshot of a running mine:
// the elapsed wall clock and the counters at the moment of the snapshot.
// Snapshots are monotone (each counter is ≥ its value in the previous
// event of the run) and the final event — marked Final — agrees exactly
// with the run's MiningStats. See DESIGN.md §5e.
type ProgressEvent = obs.Progress

// SpanEvent is one completed run phase (prep, mine, merge, …) with its
// duration and the counter values at its end. See DESIGN.md §5e.
type SpanEvent = obs.Span

// AlgorithmInfo describes one registered algorithm.
type AlgorithmInfo struct {
	// Name is the Algorithm value to pass in Options.
	Name Algorithm
	// Doc is a one-line description.
	Doc string
	// Targets lists the supported targets.
	Targets []Target
	// Parallel reports whether a parallel engine is registered.
	Parallel bool
}

// AlgorithmInfos describes the registered algorithms in presentation
// order, for generated help texts and tables.
func AlgorithmInfos() []AlgorithmInfo {
	regs := engine.Registrations()
	out := make([]AlgorithmInfo, len(regs))
	for i, r := range regs {
		out[i] = AlgorithmInfo{
			Name:     Algorithm(r.Name),
			Doc:      r.Doc,
			Targets:  append([]Target(nil), r.Targets...),
			Parallel: r.Parallelizable(),
		}
	}
	return out
}

// Partial-result errors. A mining run that stops early — canceled,
// deadline exceeded, or budget exhausted — returns one of these typed
// errors (match with errors.Is), and the patterns already reported form a
// valid prefix of the full result: every reported pattern is a genuinely
// closed frequent item set with its exact support, only the tail of the
// enumeration is missing. See DESIGN.md §5b for the failure model.
var (
	// ErrCanceled reports cancellation through Options.Done (or a
	// Context without its own error).
	ErrCanceled = mining.ErrCanceled
	// ErrDeadline reports that Options.Deadline (or the Context's
	// deadline) passed before the run finished.
	ErrDeadline = guard.ErrDeadline
	// ErrBudget reports that Options.MaxPatterns or Options.MaxTreeNodes
	// was exhausted; the returned error wraps ErrBudget with the specific
	// bound.
	ErrBudget = guard.ErrBudget
)

// PanicError is the error Mine returns when the selected miner — or a
// Reporter callback — panicked: the panic is recovered, all worker
// goroutines are drained, and the recovered value plus the panicking
// goroutine's stack are carried in the error. Match with errors.As.
type PanicError = guard.PanicError

// RetryPolicy configures the self-healing supervisor: how many times a
// failed work unit (a parallel shard, a durable-store I/O step) is
// re-attempted and with what backoff. The zero value disables retries —
// the first failure is final, today's fail-stop behavior. See DESIGN.md
// §5f for the self-healing model.
type RetryPolicy = retry.Policy

// ErrPartial is wrapped by every degraded-mode result: a parallel run
// whose failed shards exhausted their retry budget returns a
// *PartialError (which wraps ErrPartial) while the patterns already
// reported remain sound — every reported pattern is genuinely closed in
// the full database and its reported support is a lower bound of (and
// the guarantee threshold for) the true support. Match with errors.Is.
var ErrPartial = engine.ErrPartial

// PartialError reports a degraded parallel run: the shards that were
// abandoned after retry exhaustion, each with its per-shard cause.
// The run's output covers every shard not listed. Match with errors.As.
type PartialError = engine.PartialError

// ShardError is one abandoned work unit inside a PartialError.
type ShardError = engine.ShardError

// Options configures Mine.
type Options struct {
	// MinSupport is the absolute minimum support (number of
	// transactions); values below 1 act as 1.
	MinSupport int
	// Algorithm selects the miner; empty selects IsTa.
	Algorithm Algorithm
	// Target selects what is mined: closed sets (default), all frequent
	// sets, or maximal sets. Mine fails with an error wrapping
	// ErrUnsupportedTarget if the selected algorithm did not declare the
	// target.
	Target Target
	// Stats, when non-nil, is overwritten with per-run statistics
	// (pattern count, operation counters, repository peak, prep and mine
	// timings). Collecting them costs a few atomic updates per budget
	// check, nothing per pattern-search step.
	Stats *MiningStats
	// Done, when closed, cancels the run; Mine returns an error and the
	// already reported patterns form an incomplete prefix of the result.
	Done <-chan struct{}
	// Context, when non-nil, cancels the run when the context is done;
	// Mine then returns the context's error (context.Canceled or
	// context.DeadlineExceeded). A context deadline is additionally
	// enforced through the budget checks, in which case it surfaces as
	// ErrDeadline. May be combined with Done.
	Context context.Context
	// Deadline, when non-zero, bounds the run by wall clock; Mine returns
	// ErrDeadline once it passes, and the already reported patterns form a
	// valid prefix of the result.
	Deadline time.Time
	// MaxPatterns, when positive, caps the number of reported patterns;
	// Mine reports at most MaxPatterns patterns and returns an error
	// wrapping ErrBudget if the cap cut the result off.
	MaxPatterns int
	// MaxTreeNodes, when positive, caps the size of the miner's
	// repository (prefix-tree nodes for IsTa and the flat scheme, stored
	// sets for Carpenter/Cobbler; per worker in a parallel run) to bound
	// memory on dense inputs whose repository would otherwise grow
	// exponentially. Mine returns an error wrapping ErrBudget once the
	// cap is exceeded. Algorithms without a repository (FP-close, LCM,
	// Eclat, SaM, Apriori) ignore the field.
	MaxTreeNodes int
	// Retry, when enabled (MaxAttempts > 0), arms the self-healing
	// supervisor in the parallel engines: a failed shard or branch worker
	// is re-mined sequentially up to MaxAttempts times with jittered
	// exponential backoff, and only when every attempt fails does the run
	// degrade to a *PartialError carrying the per-shard report. The zero
	// value keeps the fail-stop behavior (first worker failure aborts the
	// run). Sequential engines ignore the field — they have no independent
	// work units to re-mine. See DESIGN.md §5f.
	Retry RetryPolicy
	// Parallelism selects the number of worker goroutines for the
	// algorithms with a parallel engine (IsTa and CarpenterTable): 0 or 1
	// run the sequential miner unchanged, n >= 2 runs n workers, and
	// negative values use runtime.GOMAXPROCS(0). The parallel engines
	// report exactly the pattern set of the sequential run in a
	// deterministic order (see internal/parallel). Other algorithms
	// ignore the field and always run sequentially.
	Parallelism int
	// OnProgress, when non-nil, receives rate-limited progress snapshots
	// of the run, including a terminal one with Final set that is
	// delivered before Mine returns (even on cancellation) and agrees
	// exactly with Stats. The callback runs on mining goroutines and must
	// be fast; it must not call back into Mine. Snapshots are fed from
	// the amortized budget-check slow path, so a run without OnProgress,
	// TraceWriter and PublishExpvar pays nothing.
	OnProgress func(ProgressEvent)
	// ProgressInterval is the minimum interval between OnProgress
	// snapshots (the Final one excepted); 0 uses a 200ms default.
	ProgressInterval time.Duration
	// TraceWriter, when non-nil, receives one JSON line per observability
	// event: a span per completed run phase (prep, mine, merge) and every
	// progress snapshot. See DESIGN.md §5e for the schema.
	TraceWriter io.Writer
	// PublishExpvar, when true, publishes the run's counters and phase
	// timings into the process-wide expvar map "fim" (exposed on
	// /debug/vars by net/http's default mux). Later runs overwrite the
	// latest-value metrics and accumulate the per-phase ones.
	PublishExpvar bool
}

// Mine streams the closed frequent item sets of db into rep using the
// selected algorithm. All algorithms produce the identical pattern set
// (the test suite cross-checks them); they differ in performance
// characteristics — see DESIGN.md and the fimbench tool.
//
// Mine is the guarded entry point: cancellation (Done / Context), the
// wall-clock Deadline, and the MaxPatterns / MaxTreeNodes budgets stop
// the run with the corresponding typed error while the already reported
// patterns remain a valid prefix of the result, and a panic anywhere in
// the selected miner or in rep is contained and returned as a
// *PanicError instead of crashing the process.
func Mine(db Source, opts Options, rep Reporter) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = guard.NewPanicError(r)
		}
	}()

	// Fold the context into the done channel and the effective deadline.
	done := opts.Done
	deadline := opts.Deadline
	if ctx := opts.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
		if done == nil {
			done = ctx.Done()
		} else {
			// A done channel closed before the run starts must cancel
			// deterministically (matching the unmerged path, whose first
			// tick polls immediately); the merge goroutine alone could
			// lose that race against a fast run.
			select {
			case <-done:
				return mining.ErrCanceled
			default:
			}
			merged := make(chan struct{})
			stop := make(chan struct{})
			defer close(stop)
			go func(src <-chan struct{}) {
				select {
				case <-ctx.Done():
				case <-src:
				case <-stop:
					return
				}
				close(merged)
			}(done)
			done = merged
		}
	}

	budget := guard.Budget{
		Deadline:     deadline,
		MaxPatterns:  opts.MaxPatterns,
		MaxTreeNodes: opts.MaxTreeNodes,
	}
	var g *guard.Guard
	if budget.Enabled() {
		g = guard.New(budget)
		rep = guard.Limit(g, rep)
	}

	err = mine(db, opts, g, done, rep)

	// Surface the most specific cause. A budget trip can race a (or be
	// reported as a) generic cancellation, and a pattern budget reached on
	// the very last patterns lets the miner finish without error; the
	// guard's latched error is authoritative in both cases. A plain
	// cancellation driven by the context reports the context's error.
	if cause := g.Err(); cause != nil && (err == nil || errors.Is(err, mining.ErrCanceled)) {
		err = cause
	}
	if errors.Is(err, mining.ErrCanceled) && opts.Context != nil && opts.Context.Err() != nil {
		err = opts.Context.Err()
	}
	return err
}

// ErrUnknownAlgorithm is wrapped by Mine's error when Options.Algorithm
// is not a registered name; the error text lists the available names.
var ErrUnknownAlgorithm = engine.ErrUnknownAlgorithm

// ErrUnsupportedTarget is wrapped by Mine's error when the selected
// algorithm did not declare Options.Target.
var ErrUnsupportedTarget = engine.ErrUnsupportedTarget

// mine dispatches to the selected algorithm through the engine registry
// with the resolved done channel and guard.
func mine(db Source, opts Options, g *guard.Guard, done <-chan struct{}, rep Reporter) error {
	name := string(opts.Algorithm)
	if name == "" {
		name = string(IsTa)
	}
	return engine.Run(db, name, engine.Spec{
		MinSupport:    opts.MinSupport,
		Target:        opts.Target,
		Workers:       opts.Parallelism,
		Done:          done,
		Guard:         g,
		Stats:         opts.Stats,
		Sink:          sinkOf(opts),
		ProgressEvery: opts.ProgressInterval,
		Retry:         opts.Retry,
	}, rep)
}

// sinkOf assembles the run's observability sink from the Options surface;
// nil — the atomic-free fast path — when no surface is requested.
func sinkOf(opts Options) obs.Sink {
	var sinks []obs.Sink
	if opts.TraceWriter != nil {
		sinks = append(sinks, obs.NewJSONSink(opts.TraceWriter))
	}
	if opts.OnProgress != nil {
		sinks = append(sinks, obs.ProgressSink(opts.OnProgress))
	}
	if opts.PublishExpvar {
		sinks = append(sinks, obs.NewExpvarSink(""))
	}
	return obs.Multi(sinks...)
}

// MineClosed mines the closed frequent item sets of db with IsTa and
// returns them in canonical order.
func MineClosed(db Source, minSupport int) (*ResultSet, error) {
	var out ResultSet
	if err := Mine(db, Options{MinSupport: minSupport}, out.Collect()); err != nil {
		return nil, err
	}
	out.Sort()
	return &out, nil
}

// MineParallel mines the closed frequent item sets of db with the
// parallel IsTa engine on the given number of workers (values < 1 select
// runtime.GOMAXPROCS(0)) and returns them in canonical order — the same
// patterns MineClosed returns, mined on multiple cores.
func MineParallel(db Source, minSupport, workers int) (*ResultSet, error) {
	if workers == 0 {
		workers = -1 // Options.Parallelism uses 0 for "sequential"
	}
	var out ResultSet
	if err := Mine(db, Options{MinSupport: minSupport, Parallelism: workers}, out.Collect()); err != nil {
		return nil, err
	}
	out.Sort()
	return &out, nil
}

// MineAll mines every frequent item set (not only closed ones) with
// FP-growth and returns them in canonical order. The output can be
// exponentially larger than MineClosed's (§2.3 of the paper).
func MineAll(db Source, minSupport int) (*ResultSet, error) {
	var out ResultSet
	err := Mine(db, Options{MinSupport: minSupport, Algorithm: FPClose, Target: TargetAll}, out.Collect())
	if err != nil {
		return nil, err
	}
	out.Sort()
	return &out, nil
}

// MineMaximal mines the maximal frequent item sets (closed sets without a
// frequent proper superset) and returns them in canonical order.
func MineMaximal(db Source, minSupport int) (*ResultSet, error) {
	var out ResultSet
	err := Mine(db, Options{MinSupport: minSupport, Algorithm: EclatClosed, Target: TargetMaximal}, out.Collect())
	if err != nil {
		return nil, err
	}
	out.Sort()
	return &out, nil
}

// MineApriori mines every frequent item set with the classic level-wise
// Apriori algorithm. It exists mainly for didactic comparison; prefer
// MineAll for real use.
func MineApriori(db Source, minSupport int) (*ResultSet, error) {
	var out ResultSet
	err := Mine(db, Options{MinSupport: minSupport, Algorithm: Apriori, Target: TargetAll}, out.Collect())
	if err != nil {
		return nil, err
	}
	out.Sort()
	return &out, nil
}

// NewDatabase builds a database from rows of item codes. Rows are
// canonicalized (sorted, duplicates dropped); the item universe is the
// smallest one containing every item.
func NewDatabase(rows [][]int) *Database {
	trans := make([]ItemSet, len(rows))
	for i, r := range rows {
		trans[i] = itemset.FromInts(r...)
	}
	return dataset.New(trans, 0)
}

// NewItemSet builds a canonical item set from item codes.
func NewItemSet(items ...int) ItemSet { return itemset.FromInts(items...) }

// ReadFile loads a transaction database in FIMI format (one transaction
// per line, whitespace-separated items — numeric codes or names).
func ReadFile(path string) (*Database, error) { return dataset.ReadFile(path) }

// WriteFile stores a database in FIMI format.
func WriteFile(path string, db Source) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, db); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a FIMI-format database from r.
func Read(r io.Reader) (*Database, error) { return dataset.Read(r) }

// ReadLimits bounds what ReadLimited accepts from untrusted input:
// MaxTxLen caps the items on one line, MaxItems caps the item universe
// (numeric codes and distinct names alike). The zero value imposes no
// bounds. See DESIGN.md §5h for the admission model.
type ReadLimits = dataset.Limits

// ErrInputLimit is wrapped by every error ReadLimited reports for input
// exceeding a configured ReadLimits bound; the concrete *InputLimitError
// names the offending line. Match with errors.Is.
var ErrInputLimit = dataset.ErrLimit

// InputLimitError reports the input line that exceeded a ReadLimits
// bound. Match with errors.As.
type InputLimitError = dataset.LimitError

// ReadLimited parses a FIMI-format database from r, rejecting input that
// exceeds the given admission limits with an error wrapping
// ErrInputLimit. Use it (instead of Read) for untrusted input: a single
// hostile line can otherwise allocate an arbitrarily large transaction
// or item universe.
func ReadLimited(r io.Reader, lim ReadLimits) (*Database, error) {
	return dataset.ReadLimited(r, lim)
}

// ReadFileLimited is ReadFile under the given admission limits.
func ReadFileLimited(path string, lim ReadLimits) (*Database, error) {
	return dataset.ReadFileLimited(path, lim)
}

// Write renders db in FIMI format to w. A *Database with a name table is
// written with item names; every other source is written with numeric
// codes, each row repeated per its weight so the multiset round-trips.
func Write(w io.Writer, db Source) error {
	if d, ok := db.(*Database); ok {
		return dataset.Write(w, d)
	}
	return dataset.WriteSource(w, db)
}

// Transpose exchanges the roles of items and transactions (§4 of the
// paper: the gene-expression duality).
func Transpose(db Source) *Columnar { return txdb.FromSource(db).Transpose() }

// Support counts the transactions of db containing items.
func Support(db Source, items ItemSet) int { return result.Support(db, items) }

// IsClosed reports whether items equals the intersection of all
// transactions of db containing it (§2.4).
func IsClosed(db Source, items ItemSet) bool { return result.IsClosed(db, items) }

// RuleOptions configures association rule induction.
type RuleOptions = rules.Options

// Rules induces association rules from closed frequent patterns (closed
// sets preserve all support information, §2.3). total is the number of
// transactions in the mined database.
func Rules(closed *ResultSet, total int, opts RuleOptions) []Rule {
	return rules.FromClosed(closed, total, opts)
}

// SupportIndex answers support queries for arbitrary item sets from a
// mined closed collection: the support of any frequent item set is the
// maximum support of the closed sets containing it (§2.3).
type SupportIndex = rules.Index

// NewSupportIndex builds a support index over closed patterns mined from
// a database with total transactions.
func NewSupportIndex(closed *ResultSet, total int) *SupportIndex {
	return rules.NewIndex(closed, total)
}
