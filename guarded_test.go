package fim

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// guardDB returns a deterministic database dense enough that every
// algorithm performs many cooperative tick checks, grows a non-trivial
// repository, and reports well over the budgets the conformance suite
// imposes.
func guardDB() *Database {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]int, 48)
	for i := range rows {
		n := 4 + rng.Intn(5)
		row := make([]int, 0, n)
		seen := make(map[int]bool)
		for len(row) < n {
			it := rng.Intn(14)
			if !seen[it] {
				seen[it] = true
				row = append(row, it)
			}
		}
		rows[i] = row
	}
	return NewDatabase(rows)
}

// guardCases enumerates every registered algorithm (via the engine
// registry, so newly registered miners are covered automatically), plus
// the parallel engines at four workers (their sequential fallback is
// covered by the plain runs).
type guardCase struct {
	name string
	algo Algorithm
	par  int
}

func guardCases() []guardCase {
	var cases []guardCase
	for _, a := range Algorithms() {
		cases = append(cases, guardCase{name: string(a), algo: a})
	}
	cases = append(cases,
		guardCase{name: "ista-parallel", algo: IsTa, par: 4},
		guardCase{name: "carpenter-table-parallel", algo: CarpenterTable, par: 4},
	)
	return cases
}

// assertPrefix checks the partial-result contract: every reported pattern
// must appear in the full sequential result with the exact same support.
func assertPrefix(t *testing.T, ref, got *ResultSet) {
	t.Helper()
	refm := make(map[string]int, ref.Len())
	for _, p := range ref.Patterns {
		refm[p.Items.Key()] = p.Support
	}
	for _, p := range got.Patterns {
		supp, ok := refm[p.Items.Key()]
		if !ok {
			t.Errorf("partial result contains %v, which is not in the full result", p)
		} else if supp != p.Support {
			t.Errorf("partial result reports %v with support %d, full result has %d", p.Items, p.Support, supp)
		}
	}
}

// TestGuardedConformance drives every algorithm through the injected
// faults of internal/faultinject and asserts the failure model of
// DESIGN.md §5b: the documented typed error, a valid prefix of the
// sequential result, and no leaked goroutines.
func TestGuardedConformance(t *testing.T) {
	db := guardDB()
	const minsup = 2
	ref, err := MineClosed(db, minsup)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Len() < 32 {
		t.Fatalf("conformance database too easy: only %d closed sets", ref.Len())
	}

	for _, tc := range guardCases() {
		opts := Options{MinSupport: minsup, Algorithm: tc.algo, Parallelism: tc.par}

		t.Run(tc.name+"/reporter-panic", func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			var got ResultSet
			err := Mine(db, opts, faultinject.FailingReporter(3, got.Collect()))
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("error = %v, want *PanicError", err)
			}
			if _, ok := pe.Value.(faultinject.ReporterFault); !ok {
				t.Fatalf("contained panic value = %#v, want ReporterFault", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Error("PanicError carries no stack")
			}
			if got.Len() != 2 {
				t.Errorf("reported %d patterns before the fault, want 2", got.Len())
			}
			assertPrefix(t, ref, &got)
		})

		t.Run(tc.name+"/reporter-flaky", func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			var got ResultSet
			if err := Mine(db, opts, faultinject.FlakyReporter(3, got.Collect())); err != nil {
				t.Fatalf("a lossy reporter must not fail the run: %v", err)
			}
			if got.Len() != ref.Len()-ref.Len()/3 {
				t.Errorf("flaky reporter kept %d of %d patterns, want %d", got.Len(), ref.Len(), ref.Len()-ref.Len()/3)
			}
			assertPrefix(t, ref, &got)
		})

		t.Run(tc.name+"/worker-panic-at-tick", func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			restore := faultinject.PanicAtTick(10)
			defer restore()
			var got ResultSet
			err := Mine(db, opts, got.Collect())
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("error = %v, want *PanicError", err)
			}
			if _, ok := pe.Value.(faultinject.TickFault); !ok {
				t.Fatalf("contained panic value = %#v, want TickFault", pe.Value)
			}
			assertPrefix(t, ref, &got)
		})

		t.Run(tc.name+"/deadline-at-tick", func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			restore := faultinject.DeadlineAtTick(10)
			defer restore()
			var got ResultSet
			err := Mine(db, opts, got.Collect())
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("error = %v, want ErrDeadline", err)
			}
			assertPrefix(t, ref, &got)
		})

		t.Run(tc.name+"/deadline-expired", func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			var got ResultSet
			err := Mine(db, Options{
				MinSupport: minsup, Algorithm: tc.algo, Parallelism: tc.par,
				Deadline: time.Now().Add(-time.Second),
			}, got.Collect())
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("error = %v, want ErrDeadline", err)
			}
			assertPrefix(t, ref, &got)
		})

		t.Run(tc.name+"/pattern-budget", func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			max := ref.Len() / 2
			var got ResultSet
			err := Mine(db, Options{
				MinSupport: minsup, Algorithm: tc.algo, Parallelism: tc.par,
				MaxPatterns: max,
			}, got.Collect())
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("error = %v, want ErrBudget", err)
			}
			if got.Len() != max {
				t.Errorf("reported %d patterns, want exactly the budget %d", got.Len(), max)
			}
			assertPrefix(t, ref, &got)
		})

		t.Run(tc.name+"/pattern-budget-not-hit", func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			var got ResultSet
			err := Mine(db, Options{
				MinSupport: minsup, Algorithm: tc.algo, Parallelism: tc.par,
				MaxPatterns: ref.Len(),
			}, got.Collect())
			if err != nil {
				t.Fatalf("budget exactly equal to the result size must not trip: %v", err)
			}
			if !got.Equal(ref) {
				t.Errorf("guarded run with untripped budget differs:\n%s", got.Diff(ref, 10))
			}
		})

		t.Run(tc.name+"/context-canceled", func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			var got ResultSet
			err := Mine(db, Options{
				MinSupport: minsup, Algorithm: tc.algo, Parallelism: tc.par,
				Context: ctx,
			}, got.Collect())
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error = %v, want context.Canceled", err)
			}
			assertPrefix(t, ref, &got)
		})
	}
}

// TestGuardedNodeBudget covers MaxTreeNodes for the repository-based
// miners (the enumeration baselines have no repository and ignore it).
func TestGuardedNodeBudget(t *testing.T) {
	db := guardDB()
	const minsup = 2
	ref, err := MineClosed(db, minsup)
	if err != nil {
		t.Fatal(err)
	}
	cases := []guardCase{
		{name: "ista", algo: IsTa},
		{name: "ista-parallel", algo: IsTa, par: 4},
		{name: "carpenter-table", algo: CarpenterTable},
		{name: "carpenter-table-parallel", algo: CarpenterTable, par: 4},
		{name: "carpenter-lists", algo: CarpenterLists},
		{name: "cobbler", algo: Cobbler},
		{name: "flat", algo: FlatCumulative},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			var got ResultSet
			err := Mine(db, Options{
				MinSupport: minsup, Algorithm: tc.algo, Parallelism: tc.par,
				MaxTreeNodes: 8,
			}, got.Collect())
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("error = %v, want ErrBudget", err)
			}
			assertPrefix(t, ref, &got)
		})
	}
}

// TestGuardedTreePanic injects a panic into prefix-tree node allocation;
// for the parallel engine the panic fires inside a shard worker.
func TestGuardedTreePanic(t *testing.T) {
	db := guardDB()
	ref, err := MineClosed(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 4} {
		name := "sequential"
		if par > 1 {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			restore := faultinject.PanicAtTreeNode(24)
			defer restore()
			var got ResultSet
			err := Mine(db, Options{MinSupport: 2, Parallelism: par}, got.Collect())
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("error = %v, want *PanicError", err)
			}
			if _, ok := pe.Value.(faultinject.TreeFault); !ok {
				t.Fatalf("contained panic value = %#v, want TreeFault", pe.Value)
			}
			assertPrefix(t, ref, &got)
		})
	}
}

// TestGuardedContextAndDone exercises the merged cancellation path (both
// Context and Done set) and checks the merge goroutine does not leak.
func TestGuardedContextAndDone(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	db := guardDB()

	// Neither fires: the run completes and the merge goroutine is reaped.
	ctx := context.Background()
	done := make(chan struct{})
	var got ResultSet
	if err := Mine(db, Options{MinSupport: 2, Context: ctx, Done: done}, got.Collect()); err != nil {
		t.Fatal(err)
	}

	// The done channel fires: ErrCanceled, not a context error.
	closed := make(chan struct{})
	close(closed)
	err := Mine(db, Options{MinSupport: 2, Context: context.Background(), Done: closed},
		ReporterFunc(func(ItemSet, int) {}))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error = %v, want ErrCanceled", err)
	}
}

// TestGuardedDeadlineVsContext: an Options.Deadline earlier than the
// context's own deadline must surface as ErrDeadline.
func TestGuardedDeadlineVsContext(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	db := guardDB()
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	err := Mine(db, Options{
		MinSupport: 2, Context: ctx, Deadline: time.Now().Add(-time.Second),
	}, ReporterFunc(func(ItemSet, int) {}))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("error = %v, want ErrDeadline", err)
	}
}
