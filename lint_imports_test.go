package fim

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// algorithmPackages are the import paths only the engine layer (and the
// bench harness, for its ablations) may depend on. The public API and
// the command line tools go through the engine registry instead, so that
// adding or removing a miner never touches them; register.go is the one
// sanctioned linking point (blank imports only).
var algorithmPackages = map[string]bool{
	"repro/internal/apriori":   true,
	"repro/internal/carpenter": true,
	"repro/internal/cobbler":   true,
	"repro/internal/core":      true,
	"repro/internal/eclat":     true,
	"repro/internal/fpgrowth":  true,
	"repro/internal/lcm":       true,
	"repro/internal/naive":     true,
	"repro/internal/parallel":  true,
	"repro/internal/sam":       true,
}

// TestNoDirectAlgorithmImports enforces the registry architecture:
// fim.go and everything under cmd/ must not import algorithm packages
// directly — dispatch goes through internal/engine. (incremental.go
// carries the one deliberate exception, the core.Incremental re-export,
// and register.go links the miners with blank imports.)
func TestNoDirectAlgorithmImports(t *testing.T) {
	files := []string{"fim.go"}
	err := filepath.Walk("cmd", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatal("lint found no cmd/ sources — wrong working directory?")
	}
	fset := token.NewFileSet()
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if algorithmPackages[ip] {
				t.Errorf("%s imports %s directly; dispatch through the engine registry instead", path, ip)
			}
		}
	}
}

// TestTxdbLayering enforces the columnar store's position at the bottom
// of the package DAG. Three rules keep the representation truly shared:
//
//  1. internal/tidset is a leaf: it may import nothing of this module at
//     all (it sits next to internal/itemset), so every layer — txdb,
//     miners, parallel engines — can share one kernel implementation.
//  2. internal/txdb may import nothing of this module above
//     internal/itemset and internal/tidset — it must stay usable from
//     every layer without dragging in miners, prep, or I/O.
//  3. Algorithm packages consume transactions through txdb (or the
//     Source interface) only; importing internal/dataset from non-test
//     code would re-couple miners to the row-oriented I/O layer that the
//     columnar refactor removed. They may use tidset directly (shared
//     kernels are the point), which rule 1 keeps cycle-free.
func TestTxdbLayering(t *testing.T) {
	checkImports := func(dir string, allowed func(ip string) bool, hint string) {
		t.Helper()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(ip, "repro/") && !allowed(ip) {
					t.Errorf("%s imports %s; %s", path, ip, hint)
				}
			}
		}
	}

	checkImports("internal/tidset",
		func(ip string) bool { return false },
		"tidset is a leaf package and may not import anything of this module")

	checkImports("internal/txdb",
		func(ip string) bool {
			return ip == "repro/internal/itemset" || ip == "repro/internal/tidset"
		},
		"txdb sits at the bottom of the DAG and may only use internal/itemset and internal/tidset")

	for pkg := range algorithmPackages {
		dir := filepath.Join("internal", filepath.Base(pkg))
		checkImports(dir,
			func(ip string) bool { return ip != "repro/internal/dataset" },
			"miners consume transactions via internal/txdb, not the dataset I/O layer")
	}
}
