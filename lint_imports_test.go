package fim

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// algorithmPackages are the import paths only the engine layer (and the
// bench harness, for its ablations) may depend on. The public API and
// the command line tools go through the engine registry instead, so that
// adding or removing a miner never touches them; register.go is the one
// sanctioned linking point (blank imports only).
var algorithmPackages = map[string]bool{
	"repro/internal/apriori":   true,
	"repro/internal/carpenter": true,
	"repro/internal/cobbler":   true,
	"repro/internal/core":      true,
	"repro/internal/eclat":     true,
	"repro/internal/fpgrowth":  true,
	"repro/internal/lcm":       true,
	"repro/internal/naive":     true,
	"repro/internal/parallel":  true,
	"repro/internal/sam":       true,
}

// TestNoDirectAlgorithmImports enforces the registry architecture:
// fim.go and everything under cmd/ must not import algorithm packages
// directly — dispatch goes through internal/engine. (incremental.go
// carries the one deliberate exception, the core.Incremental re-export,
// and register.go links the miners with blank imports.)
func TestNoDirectAlgorithmImports(t *testing.T) {
	files := []string{"fim.go"}
	err := filepath.Walk("cmd", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatal("lint found no cmd/ sources — wrong working directory?")
	}
	fset := token.NewFileSet()
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if algorithmPackages[ip] {
				t.Errorf("%s imports %s directly; dispatch through the engine registry instead", path, ip)
			}
		}
	}
}
