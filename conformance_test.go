// Registry-driven conformance suite: every registered miner is checked
// against the brute-force oracles of internal/naive on randomized small
// databases, once per target it declares, plus its parallel engine where
// one is registered. This replaces the per-package oracle cross-checks
// the algorithm packages used to copy from each other — a newly
// registered algorithm is covered automatically.
package fim

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/result"
	"repro/internal/txdb"
)

// conformanceDB builds a small random database within the oracle limits.
func conformanceDB(rng *rand.Rand) *Database {
	items := 2 + rng.Intn(9)
	n := 1 + rng.Intn(13)
	density := 0.1 + rng.Float64()*0.6
	rows := make([][]int, n)
	for k := range rows {
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				rows[k] = append(rows[k], i)
			}
		}
	}
	return NewDatabase(rows)
}

// oracle computes the expected pattern set for a target with the naive
// brute-force enumerations (transaction subsets for closed, item subsets
// for all, closed + subset filtering for maximal).
func oracle(t *testing.T, db *dataset.Database, target Target, minsup int) *ResultSet {
	t.Helper()
	switch target {
	case TargetClosed:
		want, err := naive.ClosedByTransactionSubsets(db, minsup)
		if err != nil {
			t.Fatal(err)
		}
		return want
	case TargetAll:
		want, err := naive.FrequentByItemSubsets(db, minsup)
		if err != nil {
			t.Fatal(err)
		}
		return want
	case TargetMaximal:
		closed, err := naive.ClosedByTransactionSubsets(db, minsup)
		if err != nil {
			t.Fatal(err)
		}
		return result.FilterMaximal(closed)
	}
	t.Fatalf("oracle: unknown target %v", target)
	return nil
}

// TestConformance runs every registered miner against the oracles, once
// per declared target, on randomized databases.
func TestConformance(t *testing.T) {
	for _, info := range AlgorithmInfos() {
		info := info
		t.Run(string(info.Name), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(info.Name)) * 7919))
			trials := 60
			if testing.Short() {
				trials = 15
			}
			for trial := 0; trial < trials; trial++ {
				db := conformanceDB(rng)
				minsup := []int{1, 2, 3, len(db.Trans)/2 + 1}[trial%4]
				for _, target := range info.Targets {
					want := oracle(t, db, target, minsup)
					var got ResultSet
					err := Mine(db, Options{MinSupport: minsup, Algorithm: info.Name, Target: target}, got.Collect())
					if err != nil {
						t.Fatalf("%s/%s: %v", info.Name, target, err)
					}
					got.Sort()
					if !got.Equal(want) {
						t.Fatalf("%s/%s mismatch (minsup=%d db=%v):\n%s",
							info.Name, target, minsup, db.Trans, got.Diff(want, 10))
					}
				}
			}
		})
	}
}

// TestConformanceParallel runs the parallel engines against the closed
// oracle: the pattern set must match the sequential result exactly.
func TestConformanceParallel(t *testing.T) {
	for _, info := range AlgorithmInfos() {
		if !info.Parallel {
			continue
		}
		info := info
		t.Run(string(info.Name), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(info.Name)) * 6151))
			trials := 30
			if testing.Short() {
				trials = 8
			}
			for trial := 0; trial < trials; trial++ {
				db := conformanceDB(rng)
				minsup := 1 + trial%3
				want := oracle(t, db, TargetClosed, minsup)
				for _, workers := range []int{-1, 2, 4} {
					var got ResultSet
					err := Mine(db, Options{MinSupport: minsup, Algorithm: info.Name, Parallelism: workers}, got.Collect())
					if err != nil {
						t.Fatalf("%s (workers=%d): %v", info.Name, workers, err)
					}
					got.Sort()
					if !got.Equal(want) {
						t.Fatalf("%s (workers=%d) mismatch (minsup=%d db=%v):\n%s",
							info.Name, workers, minsup, db.Trans, got.Diff(want, 10))
					}
				}
			}
		})
	}
}

// TestRegistryNames: registration names are unique, non-empty, and match
// the public Algorithms() listing exactly.
func TestRegistryNames(t *testing.T) {
	infos := AlgorithmInfos()
	if len(infos) == 0 {
		t.Fatal("no registered algorithms")
	}
	seen := map[Algorithm]bool{}
	for _, info := range infos {
		if info.Name == "" {
			t.Fatal("registered algorithm with empty name")
		}
		if seen[info.Name] {
			t.Fatalf("duplicate registration %q", info.Name)
		}
		seen[info.Name] = true
		if len(info.Targets) == 0 {
			t.Fatalf("%s declares no targets", info.Name)
		}
	}
	algos := Algorithms()
	if len(algos) != len(infos) {
		t.Fatalf("Algorithms() has %d entries, registry %d", len(algos), len(infos))
	}
	for i, a := range algos {
		if a != infos[i].Name {
			t.Fatalf("Algorithms()[%d] = %q, registry order %q", i, a, infos[i].Name)
		}
	}
	// The paper's contribution leads the presentation order.
	if algos[0] != IsTa {
		t.Fatalf("presentation order starts with %q, want %q", algos[0], IsTa)
	}
}

// TestMinSupportClampConformance: every miner must treat MinSupport < 1
// as 1 — identically, through the engine's central clamp.
func TestMinSupportClampConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := conformanceDB(rng)
	for _, info := range AlgorithmInfos() {
		for _, target := range info.Targets {
			var want ResultSet
			if err := Mine(db, Options{MinSupport: 1, Algorithm: info.Name, Target: target}, want.Collect()); err != nil {
				t.Fatal(err)
			}
			want.Sort()
			for _, ms := range []int{0, -5} {
				var got ResultSet
				if err := Mine(db, Options{MinSupport: ms, Algorithm: info.Name, Target: target}, got.Collect()); err != nil {
					t.Fatal(err)
				}
				got.Sort()
				if !got.Equal(&want) {
					t.Fatalf("%s/%s: MinSupport=%d differs from MinSupport=1", info.Name, target, ms)
				}
			}
		}
	}
}

// TestUnsupportedTargetRejected: asking a miner for a target it did not
// declare fails fast with ErrUnsupportedTarget, before any mining.
func TestUnsupportedTargetRejected(t *testing.T) {
	db := paperExample()
	targets := []Target{TargetClosed, TargetAll, TargetMaximal}
	for _, info := range AlgorithmInfos() {
		declared := map[Target]bool{}
		for _, target := range info.Targets {
			declared[target] = true
		}
		for _, target := range targets {
			if declared[target] {
				continue
			}
			reported := 0
			err := Mine(db, Options{MinSupport: 1, Algorithm: info.Name, Target: target},
				ReporterFunc(func(ItemSet, int) { reported++ }))
			if !errors.Is(err, ErrUnsupportedTarget) {
				t.Errorf("%s/%s: err = %v, want ErrUnsupportedTarget", info.Name, target, err)
			}
			if reported != 0 {
				t.Errorf("%s/%s: %d patterns reported despite unsupported target", info.Name, target, reported)
			}
		}
	}
}

// TestUnknownAlgorithmListsNames: the unknown-algorithm error names the
// available miners, so command-line typos are self-diagnosing.
func TestUnknownAlgorithmListsNames(t *testing.T) {
	err := Mine(paperExample(), Options{MinSupport: 1, Algorithm: "no-such-miner"},
		ReporterFunc(func(ItemSet, int) {}))
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
	for _, a := range Algorithms() {
		if !contains(err.Error(), string(a)) {
			t.Errorf("error %q does not mention %q", err, a)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestStatsPopulated: a Stats-carrying run fills the observability fields
// consistently with the reported result.
func TestStatsPopulated(t *testing.T) {
	db := paperExample()
	for _, info := range AlgorithmInfos() {
		var stats MiningStats
		var got ResultSet
		err := Mine(db, Options{MinSupport: 2, Algorithm: info.Name, Stats: &stats}, got.Collect())
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if stats.Algorithm != string(info.Name) {
			t.Errorf("%s: stats.Algorithm = %q", info.Name, stats.Algorithm)
		}
		if stats.MinSupport != 2 || stats.Target != TargetClosed {
			t.Errorf("%s: stats spec echo wrong: %+v", info.Name, stats)
		}
		if stats.Patterns != int64(got.Len()) {
			t.Errorf("%s: stats.Patterns = %d, reported %d", info.Name, stats.Patterns, got.Len())
		}
		if stats.Transactions != len(db.Trans) || stats.Items != db.Items {
			t.Errorf("%s: db shape not echoed: %+v", info.Name, stats)
		}
		if stats.PreppedTransactions > stats.Transactions || stats.PreppedItems > stats.Items {
			t.Errorf("%s: prep cannot grow the database: %+v", info.Name, stats)
		}
		if stats.String() == "" {
			t.Errorf("%s: empty stats string", info.Name)
		}
	}
}

// TestDensityConformance: the adaptive tid-set representations must never
// change what is mined. The sweep pins three regimes — sparse (kernel
// stays on sorted lists), half-full (bitmap promotion and demotion both
// trigger), near-full (bitmaps and diffsets dominate) — on databases
// large enough to cross the kernel's dense-universe threshold. For every
// registered algorithm and target the pattern set must agree byte-for-
// byte with the first registered miner's (an intersection miner that does
// not use the kernels), and mining the duplicate-merged weighted database
// must reproduce the expanded result exactly, so representation switching
// is invisible in both uniform and weighted support semantics.
func TestDensityConformance(t *testing.T) {
	// Two database scales: the small one keeps the row-enumeration miners
	// (Carpenter variants, flat) tractable so the whole registry is
	// pinned; the large one crosses the kernel's dense-universe threshold
	// (bitmap promotion needs ≥256 rows) and runs the miners that scale,
	// skipping the ones exponential in the row count.
	configs := []struct {
		n, items int
		skip     map[Algorithm]bool
	}{
		{96, 14, nil},
		{400, 16, map[Algorithm]bool{"carpenter-table": true, "carpenter-lists": true, "flat": true}},
	}
	rng := rand.New(rand.NewSource(53))
	for _, cfg := range configs {
		n, items := cfg.n, cfg.items
		for _, density := range []float64{0.05, 0.5, 0.95} {
			rows := make([][]int, n)
			for k := range rows {
				for i := 0; i < items; i++ {
					if rng.Float64() < density {
						rows[k] = append(rows[k], i)
					}
				}
			}
			expanded := NewDatabase(rows)
			merged := txdb.MergeDuplicates(txdb.FromSource(expanded))
			// Keep outputs non-trivial but bounded in every regime.
			minsup := map[float64]int{0.05: 2, 0.5: n / 5, 0.95: 3 * n / 4}[density]

			want := map[Target]*ResultSet{}
			for _, info := range AlgorithmInfos() {
				if cfg.skip[info.Name] {
					continue
				}
				for _, target := range info.Targets {
					var got, gotMerged ResultSet
					if err := Mine(expanded, Options{MinSupport: minsup, Algorithm: info.Name, Target: target}, got.Collect()); err != nil {
						t.Fatalf("n=%d density %v %s/%s: %v", n, density, info.Name, target, err)
					}
					if err := Mine(merged, Options{MinSupport: minsup, Algorithm: info.Name, Target: target}, gotMerged.Collect()); err != nil {
						t.Fatalf("n=%d density %v %s/%s merged: %v", n, density, info.Name, target, err)
					}
					got.Sort()
					gotMerged.Sort()
					if !gotMerged.Equal(&got) {
						t.Fatalf("n=%d density %v %s/%s: weighted run differs from expanded:\n%s",
							n, density, info.Name, target, gotMerged.Diff(&got, 10))
					}
					if ref, ok := want[target]; !ok {
						want[target] = &got
					} else if !got.Equal(ref) {
						t.Fatalf("n=%d density %v %s/%s: differs from reference miner:\n%s",
							n, density, info.Name, target, got.Diff(ref, 10))
					}
				}
			}
		}
	}
}

// TestWeightedConformance: merging duplicate rows into weighted rows must
// not change any miner's output. Every registered algorithm runs on a
// duplicate-heavy database twice — expanded (uniform weights) and merged
// (weights > 1) — and the pattern sets must be identical per target. This
// pins the weighted support semantics of the columnar store across the
// whole registry.
func TestWeightedConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	trials := 20
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		// A tiny universe forces duplicate rows.
		items := 2 + rng.Intn(4)
		n := 4 + rng.Intn(16)
		rows := make([][]int, n)
		for k := range rows {
			for i := 0; i < items; i++ {
				if rng.Float64() < 0.5 {
					rows[k] = append(rows[k], i)
				}
			}
		}
		expanded := NewDatabase(rows)
		merged := txdb.MergeDuplicates(txdb.FromSource(expanded))
		if merged.NumTx() == expanded.NumTx() {
			continue // no duplicates materialized this trial
		}
		if merged.TotalWeight() != len(rows) {
			t.Fatalf("trial %d: merged weight %d, want %d", trial, merged.TotalWeight(), len(rows))
		}
		minsup := 1 + trial%3
		for _, info := range AlgorithmInfos() {
			for _, target := range info.Targets {
				var want, got ResultSet
				if err := Mine(expanded, Options{MinSupport: minsup, Algorithm: info.Name, Target: target}, want.Collect()); err != nil {
					t.Fatalf("%s/%s expanded: %v", info.Name, target, err)
				}
				if err := Mine(merged, Options{MinSupport: minsup, Algorithm: info.Name, Target: target}, got.Collect()); err != nil {
					t.Fatalf("%s/%s merged: %v", info.Name, target, err)
				}
				want.Sort()
				got.Sort()
				if !got.Equal(&want) {
					t.Fatalf("%s/%s: merged DB mines differently (minsup=%d rows=%v):\n%s",
						info.Name, target, minsup, rows, got.Diff(&want, 10))
				}
			}
		}
	}
}
