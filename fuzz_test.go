package fim

import (
	"testing"
)

// FuzzMinerAgreement decodes fuzz bytes into a small transaction database
// and checks that two structurally unrelated closed-set miners — IsTa
// (transaction intersection) and LCM (item set enumeration) — produce the
// identical result. Any divergence is a bug in one of them.
func FuzzMinerAgreement(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 2, 3, 4, 0, 1, 3}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{5, 5, 5, 0, 5}, uint8(1))
	f.Add([]byte{1, 0, 2, 0, 3, 0, 1, 2, 3}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, minsupRaw uint8) {
		if len(raw) > 512 {
			return // keep the search space small and runs fast
		}
		db := fuzzDB(raw)
		minsup := int(minsupRaw%6) + 1

		var ista, lcm, par ResultSet
		if err := Mine(db, Options{MinSupport: minsup, Algorithm: IsTa}, ista.Collect()); err != nil {
			t.Fatal(err)
		}
		if err := Mine(db, Options{MinSupport: minsup, Algorithm: LCM}, lcm.Collect()); err != nil {
			t.Fatal(err)
		}
		if !ista.Equal(&lcm) {
			t.Fatalf("IsTa and LCM disagree (minsup=%d, db=%v):\n%s",
				minsup, db.Trans, ista.Diff(&lcm, 10))
		}
		// The sharded parallel engine must reproduce the same set.
		if err := Mine(db, Options{MinSupport: minsup, Algorithm: IsTa, Parallelism: 3}, par.Collect()); err != nil {
			t.Fatal(err)
		}
		if !par.Equal(&ista) {
			t.Fatalf("parallel IsTa disagrees (minsup=%d, db=%v):\n%s",
				minsup, db.Trans, par.Diff(&ista, 10))
		}
		// Semantic spot checks on the agreed result.
		for _, p := range ista.Patterns {
			if p.Support < minsup {
				t.Fatalf("infrequent pattern reported: %v", p)
			}
			if !IsClosed(db, p.Items) {
				t.Fatalf("non-closed pattern reported: %v", p)
			}
		}
	})
}

// fuzzDB decodes bytes into a database: byte 0 separates transactions,
// other bytes are items mod 12.
func fuzzDB(raw []byte) *Database {
	var rows [][]int
	cur := []int{}
	for _, b := range raw {
		if b == 0 {
			rows = append(rows, cur)
			cur = []int{}
			continue
		}
		cur = append(cur, int(b%12))
	}
	rows = append(rows, cur)
	return NewDatabase(rows)
}
