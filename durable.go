package fim

import (
	"io"

	"repro/internal/obs"
	"repro/internal/persist"
)

// ErrCorrupt is wrapped by every error that reports unreadable or
// inconsistent persistent mining state: a damaged snapshot, a checksum
// mismatch, or a gap in the write-ahead log. Match with errors.Is. A
// torn final WAL record — the expected trace of a crash during an
// append — is not corruption; recovery discards it silently. See
// DESIGN.md §5d for the durability model.
var ErrCorrupt = persist.ErrCorrupt

// RepairReport summarizes what OpenDurable's recovery healed, skipped or
// quarantined, plus the transient I/O retries the handle has performed
// since. Inspect it through DurableMiner.RepairReport after an open that
// had to fall back past damaged generations.
type RepairReport = persist.RepairReport

// QuarantineSuffix is appended to the file name of a snapshot that
// recovery with DurableOptions.Repair set aside as unreadable; the
// quarantined file is never again considered a generation but keeps its
// bytes for forensics.
const QuarantineSuffix = persist.QuarantineSuffix

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Items is the item universe size, required when the directory holds
	// no prior state. When state exists the recovered universe wins; a
	// larger requested universe fails.
	Items int
	// SnapshotEvery writes a snapshot and rotates the write-ahead log
	// every n transactions; 0 uses 1024, negative disables periodic
	// snapshots (Snapshot can still be called explicitly).
	SnapshotEvery int
	// SyncEvery fsyncs the log every n appends; 0 and 1 sync every
	// append, so every acknowledged Add survives a crash. Larger values
	// trade durability of the last n-1 transactions for throughput.
	SyncEvery int
	// TraceWriter, when non-nil, receives one JSON line per maintenance
	// phase of the store: recovery on open, every snapshot write, and
	// every log rotation, each with its duration and the prefix-tree node
	// count (see DESIGN.md §5e for the schema). Nil costs nothing.
	TraceWriter io.Writer
	// Retry, when enabled, re-attempts transient snapshot-write and
	// log-rotation I/O failures with jittered backoff before giving up.
	// WAL appends are never retried (a partial append would tear the log
	// framing) and fsync failures are always fail-stop regardless of the
	// policy (the kernel page cache is in an unknown state after a failed
	// fsync). The zero value keeps every I/O failure fail-stop.
	Retry RetryPolicy
	// Repair, when set, lets a successful recovery quarantine the damaged
	// newer snapshot generations it had to skip: each is renamed aside
	// with QuarantineSuffix and listed in the RepairReport. When recovery
	// fails nothing is renamed — the evidence stays where it was.
	Repair bool
}

// DurableMiner is a crash-safe IncrementalMiner: every Add is logged to
// an append-only write-ahead log before it is applied, periodic
// snapshots bound the recovery replay, and OpenDurable restores the
// state after a crash — a process restart costs the WAL tail replay,
// not the whole stream.
type DurableMiner struct {
	d *persist.Durable
}

// OpenDurable opens (creating if necessary) a durable online miner
// backed by dir. Prior state is recovered: the newest readable snapshot
// is loaded and the log tail replayed, discarding at most a torn final
// record. Damage that would lose durable transactions fails with an
// error wrapping ErrCorrupt.
func OpenDurable(dir string, opts DurableOptions) (*DurableMiner, error) {
	var sink obs.Sink
	if opts.TraceWriter != nil {
		sink = obs.NewJSONSink(opts.TraceWriter)
	}
	d, err := persist.Open(dir, persist.Options{
		Items:         opts.Items,
		SnapshotEvery: opts.SnapshotEvery,
		SyncEvery:     opts.SyncEvery,
		Obs:           sink,
		Retry:         opts.Retry,
		Repair:        opts.Repair,
	})
	if err != nil {
		return nil, err
	}
	return &DurableMiner{d: d}, nil
}

// Add logs and applies one transaction (write-ahead: it is durable
// before the in-memory state changes). The items may be in any order;
// they are canonicalized.
func (m *DurableMiner) Add(items ...Item) error { return m.d.Add(items...) }

// AddSet logs and applies one canonical transaction.
func (m *DurableMiner) AddSet(t ItemSet) error { return m.d.AddSet(t) }

// Snapshot forces a snapshot now, rotating the write-ahead log so the
// next recovery's replay tail restarts empty.
func (m *DurableMiner) Snapshot() error { return m.d.Snapshot() }

// Sync forces the write-ahead log to stable storage, making every Add
// so far durable regardless of SyncEvery.
func (m *DurableMiner) Sync() error { return m.d.Sync() }

// Close syncs and closes the store. Closing does not snapshot; call
// Snapshot first to bound the next open's replay.
func (m *DurableMiner) Close() error { return m.d.Close() }

// Transactions returns the number of transactions applied so far.
func (m *DurableMiner) Transactions() int { return m.d.Transactions() }

// Items returns the item universe size.
func (m *DurableMiner) Items() int { return m.d.Items() }

// NodeCount returns the current prefix tree size.
func (m *DurableMiner) NodeCount() int { return m.d.NodeCount() }

// Snapshots returns the number of snapshots (each with its log rotation)
// this handle has written; recovery on open does not count.
func (m *DurableMiner) Snapshots() int { return m.d.Snapshots() }

// RepairReport returns what recovery healed, skipped or quarantined on
// open, plus the transient I/O retries performed since.
func (m *DurableMiner) RepairReport() RepairReport { return m.d.RepairReport() }

// Retries returns the number of transient I/O failures healed by
// DurableOptions.Retry over the handle's lifetime (including recovery).
func (m *DurableMiner) Retries() int { return m.d.Retries() }

// Closed reports the closed item sets of the transactions added so far
// whose support reaches minSupport. Queries stay available even after a
// write fault — the in-memory state is always consistent.
func (m *DurableMiner) Closed(minSupport int, rep Reporter) {
	m.d.Closed(minSupport, rep)
}

// ClosedSet collects the current closed frequent item sets in canonical
// order.
func (m *DurableMiner) ClosedSet(minSupport int) *ResultSet {
	return m.d.ClosedSet(minSupport)
}
