// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure plus the §3/§5 ablations. Each figure benchmark runs every
// algorithm of the corresponding plot at a representative support level of
// the sweep (the full sweeps are produced by `go run ./cmd/fimbench`).
// Absolute times differ from the paper (different hardware, Go instead of
// C, scaled-down synthetic workloads); the relative ordering is what these
// benchmarks are for — see EXPERIMENTS.md.
package fim

import (
	"sync"
	"testing"

	"repro/internal/carpenter"
	"repro/internal/core"
	"repro/internal/gendata"
	"repro/internal/itemset"
	"repro/internal/naive"
	"repro/internal/prep"
	"repro/internal/result"
)

// Workloads are generated once and shared across benchmarks.
var (
	onceWorkloads sync.Once
	yeastDB       *Columnar // Figure 5
	ncbiDB        *Columnar // Figure 6
	thrombinDB    *Columnar // Figure 7
	webviewDB     *Columnar // Figure 8
)

func workloads() {
	onceWorkloads.Do(func() {
		yeastDB = gendata.Yeast(0.15, 1)
		ncbiDB = gendata.NCBI60(0.20, 2)
		thrombinDB = gendata.Thrombin(0.02, 3)
		webviewDB = gendata.WebView(0.30, 4)
	})
}

// benchAlgos are the algorithms shown in Figures 5-8.
var benchAlgos = []Algorithm{IsTa, CarpenterTable, CarpenterLists, FPClose, LCM}

func benchFigure(b *testing.B, db *Columnar, minsup int) {
	for _, algo := range benchAlgos {
		b.Run(string(algo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter result.Counter
				if err := Mine(db, Options{MinSupport: minsup, Algorithm: algo}, &counter); err != nil {
					b.Fatal(err)
				}
				if counter.N == 0 {
					b.Fatal("benchmark level produced no patterns")
				}
			}
		})
	}
}

// BenchmarkFig5Yeast measures the Figure 5 algorithms on the yeast-like
// workload at a mid-sweep support level.
func BenchmarkFig5Yeast(b *testing.B) {
	workloads()
	benchFigure(b, yeastDB, 14)
}

// BenchmarkFig6NCBI60 measures the Figure 6 algorithms on the NCBI60-like
// workload.
func BenchmarkFig6NCBI60(b *testing.B) {
	workloads()
	benchFigure(b, ncbiDB, 49)
}

// BenchmarkFig7Thrombin measures the Figure 7 algorithms on the
// thrombin-like workload.
func BenchmarkFig7Thrombin(b *testing.B) {
	workloads()
	benchFigure(b, thrombinDB, 36)
}

// BenchmarkFig8WebView measures the Figure 8 algorithms on the transposed
// webview-like workload.
func BenchmarkFig8WebView(b *testing.B) {
	workloads()
	benchFigure(b, webviewDB, 10)
}

// BenchmarkFlatVsIsTa is the §5 comparison against Mielikäinen's flat
// cumulative scheme — the >100x gap is the prefix tree's contribution.
func BenchmarkFlatVsIsTa(b *testing.B) {
	db := gendata.Yeast(0.05, 5)
	for _, algo := range []Algorithm{IsTa, FlatCumulative} {
		b.Run(string(algo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter result.Counter
				if err := Mine(db, Options{MinSupport: 10, Algorithm: algo}, &counter); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOrderAblation measures IsTa under the §3.4 item/transaction
// order choices: ascending-frequency codes with ascending-size
// transactions (the paper's recommendation) versus the reverse choices.
func BenchmarkOrderAblation(b *testing.B) {
	workloads()
	cases := []struct {
		name string
		io   prep.ItemOrder
		to   prep.TransOrder
	}{
		{"asc-freq/size-asc", prep.OrderAscFreq, prep.OrderSizeAsc},
		{"asc-freq/size-desc", prep.OrderAscFreq, prep.OrderSizeDesc},
		{"desc-freq/size-asc", prep.OrderDescFreq, prep.OrderSizeAsc},
		{"keep/original", prep.OrderKeep, prep.OrderOriginal},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter result.Counter
				err := core.Mine(yeastDB, core.Options{
					MinSupport: 14, ItemOrder: tc.io, TransOrder: tc.to,
				}, &counter)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPruneAblation measures the §3.2 item-elimination pruning of
// IsTa and the §3.1.1 item elimination of Carpenter, on and off.
func BenchmarkPruneAblation(b *testing.B) {
	workloads()
	b.Run("ista/prune", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var counter result.Counter
			if err := core.Mine(yeastDB, core.Options{MinSupport: 14}, &counter); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ista/noprune", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var counter result.Counter
			if err := core.Mine(yeastDB, core.Options{MinSupport: 14, DisablePruning: true}, &counter); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, elim := range []bool{true, false} {
		name := "carpenter/elim"
		if !elim {
			name = "carpenter/noelim"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter result.Counter
				err := carpenter.Mine(yeastDB, carpenter.Options{
					MinSupport: 14, Variant: carpenter.Table, DisableElimination: !elim,
				}, &counter)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRepoAblation compares the Carpenter repository layouts of
// §3.1.1: prefix tree with flat top level versus a hash table.
func BenchmarkRepoAblation(b *testing.B) {
	workloads()
	for _, hash := range []bool{false, true} {
		name := "prefix-tree"
		if hash {
			name = "hash-table"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var counter result.Counter
				err := carpenter.Mine(yeastDB, carpenter.Options{
					MinSupport: 14, Variant: carpenter.Table, HashRepository: hash,
				}, &counter)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1Matrix measures building the Table 1 matrix
// representation (the table-based Carpenter's preprocessing step).
func BenchmarkTable1Matrix(b *testing.B) {
	workloads()
	pre := prep.Prepare(thrombinDB, 30, prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderSizeAsc})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := pre.DB.Matrix()
		if m.N == 0 {
			b.Fatal("empty matrix")
		}
	}
}

// BenchmarkTreeAddTransaction isolates the IsTa prefix tree's per-
// transaction cost (insertion + intersection pass, Fig. 2).
func BenchmarkTreeAddTransaction(b *testing.B) {
	workloads()
	pre := prep.Prepare(yeastDB, 14, prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderSizeAsc})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := core.NewTree(pre.DB.NumItems())
		for k := 0; k < 40; k++ {
			tree.AddTransaction(pre.DB.Tx(k))
		}
	}
}

// BenchmarkIntersect measures the canonical sorted-slice intersection that
// every algorithm leans on.
func BenchmarkIntersect(b *testing.B) {
	a := make(itemset.Set, 0, 1000)
	c := make(itemset.Set, 0, 1000)
	for i := 0; i < 3000; i += 3 {
		a = append(a, itemset.Item(i))
	}
	for i := 0; i < 3000; i += 2 {
		c = append(c, itemset.Item(i))
	}
	buf := make(itemset.Set, 0, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = a.IntersectInto(buf, c)
	}
	if len(buf) == 0 {
		b.Fatal("empty intersection")
	}
}

// BenchmarkFlatBaselineOracle measures the brute-force oracle used by the
// test suite, documenting why it is capped at 20 transactions.
func BenchmarkFlatBaselineOracle(b *testing.B) {
	db := NewDatabase([][]int{
		{0, 1, 2}, {0, 3, 4}, {1, 2, 3}, {0, 1, 2, 3},
		{1, 2}, {0, 1, 3}, {3, 4}, {2, 3, 4},
		{0, 2, 4}, {1, 3, 4}, {0, 1, 4}, {2, 3},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := naive.ClosedByTransactionSubsets(db, 2); err != nil {
			b.Fatal(err)
		}
	}
}
