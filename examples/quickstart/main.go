// Quickstart: mine closed frequent item sets from a small in-memory
// database with IsTa, inspect them, and derive association rules.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fim "repro"
)

func main() {
	// The example transaction database from Table 1 of the paper, with
	// items a=0, b=1, c=2, d=3, e=4.
	db := fim.NewDatabase([][]int{
		{0, 1, 2},    // a b c
		{0, 3, 4},    // a d e
		{1, 2, 3},    // b c d
		{0, 1, 2, 3}, // a b c d
		{1, 2},       // b c
		{0, 1, 3},    // a b d
		{3, 4},       // d e
		{2, 3, 4},    // c d e
	})
	names := []string{"a", "b", "c", "d", "e"}

	// Closed frequent item sets at minimum support 3 (IsTa, the paper's
	// cumulative intersection algorithm).
	closed, err := fim.MineClosed(db, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closed frequent item sets (minsup 3): %d\n", closed.Len())
	for _, p := range closed.Patterns {
		fmt.Printf("  %s  support %d\n", render(p.Items, names), p.Support)
	}

	// The same result via transaction set enumeration (Carpenter) — every
	// algorithm in the library produces the identical pattern set.
	var viaCarpenter fim.ResultSet
	err = fim.Mine(db, fim.Options{MinSupport: 3, Algorithm: fim.CarpenterTable}, viaCarpenter.Collect())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carpenter agrees: %v\n", viaCarpenter.Equal(closed))

	// Closed sets preserve all support information, so association rules
	// can be derived from them directly.
	rules := fim.Rules(closed, len(db.Trans), fim.RuleOptions{MinConfidence: 0.7})
	fmt.Printf("\nassociation rules with confidence >= 0.7: %d\n", len(rules))
	for _, r := range rules {
		fmt.Printf("  %s -> %s  (support %d, confidence %.2f, lift %.2f)\n",
			render(r.Antecedent, names), render(r.Consequent, names),
			r.Support, r.Confidence, r.Lift)
	}
}

func render(s fim.ItemSet, names []string) string {
	out := ""
	for i, it := range s {
		if i > 0 {
			out += " "
		}
		out += names[it]
	}
	return "{" + out + "}"
}
