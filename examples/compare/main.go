// Cross-check and race all seven closed-set miners on the same workload:
// a thrombin-like wide binary database (the Figure 7 regime). Every
// algorithm must produce exactly the same closed frequent item sets; the
// example verifies that and prints the timing spread, which is the paper's
// story in miniature.
//
// Run with: go run ./examples/compare
package main

import (
	"fmt"
	"log"
	"time"

	fim "repro"
)

func main() {
	db := fim.GenThrombin(0.01, 11)
	minsup := 34
	fmt.Printf("workload: %s, minsup %d\n\n", db.Stats(), minsup)

	type outcome struct {
		algo fim.Algorithm
		set  *fim.ResultSet
		time time.Duration
	}
	var outcomes []outcome
	for _, algo := range fim.Algorithms() {
		if algo == fim.FlatCumulative {
			// The flat repository keeps every closed set of the processed
			// prefix regardless of support; on this workload that is
			// orders of magnitude more state than the minimum support
			// needs, and the run does not finish in reasonable time —
			// which is precisely why the paper replaces it with the
			// prefix tree (see the `fimbench -exp flat` experiment).
			fmt.Printf("%-18s skipped (see comment in source)\n\n", algo)
			continue
		}
		var set fim.ResultSet
		start := time.Now()
		err := fim.Mine(db, fim.Options{MinSupport: minsup, Algorithm: algo}, set.Collect())
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		outcomes = append(outcomes, outcome{algo, &set, time.Since(start)})
	}

	ref := outcomes[0]
	fmt.Printf("%-18s %10s  %9s  %s\n", "algorithm", "time", "#closed", "agrees")
	for _, o := range outcomes {
		agrees := o.set.Equal(ref.set)
		fmt.Printf("%-18s %10s  %9d  %v\n", o.algo, o.time.Round(time.Microsecond), o.set.Len(), agrees)
		if !agrees {
			log.Fatalf("%s disagrees with %s:\n%s", o.algo, ref.algo, o.set.Diff(ref.set, 10))
		}
	}

	fmt.Println("\nall algorithms produced the identical closed frequent item sets")
	fastest, slowest := outcomes[0], outcomes[0]
	for _, o := range outcomes[1:] {
		if o.time < fastest.time {
			fastest = o
		}
		if o.time > slowest.time {
			slowest = o
		}
	}
	fmt.Printf("fastest: %s (%s), slowest: %s (%s) — %.1fx spread\n",
		fastest.algo, fastest.time.Round(time.Microsecond),
		slowest.algo, slowest.time.Round(time.Microsecond),
		float64(slowest.time)/float64(fastest.time))
}
