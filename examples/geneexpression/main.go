// Gene expression analysis, the paper's §4 application: generate a
// synthetic expression compendium (genes × conditions log ratios with
// co-regulated modules), discretize it with the paper's ±0.2 thresholds,
// and mine closed frequent item sets in BOTH orientations:
//
//   - genes as transactions, conditions as items (many transactions, few
//     items — the classic regime where enumeration algorithms shine), and
//   - conditions as transactions, genes as items (few transactions, very
//     many items — the regime where the intersection algorithms win).
//
// The example prints timings for an intersection algorithm (IsTa) and an
// enumeration algorithm (FP-close) side by side in each orientation,
// demonstrating the paper's core claim on data you can regenerate
// deterministically.
//
// Run with: go run ./examples/geneexpression
package main

import (
	"fmt"
	"log"
	"time"

	fim "repro"
)

func main() {
	// A scaled-down compendium: 900 genes, 90 conditions, 12 co-regulated
	// modules (the real yeast compendium in the paper is 6316 × 300).
	matrix := fim.GenExpression(fim.ExpressionConfig{
		Genes:          900,
		Conditions:     90,
		Modules:        12,
		ModuleGeneFrac: 0.65,
		ModuleCondFrac: 0.28,
		Effect:         0.45,
		Noise:          0.16,
		Seed:           2026,
	})

	// Discretize with the paper's thresholds: log ratio > 0.2 means
	// over-expressed, < -0.2 under-expressed.
	byGene := fim.Discretize(matrix, 0.2, 0.2, fim.GenesAsTransactions)
	byCond := fim.Discretize(matrix, 0.2, 0.2, fim.ConditionsAsTransactions)

	fmt.Println("orientation 1: genes as transactions, conditions as items")
	fmt.Printf("  workload: %s\n", byGene.Stats())
	mineBoth(byGene, 45) // 5% of 900 genes

	fmt.Println("\norientation 2: conditions as transactions, genes as items")
	fmt.Printf("  workload: %s\n", byCond.Stats())
	mineBoth(byCond, 9) // 10% of 90 conditions

	fmt.Println("\nThe second orientation is the paper's target regime: very many")
	fmt.Println("items, few transactions. Intersection-based IsTa handles it with a")
	fmt.Println("bounded number of transaction passes, while the enumeration search")
	fmt.Println("space grows with the number of items.")
}

func mineBoth(db fim.Source, minsup int) {
	for _, algo := range []fim.Algorithm{fim.IsTa, fim.FPClose} {
		var count int
		start := time.Now()
		err := fim.Mine(db, fim.Options{MinSupport: minsup, Algorithm: algo},
			fim.ReporterFunc(func(fim.ItemSet, int) { count++ }))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s minsup %-4d -> %7d closed sets in %9s\n",
			algo, minsup, count, time.Since(start).Round(time.Microsecond))
	}
}
