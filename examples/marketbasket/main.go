// Market basket analysis, the application that started frequent item set
// mining (§1/§2.1 of the paper): generate a Quest-style basket database
// (many transactions, few items — the classic FIMI benchmark regime),
// compare the output sizes of all / closed / maximal mining, and induce
// association rules.
//
// Run with: go run ./examples/marketbasket
package main

import (
	"fmt"
	"log"

	fim "repro"
)

func main() {
	db := fim.GenQuest(fim.QuestConfig{
		Items:         120,
		Transactions:  4000,
		AvgLen:        8,
		Patterns:      30,
		AvgPatternLen: 4,
		Bundles:       12, // items always bought together -> non-closed sets
		Seed:          7,
	})
	fmt.Printf("basket database: %s\n\n", db.Stats())

	minsup := 40 // 1% of the transactions
	all, err := fim.MineAll(db, minsup)
	if err != nil {
		log.Fatal(err)
	}
	closed, err := fim.MineClosed(db, minsup)
	if err != nil {
		log.Fatal(err)
	}
	maximal, err := fim.MineMaximal(db, minsup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent item sets at minsup %d (%.1f%%):\n", minsup,
		100*float64(minsup)/float64(db.NumTx()))
	fmt.Printf("  all:     %6d\n", all.Len())
	fmt.Printf("  closed:  %6d   (lossless compression, §2.3)\n", closed.Len())
	fmt.Printf("  maximal: %6d   (lossy: supports of subsets are lost)\n", maximal.Len())

	// Rule induction from the closed sets: closed sets preserve every
	// support value, so confidences are exact.
	rules := fim.Rules(closed, db.NumTx(), fim.RuleOptions{
		MinConfidence: 0.6,
		MinLift:       1.5,
	})
	show := len(rules)
	if show > 12 {
		show = 12
	}
	fmt.Printf("\ntop %d of %d rules (confidence >= 0.6, lift >= 1.5):\n", show, len(rules))
	for _, r := range rules[:show] {
		fmt.Printf("  %v -> %v  supp=%d conf=%.2f lift=%.2f\n",
			r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
	}

	// Sanity: every frequent set's support is recoverable from the closed
	// collection as the maximum support of a closed superset.
	bad := 0
	for _, p := range all.Patterns {
		best := 0
		for _, c := range closed.Patterns {
			if p.Items.SubsetOf(c.Items) && c.Support > best {
				best = c.Support
			}
		}
		if best != p.Support {
			bad++
		}
	}
	fmt.Printf("\nsupport reconstruction check: %d mismatches out of %d frequent sets\n",
		bad, all.Len())
}
