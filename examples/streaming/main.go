// Streaming / online mining: the cumulative intersection scheme processes
// transactions one at a time and always holds the closed item sets of the
// prefix seen so far (§3.2 of the paper), so it doubles as an online
// miner. This example feeds a transaction stream into fim's
// IncrementalMiner and queries the current closed frequent item sets at
// several checkpoints — something the enumeration algorithms cannot do
// without re-mining from scratch.
//
// The second half makes the stream crash-safe: the same transactions go
// through fim.OpenDurable, which write-ahead logs every one and
// snapshots periodically, the process "crashes" mid-stream, and a
// reopen resumes at exactly the next undelivered transaction — the
// prefix tree is the complete mining state (§3.2), so a checkpoint of
// it loses nothing.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	fim "repro"
)

func main() {
	const items = 40

	// A drifting stream: the co-occurrence pattern changes mid-stream.
	rng := rand.New(rand.NewSource(99))
	stream := make([][]fim.Item, 0, 600)
	early := []fim.Item{2, 5, 7}   // early "trend" bought together
	late := []fim.Item{11, 13, 17} // replaces it later
	for k := 0; k < 600; k++ {
		var t []fim.Item
		trend := early
		if k >= 300 {
			trend = late
		}
		if rng.Float64() < 0.4 {
			for _, it := range trend {
				if rng.Float64() < 0.9 {
					t = append(t, it)
				}
			}
		}
		for j := 0; j < 3; j++ {
			t = append(t, fim.Item(rng.Intn(items)))
		}
		stream = append(stream, t)
	}

	m := fim.NewIncrementalMiner(items)
	checkpoints := map[int]bool{100: true, 300: true, 600: true}
	for k, t := range stream {
		if err := m.Add(t...); err != nil {
			log.Fatal(err)
		}
		if !checkpoints[k+1] {
			continue
		}
		// Query at 5% of the transactions seen so far.
		minsup := (k + 1) / 20
		closed := m.ClosedSet(minsup)
		fmt.Printf("after %3d transactions (minsup %2d): %4d closed sets, %5d tree nodes\n",
			k+1, minsup, closed.Len(), m.NodeCount())

		fmt.Printf("  early trend %v: support %d\n", fim.NewItemSet(2, 5, 7), supportIn(closed, fim.NewItemSet(2, 5, 7)))
		fmt.Printf("  late trend  %v: support %d\n", fim.NewItemSet(11, 13, 17), supportIn(closed, fim.NewItemSet(11, 13, 17)))
	}

	fmt.Println("\nThe early trend's support freezes once the stream drifts, while the")
	fmt.Println("late trend only accumulates support after transaction 300 — all")
	fmt.Println("observable without ever re-mining the prefix.")

	// ---- Crash-safe streaming -------------------------------------------
	// The same stream, but durable: every transaction is write-ahead
	// logged before it is mined, and every 64 transactions the whole
	// miner state is snapshotted and the log rotated.
	dir, err := os.MkdirTemp("", "ista-stream-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	dm, err := fim.OpenDurable(dir, fim.DurableOptions{Items: items, SnapshotEvery: 64})
	if err != nil {
		log.Fatal(err)
	}
	const crashAt = 437 // the process dies right before this transaction
	for _, t := range stream[:crashAt] {
		if err := dm.Add(t...); err != nil {
			log.Fatal(err)
		}
	}
	// Simulated crash: the store is abandoned — no Close, no final
	// snapshot. Everything acknowledged is already durable.
	fmt.Printf("\ncrash after %d transactions (last snapshot at %d, tail in the log)\n",
		crashAt, crashAt/64*64)

	dm, err = fim.OpenDurable(dir, fim.DurableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	resumeAt := dm.Transactions()
	fmt.Printf("recovered %d transactions — resuming at transaction %d\n", resumeAt, resumeAt+1)
	if resumeAt != crashAt {
		log.Fatalf("recovery lost transactions: want %d", crashAt)
	}
	for _, t := range stream[resumeAt:] {
		if err := dm.Add(t...); err != nil {
			log.Fatal(err)
		}
	}
	if err := dm.Snapshot(); err != nil { // bound the next open's replay
		log.Fatal(err)
	}
	recovered := dm.ClosedSet(600 / 20)
	if err := dm.Close(); err != nil {
		log.Fatal(err)
	}
	if recovered.Equal(m.ClosedSet(600 / 20)) {
		fmt.Println("after the tail: the recovered miner's closed sets are identical to")
		fmt.Println("the uninterrupted in-memory run — the crash cost nothing.")
	} else {
		log.Fatal("recovered miner diverged from the uninterrupted run")
	}
}

// supportIn recovers the support of items from the closed collection (the
// maximum support of a closed superset, §2.3 of the paper).
func supportIn(closed *fim.ResultSet, items fim.ItemSet) int {
	best := 0
	for _, p := range closed.Patterns {
		if items.SubsetOf(p.Items) && p.Support > best {
			best = p.Support
		}
	}
	return best
}
