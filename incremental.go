package fim

import "repro/internal/core"

// IncrementalMiner is an online closed item set miner: transactions are
// added one at a time (e.g. as they arrive on a stream) and the closed
// frequent item sets of everything seen so far can be queried at any
// moment, at any support threshold. It is a direct consequence of the
// paper's cumulative intersection scheme (§3.2); see
// internal/core.Incremental for the trade-offs against batch mining.
type IncrementalMiner = core.Incremental

// NewIncrementalMiner returns an online miner over item codes
// 0..items-1.
func NewIncrementalMiner(items int) *IncrementalMiner {
	return core.NewIncremental(items)
}
