package fim

import (
	"io"

	"repro/internal/core"
	"repro/internal/persist"
)

// IncrementalMiner is an online closed item set miner: transactions are
// added one at a time (e.g. as they arrive on a stream) and the closed
// frequent item sets of everything seen so far can be queried at any
// moment, at any support threshold. It is a direct consequence of the
// paper's cumulative intersection scheme (§3.2); see
// internal/core.Incremental for the trade-offs against batch mining.
//
// Because the prefix tree holds the complete mining state, the miner is
// checkpointable: Snapshot serializes it and RestoreIncrementalMiner
// resumes at exactly the same transaction. For continuous durability
// (write-ahead logging plus automatic snapshots) use OpenDurable.
type IncrementalMiner struct {
	inc *core.Incremental
}

// NewIncrementalMiner returns an online miner over item codes
// 0..items-1.
func NewIncrementalMiner(items int) *IncrementalMiner {
	return &IncrementalMiner{inc: core.NewIncremental(items)}
}

// Add processes one transaction. The items may be in any order; they
// are canonicalized. Items outside the universe are rejected.
func (m *IncrementalMiner) Add(items ...Item) error { return m.inc.Add(items...) }

// AddSet processes one canonical transaction without copying.
func (m *IncrementalMiner) AddSet(t ItemSet) error { return m.inc.AddSet(t) }

// Transactions returns the number of transactions added so far.
func (m *IncrementalMiner) Transactions() int { return m.inc.Transactions() }

// Items returns the size of the item universe.
func (m *IncrementalMiner) Items() int { return m.inc.Items() }

// NodeCount returns the current prefix tree size, a direct measure of
// the miner's memory use.
func (m *IncrementalMiner) NodeCount() int { return m.inc.NodeCount() }

// Closed reports the closed item sets of the transactions added so far
// whose support reaches minSupport. It may be called repeatedly and at
// different thresholds; it does not modify the miner.
func (m *IncrementalMiner) Closed(minSupport int, rep Reporter) {
	m.inc.Closed(minSupport, rep)
}

// ClosedSet collects the current closed frequent item sets in canonical
// order.
func (m *IncrementalMiner) ClosedSet(minSupport int) *ResultSet {
	return m.inc.ClosedSet(minSupport)
}

// Snapshot writes the miner's complete state to w in the versioned,
// checksummed binary format of internal/persist. The encoding is
// deterministic: equal states produce identical bytes.
func (m *IncrementalMiner) Snapshot(w io.Writer) error {
	return persist.WriteSnapshot(w, m.inc)
}

// RestoreIncrementalMiner rebuilds a miner from a Snapshot stream,
// resuming at exactly the transaction the snapshot was taken after.
// Corrupt or truncated input fails with an error wrapping ErrCorrupt;
// it never panics.
func RestoreIncrementalMiner(r io.Reader) (*IncrementalMiner, error) {
	inc, err := persist.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &IncrementalMiner{inc: inc}, nil
}
