// Package eclat implements the Eclat algorithm (Zaki et al.): depth-first
// search over the item set lattice with a vertical database representation
// in which every search node carries the transaction id set of its prefix,
// and extensions are found by intersecting tid sets. Besides the classic
// "all frequent item sets" target it offers closed and maximal targets;
// the closed target uses the same closure-candidate + repository scheme as
// FP-close (package fpgrowth), adapted to Eclat's ascending processing
// order.
//
// Tid sets are internal/tidset kernel sets: the representation (sparse
// list, bitmap, diffset) is chosen adaptively per node, intersections
// stop early once the minsup bound is unreachable, and each recursion
// level draws its result storage from a depth-scoped arena, so a level
// runs allocation-free in steady state.
package eclat

import (
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/tidset"
	"repro/internal/txdb"
)

// Target selects what Mine reports.
//
// Deprecated: Target and its constants are aliases for the shared
// engine.Target; the zero value is Closed (it used to be All).
type Target = engine.Target

const (
	// All reports every frequent item set.
	All = engine.All
	// Closed reports the closed frequent item sets.
	Closed = engine.Closed
	// Maximal reports the maximal frequent item sets.
	Maximal = engine.Maximal
)

// Options configures the miner.
type Options struct {
	// MinSupport is the absolute minimum support; values < 1 act as 1.
	MinSupport int
	// Target selects closed (default), all, or maximal sets.
	Target Target
	// Done optionally cancels the run.
	Done <-chan struct{}
	// Guard optionally bounds the run (deadline and pattern budget). May
	// be nil.
	Guard *guard.Guard
}

// ext is one extension candidate at a search node: an item and the tid
// set of prefix ∪ {item}. The Set value must stay at a stable address
// while its subtree is mined (diffset children reference it), which the
// depth-indexed extension buffers guarantee: a buffer is rewritten only
// after the subtree reading it has fully unwound.
type ext struct {
	item itemset.Item
	set  tidset.Set
}

// Mine runs Eclat on db, reporting patterns in original item codes.
func Mine(db txdb.Source, opts Options, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	pre := prep.Prepare(db, minsup, prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderOriginal})
	ctl := mining.Guarded(opts.Done, opts.Guard)
	return minePrepared(pre, minsup, opts.Target, ctl, rep)
}

// minePrepared is the Eclat search on an already preprocessed database.
func minePrepared(pre *prep.Prepared, minsup int, target Target, ctl *mining.Control, rep result.Reporter) error {
	pdb := pre.DB
	if pdb.NumItems() == 0 {
		return nil
	}

	m := &eclatMiner{
		minsup: minsup,
		target: target,
		pre:    pre,
		db:     pdb,
		rep:    rep,
		ctl:    ctl,
	}
	if target == Maximal {
		// Mine closed sets into a buffer and post-filter: the maximal
		// frequent sets are the closed sets without closed proper
		// supersets.
		m.target = Closed
		var buf result.Set
		m.rep = buf.Collect()
		if err := m.run(pdb); err != nil {
			return err
		}
		maximal := result.FilterMaximal(&buf)
		for _, p := range maximal.Patterns {
			rep.Report(p.Items, p.Support)
		}
		return nil
	}
	return m.run(pdb)
}

type eclatMiner struct {
	minsup int
	target Target
	pre    *prep.Prepared
	db     *txdb.DB
	rep    result.Reporter
	ctl    *mining.Control
	cfi    result.CFITree

	ker *tidset.Kernel
	// Depth-indexed pools: the extension and perfect-item buffers of one
	// recursion level, reused across that level's siblings.
	extBufs  [][]ext
	perfBufs []itemset.Set
}

func (m *eclatMiner) run(pdb *txdb.DB) error {
	m.ker = tidset.NewKernel(pdb.KernelUniverse())
	sets := pdb.KernelSets()
	root := make([]ext, 0, len(sets))
	for i := range sets {
		// Prepare already removed infrequent items.
		root = append(root, ext{item: itemset.Item(i), set: sets[i]})
	}
	prefix := make(itemset.Set, 0, 32)
	return m.mine(0, prefix, root)
}

// extend builds the frequent extensions of prefix ∪ {e.item}: e's tid
// set intersected with each remaining sibling's, under the minsup bound
// so hopeless merges stop early. For the Closed target, siblings whose
// intersection keeps e's whole tid set are split off as perfect
// extensions (§2.2) instead of becoming child nodes. Results live in the
// depth-scoped arena and buffers; in steady state a call allocates
// nothing.
func (m *eclatMiner) extend(depth int, e *ext, rest []ext) ([]ext, itemset.Set) {
	ar := m.ker.Level(depth)
	ar.Reset() // the previous sibling's subtree is dead
	for len(m.extBufs) <= depth {
		m.extBufs = append(m.extBufs, nil)
		m.perfBufs = append(m.perfBufs, nil)
	}
	next := m.extBufs[depth][:0]
	perfect := m.perfBufs[depth][:0]
	for j := range rest {
		f := &rest[j]
		shared, ok := m.ker.Intersect(ar, &e.set, &f.set, m.minsup)
		if !ok {
			continue
		}
		if m.target == Closed && shared.Card() == e.set.Card() {
			perfect = append(perfect, f.item)
			continue
		}
		next = append(next, ext{item: f.item, set: shared})
	}
	m.extBufs[depth] = next
	m.perfBufs[depth] = perfect
	return next, perfect
}

// mine processes one search node: prefix with the frequent extensions
// exts (each carrying the tid set of prefix ∪ {item}).
func (m *eclatMiner) mine(depth int, prefix itemset.Set, exts []ext) error {
	for idx := range exts {
		e := &exts[idx]
		if err := m.ctl.Tick(); err != nil {
			return err
		}
		supp := e.set.Support()
		m.ctl.CountOps(len(exts) - idx - 1) // tid-set intersections below
		next, perfect := m.extend(depth, e, exts[idx+1:])
		st := m.ker.DrainStats()
		m.ctl.CountKernel(st.Isects, st.EarlyStops, st.Switches)

		switch m.target {
		case All:
			m.emit(append(prefix, e.item), supp)
			if len(next) > 0 {
				if err := m.mine(depth+1, append(prefix, e.item), next); err != nil {
					return err
				}
			}
		case Closed:
			cand := make(itemset.Set, 0, len(prefix)+1+len(perfect))
			cand = append(cand, prefix...)
			cand = append(cand, e.item)
			cand = append(cand, perfect...)
			canon := itemset.New(cand...)
			if m.cfi.Subsumed(canon, supp) {
				// A previously found closed superset with equal support
				// exists; this branch cannot contain closed sets.
				continue
			}
			m.cfi.Insert(canon, supp)
			m.emit(canon, supp)
			if len(next) > 0 {
				if err := m.mine(depth+1, canon.Clone(), next); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (m *eclatMiner) emit(items itemset.Set, supp int) {
	m.rep.Report(m.pre.DecodeSet(items), supp)
}
