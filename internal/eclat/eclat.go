// Package eclat implements the Eclat algorithm (Zaki et al.): depth-first
// search over the item set lattice with a vertical database representation
// in which every search node carries the transaction id set of its prefix,
// and extensions are found by intersecting tid sets. Besides the classic
// "all frequent item sets" target it offers closed and maximal targets;
// the closed target uses the same closure-candidate + repository scheme as
// FP-close (package fpgrowth), adapted to Eclat's ascending processing
// order.
package eclat

import (
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/txdb"
)

// Target selects what Mine reports.
//
// Deprecated: Target and its constants are aliases for the shared
// engine.Target; the zero value is Closed (it used to be All).
type Target = engine.Target

const (
	// All reports every frequent item set.
	All = engine.All
	// Closed reports the closed frequent item sets.
	Closed = engine.Closed
	// Maximal reports the maximal frequent item sets.
	Maximal = engine.Maximal
)

// Options configures the miner.
type Options struct {
	// MinSupport is the absolute minimum support; values < 1 act as 1.
	MinSupport int
	// Target selects closed (default), all, or maximal sets.
	Target Target
	// Done optionally cancels the run.
	Done <-chan struct{}
	// Guard optionally bounds the run (deadline and pattern budget). May
	// be nil.
	Guard *guard.Guard
}

// ext is one extension candidate at a search node: an item and the tid
// set of prefix ∪ {item}.
type ext struct {
	item itemset.Item
	tids []int32
}

// Mine runs Eclat on db, reporting patterns in original item codes.
func Mine(db txdb.Source, opts Options, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	pre := prep.Prepare(db, minsup, prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderOriginal})
	ctl := mining.Guarded(opts.Done, opts.Guard)
	return minePrepared(pre, minsup, opts.Target, ctl, rep)
}

// minePrepared is the Eclat search on an already preprocessed database.
func minePrepared(pre *prep.Prepared, minsup int, target Target, ctl *mining.Control, rep result.Reporter) error {
	pdb := pre.DB
	if pdb.NumItems() == 0 {
		return nil
	}

	m := &eclatMiner{
		minsup: minsup,
		target: target,
		pre:    pre,
		db:     pdb,
		rep:    rep,
		ctl:    ctl,
	}
	if target == Maximal {
		// Mine closed sets into a buffer and post-filter: the maximal
		// frequent sets are the closed sets without closed proper
		// supersets.
		m.target = Closed
		var buf result.Set
		m.rep = buf.Collect()
		if err := m.run(pdb); err != nil {
			return err
		}
		maximal := result.FilterMaximal(&buf)
		for _, p := range maximal.Patterns {
			rep.Report(p.Items, p.Support)
		}
		return nil
	}
	return m.run(pdb)
}

type eclatMiner struct {
	minsup int
	target Target
	pre    *prep.Prepared
	db     *txdb.DB
	rep    result.Reporter
	ctl    *mining.Control
	cfi    result.CFITree
}

func (m *eclatMiner) run(pdb *txdb.DB) error {
	vert := pdb.Vertical()
	root := make([]ext, 0, pdb.NumItems())
	for i := 0; i < pdb.NumItems(); i++ {
		// Prepare already removed infrequent items.
		root = append(root, ext{item: itemset.Item(i), tids: vert.Tids[i]})
	}
	prefix := make(itemset.Set, 0, 32)
	return m.mine(prefix, root)
}

// mine processes one search node: prefix with the frequent extensions
// exts (each carrying the tid set of prefix ∪ {item}).
func (m *eclatMiner) mine(prefix itemset.Set, exts []ext) error {
	for idx, e := range exts {
		if err := m.ctl.Tick(); err != nil {
			return err
		}
		supp := m.db.TidsWeight(e.tids)
		m.ctl.CountOps(len(exts) - idx - 1) // tid-list intersections below

		// Intersect with the remaining extensions.
		var next []ext
		var perfect itemset.Set
		for _, f := range exts[idx+1:] {
			shared := intersectTids(e.tids, f.tids)
			if m.db.TidsWeight(shared) < m.minsup {
				continue
			}
			if m.target == Closed && len(shared) == len(e.tids) {
				// f.item is a perfect extension of prefix ∪ {e.item}:
				// absorb it into the closure candidate instead of
				// enumerating both halves of the split (§2.2).
				perfect = append(perfect, f.item)
				continue
			}
			next = append(next, ext{item: f.item, tids: shared})
		}

		switch m.target {
		case All:
			m.emit(append(prefix, e.item), supp)
			if len(next) > 0 {
				if err := m.mine(append(prefix, e.item), next); err != nil {
					return err
				}
			}
		case Closed:
			cand := make(itemset.Set, 0, len(prefix)+1+len(perfect))
			cand = append(cand, prefix...)
			cand = append(cand, e.item)
			cand = append(cand, perfect...)
			canon := itemset.New(cand...)
			if m.cfi.Subsumed(canon, supp) {
				// A previously found closed superset with equal support
				// exists; this branch cannot contain closed sets.
				continue
			}
			m.cfi.Insert(canon, supp)
			m.emit(canon, supp)
			if len(next) > 0 {
				if err := m.mine(canon.Clone(), next); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (m *eclatMiner) emit(items itemset.Set, supp int) {
	m.rep.Report(m.pre.DecodeSet(items), supp)
}

func intersectTids(a, b []int32) []int32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]int32, 0, n)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
