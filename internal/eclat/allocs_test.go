package eclat

import (
	"math/rand"
	"testing"

	"repro/internal/itemset"
	"repro/internal/prep"
	"repro/internal/tidset"
	"repro/internal/txdb"
)

// TestEclatLevelAllocs pins the steady-state allocation budget of one
// Eclat recursion level at zero: after a warm-up descent has sized the
// kernel's arenas and the depth-scoped extension buffers, building all
// frequent extensions of a node (the entire per-node intersection work)
// must not allocate. Any per-intersection make() reintroduced into the
// kernel or the miners trips this immediately; the CI smoke step runs it
// on every push.
func TestEclatLevelAllocs(t *testing.T) {
	// The reference workload of the kernel benchmarks: a dense Bernoulli
	// database where intersections are long enough that a stray per-call
	// allocation cannot hide in noise.
	const rows, items = 1000, 32
	rng := rand.New(rand.NewSource(7))
	b := txdb.NewBuilder(rows, rows*items/2)
	b.SetNumItems(items)
	row := make(itemset.Set, 0, items)
	for k := 0; k < rows; k++ {
		row = row[:0]
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.5 {
				row = append(row, itemset.Item(i))
			}
		}
		b.AddRow(row)
	}
	pre := prep.Prepare(b.Build(), 1, prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderOriginal})
	pdb := pre.DB

	m := &eclatMiner{minsup: rows / 4, target: Closed, pre: pre, db: pdb}
	m.ker = tidset.NewKernel(pdb.KernelUniverse())
	sets := pdb.KernelSets()
	root := make([]ext, 0, len(sets))
	for i := range sets {
		root = append(root, ext{item: itemset.Item(i), set: sets[i]})
	}

	// Warm-up: size arenas and buffers once (chunks are retained).
	m.extend(0, &root[0], root[1:])

	allocs := testing.AllocsPerRun(20, func() {
		for idx := range root[:8] {
			m.extend(0, &root[idx], root[idx+1:])
		}
	})
	if allocs != 0 {
		t.Fatalf("one eclat recursion level allocated %.0f times, want 0", allocs)
	}
}
