package eclat

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/naive"
	"repro/internal/result"
)

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

func bruteAllFrequent(db *dataset.Database, minsup int) *result.Set {
	var out result.Set
	items := make(itemset.Set, 0, db.Items)
	for mask := 1; mask < 1<<uint(db.Items); mask++ {
		items = items[:0]
		for i := 0; i < db.Items; i++ {
			if mask&(1<<uint(i)) != 0 {
				items = append(items, itemset.Item(i))
			}
		}
		if supp := result.Support(db, items); supp >= minsup {
			out.Add(items, supp)
		}
	}
	return &out
}

func TestAllMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 60; trial++ {
		items := 2 + rng.Intn(7)
		n := 1 + rng.Intn(10)
		db := randDB(rng, items, n, 0.2+rng.Float64()*0.5)
		for _, minsup := range []int{1, 2} {
			want := bruteAllFrequent(db, minsup)
			var got result.Set
			if err := Mine(db, Options{MinSupport: minsup, Target: All}, got.Collect()); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("eclat(all) mismatch (minsup=%d db=%v):\n%s", minsup, db.Trans, got.Diff(want, 10))
			}
		}
	}
}

// bruteMaximal derives the maximal frequent sets from the closed oracle.
func bruteMaximal(db *dataset.Database, minsup int) (*result.Set, error) {
	closed, err := naive.ClosedByTransactionSubsets(db, minsup)
	if err != nil {
		return nil, err
	}
	return result.FilterMaximal(closed), nil
}

func TestMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	for trial := 0; trial < 60; trial++ {
		items := 2 + rng.Intn(8)
		n := 1 + rng.Intn(12)
		db := randDB(rng, items, n, 0.2+rng.Float64()*0.5)
		minsup := 1 + rng.Intn(3)
		want, err := bruteMaximal(db, minsup)
		if err != nil {
			t.Fatal(err)
		}
		var got result.Set
		if err := Mine(db, Options{MinSupport: minsup, Target: Maximal}, got.Collect()); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("eclat(maximal) mismatch (minsup=%d db=%v):\n%s", minsup, db.Trans, got.Diff(want, 10))
		}
		// Semantic spot check: no reported set is a subset of another.
		for i := range got.Patterns {
			for j := range got.Patterns {
				if i != j && got.Patterns[i].Items.SubsetOf(got.Patterns[j].Items) {
					t.Fatalf("maximal output contains nested sets: %v ⊆ %v",
						got.Patterns[i].Items, got.Patterns[j].Items)
				}
			}
		}
	}
}

func TestEdgeCasesAndCancel(t *testing.T) {
	var got result.Set
	if err := Mine(&dataset.Database{Items: 2}, Options{MinSupport: 1}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty db")
	}

	bad := &dataset.Database{Items: 1, Trans: []itemset.Set{{3}}}
	if err := Mine(bad, Options{MinSupport: 1}, &result.Counter{}); err == nil {
		t.Fatal("expected validation error")
	}

	done := make(chan struct{})
	close(done)
	db := randDB(rand.New(rand.NewSource(11)), 40, 150, 0.4)
	err := Mine(db, Options{MinSupport: 2, Done: done}, &result.Counter{})
	if err != mining.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
