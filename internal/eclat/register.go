package eclat

import (
	"repro/internal/engine"
	"repro/internal/prep"
	"repro/internal/result"
)

func init() {
	engine.Register(engine.Registration{
		Name:    "eclat",
		Doc:     "depth-first tid-list intersection with a CFI repository for closed output (Zaki et al.)",
		Targets: []engine.Target{engine.Closed, engine.All, engine.Maximal},
		Prep:    prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderOriginal},
		Order:   50,
		Mine: func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
			return minePrepared(pre, spec.MinSupport, spec.Target, spec.Control(), rep)
		},
	})
}
