// Branch-level access to the table-based search, used by the parallel
// miner (internal/parallel): the top-level include-branches of the
// enumeration of §3.1.2 are independent subproblems except for the shared
// repository, so they can run on separate workers with per-worker
// repositories as long as the duplicate (and partial-support) reports this
// produces are merged afterwards. Every set a branch reports is an
// intersection of actual transactions — hence closed — and the branch
// rooted at the first transaction of a set's cover reports it with its
// full support, so a keep-the-maximum merge per item set reconstructs the
// sequential result exactly (see result.MaxMerger).
package carpenter

import (
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/prep"
	"repro/internal/result"
)

// TableBranch is one top-level include-branch of the table-based search:
// the subproblem that intersects transaction First into the root item base
// and continues scanning at First+1.
type TableBranch struct {
	// First is the index of the branch's first transaction.
	First int
	// items is the root intersection after item elimination.
	items []itemset.Item
}

// TableBrancher precomputes the top-level branches of the table-based
// search over a prepared database and lets workers explore them
// independently.
type TableBrancher struct {
	pre    *prep.Prepared
	matrix [][]int32
	suffW  []int
	minsup int
	n      int
	elim   bool
}

// NewTableBrancher builds the brancher. pre must come from prep.Prepare
// with the minsup used here.
func NewTableBrancher(pre *prep.Prepared, minsup int, disableElimination bool) *TableBrancher {
	if minsup < 1 {
		minsup = 1
	}
	return &TableBrancher{
		pre:    pre,
		matrix: pre.DB.Matrix().M,
		suffW:  suffixWeights(pre.DB),
		minsup: minsup,
		n:      pre.DB.NumTx(),
		elim:   !disableElimination,
	}
}

// Branches enumerates the top-level include-branches in transaction order,
// mirroring the root loop of the sequential search: it stops early when no
// remaining branch can reach the minimum support, and when a transaction
// contains the whole item base (a perfect extension at the root, after
// which the sequential loop breaks too). Branches with an empty root
// intersection are skipped.
func (b *TableBrancher) Branches() []TableBranch {
	root := make([]itemset.Item, b.pre.DB.NumItems())
	for i := range root {
		root[i] = itemset.Item(i)
	}
	var out []TableBranch
	for j := 0; j < b.n; j++ {
		if b.suffW[j] < b.minsup {
			break
		}
		row := b.matrix[j]
		matched := 0
		child := make([]itemset.Item, 0, len(root))
		for _, it := range root {
			if cnt := row[it]; cnt > 0 {
				matched++
				if !b.elim || int(cnt) >= b.minsup {
					child = append(child, it)
				}
			}
		}
		if len(child) > 0 {
			out = append(out, TableBranch{First: j, items: child})
		}
		if matched == len(root) {
			break
		}
	}
	return out
}

// TableWorker explores branches with a private repository. A worker must
// process its branches in increasing First order (the repository-based
// subtree suppression is only valid when earlier branches were explored
// first, exactly as in the sequential scan); branches may be distributed
// across workers arbitrarily.
type TableWorker struct {
	m *miner
}

// NewWorker returns a fresh worker with its own repository and
// cancellation control on the shared guard g (which may be nil) feeding
// the shared counters (which may also be nil), so worker work shows up
// in the run's stats and progress; rep receives the worker's (possibly
// duplicate or partial-support) reports in prepared item codes decoded
// to original codes.
func (b *TableBrancher) NewWorker(done <-chan struct{}, g *guard.Guard, counters *mining.Counters, rep result.Reporter) *TableWorker {
	return &TableWorker{m: &miner{
		minsup: b.minsup,
		n:      b.n,
		elim:   b.elim,
		repo:   newRepoTree(b.pre.DB.NumItems()),
		db:     b.pre.DB,
		suffW:  b.suffW,
		pre:    b.pre,
		rep:    rep,
		ctl:    mining.GuardedCounted(done, g, counters),
		matrix: b.matrix,
	}}
}

// Explore runs one branch to completion. It returns mining.ErrCanceled if
// the worker's done channel fired, the guard's typed error if a budget
// tripped, and a *guard.PanicError if the branch panicked — the panic is
// contained here so a worker goroutine can never crash the process.
func (w *TableWorker) Explore(br TableBranch) (err error) {
	defer guard.Recover(&err)
	items := append([]itemset.Item(nil), br.items...)
	return w.m.exploreTable(items, w.m.db.Weight(br.First), br.First+1)
}
