package carpenter

import (
	"math/rand"
	"testing"

	"repro/internal/naive"
	"repro/internal/result"
)

// TestHashRepositoryEquivalence: the repository layout is an
// implementation detail and must never change the mined sets.
func TestHashRepositoryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(209))
	for trial := 0; trial < 50; trial++ {
		db := randDB(rng, 2+rng.Intn(9), 2+rng.Intn(12), 0.2+rng.Float64()*0.5)
		minsup := 1 + rng.Intn(3)
		want, err := naive.ClosedByTransactionSubsets(db, minsup)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []Variant{Lists, Table} {
			var got result.Set
			err := Mine(db, Options{MinSupport: minsup, Variant: v, HashRepository: true}, got.Collect())
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%v hash repo mismatch (minsup=%d db=%v):\n%s", v, minsup, db.Trans, got.Diff(want, 10))
			}
		}
	}
}
