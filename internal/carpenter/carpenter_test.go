package carpenter

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/naive"
	"repro/internal/prep"
	"repro/internal/result"
)

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

// TestMineMatchesOracle checks both variants, with and without item
// elimination, against the brute-force oracle.
func TestMineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 120; trial++ {
		items := 2 + rng.Intn(10)
		n := 1 + rng.Intn(14)
		db := randDB(rng, items, n, 0.1+rng.Float64()*0.6)
		for _, minsup := range []int{1, 2, 3, n/2 + 1} {
			want, err := naive.ClosedByTransactionSubsets(db, minsup)
			if err != nil {
				t.Fatal(err)
			}
			for _, variant := range []Variant{Lists, Table} {
				for _, noElim := range []bool{false, true} {
					var got result.Set
					err := Mine(db, Options{
						MinSupport:         minsup,
						Variant:            variant,
						DisableElimination: noElim,
					}, got.Collect())
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Fatalf("%v elim=%v mismatch (minsup=%d db=%v):\n%s",
							variant, !noElim, minsup, db.Trans, got.Diff(want, 10))
					}
				}
			}
		}
	}
}

// TestVariantsMatchIsTaLarger cross-checks both Carpenter variants against
// IsTa on databases too large for the oracle.
func TestVariantsMatchIsTaLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 6; trial++ {
		db := randDB(rng, 40+rng.Intn(40), 40+rng.Intn(60), 0.15+rng.Float64()*0.25)
		minsup := 2 + rng.Intn(6)
		var want result.Set
		if err := core.Mine(db, core.Options{MinSupport: minsup}, want.Collect()); err != nil {
			t.Fatal(err)
		}
		for _, variant := range []Variant{Lists, Table} {
			var got result.Set
			if err := Mine(db, Options{MinSupport: minsup, Variant: variant}, got.Collect()); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(&want) {
				t.Fatalf("%v disagrees with IsTa (minsup=%d):\n%s", variant, minsup, got.Diff(&want, 10))
			}
		}
		if err := result.Verify(db, &want, minsup); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMineOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 25; trial++ {
		db := randDB(rng, 2+rng.Intn(8), 2+rng.Intn(10), 0.2+rng.Float64()*0.5)
		minsup := 1 + rng.Intn(3)
		want, err := naive.ClosedByTransactionSubsets(db, minsup)
		if err != nil {
			t.Fatal(err)
		}
		for _, io := range []prep.ItemOrder{prep.OrderAscFreq, prep.OrderDescFreq, prep.OrderKeep} {
			for _, to := range []prep.TransOrder{prep.OrderSizeAsc, prep.OrderSizeDesc, prep.OrderOriginal} {
				var got result.Set
				err := Mine(db, Options{MinSupport: minsup, ItemOrder: io, TransOrder: to, Variant: Table}, got.Collect())
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("(%v,%v) wrong result (minsup=%d db=%v):\n%s", io, to, minsup, db.Trans, got.Diff(want, 10))
				}
			}
		}
	}
}

func TestMineEdgeCases(t *testing.T) {
	var got result.Set
	if err := Mine(&dataset.Database{Items: 3}, Options{MinSupport: 1}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty db should yield nothing")
	}

	// minsup larger than n short-circuits.
	db := dataset.FromInts([]int{0, 1}, []int{0, 1})
	got = result.Set{}
	if err := Mine(db, Options{MinSupport: 3}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("minsup > n should yield nothing")
	}

	// Duplicate transactions.
	got = result.Set{}
	if err := Mine(db, Options{MinSupport: 2}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	var want result.Set
	want.Add(itemset.FromInts(0, 1), 2)
	if !got.Equal(&want) {
		t.Fatalf("duplicates: %s", got.Diff(&want, 5))
	}

	bad := &dataset.Database{Items: 1, Trans: []itemset.Set{{3}}}
	if err := Mine(bad, Options{MinSupport: 1}, &result.Counter{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestMineCancel(t *testing.T) {
	done := make(chan struct{})
	close(done)
	db := randDB(rand.New(rand.NewSource(5)), 60, 120, 0.4)
	for _, v := range []Variant{Lists, Table} {
		err := Mine(db, Options{MinSupport: 2, Variant: v, Done: done}, &result.Counter{})
		if err != mining.ErrCanceled {
			t.Fatalf("%v: err = %v, want ErrCanceled", v, err)
		}
	}
}

func TestRepoTree(t *testing.T) {
	r := newRepoTree(10)
	sets := []itemset.Set{
		itemset.FromInts(1),
		itemset.FromInts(1, 2),
		itemset.FromInts(1, 2, 5),
		itemset.FromInts(0, 9),
		itemset.FromInts(2),
	}
	for i, s := range sets {
		if r.Contains(s) {
			t.Fatalf("set %v contained before insert", s)
		}
		r.Insert(s)
		if r.Len() != i+1 {
			t.Fatalf("Len = %d", r.Len())
		}
		if !r.Contains(s) {
			t.Fatalf("set %v missing after insert", s)
		}
	}
	// Prefixes of stored sets that were not inserted themselves.
	if r.Contains(itemset.FromInts(0)) {
		t.Error("{0} is a prefix, not a stored set")
	}
	if r.Contains(itemset.FromInts(1, 5)) {
		t.Error("{1,5} skips an item and was never stored")
	}
	// Re-insert does not double count.
	r.Insert(itemset.FromInts(1, 2))
	if r.Len() != len(sets) {
		t.Fatalf("Len after re-insert = %d", r.Len())
	}
}

func TestRepoTreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	for trial := 0; trial < 40; trial++ {
		r := newRepoTree(14)
		stored := map[string]bool{}
		for i := 0; i < 60; i++ {
			s := randNonEmptySet(rng, 14, 6)
			if rng.Intn(2) == 0 {
				r.Insert(s)
				stored[s.Key()] = true
			}
			if got, want := r.Contains(s), stored[s.Key()]; got != want {
				t.Fatalf("Contains(%v) = %v, want %v", s, got, want)
			}
		}
	}
}

func randNonEmptySet(rng *rand.Rand, universe, maxLen int) itemset.Set {
	for {
		n := 1 + rng.Intn(maxLen)
		items := make([]itemset.Item, n)
		for i := range items {
			items[i] = itemset.Item(rng.Intn(universe))
		}
		s := itemset.New(items...)
		if len(s) > 0 {
			return s
		}
	}
}
