package carpenter

import (
	"repro/internal/engine"
	"repro/internal/prep"
	"repro/internal/result"
)

func init() {
	for _, v := range []Variant{Table, Lists} {
		variant := v
		doc := "transaction set enumeration over the counter matrix of Table 1 (§3.1.2)"
		order := 10
		if variant == Lists {
			doc = "transaction set enumeration over per-item tid lists (§3.1.1)"
			order = 11
		}
		engine.Register(engine.Registration{
			Name:    variant.String(),
			Doc:     doc,
			Targets: []engine.Target{engine.Closed},
			Prep:    prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderSizeAsc},
			Order:   order,
			Mine: func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
				return minePrepared(pre, spec.MinSupport, variant, false, false, spec.Control(), rep)
			},
		})
	}
}
