// Package carpenter implements the two improved Carpenter variants of
// §3.1 of the paper: transaction-set enumeration with a list-based
// (vertical) database representation and with the table (matrix)
// representation of Table 1. Both share the repository prefix tree used to
// recognise item sets that were already reported from an enumeration
// branch starting at an earlier transaction.
package carpenter

import "repro/internal/itemset"

// repository is what the search needs from the store of already reported
// closed item sets: exact-set membership.
type repository interface {
	Contains(s itemset.Set) bool
	Insert(s itemset.Set)
	Len() int
}

// hashRepo is the ablation alternative to the prefix tree: a hash map on
// the canonical set encoding. Every lookup hashes the full set.
type hashRepo struct{ m map[string]bool }

func newHashRepo() *hashRepo { return &hashRepo{m: make(map[string]bool)} }

func (r *hashRepo) Contains(s itemset.Set) bool { return r.m[s.Key()] }
func (r *hashRepo) Insert(s itemset.Set)        { r.m[s.Key()] = true }
func (r *hashRepo) Len() int                    { return len(r.m) }

// repoTree is the repository of already reported closed item sets
// (§3.1.1). Its top level is a flat array over all items — important
// because the data sets Carpenter targets have very many items and an
// almost fully populated top level, where a sibling list would degenerate.
// Deeper levels are sparse and use sibling lists.
type repoTree struct {
	top []*repoNode // indexed by the first (lowest) item of the set
	n   int
}

type repoNode struct {
	item     itemset.Item
	terminal bool
	sibling  *repoNode
	children *repoNode
}

func newRepoTree(items int) *repoTree {
	return &repoTree{top: make([]*repoNode, items)}
}

// Len returns the number of stored sets.
func (r *repoTree) Len() int { return r.n }

// Contains reports whether exactly the set s was stored before. s must be
// non-empty and canonical.
func (r *repoTree) Contains(s itemset.Set) bool {
	node := r.top[s[0]]
	if node == nil {
		return false
	}
	for _, it := range s[1:] {
		node = findSibling(node.children, it)
		if node == nil {
			return false
		}
	}
	return node.terminal
}

// Insert stores the set s. s must be non-empty and canonical.
func (r *repoTree) Insert(s itemset.Set) {
	node := r.top[s[0]]
	if node == nil {
		node = &repoNode{item: s[0]}
		r.top[s[0]] = node
	}
	for _, it := range s[1:] {
		next := findSibling(node.children, it)
		if next == nil {
			next = &repoNode{item: it, sibling: node.children}
			node.children = next
		}
		node = next
	}
	if !node.terminal {
		node.terminal = true
		r.n++
	}
}

func findSibling(head *repoNode, it itemset.Item) *repoNode {
	for n := head; n != nil; n = n.sibling {
		if n.item == it {
			return n
		}
	}
	return nil
}
