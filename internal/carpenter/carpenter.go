package carpenter

import (
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/txdb"
)

// Variant selects the database representation of §3.1.
type Variant int

const (
	// Lists is the list-based implementation (§3.1.1): a vertical
	// representation with per-item transaction index lists and per-branch
	// positions into them.
	Lists Variant = iota
	// Table is the table-based implementation (§3.1.2): the n×|B| matrix
	// of Table 1, whose entries answer membership and the remaining-
	// occurrence count in one lookup.
	Table
)

func (v Variant) String() string {
	if v == Table {
		return "carpenter-table"
	}
	return "carpenter-lists"
}

// Options configures the Carpenter miner. The zero value uses the
// list-based variant with the paper's default preprocessing and item
// elimination enabled.
type Options struct {
	// MinSupport is the absolute minimum support; values < 1 act as 1.
	MinSupport int
	// Variant selects lists or table representation.
	Variant Variant
	// ItemOrder / TransOrder select the preprocessing (§3.4).
	ItemOrder  prep.ItemOrder
	TransOrder prep.TransOrder
	// DisableElimination turns off the item elimination optimization
	// ("this optimization leads to a considerable speed-up", §3.1.1). It
	// never changes the result.
	DisableElimination bool
	// HashRepository replaces the prefix-tree repository of §3.1.1 with a
	// plain hash map keyed on the canonical set encoding. It never
	// changes the result; it exists for the repository-layout ablation.
	HashRepository bool
	// Done optionally cancels the run.
	Done <-chan struct{}
	// Guard optionally bounds the run (deadline, pattern budget, and
	// repository size via its node budget). May be nil.
	Guard *guard.Guard
}

// Mine enumerates transaction sets per §3.1 and reports every closed item
// set with support at least opts.MinSupport in original item codes.
func Mine(db txdb.Source, opts Options, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	pre := prep.Prepare(db, minsup, prep.Config{Items: opts.ItemOrder, Trans: opts.TransOrder})
	ctl := mining.Guarded(opts.Done, opts.Guard)
	return minePrepared(pre, minsup, opts.Variant, opts.DisableElimination, opts.HashRepository, ctl, rep)
}

// minePrepared is the Carpenter search on an already preprocessed
// database.
func minePrepared(pre *prep.Prepared, minsup int, variant Variant, disableElimination, hashRepository bool, ctl *mining.Control, rep result.Reporter) error {
	pdb := pre.DB
	if pdb.NumItems() == 0 || pdb.TotalWeight() < minsup {
		return nil
	}

	m := &miner{
		minsup: minsup,
		n:      pdb.NumTx(),
		elim:   !disableElimination,
		db:     pdb,
		suffW:  suffixWeights(pdb),
		pre:    pre,
		rep:    rep,
		ctl:    ctl,
	}
	if hashRepository {
		m.repo = newHashRepo()
	} else {
		m.repo = newRepoTree(pdb.NumItems())
	}
	if variant == Table {
		m.matrix = pdb.Matrix().M
	} else {
		m.tids = pdb.Vertical().Tids
		if !pdb.Uniform() {
			m.remW = remainingWeights(pdb, m.tids)
		}
	}

	// The root subproblem is (B, ∅, 1): the full item base, nothing
	// intersected yet.
	if variant == Table {
		root := make([]itemset.Item, pdb.NumItems())
		for i := range root {
			root[i] = itemset.Item(i)
		}
		return m.exploreTable(root, 0, 0)
	}
	root := make([]ip, pdb.NumItems())
	for i := range root {
		root[i] = ip{item: itemset.Item(i)}
	}
	return m.exploreLists(root, 0, 0)
}

// suffixWeights returns s with s[j] = total weight of rows j..n-1, the
// weighted version of the "transactions left to scan" bound (with uniform
// weights s[j] = n-j exactly).
func suffixWeights(db *txdb.DB) []int {
	n := db.NumTx()
	s := make([]int, n+1)
	for j := n - 1; j >= 0; j-- {
		s[j] = s[j+1] + db.Weight(j)
	}
	return s
}

// remainingWeights precomputes, for every item, the weighted suffix sums
// of its tid list: remW[i][p] = total weight of tids[i][p:]. Only needed
// for weighted databases; uniform ones read list lengths directly.
func remainingWeights(db *txdb.DB, tids [][]int32) [][]int32 {
	remW := make([][]int32, len(tids))
	for i, tl := range tids {
		r := make([]int32, len(tl)+1)
		for p := len(tl) - 1; p >= 0; p-- {
			r[p] = r[p+1] + int32(db.Weight(int(tl[p])))
		}
		remW[i] = r
	}
	return remW
}

type miner struct {
	minsup int
	n      int
	elim   bool
	repo   repository
	db     *txdb.DB
	suffW  []int // suffW[j] = total weight of rows j..n-1
	pre    *prep.Prepared
	rep    result.Reporter
	ctl    *mining.Control

	tids   [][]int32 // lists variant
	remW   [][]int32 // lists variant, weighted databases only
	matrix [][]int32 // table variant

	scratch itemset.Set // reusable buffer for repository lookups/reports
}

// ip is one item of the current intersection in the lists variant,
// carrying the branch-local position into the item's transaction list
// (the "next unprocessed transaction index" of §3.1.1).
type ip struct {
	item itemset.Item
	pos  int32
}

// exploreLists processes the subproblem whose intersection is items
// (ascending item order; positions point at the first transaction index
// ≥ ell in each list) with weight(K) = kSize, scanning transactions
// ell..n-1. All counts are weighted; with uniform weights they are the
// paper's transaction counts exactly.
func (m *miner) exploreLists(items []ip, kSize, ell int) error {
	perfectSeen := false
	for j := ell; j < m.n && len(items) > 0; j++ {
		if err := m.ctl.Tick(); err != nil {
			return err
		}
		m.ctl.CountOps(1) // one transaction intersection per scan step
		// Neither this node nor anything below can reach minsup anymore.
		if kSize+m.suffW[j] < m.minsup {
			break
		}
		// Intersect with transaction j: keep the items whose list
		// contains j, applying item elimination (§3.1.1): an item whose
		// remaining occurrences cannot lift weight(K)+w_j to minsup is
		// dropped.
		wj := m.db.Weight(j)
		matched := 0
		child := make([]ip, 0, len(items))
		for _, it := range items {
			tl := m.tids[it.item]
			if int(it.pos) < len(tl) && tl[it.pos] == int32(j) {
				matched++
				if !m.elim || kSize+m.remaining(it.item, int(it.pos)) >= m.minsup {
					child = append(child, ip{item: it.item, pos: it.pos + 1})
				}
			}
		}
		perfect := matched == len(items)
		if len(child) > 0 && !m.repo.Contains(m.setOf(child)) {
			if err := m.exploreLists(child, kSize+wj, j+1); err != nil {
				return err
			}
		}
		if perfect {
			// Perfect extension (I1 == I0): the exclude branch cannot
			// produce reportable output; moreover this node's set is
			// contained in t_j, so it is reported deeper, not here.
			perfectSeen = true
			break
		}
		// Advance the scan positions past j for the next iteration.
		for i := range items {
			tl := m.tids[items[i].item]
			if int(items[i].pos) < len(tl) && tl[items[i].pos] == int32(j) {
				items[i].pos++
			}
		}
	}
	if !perfectSeen && kSize >= m.minsup {
		m.report(m.setOf(items), kSize)
	}
	return nil
}

// setOf extracts the item codes of a lists-variant state into a reusable
// scratch buffer (valid until the next setOf call).
func (m *miner) setOf(items []ip) itemset.Set {
	m.scratch = m.scratch[:0]
	for _, it := range items {
		m.scratch = append(m.scratch, it.item)
	}
	return m.scratch
}

// remaining returns the weighted count of the not-yet-scanned
// transactions containing item (its tid list from pos on), the
// item-elimination counter of §3.1.1.
func (m *miner) remaining(item itemset.Item, pos int) int {
	if m.remW == nil {
		return len(m.tids[item]) - pos
	}
	return int(m.remW[item][pos])
}

// exploreTable is the same search over the matrix representation: items
// holds the current intersection (ascending), membership and remaining
// counts come from M[j][i].
func (m *miner) exploreTable(items []itemset.Item, kSize, ell int) error {
	perfectSeen := false
	for j := ell; j < m.n && len(items) > 0; j++ {
		if err := m.ctl.Tick(); err != nil {
			return err
		}
		m.ctl.CountOps(1) // one transaction intersection per scan step
		if kSize+m.suffW[j] < m.minsup {
			break
		}
		row := m.matrix[j]
		matched := 0
		child := make([]itemset.Item, 0, len(items))
		for _, it := range items {
			if cnt := row[it]; cnt > 0 {
				matched++
				if !m.elim || kSize+int(cnt) >= m.minsup {
					child = append(child, it)
				}
			}
		}
		perfect := matched == len(items)
		if len(child) > 0 && !m.repo.Contains(child) {
			if err := m.exploreTable(child, kSize+m.db.Weight(j), j+1); err != nil {
				return err
			}
		}
		if perfect {
			perfectSeen = true
			break
		}
	}
	if !perfectSeen && kSize >= m.minsup {
		m.report(itemset.Set(items), kSize)
	}
	return nil
}

// report emits the set (after a final repository check — the set may have
// been inserted by a sibling branch through a different transaction
// prefix) and records it in the repository. The repository size is
// polled against the guard's node budget; a tripped budget surfaces at
// the caller's next Tick.
func (m *miner) report(s itemset.Set, support int) {
	if len(s) == 0 {
		return
	}
	if m.repo.Contains(s) {
		return
	}
	m.repo.Insert(s)
	if m.ctl.PollNodes(m.repo.Len()) != nil {
		return
	}
	m.rep.Report(m.pre.DecodeSet(s), support)
}
