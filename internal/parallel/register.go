package parallel

import (
	"runtime"

	"repro/internal/engine"
	"repro/internal/prep"
	"repro/internal/result"
)

// init attaches the parallel engines to the already-registered sequential
// miners. The sequential registrations exist by now because this package
// imports internal/core and internal/carpenter, whose inits run first.
func init() {
	engine.RegisterParallel("ista", func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
		workers := spec.Workers
		if workers < 1 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers <= 1 {
			reg, _ := engine.Lookup("ista")
			return reg.Mine(pre, spec, rep)
		}
		return minePreparedIsTa(pre, runCfg{
			minsup: spec.MinSupport, workers: workers,
			done: spec.Done, g: spec.Guard,
			ctl: spec.Control(), run: spec.Observer(), policy: spec.Retry,
		}, rep)
	})
	engine.RegisterParallel("carpenter-table", func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
		workers := spec.Workers
		if workers < 1 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers <= 1 {
			reg, _ := engine.Lookup("carpenter-table")
			return reg.Mine(pre, spec, rep)
		}
		return minePreparedCarpenter(pre, runCfg{
			minsup: spec.MinSupport, workers: workers,
			done: spec.Done, g: spec.Guard,
			ctl: spec.Control(), run: spec.Observer(), policy: spec.Retry,
		}, rep)
	})
}
