package parallel

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/mining"
	"repro/internal/result"
)

// TestParallelWorkerPanicDrains injects a panic into the cooperative tick
// path — it fires inside the shard workers — and checks both engines
// surface a *guard.PanicError while draining their pools completely.
func TestParallelWorkerPanicDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	db := randDB(rng, 18, 160, 0.35)
	engines := []struct {
		name string
		mine func() error
	}{
		{"ista", func() error {
			return MineIsTa(db, Options{MinSupport: 2, Workers: 4}, &result.Counter{})
		}},
		{"carpenter-table", func() error {
			return MineCarpenterTable(db, Options{MinSupport: 2, Workers: 4}, &result.Counter{})
		}},
	}
	for _, e := range engines {
		t.Run(e.name, func(t *testing.T) {
			defer faultinject.LeakCheck(t)()
			restore := faultinject.PanicAtTick(20)
			defer restore()
			err := e.mine()
			var pe *guard.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *guard.PanicError", err)
			}
			if _, ok := pe.Value.(faultinject.TickFault); !ok {
				t.Fatalf("panic value = %#v, want TickFault", pe.Value)
			}
		})
	}
}

// TestParallelCancellationDrains re-runs the pre-closed-done cancellation
// of TestParallelCancellation under the leak checker: the worker pools of
// both engines must drain to the baseline goroutine count.
func TestParallelCancellationDrains(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	rng := rand.New(rand.NewSource(31))
	db := randDB(rng, 20, 200, 0.3)
	done := make(chan struct{})
	close(done)
	if err := MineIsTa(db, Options{MinSupport: 2, Workers: 8, Done: done}, &result.Counter{}); !errors.Is(err, mining.ErrCanceled) {
		t.Fatalf("ista: err = %v, want ErrCanceled", err)
	}
	if err := MineCarpenterTable(db, Options{MinSupport: 2, Workers: 8, Done: done}, &result.Counter{}); !errors.Is(err, mining.ErrCanceled) {
		t.Fatalf("carpenter: err = %v, want ErrCanceled", err)
	}
}

// TestParallelDeadlineDrains: an already-expired guard deadline must stop
// both engines with ErrDeadline and leave no goroutines behind.
func TestParallelDeadlineDrains(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	rng := rand.New(rand.NewSource(37))
	db := randDB(rng, 20, 200, 0.3)
	g := guard.New(guard.Budget{Deadline: time.Now().Add(-time.Second)})
	if err := MineIsTa(db, Options{MinSupport: 2, Workers: 8, Guard: g}, &result.Counter{}); !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("ista: err = %v, want ErrDeadline", err)
	}
	if err := MineCarpenterTable(db, Options{MinSupport: 2, Workers: 8, Guard: g}, &result.Counter{}); !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("carpenter: err = %v, want ErrDeadline", err)
	}
}
