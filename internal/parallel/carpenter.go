package parallel

import (
	"sync"
	"time"

	"repro/internal/carpenter"
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/txdb"
)

// MineCarpenterTable runs the table-based Carpenter search with its
// top-level transaction-set branches fanned out across opts.Workers
// goroutines. Each worker owns a private repository, so branches that the
// sequential shared repository would have suppressed are re-explored and
// re-reported (possibly with the partial support counted from the
// branch's own starting transaction); the final keep-the-maximum merge
// per item set reconstructs the sequential pattern set exactly — every
// branch report is an intersection of transactions and hence closed, and
// the branch rooted at the first transaction of a set's cover reports its
// full support. The merged output is emitted in canonical order, which
// makes it deterministic regardless of scheduling.
func MineCarpenterTable(db txdb.Source, opts Options, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	workers := opts.workers()
	if workers <= 1 {
		return carpenter.Mine(db, carpenter.Options{
			MinSupport: minsup,
			Variant:    carpenter.Table,
			ItemOrder:  opts.ItemOrder,
			TransOrder: opts.TransOrder,
			Done:       opts.Done,
			Guard:      opts.Guard,
		}, rep)
	}

	ctl := mining.Guarded(opts.Done, opts.Guard)
	pre := prep.Prepare(db, minsup, prep.Config{Items: opts.ItemOrder, Trans: opts.TransOrder})
	return minePreparedCarpenter(pre, runCfg{
		minsup: minsup, workers: workers,
		done: opts.Done, g: opts.Guard, ctl: ctl, policy: opts.Retry,
	}, rep)
}

// minePreparedCarpenter is the branch-parallel table Carpenter on an
// already preprocessed database. cfg.done/cfg.g are needed separately
// from cfg.ctl because each worker builds a private control on them
// (sharing ctl's Counters, so worker work shows up in the run's stats
// and progress); cfg.run, when non-nil, receives the merge-phase span;
// cfg.policy, when enabled, supervises failed branch workers.
func minePreparedCarpenter(pre *prep.Prepared, cfg runCfg, rep result.Reporter) error {
	minsup, workers := cfg.minsup, cfg.workers
	done, g, ctl, run := cfg.done, cfg.g, cfg.ctl, cfg.run
	if pre.DB.NumItems() == 0 || pre.DB.TotalWeight() < minsup {
		return nil
	}
	if err := ctl.Tick(); err != nil {
		return err
	}
	counters := ctl.Counters()

	brancher := carpenter.NewTableBrancher(pre, minsup, false)
	branches := brancher.Branches()

	// Round-robin assignment keeps each worker's branches in increasing
	// first-transaction order, which the per-worker repository reuse
	// requires, and is deterministic (though the merge would make any
	// assignment deterministic).
	merged := make([]*result.MaxMerger, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Contain panics (Explore recovers its own, but the merger and
			// loop around it run here too): the pool drains through the
			// WaitGroup — workers share no channels — and the panic
			// surfaces as a *guard.PanicError from firstError.
			defer guard.Recover(&errs[w])
			m := result.NewMaxMerger()
			merged[w] = m
			worker := brancher.NewWorker(done, g, counters, result.ReporterFunc(
				func(items itemset.Set, supp int) { m.Add(items, supp) }))
			for b := w; b < len(branches); b += workers {
				if err := worker.Explore(branches[b]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Supervision: re-explore each failed worker's branch group
	// sequentially per the retry policy — into a fresh merger, replacing
	// the worker's partial one only on success, so a healed group
	// contributes exactly once. A group that stays failed keeps its
	// partial merger (every branch report is an intersection of
	// transactions and hence genuinely closed, with its support a lower
	// bound), and the run returns a typed partial result after emission.
	// With the zero policy any failure aborts exactly as before; a
	// deliberate stop aborts even with healing on.
	if !cfg.policy.Enabled() {
		if err := firstError(errs); err != nil {
			return err
		}
	}
	for _, err := range errs {
		if err != nil && stops(err) {
			return err
		}
	}
	var shardErrs []engine.ShardError
	degraded := 0
	for w := 0; w < workers; w++ {
		if errs[w] == nil {
			continue
		}
		healed, serr, stop := cfg.supervise("branch group", w, true, errs[w], func() (err error) {
			defer guard.Recover(&err)
			m := result.NewMaxMerger()
			worker := brancher.NewWorker(done, g, counters, result.ReporterFunc(
				func(items itemset.Set, supp int) { m.Add(items, supp) }))
			for b := w; b < len(branches); b += workers {
				if e := worker.Explore(branches[b]); e != nil {
					return e
				}
			}
			merged[w] = m
			return nil
		})
		switch {
		case stop != nil:
			return stop
		case !healed:
			shardErrs = append(shardErrs, *serr)
			degraded++
		}
	}
	if degraded == workers {
		return &engine.PartialError{Shards: shardErrs}
	}

	// Fold the per-worker merges into one and emit canonically.
	mergeStart := time.Now()
	total := result.NewMaxMerger()
	for _, m := range merged {
		if m == nil {
			continue
		}
		m.Emit(1, result.ReporterFunc(func(items itemset.Set, supp int) {
			total.Add(items, supp)
		}))
	}
	if err := ctl.Tick(); err != nil {
		return err
	}
	total.Emit(minsup, rep)
	run.Span(obs.PhaseMerge, mergeStart)
	if len(shardErrs) > 0 {
		return &engine.PartialError{Shards: shardErrs}
	}
	return nil
}
