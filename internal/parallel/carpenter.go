package parallel

import (
	"sync"
	"time"

	"repro/internal/carpenter"
	"repro/internal/dataset"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/prep"
	"repro/internal/result"
)

// MineCarpenterTable runs the table-based Carpenter search with its
// top-level transaction-set branches fanned out across opts.Workers
// goroutines. Each worker owns a private repository, so branches that the
// sequential shared repository would have suppressed are re-explored and
// re-reported (possibly with the partial support counted from the
// branch's own starting transaction); the final keep-the-maximum merge
// per item set reconstructs the sequential pattern set exactly — every
// branch report is an intersection of transactions and hence closed, and
// the branch rooted at the first transaction of a set's cover reports its
// full support. The merged output is emitted in canonical order, which
// makes it deterministic regardless of scheduling.
func MineCarpenterTable(db *dataset.Database, opts Options, rep result.Reporter) error {
	if err := db.Validate(); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	workers := opts.workers()
	if workers <= 1 {
		return carpenter.Mine(db, carpenter.Options{
			MinSupport: minsup,
			Variant:    carpenter.Table,
			ItemOrder:  opts.ItemOrder,
			TransOrder: opts.TransOrder,
			Done:       opts.Done,
			Guard:      opts.Guard,
		}, rep)
	}

	ctl := mining.Guarded(opts.Done, opts.Guard)
	pre := prep.Prepare(db, minsup, prep.Config{Items: opts.ItemOrder, Trans: opts.TransOrder})
	return minePreparedCarpenter(pre, minsup, workers, opts.Done, opts.Guard, ctl, nil, rep)
}

// minePreparedCarpenter is the branch-parallel table Carpenter on an
// already preprocessed database. done/g are needed separately from ctl
// because each worker builds a private control on them (sharing ctl's
// Counters, so worker work shows up in the run's stats and progress);
// run, when non-nil, receives the merge-phase span.
func minePreparedCarpenter(pre *prep.Prepared, minsup, workers int, done <-chan struct{}, g *guard.Guard, ctl *mining.Control, run *obs.Run, rep result.Reporter) error {
	if pre.DB.Items == 0 || len(pre.DB.Trans) < minsup {
		return nil
	}
	if err := ctl.Tick(); err != nil {
		return err
	}
	counters := ctl.Counters()

	brancher := carpenter.NewTableBrancher(pre, minsup, false)
	branches := brancher.Branches()

	// Round-robin assignment keeps each worker's branches in increasing
	// first-transaction order, which the per-worker repository reuse
	// requires, and is deterministic (though the merge would make any
	// assignment deterministic).
	merged := make([]*result.MaxMerger, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Contain panics (Explore recovers its own, but the merger and
			// loop around it run here too): the pool drains through the
			// WaitGroup — workers share no channels — and the panic
			// surfaces as a *guard.PanicError from firstError.
			defer guard.Recover(&errs[w])
			m := result.NewMaxMerger()
			merged[w] = m
			worker := brancher.NewWorker(done, g, counters, result.ReporterFunc(
				func(items itemset.Set, supp int) { m.Add(items, supp) }))
			for b := w; b < len(branches); b += workers {
				if err := worker.Explore(branches[b]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return err
	}

	// Fold the per-worker merges into one and emit canonically.
	mergeStart := time.Now()
	total := result.NewMaxMerger()
	for _, m := range merged {
		m.Emit(1, result.ReporterFunc(func(items itemset.Set, supp int) {
			total.Add(items, supp)
		}))
	}
	if err := ctl.Tick(); err != nil {
		return err
	}
	total.Emit(minsup, rep)
	run.Span(obs.PhaseMerge, mergeStart)
	return nil
}
