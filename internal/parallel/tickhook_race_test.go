package parallel

import (
	"sync"
	"testing"

	"repro/internal/gendata"
	"repro/internal/mining"
	"repro/internal/result"
)

// TestTickHookInstallDuringParallelMine is the regression test for the
// tick-hook data race: installing and removing the global hook while
// parallel miners are running (many worker controls ticking) used to be
// an unsynchronized write racing unsynchronized reads. With the hook
// held atomically and sampled once per control, this loop is clean under
// -race, the mined pattern sets stay correct, and a hook installed
// mid-run never fires in controls created before it (and so cannot
// corrupt a result).
func TestTickHookInstallDuringParallelMine(t *testing.T) {
	db := gendata.Quest(gendata.QuestConfig{
		Transactions: 400, Items: 40, AvgLen: 8, Patterns: 12, AvgPatternLen: 4, Seed: 21,
	})
	const minsup = 8
	want := seqIsTa(t, db, minsup)

	stop := make(chan struct{})
	var togglers sync.WaitGroup
	for g := 0; g < 2; g++ {
		togglers.Add(1)
		go func() {
			defer togglers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				restore := mining.SetTickHook(func() error { return nil })
				restore()
			}
		}()
	}

	for trial := 0; trial < 20; trial++ {
		var out result.Set
		if err := MineIsTa(db, Options{MinSupport: minsup, Workers: 4}, out.Collect()); err != nil {
			t.Fatal(err)
		}
		if !out.Equal(want) {
			t.Fatalf("trial %d: pattern set diverged while the hook was toggled:\n%s", trial, out.Diff(want, 10))
		}
	}
	close(stop)
	togglers.Wait()
}
