package parallel

import (
	"math/rand"
	"testing"

	"repro/internal/carpenter"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gendata"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/result"
	"repro/internal/txdb"
)

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var raw []int
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				raw = append(raw, i)
			}
		}
		trans[k] = itemset.FromInts(raw...)
	}
	return dataset.New(trans, items)
}

func seqIsTa(t *testing.T, db txdb.Source, minsup int) *result.Set {
	t.Helper()
	var out result.Set
	if err := core.Mine(db, core.Options{MinSupport: minsup}, out.Collect()); err != nil {
		t.Fatal(err)
	}
	return &out
}

func parIsTa(t *testing.T, db txdb.Source, minsup, workers int) *result.Set {
	t.Helper()
	var out result.Set
	if err := MineIsTa(db, Options{MinSupport: minsup, Workers: workers}, out.Collect()); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestIsTaMatchesSequentialRandom cross-checks the sharded miner against
// the sequential one over many random shapes, worker counts, and support
// levels.
func TestIsTaMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		items := 3 + rng.Intn(10)
		n := 1 + rng.Intn(40)
		db := randDB(rng, items, n, 0.15+rng.Float64()*0.5)
		minsup := 1 + rng.Intn(5)
		workers := 2 + rng.Intn(6)

		want := seqIsTa(t, db, minsup)
		got := parIsTa(t, db, minsup, workers)
		if !got.Equal(want) {
			t.Fatalf("trial %d (items=%d n=%d minsup=%d workers=%d):\n%s",
				trial, items, n, minsup, workers, got.Diff(want, 10))
		}
	}
}

// TestIsTaMatchesSequentialGendata cross-checks on the paper-shaped
// workloads, including the gene-expression shape in both orientations.
func TestIsTaMatchesSequentialGendata(t *testing.T) {
	exprM := gendata.Expression(gendata.ExpressionConfig{Genes: 120, Conditions: 24, Modules: 5, Seed: 9})
	cases := []struct {
		name   string
		db     *txdb.DB
		minsup int
	}{
		// NCBI60/Thrombin-shaped data (few, very dense transactions) is
		// deliberately absent: shards must mine at minimum support 1 with
		// pruning off, which explodes on dense rows — that regime belongs
		// to the Carpenter engine (see TestCarpenterTableGendata).
		{"yeast", gendata.Yeast(0.03, 1), 4},
		{"webview", gendata.WebView(0.04, 3), 6},
		{"quest", gendata.Quest(gendata.QuestConfig{Transactions: 600, Items: 40, AvgLen: 8, Patterns: 12, AvgPatternLen: 4, Seed: 4}), 12},
		{"expr-conditions", gendata.Discretize(exprM, 0.2, 0.2, gendata.ConditionsAsTransactions), 5},
		{"expr-genes", gendata.Discretize(exprM, 0.2, 0.2, gendata.GenesAsTransactions), 10},
	}
	for _, c := range cases {
		want := seqIsTa(t, c.db, c.minsup)
		for _, workers := range []int{2, 4, 8} {
			got := parIsTa(t, c.db, c.minsup, workers)
			if !got.Equal(want) {
				t.Fatalf("%s at %d workers:\n%s", c.name, workers, got.Diff(want, 10))
			}
		}
	}
}

// TestCarpenterTableMatchesSequential cross-checks the branch-parallel
// Carpenter search against the sequential table variant.
func TestCarpenterTableMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		items := 3 + rng.Intn(10)
		n := 1 + rng.Intn(24)
		db := randDB(rng, items, n, 0.2+rng.Float64()*0.5)
		minsup := 1 + rng.Intn(4)
		workers := 2 + rng.Intn(6)

		var want result.Set
		if err := carpenter.Mine(db, carpenter.Options{MinSupport: minsup, Variant: carpenter.Table}, want.Collect()); err != nil {
			t.Fatal(err)
		}
		var got result.Set
		if err := MineCarpenterTable(db, Options{MinSupport: minsup, Workers: workers}, got.Collect()); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(&want) {
			t.Fatalf("trial %d (items=%d n=%d minsup=%d workers=%d):\n%s",
				trial, items, n, minsup, workers, got.Diff(&want, 10))
		}
	}
}

// TestCarpenterTableGendata runs the dense few-transaction shapes
// Carpenter targets.
func TestCarpenterTableGendata(t *testing.T) {
	cases := []struct {
		name   string
		db     *txdb.DB
		minsup int
	}{
		{"ncbi60", gendata.NCBI60(0.25, 5), 48},
		{"thrombin", gendata.Thrombin(0.008, 6), 56},
	}
	for _, c := range cases {
		var want result.Set
		if err := carpenter.Mine(c.db, carpenter.Options{MinSupport: c.minsup, Variant: carpenter.Table}, want.Collect()); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			var got result.Set
			if err := MineCarpenterTable(c.db, Options{MinSupport: c.minsup, Workers: workers}, got.Collect()); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(&want) {
				t.Fatalf("%s at %d workers:\n%s", c.name, workers, got.Diff(&want, 10))
			}
		}
	}
}

// TestDeterministicEmissionOrder: two runs with the same options must
// produce byte-identical pattern streams (not just equal sets), for both
// engines — the determinism guarantee documented in the README.
func TestDeterministicEmissionOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db := randDB(rng, 14, 60, 0.35)
	for _, workers := range []int{2, 5} {
		run := func(mine func(txdb.Source, Options, result.Reporter) error) []result.Pattern {
			var seq []result.Pattern
			err := mine(db, Options{MinSupport: 3, Workers: workers}, result.ReporterFunc(
				func(items itemset.Set, supp int) {
					seq = append(seq, result.Pattern{Items: items.Clone(), Support: supp})
				}))
			if err != nil {
				t.Fatal(err)
			}
			return seq
		}
		for name, mine := range map[string]func(txdb.Source, Options, result.Reporter) error{
			"ista": MineIsTa, "carpenter-table": MineCarpenterTable,
		} {
			a, b := run(mine), run(mine)
			if len(a) != len(b) {
				t.Fatalf("%s: runs emitted %d vs %d patterns", name, len(a), len(b))
			}
			for i := range a {
				if a[i].Support != b[i].Support || !a[i].Items.Equal(b[i].Items) {
					t.Fatalf("%s: emission order differs at %d: %v vs %v", name, i, a[i], b[i])
				}
			}
		}
	}
}

// TestParallelCancellation: a pre-closed done channel must surface
// ErrCanceled promptly from both engines at any worker count.
func TestParallelCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := randDB(rng, 20, 200, 0.3)
	done := make(chan struct{})
	close(done)
	for _, workers := range []int{1, 2, 8} {
		if err := MineIsTa(db, Options{MinSupport: 2, Workers: workers, Done: done}, &result.Counter{}); err != mining.ErrCanceled {
			t.Fatalf("ista %d workers: err = %v, want ErrCanceled", workers, err)
		}
		if err := MineCarpenterTable(db, Options{MinSupport: 2, Workers: workers, Done: done}, &result.Counter{}); err != mining.ErrCanceled {
			t.Fatalf("carpenter %d workers: err = %v, want ErrCanceled", workers, err)
		}
	}
}

// TestWorkerCountEdgeCases: more workers than transactions, single
// transactions, and empty databases must all behave.
func TestWorkerCountEdgeCases(t *testing.T) {
	empty := dataset.New(nil, 0)
	if err := MineIsTa(empty, Options{MinSupport: 1, Workers: 8}, &result.Counter{}); err != nil {
		t.Fatal(err)
	}
	if err := MineCarpenterTable(empty, Options{MinSupport: 1, Workers: 8}, &result.Counter{}); err != nil {
		t.Fatal(err)
	}

	one := dataset.FromInts([]int{1, 3, 5})
	want := seqIsTa(t, one, 1)
	got := parIsTa(t, one, 1, 16)
	if !got.Equal(want) {
		t.Fatalf("single transaction, 16 workers:\n%s", got.Diff(want, 10))
	}

	rng := rand.New(rand.NewSource(19))
	db := randDB(rng, 8, 5, 0.5)
	want = seqIsTa(t, db, 2)
	got = parIsTa(t, db, 2, 32)
	if !got.Equal(want) {
		t.Fatalf("5 transactions, 32 workers:\n%s", got.Diff(want, 10))
	}
}

// TestResultsVerifySemantics double-checks the parallel output against the
// database-level closedness and support definitions, independent of the
// sequential miner.
func TestResultsVerifySemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := randDB(rng, 12, 50, 0.4)
	var out result.Set
	if err := MineIsTa(db, Options{MinSupport: 3, Workers: 4}, out.Collect()); err != nil {
		t.Fatal(err)
	}
	if err := result.Verify(db, &out, 3); err != nil {
		t.Fatal(err)
	}
}
