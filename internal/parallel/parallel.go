// Package parallel implements multi-worker versions of the two
// intersection miners, with a deterministic merge: for any fixed input and
// options the reported pattern set is identical to the sequential miner's
// (the test suite cross-checks this), regardless of scheduling and worker
// count.
//
// Parallel IsTa shards the prepared transaction list across workers, each
// of which runs the cumulative intersection scheme (§3.2 of the paper) on
// its shard with a private prefix tree. The shard results are merged by
// replaying every shard's closed sets as support-weighted transactions
// (core.Tree.AddWeighted) into a merge tree: the closed sets of the full
// database are intersections of per-shard closed sets, so the merge tree's
// nodes form a complete closure-candidate family. Candidate supports are
// then recomputed exactly against the prepared database and the
// non-closed candidates are removed with the same-support subsumption
// filter of internal/result. See DESIGN.md ("Parallel mining") for why
// this reconstruction is exact.
//
// Parallel Carpenter-table fans the top-level transaction-set branches of
// §3.1.2 out to a bounded worker pool with per-worker repositories
// (carpenter.TableBrancher) and merges the per-worker reports with a
// keep-the-maximum pass (result.MaxMerger).
package parallel

import (
	"runtime"

	"repro/internal/guard"
	"repro/internal/prep"
	"repro/internal/retry"
)

// Options configures the parallel miners.
type Options struct {
	// MinSupport is the absolute minimum support; values < 1 act as 1.
	MinSupport int
	// Workers is the number of worker goroutines; values < 1 select
	// runtime.GOMAXPROCS(0). With one worker the sequential miner runs
	// unchanged.
	Workers int
	// ItemOrder / TransOrder select the preprocessing (§3.4), as in the
	// sequential miners.
	ItemOrder  prep.ItemOrder
	TransOrder prep.TransOrder
	// Done optionally cancels the run across all workers; the miner then
	// returns mining.ErrCanceled.
	Done <-chan struct{}
	// Guard optionally bounds the run: the deadline and pattern budget
	// apply to the run as a whole, the node budget to each worker's
	// private tree/repository. May be nil.
	Guard *guard.Guard
	// Retry enables the self-healing supervisor: a failed shard or branch
	// worker is re-mined sequentially up to Retry.MaxAttempts times, then
	// abandoned into a typed partial result (*engine.PartialError). The
	// zero value keeps fail-stop behavior.
	Retry retry.Policy
}

// firstError folds a per-worker error slice into the error the engine
// returns: a contained worker panic (*guard.PanicError) takes precedence
// over cooperative stops (cancellation, budget), then first worker order
// breaks ties deterministically.
func firstError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if _, ok := err.(*guard.PanicError); ok {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// workers resolves the worker count.
func (o Options) workers() int {
	if o.Workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}
