package parallel

import (
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/tidset"
	"repro/internal/txdb"
)

// MineIsTa runs IsTa sharded across opts.Workers goroutines and reports
// every closed item set with support at least opts.MinSupport, in the
// database's original item codes. The reported pattern set is identical to
// core.Mine's on the same options; the emission order is deterministic but
// differs from the sequential traversal order.
func MineIsTa(db txdb.Source, opts Options, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	workers := opts.workers()
	if workers <= 1 {
		return core.Mine(db, core.Options{
			MinSupport: minsup,
			ItemOrder:  opts.ItemOrder,
			TransOrder: opts.TransOrder,
			Done:       opts.Done,
			Guard:      opts.Guard,
		}, rep)
	}

	ctl := mining.Guarded(opts.Done, opts.Guard)
	pre := prep.Prepare(db, minsup, prep.Config{Items: opts.ItemOrder, Trans: opts.TransOrder})
	return minePreparedIsTa(pre, runCfg{
		minsup: minsup, workers: workers,
		done: opts.Done, g: opts.Guard, ctl: ctl, policy: opts.Retry,
	}, rep)
}

// splitByWork cuts the prepared database into workers contiguous zero-copy
// range views with roughly equal total item counts (the work a cumulative
// intersection pass is proportional to). Contiguous views share the
// prepared columns — no per-shard transaction copying — and because the
// merge phase is order-insensitive, balancing by work instead of
// round-robin row dealing changes nothing about the result.
func splitByWork(db *txdb.DB, workers int) []*txdb.DB {
	n := db.NumTx()
	total := db.NumIds()
	shards := make([]*txdb.DB, workers)
	lo := 0
	acc := 0
	for w := 0; w < workers; w++ {
		// Cut when the running item count reaches the w+1-th share.
		target := (total * (w + 1)) / workers
		hi := lo
		for hi < n && (acc < target || w == workers-1) {
			acc += db.Len(hi)
			hi++
		}
		shards[w] = db.Slice(lo, hi)
		lo = hi
	}
	return shards
}

// minePreparedIsTa is the sharded IsTa engine on an already preprocessed
// database. cfg.done/cfg.g are needed separately from cfg.ctl because
// each worker builds a private control on them (sharing ctl's Counters,
// so worker work shows up in the run's stats and progress); cfg.run,
// when non-nil, receives the merge-phase span; cfg.policy, when
// enabled, supervises failed shards (sequential re-mines, then
// degradation to a typed partial result).
func minePreparedIsTa(pre *prep.Prepared, cfg runCfg, rep result.Reporter) error {
	minsup, workers := cfg.minsup, cfg.workers
	done, g, ctl, run := cfg.done, cfg.g, cfg.ctl, cfg.run
	pdb := pre.DB
	if pdb.NumItems() == 0 {
		return nil
	}
	if err := ctl.Tick(); err != nil {
		return err
	}

	// Phase 1: cut the prepared transactions into contiguous zero-copy
	// range views balanced by work and mine every shard with a private
	// tree. A globally frequent set X has shard support (weight) at least
	// minsup - (W - W_i) — the other shards can contribute at most their
	// total weight — so each shard may mine (and prune) at that floor; it
	// degrades to 1 on many-transaction workloads, where no shard-local
	// threshold above 1 is sound.
	totalW := pdb.TotalWeight()
	counters := ctl.Counters()
	shards := splitByWork(pdb, workers)
	patterns := make([][]result.Pattern, workers) // shard-closed sets, prepared codes
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Contain panics: a crashing worker must not take down the
			// process. The pool drains through the WaitGroup — workers
			// share no channels, so no goroutine can block forever — and
			// the panic surfaces as a *guard.PanicError from firstError.
			defer guard.Recover(&errs[w])
			floor := minsup - (totalW - shards[w].TotalWeight())
			if floor < 1 {
				floor = 1
			}
			patterns[w], errs[w] = mineShard(shards[w], floor, done, g, counters)
		}(w)
	}
	wg.Wait()

	// Supervision (the degradation ladder): re-mine each failed shard
	// sequentially per the retry policy; a shard that stays failed is
	// abandoned and the run continues over the covered shards only,
	// returning a typed partial result at the end. With the zero policy
	// any failure aborts the run exactly as before (panic containment
	// first, then first worker order). A deliberate stop anywhere aborts
	// even with healing on — retrying others would only re-observe the
	// latched cancellation or budget trip.
	if !cfg.policy.Enabled() {
		if err := firstError(errs); err != nil {
			return err
		}
	}
	for _, err := range errs {
		if err != nil && stops(err) {
			return err
		}
	}
	covered := make([]bool, workers)
	for w := range covered {
		covered[w] = errs[w] == nil
	}
	var shardErrs []engine.ShardError
	for w := 0; w < workers; w++ {
		if errs[w] == nil {
			continue
		}
		healed, serr, stop := cfg.supervise("shard", w, true, errs[w], func() (err error) {
			defer guard.Recover(&err)
			floor := minsup - (totalW - shards[w].TotalWeight())
			if floor < 1 {
				floor = 1
			}
			var e error
			patterns[w], e = mineShard(shards[w], floor, done, g, counters)
			if err == nil {
				err = e
			}
			return err
		})
		switch {
		case stop != nil:
			return stop
		case healed:
			covered[w] = true
		default:
			shardErrs = append(shardErrs, *serr)
		}
	}
	if len(shardErrs) == workers {
		// Nothing survived: no covered sub-database exists, so there is no
		// valid result prefix to build. Report the loss without touching
		// the merge phases.
		return &engine.PartialError{Shards: shardErrs}
	}
	mergeStart := time.Now()

	// Phase 2: build the merge tree. Every closed set of the full
	// database is an intersection of shard-closed sets (one per shard
	// that covers it), and replaying the shard results through the
	// cumulative intersection pass creates a node for every such
	// intersection. Node supports are NOT exact — the weighted replay
	// sums shard supports, which overlap between nested closed sets of
	// the same shard — but they over-count: a node's weighted support is
	// at least the set's true support, so pruning the merge tree at
	// minsup (with remain counts in replay weights) is sound and keeps
	// the pass tractable; the surviving nodes are still a complete
	// closure-candidate family for the frequent closed sets. Identical
	// sets from different shards are combined up front by summing their
	// weights — exactly equivalent to replaying both — and the replay
	// runs in ascending set size, the fast order of §3.4.
	// A shard whose closed-set count exceeds its row count gained
	// nothing from closure "compression" (common on sparse basket data);
	// replaying its raw rows at their own weights is cheaper and its
	// contribution to every node's weighted support becomes exact —
	// cl_i(X) is then itself an intersection of replayed transactions, so
	// candidate completeness is unaffected.
	type wpat struct {
		items  itemset.Set
		weight int
	}
	index := make(map[string]int)
	var replay []wpat
	addReplay := func(s itemset.Set, weight int) {
		k := s.Key()
		if i, ok := index[k]; ok {
			replay[i].weight += weight
		} else {
			index[k] = len(replay)
			replay = append(replay, wpat{s, weight})
		}
	}
	for w, shard := range patterns {
		if !covered[w] {
			continue
		}
		if len(shard) >= shards[w].NumTx() {
			for k, n := 0, shards[w].NumTx(); k < n; k++ {
				addReplay(shards[w].Tx(k), shards[w].Weight(k))
			}
			continue
		}
		for _, p := range shard {
			addReplay(p.Items, p.Support)
		}
	}
	sort.Slice(replay, func(i, j int) bool {
		if len(replay[i].items) != len(replay[j].items) {
			return len(replay[i].items) < len(replay[j].items)
		}
		return itemset.Compare(replay[i].items, replay[j].items) < 0
	})
	remain := make([]int, pdb.NumItems())
	for _, p := range replay {
		for _, it := range p.items {
			remain[it] += p.weight
		}
	}
	mtree := core.NewTree(pdb.NumItems())
	mtree.SetCancel(func() bool {
		return ctl.PollNodes(mtree.NodeCount()) != nil || ctl.Canceled()
	})
	lastPruneNodes := 0
	for _, p := range replay {
		if err := ctl.Tick(); err != nil {
			return err
		}
		ctl.CountOps(1) // one weighted replay insertion
		mtree.AddWeighted(p.items, p.weight)
		if mtree.Aborted() {
			return ctl.Cause()
		}
		if err := ctl.PollNodes(mtree.NodeCount()); err != nil {
			return err
		}
		for _, it := range p.items {
			remain[it] -= p.weight
		}
		if n := mtree.NodeCount(); n >= 4096 && n >= lastPruneNodes+lastPruneNodes/8 {
			mtree.Prune(remain, minsup)
			mtree.Compact()
			lastPruneNodes = mtree.NodeCount()
		}
	}
	var cands []itemset.Set
	mtree.Walk(func(s itemset.Set, _ int) {
		cands = append(cands, s)
	})
	if mtree.Aborted() {
		return ctl.Cause()
	}

	// Phase 3: recompute every candidate's support exactly against the
	// covered transactions (vertical tid-list intersection with an early
	// exit once the running weight drops below minsup), fanned out across
	// the workers again. Candidates are fixed before the fan-out and
	// results land in a preallocated slice, so scheduling cannot affect
	// the outcome. In a degraded run the count database holds only the
	// surviving shards' rows (rebuilt through the builder, weights and
	// all), so every computed support is exact over the covered
	// sub-database — a lower bound on the true support.
	countDB := pdb
	if len(shardErrs) > 0 {
		b := txdb.NewBuilder(0, 0)
		b.SetNumItems(pdb.NumItems())
		for w := range shards {
			if !covered[w] {
				continue
			}
			for k, n := 0, shards[w].NumTx(); k < n; k++ {
				b.AddWeighted(shards[w].Tx(k), shards[w].Weight(k))
			}
		}
		countDB = b.Build()
	}
	supp := make([]int, len(cands))
	countErrs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer guard.Recover(&countErrs[w])
			countErrs[w] = countStripe(countDB, cands, supp, w, workers, minsup, done, g, counters)
		}(w)
	}
	wg.Wait()
	// Recount failures are retried sequentially too, but never degraded:
	// dropping a recount stripe would leave candidate supports unknown,
	// breaking the exactness the closedness filter depends on, so a
	// stripe that stays failed aborts the run.
	for w := 0; w < workers; w++ {
		if countErrs[w] == nil {
			continue
		}
		healed, _, stop := cfg.supervise("recount stripe", w, false, countErrs[w], func() (err error) {
			defer guard.Recover(&err)
			if e := countStripe(countDB, cands, supp, w, workers, minsup, done, g, counters); err == nil {
				err = e
			}
			return err
		})
		if !healed {
			return stop
		}
	}

	// Phase 4: drop infrequent candidates and filter out the non-closed
	// ones: a candidate is closed iff no candidate strict superset has the
	// same (exact) support, and the closure of every frequent candidate is
	// itself a frequent candidate, so the same-support subsumption filter
	// leaves exactly the closed frequent sets.
	filt := result.NewSubsumeFilter()
	for i, s := range cands {
		if supp[i] >= minsup {
			filt.Add(s, supp[i])
		}
	}
	if err := ctl.Tick(); err != nil {
		return err
	}
	filt.Emit(result.ReporterFunc(func(s itemset.Set, support int) {
		rep.Report(pre.DecodeSet(s), support)
	}))
	run.Span(obs.PhaseMerge, mergeStart)
	if len(shardErrs) > 0 {
		// Everything reported above is valid — closed in the full database
		// (each pattern is an intersection of covered transactions) with
		// exact covered-sub-database support — but coverage is partial.
		return &engine.PartialError{Shards: shardErrs}
	}
	return nil
}

// countStripe recomputes the exact supports of the candidates assigned
// to worker stripe w (every workers-th candidate starting at w) against
// db's vertical view. Re-running a stripe is idempotent — supports land
// in preassigned slots — which is what lets the supervisor retry it.
func countStripe(db *txdb.DB, cands []itemset.Set, supp []int, w, workers, minsup int, done <-chan struct{}, g *guard.Guard, counters *mining.Counters) error {
	wctl := mining.GuardedCounted(done, g, counters)
	sets := db.KernelSets()
	// A flat kernel (no diffset results) because the ping-pong hold slots
	// below give intermediate sets no stable parent storage; its level-0
	// arena is reset per candidate, so a stripe recounts allocation-free.
	ker := tidset.NewFlatKernel(db.KernelUniverse())
	var hold [2]tidset.Set
	for i := w; i < len(cands); i += workers {
		if err := wctl.Tick(); err != nil {
			return err
		}
		wctl.CountOps(1) // one exact candidate recount
		supp[i] = countSupport(ker, sets, cands[i], minsup, &hold)
		st := ker.DrainStats()
		wctl.CountKernel(st.Isects, st.EarlyStops, st.Switches)
	}
	wctl.Flush()
	return nil
}

// mineShard runs the cumulative intersection scheme over one shard view
// and returns its closed sets with shard support at least minsup (the
// sound shard-local floor computed by the caller) in prepared item codes.
// When the floor exceeds 1 the standard item-elimination pruning applies
// shard-locally. The guard's node budget bounds this shard's private
// tree; the shared counters (may be nil) receive this shard's ops and
// checkpoint counts.
func mineShard(shard *txdb.DB, minsup int, done <-chan struct{}, g *guard.Guard, counters *mining.Counters) ([]result.Pattern, error) {
	ctl := mining.GuardedCounted(done, g, counters)
	items := shard.NumItems()
	n := shard.NumTx()
	tree := core.NewTree(items)
	tree.SetCancel(func() bool {
		return ctl.PollNodes(tree.NodeCount()) != nil || ctl.Canceled()
	})
	var remain []int
	if minsup > 1 {
		remain = make([]int, items)
		for k := 0; k < n; k++ {
			w := shard.Weight(k)
			for _, it := range shard.Tx(k) {
				remain[it] += w
			}
		}
	}
	lastPruneNodes := 0
	for k := 0; k < n; k++ {
		t := shard.Tx(k)
		w := shard.Weight(k)
		if err := ctl.Tick(); err != nil {
			return nil, err
		}
		ctl.CountOps(1) // one cumulative intersection pass per transaction
		tree.AddWeighted(t, w)
		if tree.Aborted() {
			return nil, ctl.Cause()
		}
		if err := ctl.PollNodes(tree.NodeCount()); err != nil {
			return nil, err
		}
		if remain == nil {
			continue
		}
		for _, it := range t {
			remain[it] -= w
		}
		if n := tree.NodeCount(); n >= 4096 && n >= lastPruneNodes+lastPruneNodes/8 {
			tree.Prune(remain, minsup)
			tree.Compact()
			lastPruneNodes = tree.NodeCount()
		}
	}
	var out []result.Pattern
	tree.Report(minsup, func(s itemset.Set, supp int) {
		out = append(out, result.Pattern{Items: s, Support: supp})
	})
	if tree.Aborted() {
		return nil, ctl.Cause()
	}
	ctl.Flush()
	return out, nil
}

// countSupport returns the exact weighted support of items in the
// kernel's database (sets are its per-item base sets), or 0 if it cannot
// reach minsup — the kernel's early-stopping bound is exact, so every
// abandoned intersection is genuinely below threshold and every value
// below minsup is equivalent for the caller. Intermediate sets ping-pong
// through hold; storage comes from the kernel's level-0 arena, reset here
// per call, so repeated calls do not allocate.
func countSupport(ker *tidset.Kernel, sets []tidset.Set, items itemset.Set, minsup int, hold *[2]tidset.Set) int {
	ar := ker.Level(0)
	ar.Reset()
	cur := &sets[items[0]] // borrowed; never written
	next := 0              // hold slot for the upcoming intersection
	for _, it := range items[1:] {
		res, ok := ker.Intersect(ar, cur, &sets[it], minsup)
		if !ok {
			return 0
		}
		hold[next] = res
		cur = &hold[next]
		next = 1 - next
	}
	if w := cur.Support(); w >= minsup {
		return w
	}
	return 0
}
