package parallel

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/retry"
)

// runCfg bundles the run context both parallel engines thread through
// their phases: the resolved support and worker count, the cancellation
// and budget machinery, the observation handle, and the retry policy of
// the self-healing supervisor (zero policy = fail-stop, today's
// behavior).
type runCfg struct {
	minsup  int
	workers int
	done    <-chan struct{}
	g       *guard.Guard
	ctl     *mining.Control
	run     *obs.Run
	policy  retry.Policy
}

// stops reports whether err is a deliberate stop — cooperative
// cancellation or a tripped guard budget. Stops abort the run and are
// never retried: the failure is the caller's own request, not a fault.
func stops(err error) bool {
	return errors.Is(err, mining.ErrCanceled) ||
		errors.Is(err, guard.ErrDeadline) ||
		errors.Is(err, guard.ErrBudget)
}

// retryable reports whether a worker failure is worth re-attempting:
// contained panics (the fault may be input-order- or timing-dependent)
// and errors classified transient. Stops and unclassified errors are
// permanent.
func retryable(err error) bool {
	if stops(err) {
		return false
	}
	var pe *guard.PanicError
	if errors.As(err, &pe) {
		return true
	}
	return retry.IsTransient(err)
}

// supervise is the degradation ladder for one failed work unit (a shard
// or a worker's branch group): re-run it sequentially up to the
// policy's attempt budget. kind names the unit in events; degradable
// selects what exhaustion means — abandon the unit into a typed
// per-unit report (the run continues and returns a partial result), or
// abort the whole run (for units like the recount stripes, whose loss
// would break the result's exactness rather than just its coverage).
//
// It returns exactly one of three outcomes: healed (the unit's result
// is valid again), a *engine.ShardError (the unit is abandoned and the
// run degrades), or a stop error that must abort the whole run — the
// failure was a deliberate stop, an unclassified permanent error, the
// policy is disabled, or a non-degradable unit exhausted its attempts.
func (c *runCfg) supervise(kind string, unit int, degradable bool, firstErr error, attempt func() error) (healed bool, serr *engine.ShardError, stop error) {
	if !c.policy.Enabled() || !retryable(firstErr) {
		return false, nil, firstErr
	}
	counters := c.ctl.Counters()
	err := firstErr
	for a := 1; a <= c.policy.MaxAttempts; a++ {
		if !c.policy.Sleep(c.done, a) {
			return false, nil, mining.ErrCanceled
		}
		counters.CountRetry()
		c.run.Note(obs.NoteRetry, fmt.Sprintf("%s %d attempt %d after: %v", kind, unit, a, err))
		if err = attempt(); err == nil {
			return true, nil, nil
		}
		if stops(err) || !retryable(err) {
			return false, nil, err
		}
	}
	if !degradable {
		return false, nil, err
	}
	counters.CountDegraded()
	c.run.Note(obs.NoteDegrade, fmt.Sprintf("%s %d abandoned after %d retries: %v", kind, unit, c.policy.MaxAttempts, err))
	return false, &engine.ShardError{Shard: unit, Attempts: c.policy.MaxAttempts, Err: err}, nil
}
