package prep

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/txdb"
)

// paperDB is the example transaction database from Table 1 of the paper,
// with a=0, b=1, c=2, d=3, e=4.
func paperDB() *dataset.Database {
	return dataset.FromInts(
		[]int{0, 1, 2},    // t1 = a b c
		[]int{0, 3, 4},    // t2 = a d e
		[]int{1, 2, 3},    // t3 = b c d
		[]int{0, 1, 2, 3}, // t4 = a b c d
		[]int{1, 2},       // t5 = b c
		[]int{0, 1, 3},    // t6 = a b d
		[]int{3, 4},       // t7 = d e
		[]int{2, 3, 4},    // t8 = c d e
	)
}

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

// rows materializes a prepared database's transactions for comparisons.
func rows(db *txdb.DB) []itemset.Set {
	out := make([]itemset.Set, db.NumTx())
	for k := range out {
		out[k] = db.Tx(k)
	}
	return out
}

func TestPrepareDropsInfrequent(t *testing.T) {
	db := paperDB()
	p := Prepare(db, 4, Config{Items: OrderAscFreq, Trans: OrderSizeAsc})
	// e has frequency 3 < 4 and must vanish.
	if p.DB.NumItems() != 4 {
		t.Fatalf("prepared universe = %d, want 4", p.DB.NumItems())
	}
	for _, orig := range p.Decode {
		if orig == 4 {
			t.Fatal("item e (4) should have been dropped")
		}
	}
	// Ascending frequency: a(4) < b(5) = c(5) < d(6); ties by original code.
	wantDecode := []itemset.Item{0, 1, 2, 3}
	if !reflect.DeepEqual(p.Decode, wantDecode) {
		t.Fatalf("decode = %v, want %v", p.Decode, wantDecode)
	}
	if !reflect.DeepEqual(p.Freq, []int{4, 5, 5, 6}) {
		t.Fatalf("freq = %v", p.Freq)
	}
	if p.OrigTransactions != 8 {
		t.Fatalf("OrigTransactions = %d", p.OrigTransactions)
	}
}

func TestPrepareDropsEmptyTransactions(t *testing.T) {
	db := dataset.FromInts([]int{0}, []int{1}, []int{0, 1}, []int{2})
	p := Prepare(db, 2, Config{Items: OrderAscFreq, Trans: OrderSizeAsc})
	// Item 2 is infrequent; its transaction becomes empty and is dropped.
	if p.DB.NumTx() != 3 {
		t.Fatalf("transactions = %d, want 3", p.DB.NumTx())
	}
	if p.OrigTransactions != 4 {
		t.Fatalf("OrigTransactions = %d, want 4", p.OrigTransactions)
	}
}

func TestPrepareTransactionOrder(t *testing.T) {
	db := dataset.FromInts([]int{0, 1, 2}, []int{0}, []int{1, 2}, []int{0, 2})
	p := Prepare(db, 1, Config{Items: OrderKeep, Trans: OrderSizeAsc})
	lens := []int{}
	for k := 0; k < p.DB.NumTx(); k++ {
		lens = append(lens, p.DB.Len(k))
	}
	if !reflect.DeepEqual(lens, []int{1, 2, 2, 3}) {
		t.Fatalf("lengths = %v", lens)
	}
	p = Prepare(db, 1, Config{Items: OrderKeep, Trans: OrderSizeDesc})
	lens = lens[:0]
	for k := 0; k < p.DB.NumTx(); k++ {
		lens = append(lens, p.DB.Len(k))
	}
	if !reflect.DeepEqual(lens, []int{3, 2, 2, 1}) {
		t.Fatalf("desc lengths = %v", lens)
	}
}

func TestPrepareItemOrderAsc(t *testing.T) {
	// freq: 0 -> 3, 1 -> 1, 2 -> 2
	db := dataset.FromInts([]int{0}, []int{0, 2}, []int{0, 1, 2})
	p := Prepare(db, 1, Config{Items: OrderAscFreq, Trans: OrderOriginal})
	// rarest first: item 1 (freq 1) -> code 0, item 2 -> code 1, item 0 -> 2.
	want := []itemset.Item{1, 2, 0}
	if !reflect.DeepEqual(p.Decode, want) {
		t.Fatalf("decode = %v, want %v", p.Decode, want)
	}
	// Transactions recoded and kept canonical.
	if !p.DB.Tx(2).Equal(itemset.FromInts(0, 1, 2)) {
		t.Fatalf("recoded transaction = %v", p.DB.Tx(2))
	}
	if !p.DB.Tx(1).Equal(itemset.FromInts(1, 2)) {
		t.Fatalf("recoded transaction = %v", p.DB.Tx(1))
	}
}

func TestPrepareItemOrderDesc(t *testing.T) {
	db := dataset.FromInts([]int{0}, []int{0, 2}, []int{0, 1, 2})
	p := Prepare(db, 1, Config{Items: OrderDescFreq, Trans: OrderOriginal})
	want := []itemset.Item{0, 2, 1}
	if !reflect.DeepEqual(p.Decode, want) {
		t.Fatalf("decode = %v, want %v", p.Decode, want)
	}
}

func TestDecodeSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		db := randDB(rng, 15, 12, 0.35)
		p := Prepare(db, 2, Config{Items: OrderAscFreq, Trans: OrderSizeAsc})
		for _, tr := range rows(p.DB) {
			dec := p.DecodeSet(tr)
			if !dec.IsCanonical() {
				t.Fatalf("decoded set not canonical: %v", dec)
			}
			if len(dec) != len(tr) {
				t.Fatalf("decode changed length")
			}
			// Every decoded transaction must be a subset of some original.
			found := false
			for _, orig := range db.Trans {
				if dec.SubsetOf(orig) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("decoded transaction %v not a subset of any original", dec)
			}
		}
	}
}

func TestPrepareMinSupportBelowOne(t *testing.T) {
	db := paperDB()
	a := Prepare(db, 0, Config{Items: OrderKeep, Trans: OrderOriginal})
	b := Prepare(db, 1, Config{Items: OrderKeep, Trans: OrderOriginal})
	if !reflect.DeepEqual(rows(a.DB), rows(b.DB)) {
		t.Fatal("minsup 0 should behave like 1")
	}
}

func TestPrepareMergeDuplicates(t *testing.T) {
	db := dataset.FromInts(
		[]int{0, 1},
		[]int{0, 1},
		[]int{1, 2},
		[]int{0, 1},
	)
	p := Prepare(db, 1, Config{Items: OrderKeep, Trans: OrderOriginal, Merge: true})
	if p.DB.NumTx() != 2 {
		t.Fatalf("merged transactions = %d, want 2", p.DB.NumTx())
	}
	if p.DB.TotalWeight() != 4 {
		t.Fatalf("total weight = %d, want 4", p.DB.TotalWeight())
	}
	if got := p.DB.Weight(0); got != 3 {
		t.Fatalf("weight of merged row = %d, want 3", got)
	}
	// Frequencies stay multiset-exact: item 1 occurs in all four rows.
	if p.Freq[1] != 4 {
		t.Fatalf("freq[1] = %d, want 4", p.Freq[1])
	}
	if p.OrigTransactions != 4 {
		t.Fatalf("OrigTransactions = %d, want 4", p.OrigTransactions)
	}
}

// TestPrepareAllocs pins the allocation budget of the builder pipeline: a
// Prepare pass over an already-columnar database must materialize the
// output exactly once (the flat columns plus the fixed per-run tables) and
// never allocate per transaction. The budget is generous enough for the
// deliberate one-off allocations (columns, permutations, frequency and
// code tables) yet far below one allocation per row, so any reintroduced
// per-transaction copy trips it immediately.
func TestPrepareAllocs(t *testing.T) {
	const rows, items = 2000, 40
	rng := rand.New(rand.NewSource(11))
	b := txdb.NewBuilder(rows, rows*8)
	for k := 0; k < rows; k++ {
		var row []int
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.2 {
				row = append(row, i)
			}
		}
		if len(row) == 0 {
			row = append(row, k%items)
		}
		b.AddInts(row...)
	}
	db := b.Build()
	allocs := testing.AllocsPerRun(10, func() {
		Prepare(db, 2, Config{Items: OrderAscFreq, Trans: OrderSizeAsc})
	})
	// See PrepAllocBudget for the rationale; the CI smoke step enforces
	// this same bound on every push.
	t.Logf("Prepare: %.0f allocs for %d rows (budget %d)", allocs, rows, PrepAllocBudget)
	if allocs > PrepAllocBudget {
		t.Fatalf("Prepare allocated %.0f times for %d rows, budget %d", allocs, rows, PrepAllocBudget)
	}
}

func TestLexDescLess(t *testing.T) {
	// With descending item listings: {d,c} vs {d,b}: d==d, then c>b so
	// {d,b} < {d,c}.
	a := itemset.FromInts(1, 3) // listed desc: 3,1
	b := itemset.FromInts(2, 3) // listed desc: 3,2
	if !lexDescLess(a, b) {
		t.Error("{3,1} should come before {3,2}")
	}
	if lexDescLess(b, a) {
		t.Error("comparison should be asymmetric")
	}
	if lexDescLess(a, a) {
		t.Error("irreflexive")
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Items: OrderDescFreq, Trans: OrderOriginal}
	if c.String() != "items:desc-freq trans:original" {
		t.Fatalf("Config.String() = %q", c.String())
	}
	if ItemOrder(9).String() != "items:9" || TransOrder(9).String() != "trans:9" {
		t.Fatal("fallback order strings")
	}
	m := Config{Items: OrderAscFreq, Trans: OrderSizeAsc, Merge: true}
	if m.String() != "items:asc-freq trans:size-asc merge" {
		t.Fatalf("merge Config.String() = %q", m.String())
	}
}
