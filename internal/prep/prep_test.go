package prep

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

// paperDB is the example transaction database from Table 1 of the paper,
// with a=0, b=1, c=2, d=3, e=4.
func paperDB() *dataset.Database {
	return dataset.FromInts(
		[]int{0, 1, 2},    // t1 = a b c
		[]int{0, 3, 4},    // t2 = a d e
		[]int{1, 2, 3},    // t3 = b c d
		[]int{0, 1, 2, 3}, // t4 = a b c d
		[]int{1, 2},       // t5 = b c
		[]int{0, 1, 3},    // t6 = a b d
		[]int{3, 4},       // t7 = d e
		[]int{2, 3, 4},    // t8 = c d e
	)
}

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

func TestPrepareDropsInfrequent(t *testing.T) {
	db := paperDB()
	p := Prepare(db, 4, Config{OrderAscFreq, OrderSizeAsc})
	// e has frequency 3 < 4 and must vanish.
	if p.DB.Items != 4 {
		t.Fatalf("prepared universe = %d, want 4", p.DB.Items)
	}
	for _, orig := range p.Decode {
		if orig == 4 {
			t.Fatal("item e (4) should have been dropped")
		}
	}
	// Ascending frequency: a(4) < b(5) = c(5) < d(6); ties by original code.
	wantDecode := []itemset.Item{0, 1, 2, 3}
	if !reflect.DeepEqual(p.Decode, wantDecode) {
		t.Fatalf("decode = %v, want %v", p.Decode, wantDecode)
	}
	if !reflect.DeepEqual(p.Freq, []int{4, 5, 5, 6}) {
		t.Fatalf("freq = %v", p.Freq)
	}
	if p.OrigTransactions != 8 {
		t.Fatalf("OrigTransactions = %d", p.OrigTransactions)
	}
}

func TestPrepareDropsEmptyTransactions(t *testing.T) {
	db := dataset.FromInts([]int{0}, []int{1}, []int{0, 1}, []int{2})
	p := Prepare(db, 2, Config{OrderAscFreq, OrderSizeAsc})
	// Item 2 is infrequent; its transaction becomes empty and is dropped.
	if len(p.DB.Trans) != 3 {
		t.Fatalf("transactions = %d, want 3", len(p.DB.Trans))
	}
	if p.OrigTransactions != 4 {
		t.Fatalf("OrigTransactions = %d, want 4", p.OrigTransactions)
	}
}

func TestPrepareTransactionOrder(t *testing.T) {
	db := dataset.FromInts([]int{0, 1, 2}, []int{0}, []int{1, 2}, []int{0, 2})
	p := Prepare(db, 1, Config{OrderKeep, OrderSizeAsc})
	lens := []int{}
	for _, tr := range p.DB.Trans {
		lens = append(lens, len(tr))
	}
	if !reflect.DeepEqual(lens, []int{1, 2, 2, 3}) {
		t.Fatalf("lengths = %v", lens)
	}
	p = Prepare(db, 1, Config{OrderKeep, OrderSizeDesc})
	lens = lens[:0]
	for _, tr := range p.DB.Trans {
		lens = append(lens, len(tr))
	}
	if !reflect.DeepEqual(lens, []int{3, 2, 2, 1}) {
		t.Fatalf("desc lengths = %v", lens)
	}
}

func TestPrepareItemOrderAsc(t *testing.T) {
	// freq: 0 -> 3, 1 -> 1, 2 -> 2
	db := dataset.FromInts([]int{0}, []int{0, 2}, []int{0, 1, 2})
	p := Prepare(db, 1, Config{OrderAscFreq, OrderOriginal})
	// rarest first: item 1 (freq 1) -> code 0, item 2 -> code 1, item 0 -> 2.
	want := []itemset.Item{1, 2, 0}
	if !reflect.DeepEqual(p.Decode, want) {
		t.Fatalf("decode = %v, want %v", p.Decode, want)
	}
	// Transactions recoded and kept canonical.
	if !p.DB.Trans[2].Equal(itemset.FromInts(0, 1, 2)) {
		t.Fatalf("recoded transaction = %v", p.DB.Trans[2])
	}
	if !p.DB.Trans[1].Equal(itemset.FromInts(1, 2)) {
		t.Fatalf("recoded transaction = %v", p.DB.Trans[1])
	}
}

func TestPrepareItemOrderDesc(t *testing.T) {
	db := dataset.FromInts([]int{0}, []int{0, 2}, []int{0, 1, 2})
	p := Prepare(db, 1, Config{OrderDescFreq, OrderOriginal})
	want := []itemset.Item{0, 2, 1}
	if !reflect.DeepEqual(p.Decode, want) {
		t.Fatalf("decode = %v, want %v", p.Decode, want)
	}
}

func TestDecodeSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		db := randDB(rng, 15, 12, 0.35)
		p := Prepare(db, 2, Config{OrderAscFreq, OrderSizeAsc})
		for _, tr := range p.DB.Trans {
			dec := p.DecodeSet(tr)
			if !dec.IsCanonical() {
				t.Fatalf("decoded set not canonical: %v", dec)
			}
			if len(dec) != len(tr) {
				t.Fatalf("decode changed length")
			}
			// Every decoded transaction must be a subset of some original.
			found := false
			for _, orig := range db.Trans {
				if dec.SubsetOf(orig) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("decoded transaction %v not a subset of any original", dec)
			}
		}
	}
}

func TestPrepareMinSupportBelowOne(t *testing.T) {
	db := paperDB()
	a := Prepare(db, 0, Config{OrderKeep, OrderOriginal})
	b := Prepare(db, 1, Config{OrderKeep, OrderOriginal})
	if !reflect.DeepEqual(a.DB.Trans, b.DB.Trans) {
		t.Fatal("minsup 0 should behave like 1")
	}
}

func TestLexDescLess(t *testing.T) {
	// With descending item listings: {d,c} vs {d,b}: d==d, then c>b so
	// {d,b} < {d,c}.
	a := itemset.FromInts(1, 3) // listed desc: 3,1
	b := itemset.FromInts(2, 3) // listed desc: 3,2
	if !lexDescLess(a, b) {
		t.Error("{3,1} should come before {3,2}")
	}
	if lexDescLess(b, a) {
		t.Error("comparison should be asymmetric")
	}
	if lexDescLess(a, a) {
		t.Error("irreflexive")
	}
}

func TestConfigString(t *testing.T) {
	c := Config{OrderDescFreq, OrderOriginal}
	if c.String() != "items:desc-freq trans:original" {
		t.Fatalf("Config.String() = %q", c.String())
	}
	if ItemOrder(9).String() != "items:9" || TransOrder(9).String() != "trans:9" {
		t.Fatal("fallback order strings")
	}
}
