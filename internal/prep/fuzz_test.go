package prep

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/txdb"
)

// FuzzPrepareInvariants checks the preprocessing invariants on arbitrary
// databases decoded from fuzz bytes.
func FuzzPrepareInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 5}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{255, 0, 255, 0}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, minsupRaw uint8) {
		if len(raw) > 4096 {
			return
		}
		db := dbFromBytes(raw)
		minsup := int(minsupRaw%8) + 1
		p := Prepare(db, minsup, Config{Items: OrderAscFreq, Trans: OrderSizeAsc})
		if p.OrigTransactions != len(db.Trans) {
			t.Fatalf("OrigTransactions = %d, want %d", p.OrigTransactions, len(db.Trans))
		}
		if err := txdb.Validate(p.DB); err != nil {
			t.Fatalf("prepared db invalid: %v", err)
		}
		// Every surviving item is frequent, and frequencies are exact.
		freq := make([]int, p.DB.NumItems())
		for k := 0; k < p.DB.NumTx(); k++ {
			tr := p.DB.Tx(k)
			if len(tr) == 0 {
				t.Fatal("empty transaction survived preparation")
			}
			w := p.DB.Weight(k)
			for _, i := range tr {
				freq[i] += w
			}
		}
		for i, got := range freq {
			if p.Freq[i] < minsup {
				t.Fatalf("item %d kept with frequency %d < %d", i, p.Freq[i], minsup)
			}
			if got != p.Freq[i] {
				t.Fatalf("item %d: recorded freq %d, actual %d", i, p.Freq[i], got)
			}
		}
		// Decode is a bijection into the original universe.
		seen := map[int32]bool{}
		for _, orig := range p.Decode {
			if orig < 0 || int(orig) >= db.Items || seen[orig] {
				t.Fatalf("decode not a bijection: %v", p.Decode)
			}
			seen[orig] = true
		}
	})
}

// dbFromBytes deterministically decodes fuzz bytes into a small database:
// each byte contributes an item (value mod 16); byte value 0 starts a new
// transaction.
func dbFromBytes(raw []byte) *dataset.Database {
	var rows [][]int
	cur := []int{}
	for _, b := range raw {
		if b == 0 {
			rows = append(rows, cur)
			cur = []int{}
			continue
		}
		cur = append(cur, int(b%16))
	}
	rows = append(rows, cur)
	return dataset.FromInts(rows...)
}
