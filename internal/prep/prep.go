// Package prep is the single shared preprocessing pipeline every miner in
// this repository consumes (the representation layer the paper's §3.4
// identifies as decisive for speed): item frequency counting,
// infrequent-item removal, frequency-based item recoding, dropping of
// emptied transactions, and transaction reordering, together with the
// bookkeeping needed to report results in the original item codes.
//
// Miners never re-implement any of these steps; they declare their
// preprocessing requirements as a Config (through their engine
// registration, see internal/engine) and receive a Prepared database —
// an immutable columnar txdb.DB that every layer then shares without
// copying.
//
// The pipeline materializes the database exactly once: rows are encoded
// straight into flat columnar arrays (recoding and re-canonicalizing each
// row in place inside the flat buffer), and transaction reordering is an
// index-permutation gather. The whole of Prepare performs a constant
// number of allocations regardless of database size — asserted by a
// checked-in allocation budget in the package benchmarks — where the
// previous row-oriented pipeline allocated per transaction.
package prep

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// ItemOrder selects how item codes are (re)assigned during preprocessing.
type ItemOrder int

const (
	// OrderAscFreq gives the rarest item code 0 (the paper's recommended
	// coding, §3.4).
	OrderAscFreq ItemOrder = iota
	// OrderDescFreq gives the most frequent item code 0.
	OrderDescFreq
	// OrderKeep keeps the original codes (after compaction).
	OrderKeep
)

func (o ItemOrder) String() string {
	switch o {
	case OrderAscFreq:
		return "items:asc-freq"
	case OrderDescFreq:
		return "items:desc-freq"
	case OrderKeep:
		return "items:keep"
	}
	return fmt.Sprintf("items:%d", int(o))
}

// TransOrder selects how transactions are ordered during preprocessing.
type TransOrder int

const (
	// OrderSizeAsc processes short transactions first (the paper's
	// recommendation: the prefix tree stays small early on).
	OrderSizeAsc TransOrder = iota
	// OrderSizeDesc processes long transactions first (the paper reports
	// this as clearly worse; kept for the §3.4 ablation).
	OrderSizeDesc
	// OrderOriginal keeps the input order.
	OrderOriginal
)

func (o TransOrder) String() string {
	switch o {
	case OrderSizeAsc:
		return "trans:size-asc"
	case OrderSizeDesc:
		return "trans:size-desc"
	case OrderOriginal:
		return "trans:original"
	}
	return fmt.Sprintf("trans:%d", int(o))
}

// Config is a miner's declared preprocessing requirement: which item
// coding and transaction order the algorithm wants. The zero value is the
// paper's recommended configuration for IsTa (ascending-frequency item
// codes, transactions by increasing size).
type Config struct {
	Items ItemOrder
	Trans TransOrder
	// Merge, when set, merges identical transactions into one weighted row
	// after recoding (the §2 multiset reduction). All miners count support
	// by weight, so the mined patterns are unchanged while repeated rows
	// are traversed once. Off by default: the registered configurations
	// keep per-row semantics so outputs stay bit-identical to the
	// row-oriented pipeline.
	Merge bool
}

func (c Config) String() string {
	s := c.Items.String() + " " + c.Trans.String()
	if c.Merge {
		s += " merge"
	}
	return s
}

// PrepAllocBudget is the checked-in allocation budget for one Prepare pass
// over an already-columnar source: the deliberate one-off allocations
// (flat columns, permutation, frequency/code tables, sort machinery) fit
// comfortably below it, while any reintroduced per-transaction copy blows
// past it on the thousands-of-rows test databases. Both the package test
// and the bench harness's CI smoke assertion enforce it.
const PrepAllocBudget = 64

// Prepared is a preprocessed database: infrequent items removed, items
// recoded, transactions reordered, plus the bookkeeping needed to report
// results in the original item codes.
type Prepared struct {
	// DB is the preprocessed database (dense recoded universe) in the
	// shared columnar representation. It is immutable; miners, engines and
	// parallel shards alias it freely.
	DB *txdb.DB
	// Decode maps a recoded item back to its original code.
	Decode []itemset.Item
	// Freq holds the weighted frequency (in the full database) of each
	// recoded item; since the recoded universe only contains frequent
	// items, Freq[i] >= the minsup used for preparation.
	Freq []int
	// OrigTransactions is the weighted number of transactions in the
	// original database (empty transactions are dropped from DB but still
	// counted here, matching the paper's support semantics). For an
	// unweighted source this is simply the row count.
	OrigTransactions int
}

// Prepare performs the standard preprocessing pipeline shared by all
// miners in this repository:
//
//  1. count weighted item frequencies and drop items with frequency <
//     minSupport (no closed frequent item set can contain them — if an
//     item occurs in every transaction of a cover of weight ≥ minsup it
//     is itself frequent);
//  2. recode the surviving items according to cfg.Items, encoding every
//     row directly into the flat columnar arrays;
//  3. drop transactions that became empty;
//  4. optionally merge duplicate rows into weights (cfg.Merge);
//  5. reorder transactions according to cfg.Trans, ties broken by a
//     lexicographic comparison on descending item codes (§3.4).
//
// minSupport values below 1 are treated as 1.
func Prepare(src txdb.Source, minSupport int, cfg Config) *Prepared {
	if minSupport < 1 {
		minSupport = 1
	}
	items := src.NumItems()
	freq := sourceFreqs(src)

	// Collect surviving items and decide their new codes.
	type itemFreq struct {
		item itemset.Item
		freq int
	}
	alive := make([]itemFreq, 0, items)
	for i, f := range freq {
		if f >= minSupport {
			alive = append(alive, itemFreq{itemset.Item(i), f})
		}
	}
	switch cfg.Items {
	case OrderAscFreq:
		sort.Slice(alive, func(a, b int) bool {
			if alive[a].freq != alive[b].freq {
				return alive[a].freq < alive[b].freq
			}
			return alive[a].item < alive[b].item
		})
	case OrderDescFreq:
		sort.Slice(alive, func(a, b int) bool {
			if alive[a].freq != alive[b].freq {
				return alive[a].freq > alive[b].freq
			}
			return alive[a].item < alive[b].item
		})
	case OrderKeep:
		// alive is already in ascending original-code order.
	}

	decode := make([]itemset.Item, len(alive))
	newFreq := make([]int, len(alive))
	encode := make([]itemset.Item, items)
	for i := range encode {
		encode[i] = -1
	}
	for code, af := range alive {
		decode[code] = af.item
		newFreq[code] = af.freq
		encode[af.item] = itemset.Item(code)
	}

	db := encodeRows(src, encode, len(alive), cfg.Items != OrderKeep)
	if cfg.Merge {
		db = txdb.MergeDuplicates(db)
	}
	db = orderRows(db, cfg.Trans)

	return &Prepared{
		DB:               db,
		Decode:           decode,
		Freq:             newFreq,
		OrigTransactions: txdb.TotalWeightOf(src),
	}
}

// sourceFreqs returns the weighted item frequencies of src, reusing the
// cached index when src is already a columnar DB.
func sourceFreqs(src txdb.Source) []int {
	if db, ok := src.(*txdb.DB); ok {
		return db.ItemFreqs()
	}
	freq := make([]int, src.NumItems())
	n := src.NumTx()
	for k := 0; k < n; k++ {
		w := src.Weight(k)
		for _, i := range src.Tx(k) {
			freq[i] += w
		}
	}
	return freq
}

// encodeRows is the single materialization of the pipeline: every source
// row is recoded through encode straight into one flat builder, dropping
// eliminated items and emptied rows; when the recoding is not monotone the
// row is re-sorted in place inside the flat array. No per-row allocation
// happens — AddRow canonicalizes within the builder's backing array.
func encodeRows(src txdb.Source, encode []itemset.Item, universe int, resort bool) *txdb.DB {
	n := src.NumTx()
	total := 0
	for k := 0; k < n; k++ {
		total += len(src.Tx(k))
	}
	b := txdb.NewBuilder(n, total)
	b.SetNumItems(universe)
	row := make([]itemset.Item, 0, 64)
	for k := 0; k < n; k++ {
		row = row[:0]
		for _, i := range src.Tx(k) {
			if c := encode[i]; c >= 0 {
				row = append(row, c)
			}
		}
		if len(row) == 0 {
			continue
		}
		if resort {
			slices.Sort(row)
		}
		b.AddWeighted(row, src.Weight(k))
	}
	return b.Build()
}

// orderRows applies the transaction ordering as an index-permutation
// gather over the flat columns: sort a row permutation, then copy each row
// once into fresh columns in the new order. Two passes over the data, a
// constant number of allocations.
func orderRows(db *txdb.DB, order TransOrder) *txdb.DB {
	if order == OrderOriginal || db.NumTx() < 2 {
		return db
	}
	n := db.NumTx()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	switch order {
	case OrderSizeAsc:
		sort.SliceStable(perm, func(a, b int) bool {
			la, lb := db.Len(perm[a]), db.Len(perm[b])
			if la != lb {
				return la < lb
			}
			return lexDescLess(db.Tx(perm[a]), db.Tx(perm[b]))
		})
	case OrderSizeDesc:
		sort.SliceStable(perm, func(a, b int) bool {
			la, lb := db.Len(perm[a]), db.Len(perm[b])
			if la != lb {
				return la > lb
			}
			return lexDescLess(db.Tx(perm[a]), db.Tx(perm[b]))
		})
	}
	b := txdb.NewBuilder(n, db.NumIds())
	b.SetNumItems(db.NumItems())
	for _, k := range perm {
		b.AddWeighted(db.Tx(k), db.Weight(k))
	}
	return b.Build()
}

// lexDescLess compares two transactions lexicographically on a descending
// listing of their item codes (the paper uses "a lexicographical order of
// the transactions based on a descending order of items in each
// transaction").
func lexDescLess(a, b itemset.Set) bool {
	i, j := len(a)-1, len(b)-1
	for i >= 0 && j >= 0 {
		if a[i] != b[j] {
			return a[i] < b[j]
		}
		i--
		j--
	}
	return i < 0 && j >= 0
}

// DecodeSet maps a recoded item set back to original codes, in canonical
// order.
func (p *Prepared) DecodeSet(s itemset.Set) itemset.Set {
	out := make(itemset.Set, len(s))
	for i, c := range s {
		out[i] = p.Decode[c]
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
