// Package prep is the single shared preprocessing pipeline every miner in
// this repository consumes (the representation layer the paper's §3.4
// identifies as decisive for speed): item frequency counting,
// infrequent-item removal, frequency-based item recoding, dropping of
// emptied transactions, and transaction reordering, together with the
// bookkeeping needed to report results in the original item codes.
//
// Miners never re-implement any of these steps; they declare their
// preprocessing requirements as a Config (through their engine
// registration, see internal/engine) and receive a Prepared database.
package prep

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

// ItemOrder selects how item codes are (re)assigned during preprocessing.
type ItemOrder int

const (
	// OrderAscFreq gives the rarest item code 0 (the paper's recommended
	// coding, §3.4).
	OrderAscFreq ItemOrder = iota
	// OrderDescFreq gives the most frequent item code 0.
	OrderDescFreq
	// OrderKeep keeps the original codes (after compaction).
	OrderKeep
)

func (o ItemOrder) String() string {
	switch o {
	case OrderAscFreq:
		return "items:asc-freq"
	case OrderDescFreq:
		return "items:desc-freq"
	case OrderKeep:
		return "items:keep"
	}
	return fmt.Sprintf("items:%d", int(o))
}

// TransOrder selects how transactions are ordered during preprocessing.
type TransOrder int

const (
	// OrderSizeAsc processes short transactions first (the paper's
	// recommendation: the prefix tree stays small early on).
	OrderSizeAsc TransOrder = iota
	// OrderSizeDesc processes long transactions first (the paper reports
	// this as clearly worse; kept for the §3.4 ablation).
	OrderSizeDesc
	// OrderOriginal keeps the input order.
	OrderOriginal
)

func (o TransOrder) String() string {
	switch o {
	case OrderSizeAsc:
		return "trans:size-asc"
	case OrderSizeDesc:
		return "trans:size-desc"
	case OrderOriginal:
		return "trans:original"
	}
	return fmt.Sprintf("trans:%d", int(o))
}

// Config is a miner's declared preprocessing requirement: which item
// coding and transaction order the algorithm wants. The zero value is the
// paper's recommended configuration for IsTa (ascending-frequency item
// codes, transactions by increasing size).
type Config struct {
	Items ItemOrder
	Trans TransOrder
}

func (c Config) String() string {
	return c.Items.String() + " " + c.Trans.String()
}

// Prepared is a preprocessed database: infrequent items removed, items
// recoded, transactions reordered, plus the bookkeeping needed to report
// results in the original item codes.
type Prepared struct {
	// DB is the preprocessed database (dense recoded universe).
	DB *dataset.Database
	// Decode maps a recoded item back to its original code.
	Decode []itemset.Item
	// Freq holds the frequency (in the full database) of each recoded
	// item; since the recoded universe only contains frequent items,
	// Freq[i] >= the minsup used for preparation.
	Freq []int
	// OrigTransactions is the number of transactions in the original
	// database (empty transactions are dropped from DB but still counted
	// here, matching the paper's support semantics).
	OrigTransactions int
}

// Prepare performs the standard preprocessing pipeline shared by all
// miners in this repository:
//
//  1. count item frequencies and drop items with frequency < minSupport
//     (no closed frequent item set can contain them — if an item occurs
//     in every transaction of a cover of size ≥ minsup it is itself
//     frequent);
//  2. recode the surviving items according to cfg.Items;
//  3. drop transactions that became empty;
//  4. reorder transactions according to cfg.Trans, ties broken by a
//     lexicographic comparison on descending item codes (§3.4).
//
// minSupport values below 1 are treated as 1.
func Prepare(db *dataset.Database, minSupport int, cfg Config) *Prepared {
	if minSupport < 1 {
		minSupport = 1
	}
	freq := db.ItemFrequencies()

	// Collect surviving items and decide their new codes.
	type itemFreq struct {
		item itemset.Item
		freq int
	}
	alive := make([]itemFreq, 0, db.Items)
	for i, f := range freq {
		if f >= minSupport {
			alive = append(alive, itemFreq{itemset.Item(i), f})
		}
	}
	switch cfg.Items {
	case OrderAscFreq:
		sort.Slice(alive, func(a, b int) bool {
			if alive[a].freq != alive[b].freq {
				return alive[a].freq < alive[b].freq
			}
			return alive[a].item < alive[b].item
		})
	case OrderDescFreq:
		sort.Slice(alive, func(a, b int) bool {
			if alive[a].freq != alive[b].freq {
				return alive[a].freq > alive[b].freq
			}
			return alive[a].item < alive[b].item
		})
	case OrderKeep:
		// alive is already in ascending original-code order.
	}

	decode := make([]itemset.Item, len(alive))
	newFreq := make([]int, len(alive))
	encode := make([]itemset.Item, db.Items)
	for i := range encode {
		encode[i] = -1
	}
	for code, af := range alive {
		decode[code] = af.item
		newFreq[code] = af.freq
		encode[af.item] = itemset.Item(code)
	}

	trans := make([]itemset.Set, 0, len(db.Trans))
	for _, t := range db.Trans {
		nt := make(itemset.Set, 0, len(t))
		for _, i := range t {
			if c := encode[i]; c >= 0 {
				nt = append(nt, c)
			}
		}
		if len(nt) == 0 {
			continue
		}
		sort.Slice(nt, func(a, b int) bool { return nt[a] < nt[b] })
		trans = append(trans, nt)
	}

	switch cfg.Trans {
	case OrderSizeAsc:
		sort.SliceStable(trans, func(a, b int) bool {
			if len(trans[a]) != len(trans[b]) {
				return len(trans[a]) < len(trans[b])
			}
			return lexDescLess(trans[a], trans[b])
		})
	case OrderSizeDesc:
		sort.SliceStable(trans, func(a, b int) bool {
			if len(trans[a]) != len(trans[b]) {
				return len(trans[a]) > len(trans[b])
			}
			return lexDescLess(trans[a], trans[b])
		})
	case OrderOriginal:
		// keep input order
	}

	return &Prepared{
		DB:               &dataset.Database{Items: len(alive), Trans: trans},
		Decode:           decode,
		Freq:             newFreq,
		OrigTransactions: len(db.Trans),
	}
}

// lexDescLess compares two transactions lexicographically on a descending
// listing of their item codes (the paper uses "a lexicographical order of
// the transactions based on a descending order of items in each
// transaction").
func lexDescLess(a, b itemset.Set) bool {
	i, j := len(a)-1, len(b)-1
	for i >= 0 && j >= 0 {
		if a[i] != b[j] {
			return a[i] < b[j]
		}
		i--
		j--
	}
	return i < 0 && j >= 0
}

// DecodeSet maps a recoded item set back to original codes, in canonical
// order.
func (p *Prepared) DecodeSet(s itemset.Set) itemset.Set {
	out := make(itemset.Set, len(s))
	for i, c := range s {
		out[i] = p.Decode[c]
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
