package engine

import (
	"fmt"
	"time"
)

// Stats holds the observability counters of one mining run. Run fills it
// when Spec.Stats is non-nil; the counters ride the amortized slow path
// of mining.Control (and the reporting path), so collecting them does not
// perturb the mining hot loops.
type Stats struct {
	// Algorithm, Target and MinSupport echo the resolved run parameters
	// (after algorithm lookup and support clamping).
	Algorithm  string
	Target     Target
	MinSupport int
	// Parallel reports whether the run used the algorithm's parallel
	// engine.
	Parallel bool

	// Transactions and Items describe the input database;
	// PreppedTransactions and PreppedItems the database after
	// preprocessing (infrequent items and emptied transactions removed).
	Transactions        int
	Items               int
	PreppedTransactions int
	PreppedItems        int

	// Patterns counts the patterns the miner reported.
	Patterns int64
	// Checks counts amortized cancellation/budget checkpoints.
	Checks int64
	// Ops counts algorithm work units (intersections performed,
	// candidate extensions tested).
	Ops int64
	// NodesPeak is the largest repository size observed (prefix-tree
	// nodes or stored sets; 0 for algorithms without a polled
	// repository).
	NodesPeak int64
	// Isects counts tid-set kernel intersections started; EarlyStops the
	// ones the kernel abandoned once the minsup bound became unreachable;
	// RepSwitches its representation conversions (sparse/dense/diffset).
	// All zero for algorithms that do not use the tidset kernels.
	Isects      int64
	EarlyStops  int64
	RepSwitches int64
	// Retries counts healed re-attempts of failed work units (shard
	// re-mines, branch re-explorations); nonzero only with Spec.Retry
	// enabled.
	Retries int64
	// Degraded counts work units abandoned after retry exhaustion; when
	// nonzero the run returned a *PartialError.
	Degraded int64

	// PrepTime and MineTime split the run's wall clock between the
	// shared preprocessing pipeline and the miner itself.
	PrepTime time.Duration
	MineTime time.Duration

	// Durable-path counters, filled only by crash-safe runs through the
	// persistence layer (cmd/fim -snapshot-dir, fim.OpenDurable); all
	// zero for batch runs. Replayed counts the transactions recovered
	// from the snapshot + write-ahead log instead of being re-added,
	// Added the transactions newly appended by this run, and Snapshots
	// the snapshot writes (including log rotations) it performed.
	Replayed  int
	Added     int
	Snapshots int
}

func (s *Stats) String() string {
	out := fmt.Sprintf(
		"algo=%s target=%s minsup=%d parallel=%v db=%d/%d trans %d/%d items patterns=%d ops=%d checks=%d nodes-peak=%d prep=%s mine=%s",
		s.Algorithm, s.Target, s.MinSupport, s.Parallel,
		s.PreppedTransactions, s.Transactions, s.PreppedItems, s.Items,
		s.Patterns, s.Ops, s.Checks, s.NodesPeak,
		s.PrepTime.Round(time.Microsecond), s.MineTime.Round(time.Microsecond))
	if s.Isects != 0 {
		out += fmt.Sprintf(" isects=%d early-stops=%d rep-switches=%d",
			s.Isects, s.EarlyStops, s.RepSwitches)
	}
	if s.Retries != 0 || s.Degraded != 0 {
		out += fmt.Sprintf(" retries=%d degraded=%d", s.Retries, s.Degraded)
	}
	if s.Replayed != 0 || s.Added != 0 || s.Snapshots != 0 {
		out += fmt.Sprintf(" replayed=%d added=%d snapshots=%d", s.Replayed, s.Added, s.Snapshots)
	}
	return out
}
