// Package engine is the dispatch layer between the public API and the
// individual mining algorithms. Each algorithm package self-registers a
// capability declaration (Registration) in its init function; the engine
// looks miners up by name, runs the shared preprocessing pipeline
// (internal/prep) they declare, attaches cancellation/guard machinery and
// per-run Stats, and invokes the miner on the prepared database.
//
// Adding an algorithm therefore requires only a new package with an init
// that calls Register, plus a blank import where miners are linked in
// (the root fim package). Nothing in the engine, the public API, or the
// command line tool names individual algorithms.
package engine

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/retry"
	"repro/internal/txdb"
)

// Target selects which family of frequent item sets a run mines. The zero
// value is Closed, the repository's primary target (§2.4 of the paper).
type Target int

const (
	// Closed mines the closed frequent item sets.
	Closed Target = iota
	// All mines every frequent item set.
	All
	// Maximal mines the maximal frequent item sets.
	Maximal
)

func (t Target) String() string {
	switch t {
	case Closed:
		return "closed"
	case All:
		return "all"
	case Maximal:
		return "maximal"
	}
	return fmt.Sprintf("target(%d)", int(t))
}

// Spec is the unified run specification every miner receives; it replaces
// the per-package Options clones. Algorithm-specific ablation switches
// (pruning, item elimination, …) are deliberately absent: they stay on
// the packages' own entry points for the bench harness.
type Spec struct {
	// MinSupport is the absolute minimum support; Run clamps values
	// below 1 to 1 before any miner sees them.
	MinSupport int
	// Target selects the mined family; the registration must declare it.
	Target Target
	// Workers selects parallel mining for algorithms that registered a
	// parallel engine: 0 or 1 mean sequential, >= 2 that many workers,
	// negative all cores. Algorithms without a parallel engine run
	// sequentially regardless.
	Workers int
	// Done, when closed, cancels the run (mining.ErrCanceled).
	Done <-chan struct{}
	// Guard, when non-nil, bounds the run (deadline, pattern and node
	// budgets) with typed errors.
	Guard *guard.Guard
	// Stats, when non-nil, is filled with per-run counters and timings.
	Stats *Stats
	// Sink, when non-nil, receives the run's observability events: phase
	// spans (prep, mine, merge) and rate-limited progress snapshots fed
	// from the Controls' amortized slow path. With a nil Sink and nil
	// Stats the run builds no counters at all and stays on the
	// atomic-free fast path.
	Sink obs.Sink
	// ProgressEvery is the minimum interval between progress snapshots;
	// 0 selects obs.DefaultInterval.
	ProgressEvery time.Duration
	// Retry enables self-healing in the parallel engines: a failed shard
	// or branch worker is re-mined sequentially up to Retry.MaxAttempts
	// times before the run degrades to a typed partial result
	// (PartialError). The zero value keeps today's fail-stop behavior.
	Retry retry.Policy

	ctl *mining.Control
	run *obs.Run
}

// Control returns the cancellation/budget/stats control Run built for
// this run. Miners must thread it through their loops instead of creating
// their own so that budgets and counters are shared.
func (s *Spec) Control() *mining.Control { return s.ctl }

// Observer returns the run-scoped observation handle Run built for this
// run (nil — and safe to use — when no Sink is configured). Parallel
// engines use it to emit their merge-phase spans.
func (s *Spec) Observer() *obs.Run { return s.run }

// ErrUnknownAlgorithm is wrapped by Run's error for an unregistered name.
var ErrUnknownAlgorithm = errors.New("engine: unknown algorithm")

// ErrUnsupportedTarget is wrapped by Run's error when the registration
// does not declare the requested Target.
var ErrUnsupportedTarget = errors.New("engine: unsupported target")

// Run validates db, looks up the named miner, applies its declared
// preprocessing, and streams the mined patterns (in original item codes)
// into rep. Cancellation, guard budgets, and panic semantics are those of
// the miner itself; Run adds nothing and swallows nothing, so the typed
// guard errors and the valid-prefix contract (DESIGN.md §5b) pass through
// unchanged.
func Run(db txdb.Source, name string, spec Spec, rep result.Reporter) error {
	reg, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("%w %q (available: %s)", ErrUnknownAlgorithm, name, strings.Join(Names(), ", "))
	}
	if !reg.SupportsTarget(spec.Target) {
		return fmt.Errorf("%w: %s does not mine %s sets", ErrUnsupportedTarget, reg.Name, spec.Target)
	}
	if err := txdb.Validate(db); err != nil {
		return err
	}
	if spec.MinSupport < 1 {
		spec.MinSupport = 1
	}

	parallel := reg.parallel != nil && (spec.Workers < 0 || spec.Workers >= 2)
	var counters *mining.Counters
	if spec.Stats != nil || spec.Sink != nil {
		counters = &mining.Counters{}
		rep = countingReporter{rep, counters}
	}
	if spec.Stats != nil {
		*spec.Stats = Stats{
			Algorithm:    reg.Name,
			Target:       spec.Target,
			MinSupport:   spec.MinSupport,
			Parallel:     parallel,
			Transactions: txdb.TotalWeightOf(db),
			Items:        db.NumItems(),
		}
	}
	if spec.Sink != nil {
		spec.run = obs.NewRun(spec.Sink, spec.ProgressEvery, countsOf(counters))
		counters.SetOnCheck(spec.run.Observe)
	}
	spec.ctl = mining.GuardedCounted(spec.Done, spec.Guard, counters)

	start := time.Now()
	pre := prep.Prepare(db, spec.MinSupport, reg.Prep)
	prepDone := time.Now()
	spec.run.Span(obs.PhasePrep, start)
	if spec.Stats != nil {
		spec.Stats.PrepTime = prepDone.Sub(start)
		spec.Stats.PreppedTransactions = pre.DB.NumTx()
		spec.Stats.PreppedItems = pre.DB.NumItems()
	}

	var err error
	if pre.DB.NumItems() > 0 {
		fn := reg.Mine
		if parallel {
			fn = reg.parallel
		}
		err = fn(pre, &spec, rep)
	}
	spec.ctl.Flush()
	spec.run.Span(obs.PhaseMine, prepDone)
	if spec.Stats != nil {
		spec.Stats.MineTime = time.Since(prepDone)
		spec.Stats.Patterns = counters.Patterns.Load()
		spec.Stats.Checks = counters.Checks.Load()
		spec.Stats.Ops = counters.Ops.Load()
		spec.Stats.NodesPeak = counters.NodesPeak.Load()
		spec.Stats.Isects = counters.Isects.Load()
		spec.Stats.EarlyStops = counters.EarlyStops.Load()
		spec.Stats.RepSwitches = counters.RepSwitches.Load()
		spec.Stats.Retries = counters.Retries.Load()
		spec.Stats.Degraded = counters.Degraded.Load()
	}
	// The final progress snapshot is emitted before Run returns — with
	// every worker joined and the control flushed — so it agrees exactly
	// with Stats, and no event can trail a finished (or canceled) run.
	spec.run.Finish()
	return err
}

// countsOf adapts the shared counters to the obs snapshot shape.
func countsOf(c *mining.Counters) func() obs.Counts {
	return func() obs.Counts {
		return obs.Counts{
			Patterns: c.Patterns.Load(),
			Ops:      c.Ops.Load(),
			Checks:   c.Checks.Load(),
			Nodes:    c.NodesPeak.Load(),
		}
	}
}

// countingReporter counts the patterns the miner reports into the shared
// run counters. Both the sequential miners and the parallel engines emit
// patterns from a single goroutine (the parallel engines merge before
// reporting), but progress snapshots read the count from worker
// goroutines, so it is kept atomically.
type countingReporter struct {
	rep      result.Reporter
	counters *mining.Counters
}

func (c countingReporter) Report(items itemset.Set, support int) {
	c.counters.CountPattern()
	c.rep.Report(items, support)
}
