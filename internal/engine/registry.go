package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/prep"
	"repro/internal/result"
)

// MineFunc mines a prepared database. The preprocessing declared in the
// Registration has already run: pre holds the recoded, filtered,
// reordered transactions, and patterns must be decoded back to original
// item codes (pre.DecodeSet) before reporting. Cancellation and budgets
// come from spec.Control().
type MineFunc func(pre *prep.Prepared, spec *Spec, rep result.Reporter) error

// Registration declares a miner's capabilities to the engine. Algorithm
// packages register themselves from init, so linking a package (usually
// through a blank import in the root fim package) is all it takes to make
// its algorithm available everywhere — public API, command line, bench
// harness, conformance suite.
type Registration struct {
	// Name is the unique lookup key ("ista", "carpenter-table", …).
	Name string
	// Doc is a one-line description used in generated help and tables.
	Doc string
	// Targets lists the set families the miner can produce.
	Targets []Target
	// Prep declares the preprocessing the algorithm requires; the engine
	// applies it before calling Mine.
	Prep prep.Config
	// Order ranks the algorithm in presentation listings (ascending;
	// ties break by name). The paper's contributions come first.
	Order int
	// Mine is the sequential mining entry point.
	Mine MineFunc

	// parallel is the optional parallel engine, attached separately via
	// RegisterParallel so the dependency points from the parallel package
	// to the algorithm packages and not the other way around.
	parallel MineFunc
}

// Parallelizable reports whether a parallel engine is registered.
func (r *Registration) Parallelizable() bool { return r.parallel != nil }

// SupportsTarget reports whether the miner declared target t.
func (r *Registration) SupportsTarget(t Target) bool {
	for _, c := range r.Targets {
		if c == t {
			return true
		}
	}
	return false
}

var (
	mu       sync.RWMutex
	registry = map[string]*Registration{}
)

// Register adds a miner to the registry. It panics on an empty or
// duplicate name, a nil Mine function, or no declared targets — these are
// programming errors in an algorithm package's init, not runtime
// conditions.
func Register(r Registration) {
	if r.Name == "" {
		panic("engine: Register with empty name")
	}
	if r.Mine == nil {
		panic(fmt.Sprintf("engine: Register(%q) with nil Mine", r.Name))
	}
	if len(r.Targets) == 0 {
		panic(fmt.Sprintf("engine: Register(%q) with no targets", r.Name))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[r.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate registration %q", r.Name))
	}
	registry[r.Name] = &r
}

// RegisterParallel attaches a parallel engine to an already registered
// miner. It panics if the name is unknown or already has a parallel
// engine. Package initialization order guarantees the sequential
// registration ran first: the parallel package imports the algorithm
// packages it accelerates.
func RegisterParallel(name string, fn MineFunc) {
	mu.Lock()
	defer mu.Unlock()
	r, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("engine: RegisterParallel(%q) before Register", name))
	}
	if r.parallel != nil {
		panic(fmt.Sprintf("engine: duplicate parallel registration %q", name))
	}
	if fn == nil {
		panic(fmt.Sprintf("engine: RegisterParallel(%q) with nil engine", name))
	}
	r.parallel = fn
}

// Lookup returns the registration for name.
func Lookup(name string) (*Registration, bool) {
	mu.RLock()
	defer mu.RUnlock()
	r, ok := registry[name]
	return r, ok
}

// Registrations returns all registered miners in presentation order
// (ascending Order, ties by name).
func Registrations() []*Registration {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]*Registration, 0, len(registry))
	for _, r := range registry {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Order != out[b].Order {
			return out[a].Order < out[b].Order
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Names returns the registered algorithm names in presentation order.
func Names() []string {
	regs := Registrations()
	out := make([]string, len(regs))
	for i, r := range regs {
		out[i] = r.Name
	}
	return out
}
