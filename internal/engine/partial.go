package engine

import (
	"errors"
	"fmt"
	"strings"
)

// ErrPartial marks a degraded run: some unit of work (a shard, a branch
// group) stayed failed after its retries were exhausted, and the result
// covers only the surviving units. Match with errors.Is; the concrete
// error is always a *PartialError carrying the per-unit report.
var ErrPartial = errors.New("engine: partial result")

// ShardError reports one work unit a supervised parallel engine gave up
// on: the shard (IsTa) or worker branch group (Carpenter) index, how
// many sequential re-attempts were made before giving up, and the last
// failure.
type ShardError struct {
	// Shard is the failed unit's index (round-robin shard for IsTa,
	// worker branch group for Carpenter).
	Shard int
	// Attempts is the number of sequential re-attempts made after the
	// initial parallel failure.
	Attempts int
	// Err is the last error of the final attempt.
	Err error
}

func (e ShardError) Error() string {
	return fmt.Sprintf("shard %d failed after %d retries: %v", e.Shard, e.Attempts, e.Err)
}

func (e ShardError) Unwrap() error { return e.Err }

// PartialError is the typed partial-result error of a degraded run. The
// patterns already reported are all genuinely closed over the covered
// sub-database — every one is an intersection of surviving transactions,
// and any intersection of transactions is closed — with supports exact
// over the covered transactions and therefore lower bounds on the true
// supports. Shards lists what was lost.
type PartialError struct {
	// Shards reports every abandoned work unit, in index order.
	Shards []ShardError
}

func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: partial result (%d degraded shard(s))", len(e.Shards))
	for _, s := range e.Shards {
		fmt.Fprintf(&b, "; %s", s.Error())
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrPartial) match.
func (e *PartialError) Unwrap() error { return ErrPartial }
