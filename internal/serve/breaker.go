package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Breaker states, exposed as the serve_breaker_state gauge and in
// /statusz. The numeric order matters for dashboards: 0 is healthy.
const (
	breakerClosed   int64 = 0 // writes flow
	breakerOpen     int64 = 1 // writes rejected until the cooldown passes
	breakerHalfOpen int64 = 2 // one probe in flight deciding the next state
)

func breakerStateName(s int64) string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", s)
}

// ErrStoreUnavailable reports that the durable store's circuit breaker
// is open: recent writes failed (I/O fault, latched store) and the
// server is protecting itself by failing writes fast while read-only
// mining continues. Wrapped errors carry a suggested retry-after.
var ErrStoreUnavailable = errors.New("serve: durable store unavailable (circuit open)")

// breaker is the circuit breaker guarding the durable store's write
// path. Consecutive write failures (the store latches on fsync/corrupt
// faults, so every operation after the first fault fails too) open the
// circuit: writes are rejected immediately with a retry-after instead of
// hammering a latched store and timing out one request at a time. After
// the cooldown one probe is let through in half-open state; the probe
// reopens the store from disk, and its outcome closes or re-opens the
// circuit.
//
// The breaker itself is transport-free bookkeeping; the store manager
// decides what a "probe" does (reopen + retry the write).
type breaker struct {
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // open → half-open delay

	mu       sync.Mutex
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened

	state atomic.Int64 // breakerClosed / breakerOpen / breakerHalfOpen
	trips atomic.Int64 // cumulative open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerFailures
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a write may proceed. In the open state it
// returns false with the remaining cooldown; once the cooldown has
// passed it transitions to half-open and admits exactly one caller — the
// probe — whose success() or failure() decides the next state. While a
// probe is in flight every other write is rejected.
func (b *breaker) allow() (retryAfter time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state.Load() {
	case breakerClosed:
		return 0, true
	case breakerHalfOpen:
		return b.cooldown, false
	default: // open
		remaining := b.cooldown - time.Since(b.openedAt)
		if remaining > 0 {
			return remaining, false
		}
		b.state.Store(breakerHalfOpen)
		return 0, true
	}
}

// success records a completed write: the circuit closes (from any state)
// and the failure streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.state.Store(breakerClosed)
}

// failure records a failed write. A half-open probe failure re-opens
// immediately; in closed state the circuit opens once the consecutive
// failure count reaches the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state.Load() == breakerHalfOpen {
		b.open()
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.open()
	}
}

// open transitions to the open state. Callers hold b.mu.
func (b *breaker) open() {
	b.fails = 0
	b.openedAt = time.Now()
	if b.state.Swap(breakerOpen) != breakerOpen {
		b.trips.Add(1)
	}
}

// breakerStats is the /statusz and gauge snapshot.
type breakerStats struct {
	State string `json:"state"`
	Code  int64  `json:"code"`
	Trips int64  `json:"trips"`
}

func (b *breaker) stats() breakerStats {
	s := b.state.Load()
	return breakerStats{State: breakerStateName(s), Code: s, Trips: b.trips.Load()}
}
