package serve

// Server-level chaos suite: the required end-to-end fault drills against
// a live httptest server — overload shedding, panic containment with
// concurrent healthy traffic, store-fault breaker recovery, slow and
// hung clients, and the graceful drain losing zero admitted requests.
// Every test runs under the goroutine leak check, so a wedged handler,
// an abandoned admission waiter or an unclosed store would fail the
// suite even when the assertions pass.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/persist"
)

// shutdown closes the test server and the shared client's idle
// connections, so the deferred LeakCheck sees a settled goroutine set
// instead of parked HTTP keep-alive loops.
func shutdown(ts *httptest.Server) {
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
}

// TestChaosShedUnderFullQueue saturates a capacity-1 server with a
// parked request, fills the single queue slot, and proves the next
// request is shed with 429 + Retry-After while the admitted ones all
// complete once released.
func TestChaosShedUnderFullQueue(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	release := armBlock()
	defer release()

	srv, ts := newTestServer(t, Options{MaxWeight: 1, MaxQueue: 1, RetryAfter: 7 * time.Second})
	defer shutdown(ts)

	req := mineRequest{Transactions: [][]int{{0, 1}}, MinSupport: 1, Algorithm: "test-block"}
	type answer struct {
		status int
		body   mineResponse
	}
	answers := make(chan answer, 2)
	mineAsync := func() {
		resp, data := postJSON(t, ts.URL+"/mine", req)
		var mr mineResponse
		json.Unmarshal(data, &mr)
		answers <- answer{resp.StatusCode, mr}
	}

	go mineAsync() // A: admitted, parks in test-block
	waitFor(t, func() bool { return srv.gate.stats().Inflight == 1 })
	go mineAsync() // B: queued
	waitFor(t, func() bool { return srv.gate.stats().QueueDepth == 1 })

	// C: capacity busy, queue full → shed.
	resp, data := postJSON(t, ts.URL+"/mine", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want %q", ra, "7")
	}

	release()
	for i := 0; i < 2; i++ {
		a := <-answers
		if a.status != http.StatusOK || a.body.Count != 1 {
			t.Errorf("admitted request %d: status %d, count %d; want 200 with 1 pattern",
				i, a.status, a.body.Count)
		}
	}
	st := srv.gate.stats()
	if st.Admitted != 2 || st.Queued != 1 || st.Shed != 1 {
		t.Errorf("gate stats = %+v, want 2 admitted / 1 queued / 1 shed", st)
	}
}

// TestChaosPanicContainment panics inside a miner while healthy traffic
// runs concurrently: the panicking request answers 500, every healthy
// request answers 200, and the process (trivially) survives.
func TestChaosPanicContainment(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	_, ts := newTestServer(t, Options{})
	defer shutdown(ts)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
				Transactions: [][]int{{0, 1}, {0, 1}, {0, 2}}, MinSupport: 2,
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("healthy request: status %d, body %s", resp.StatusCode, data)
			}
		}()
	}

	resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0, 1}}, MinSupport: 1, Algorithm: "test-panic",
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500 (body %s)", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "panic") {
		t.Errorf("500 body %s does not name the panic", data)
	}
	wg.Wait()

	// The server still answers after the panic.
	resp, data = postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0}}, MinSupport: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-panic request: status %d, body %s", resp.StatusCode, data)
	}
}

// TestChaosTickPanic injects a panic at a mining-control tick of a real
// algorithm (not a test stub) and expects the same 500 containment.
func TestChaosTickPanic(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	restore := faultinject.PanicAtTick(1)
	defer restore()
	_, ts := newTestServer(t, Options{})
	defer shutdown(ts)

	resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0, 1, 2}, {0, 1}, {0, 2}, {1, 2}}, MinSupport: 1,
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", resp.StatusCode, data)
	}
}

// txStatus posts one transaction and returns the status code.
func txStatus(t *testing.T, url string, items []int) int {
	t.Helper()
	resp, _ := postJSON(t, url+"/tx", txRequest{Items: items})
	return resp.StatusCode
}

// TestChaosBreakerRecovery drives the full store-fault arc against a
// live server: a transient I/O fault latches the store and opens the
// breaker (503 + Retry-After), reads and mining keep working in the
// read-only degraded mode, /readyz flips to 503, and after the cooldown
// the half-open probe reopens the store from disk and recovers — with
// no acknowledged transaction lost.
func TestChaosBreakerRecovery(t *testing.T) {
	defer faultinject.LeakCheck(t)()

	// Calibrate: count the mutating FS ops of open + one append, so the
	// chaos run can aim its transient fault at the second append.
	counter := faultinject.NewFaultFS(persist.OS, 0, false)
	calSrv, calTS := newTestServer(t, Options{
		StoreDir:     t.TempDir(),
		StoreOptions: persist.Options{Items: 8, FS: counter, SnapshotEvery: -1},
	})
	defer shutdown(calTS)
	if got := txStatus(t, calTS.URL, []int{0, 1}); got != http.StatusOK {
		t.Fatalf("calibration /tx: status %d", got)
	}
	opsPerCycle := counter.Ops()
	_ = calSrv

	faultFS := faultinject.NewTransientFaultFS(persist.OS, opsPerCycle+1)
	srv, ts := newTestServer(t, Options{
		StoreDir:        t.TempDir(),
		StoreOptions:    persist.Options{Items: 8, FS: faultFS, SnapshotEvery: -1},
		BreakerFailures: 1,
		BreakerCooldown: 30 * time.Millisecond,
	})
	defer shutdown(ts)

	if got := txStatus(t, ts.URL, []int{0, 1}); got != http.StatusOK {
		t.Fatalf("first /tx: status %d, want 200", got)
	}
	// Second append hits the injected fault: the store latches, the
	// breaker (threshold 1) opens.
	resp, data := postJSON(t, ts.URL+"/tx", txRequest{Items: []int{0, 2}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted /tx: status %d, want 503 (body %s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("faulted /tx carries no Retry-After")
	}
	if faultFS.Ops() < opsPerCycle+1 {
		t.Fatalf("injected fault never fired — calibration drifted (ops %d, fault at %d)",
			faultFS.Ops(), opsPerCycle+1)
	}

	// Open breaker: writes fail fast, readiness flips, reads still work.
	if got := txStatus(t, ts.URL, []int{0, 1}); got != http.StatusServiceUnavailable {
		t.Errorf("breaker-open /tx: status %d, want fast 503", got)
	}
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz with open breaker: status %d, want 503", r.StatusCode)
	}
	r, err = http.Get(ts.URL + "/closed?support=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("read-only /closed during open breaker: status %d, body %s", r.StatusCode, body)
	}

	// After the cooldown the probe reopens the store (the transient
	// fault is spent) and the write goes through.
	waitFor(t, func() bool {
		return txStatus(t, ts.URL, []int{1, 2}) == http.StatusOK
	})
	if st := srv.store.stats(); st.Reopens != 1 || st.Latched || st.Breaker.State != "closed" {
		t.Errorf("store stats after recovery = %+v, want 1 reopen, healthy", st)
	}

	// No acknowledged transaction lost: the pre-fault append and the
	// post-recovery ones are all queryable. (The faulted append was
	// never acknowledged, so it must not count.)
	r, err = http.Get(ts.URL + "/closed?support=1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	mr := decodeMineResponse(t, mustRead(t, r.Body))
	// {0,1} was appended before the fault and once during recovery
	// polling at least; {1,2} at least once.
	var has01 bool
	for _, p := range mr.Patterns {
		if len(p.Items) == 2 && p.Items[0] == 0 && p.Items[1] == 1 {
			has01 = true
		}
	}
	if !has01 {
		t.Errorf("acknowledged pre-fault transaction missing from /closed: %v", mr.Patterns)
	}
}

func mustRead(t *testing.T, r io.Reader) []byte {
	t.Helper()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestChaosSlowAndHungClients points a trickling client and a hung
// client at a live server and proves neither blocks healthy traffic
// nor holds an admission slot; closing the hung connection cleans up.
func TestChaosSlowAndHungClients(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	srv, ts := newTestServer(t, Options{MaxWeight: 1, MaxQueue: 0})
	defer shutdown(ts)

	dial := func() net.Conn {
		c, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		return c
	}

	// Hung client: sends half a request line, then stalls forever.
	hung := faultinject.NewSlowConn(dial(), 0)
	if _, err := io.WriteString(hung, "POST /mine HTTP/1.1\r\nHost: x\r\nContent-Le"); err != nil {
		t.Fatalf("write: %v", err)
	}
	hung.Hang()
	defer hung.Close()

	// Slow client: trickles a full request with a per-op delay and must
	// still get an answer.
	slow := faultinject.NewSlowConn(dial(), 2*time.Millisecond)
	defer slow.Close()
	slowDone := make(chan string, 1)
	go func() {
		body := `{"transactions":[[0,1]],"minSupport":1}`
		req := "POST /mine HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n" +
			"Content-Length: " + itoa(len(body)) + "\r\nConnection: close\r\n\r\n" + body
		if _, err := io.WriteString(slow, req); err != nil {
			slowDone <- "write: " + err.Error()
			return
		}
		resp, err := io.ReadAll(slow)
		if err != nil {
			slowDone <- "read: " + err.Error()
			return
		}
		slowDone <- string(resp)
	}()

	// Healthy traffic flows while both misbehaving clients are attached:
	// neither holds an admission slot (capacity is 1 with no queue, so a
	// held slot would shed this request).
	resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0, 1}}, MinSupport: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request alongside slow/hung clients: status %d, body %s",
			resp.StatusCode, data)
	}

	if answer := <-slowDone; !strings.Contains(answer, "200 OK") {
		t.Errorf("slow client answer: %q, want a 200", answer)
	}
	if st := srv.gate.stats(); st.ActiveWeight != 0 {
		t.Errorf("active weight = %d after all requests, want 0", st.ActiveWeight)
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestChaosDrainZeroLoss starts the graceful drain while a request is
// parked in a miner: readiness flips immediately, new work is rejected
// with 503, the parked request still completes with its full answer,
// and the drain writes a final snapshot.
func TestChaosDrainZeroLoss(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	release := armBlock()
	defer release()

	dir := t.TempDir()
	rec := &obs.Recorder{}
	srv, ts := newTestServer(t, Options{
		StoreDir:     dir,
		StoreOptions: persist.Options{Items: 8, SnapshotEvery: -1},
		Obs:          rec,
	})
	defer shutdown(ts)
	if got := txStatus(t, ts.URL, []int{0, 1}); got != http.StatusOK {
		t.Fatalf("/tx: status %d", got)
	}

	type answer struct {
		status int
		count  int
	}
	parked := make(chan answer, 1)
	go func() {
		resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
			Transactions: [][]int{{0, 1}}, MinSupport: 1, Algorithm: "test-block",
		})
		var mr mineResponse
		json.Unmarshal(data, &mr)
		parked <- answer{resp.StatusCode, mr.Count}
	}()
	waitFor(t, func() bool { return srv.gate.stats().Inflight == 1 })

	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()
	waitFor(t, func() bool { return srv.latch.isDraining() })

	// Readiness flips and new work is rejected while the drain waits.
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: status %d, want 503", r.StatusCode)
	}
	resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0}}, MinSupport: 1,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new request while draining: status %d, want 503 (body %s)", resp.StatusCode, data)
	}

	// The admitted request is not lost: release it, it completes fully.
	release()
	a := <-parked
	if a.status != http.StatusOK || a.count != 1 {
		t.Fatalf("parked request finished %d with %d patterns, want 200 with 1", a.status, a.count)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if srv.drained.Load() < 1 {
		t.Errorf("drained counter = %d, want >= 1", srv.drained.Load())
	}

	// The drain wrote a final snapshot generation.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps int
	for _, e := range names {
		if strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".ista") {
			snaps++
		}
	}
	if snaps == 0 {
		t.Errorf("no snapshot in %s after drain (entries: %v)", dir, names)
	}

	// The drain span was emitted.
	var sawDrain bool
	for _, sp := range rec.Spans() {
		if sp.Phase == obs.PhaseDrain {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Errorf("no %q span recorded", obs.PhaseDrain)
	}
}
