package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/itemset"
	"repro/internal/persist"
	"repro/internal/result"
)

// storeManager owns the server's durable store behind the circuit
// breaker. persist.Durable is crash-only: the first I/O fault latches the
// handle and every later write fails until the store is reopened from
// disk. The manager translates that into service behavior — consecutive
// write failures open the breaker, writes then fail fast with a
// retry-after, and the half-open probe reopens the store (restoring
// exactly the durable prefix) before retrying the write. Reads degrade
// gracefully: ClosedSet serves the in-memory miner state even while the
// handle is latched or the breaker is open.
type storeManager struct {
	dir string
	opt persist.Options
	br  *breaker

	mu sync.Mutex // serializes writes and handle swaps
	d  *persist.Durable

	reopens int // successful probe reopens
}

func openStore(dir string, opt persist.Options, br *breaker) (*storeManager, error) {
	d, err := persist.Open(dir, opt)
	if err != nil {
		return nil, err
	}
	return &storeManager{dir: dir, opt: opt, br: br, d: d}, nil
}

// unavailable wraps ErrStoreUnavailable with the suggested retry delay.
type unavailableError struct {
	retryAfter time.Duration
}

func (e *unavailableError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", ErrStoreUnavailable, e.retryAfter)
}
func (e *unavailableError) Unwrap() error { return ErrStoreUnavailable }

// Append adds one transaction to the durable store. The caller has
// already validated the items against the store universe, so any error
// here is a store fault: it feeds the breaker, and once the breaker is
// open writes fail fast with an *unavailableError until a cooldown-gated
// probe (which reopens the latched handle from disk) succeeds.
func (m *storeManager) Append(items itemset.Set) error {
	retryAfter, ok := m.br.allow()
	if !ok {
		return &unavailableError{retryAfter: retryAfter}
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	// A latched handle cannot accept writes again; reopen from disk
	// first. This is the half-open probe's repair action, and also heals
	// a closed-state handle that latched on the previous request.
	if m.d.Err() != nil {
		d, err := persist.Open(m.dir, m.opt)
		if err != nil {
			m.br.failure()
			return fmt.Errorf("serve: store reopen: %w", err)
		}
		old := m.d
		m.d = d
		m.reopens++
		old.Close() // latched handle; best-effort resource release
	}

	if err := m.d.AddSet(items); err != nil {
		m.br.failure()
		return fmt.Errorf("serve: store append: %w", err)
	}
	m.br.success()
	return nil
}

// ClosedSet mines the closed frequent item sets of the durable state at
// minSupport. It works in read-only degraded mode too: a latched handle
// still serves the consistent in-memory miner state.
func (m *storeManager) ClosedSet(minSupport int) *result.Set {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.d.ClosedSet(minSupport)
}

// Universe returns the store's item universe size.
func (m *storeManager) Universe() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.d.Items()
}

// Snapshot persists a final snapshot (used on drain). A latched handle
// cannot snapshot; that is not a drain failure — the durable prefix on
// disk is already consistent.
func (m *storeManager) Snapshot() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.d.Err() != nil {
		return m.d.Err()
	}
	if err := m.d.Snapshot(); err != nil {
		return err
	}
	return m.d.Sync()
}

// Close releases the store handle.
func (m *storeManager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.d.Close()
}

// storeStats is the /statusz snapshot of the durable store.
type storeStats struct {
	Transactions int          `json:"transactions"`
	Items        int          `json:"items"`
	Snapshots    int          `json:"snapshots"`
	Reopens      int          `json:"reopens"`
	Latched      bool         `json:"latched"`
	Repair       string       `json:"repair,omitempty"`
	Breaker      breakerStats `json:"breaker"`
}

func (m *storeManager) stats() storeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := storeStats{
		Transactions: m.d.Transactions(),
		Items:        m.d.Items(),
		Snapshots:    m.d.Snapshots(),
		Reopens:      m.reopens,
		Latched:      m.d.Err() != nil,
		Breaker:      m.br.stats(),
	}
	if rep := m.d.RepairReport(); !rep.Empty() {
		st.Repair = rep.String()
	}
	return st
}
