package serve

import (
	"testing"
	"time"
)

// TestBreakerThreshold keeps the circuit closed below the consecutive
// failure threshold and opens it exactly at the threshold.
func TestBreakerThreshold(t *testing.T) {
	b := newBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		b.failure()
		if _, ok := b.allow(); !ok {
			t.Fatalf("circuit open after %d failures, threshold is 3", i+1)
		}
	}
	b.failure()
	retryAfter, ok := b.allow()
	if ok {
		t.Fatal("circuit still closed after 3 consecutive failures")
	}
	if retryAfter <= 0 {
		t.Errorf("retryAfter = %v, want positive", retryAfter)
	}
	if st := b.stats(); st.State != "open" || st.Trips != 1 {
		t.Errorf("stats = %+v, want open with 1 trip", st)
	}
}

// TestBreakerSuccessResetsStreak proves non-consecutive failures never
// open the circuit.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreaker(2, time.Hour)
	for i := 0; i < 5; i++ {
		b.failure()
		b.success()
	}
	if _, ok := b.allow(); !ok {
		t.Fatal("circuit opened on non-consecutive failures")
	}
}

// TestBreakerHalfOpenProbe walks the full state machine: open →
// (cooldown) → half-open with exactly one admitted probe → re-open on
// probe failure → half-open again → closed on probe success.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b := newBreaker(1, 5*time.Millisecond)
	b.failure()
	if _, ok := b.allow(); ok {
		t.Fatal("circuit closed right after opening")
	}

	time.Sleep(10 * time.Millisecond)
	if _, ok := b.allow(); !ok {
		t.Fatal("probe denied after cooldown")
	}
	if st := b.stats(); st.State != "half-open" {
		t.Fatalf("state = %s, want half-open during probe", st.State)
	}
	// Only one probe at a time.
	if _, ok := b.allow(); ok {
		t.Fatal("second probe admitted while one is in flight")
	}

	b.failure() // probe failed: straight back to open, no threshold counting
	if st := b.stats(); st.State != "open" || st.Trips != 2 {
		t.Fatalf("stats after failed probe = %+v, want open with 2 trips", st)
	}

	time.Sleep(10 * time.Millisecond)
	if _, ok := b.allow(); !ok {
		t.Fatal("second probe denied after cooldown")
	}
	b.success()
	if st := b.stats(); st.State != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", st.State)
	}
	if _, ok := b.allow(); !ok {
		t.Fatal("closed circuit denies writes")
	}
}
