// Package serve is the hardened mining service: an HTTP/JSON front end
// over the engine registry and the durable store that stays predictable
// under overload, faults and shutdown.
//
// Every request travels the same pipeline (DESIGN.md §5h):
//
//	admission (weighted gate, bounded queue, shed)  → 429
//	→ guard (deadline, pattern/node budgets, panic) → 206 / 500
//	→ store breaker (durable writes, read-only degrade) → 503
//	→ drain (SIGTERM: finish admitted work, snapshot, exit)
//
// The status codes mirror the CLI's exit-code contract: 200 ↔ exit 0,
// 400 ↔ exit 2, 206 ↔ exits 3 and 5 (truncated or degraded valid
// prefix), 503 with a store cause ↔ exit 4, 500 ↔ exit 1. 429 is the
// service-only overload answer — the CLI has no admission queue.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	fim "repro"
	"repro/internal/dataset"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/txdb"
)

// Defaults for the zero Options value.
const (
	// DefaultMaxWeight is the admission capacity in transaction-weight
	// units (the weighted transaction count of a request's database).
	DefaultMaxWeight = 1 << 20
	// DefaultMaxQueue bounds the admission wait queue; beyond it
	// requests are shed with 429.
	DefaultMaxQueue = 64
	// DefaultTimeout is the per-request mining deadline when the request
	// names none.
	DefaultTimeout = 30 * time.Second
	// DefaultMaxTimeout caps the deadline a request may ask for.
	DefaultMaxTimeout = 5 * time.Minute
	// DefaultMaxBodyBytes bounds a request body.
	DefaultMaxBodyBytes = 32 << 20
	// DefaultBreakerFailures is the consecutive store-write failures
	// that open the circuit.
	DefaultBreakerFailures = 3
	// DefaultBreakerCooldown is the open → half-open delay.
	DefaultBreakerCooldown = 5 * time.Second
	// DefaultRetryAfter is the Retry-After hint on shed responses.
	DefaultRetryAfter = 1 * time.Second
)

// Options configures a Server. The zero value serves mining without a
// durable store, with the defaults above.
type Options struct {
	// MaxWeight is the admission capacity in transaction-weight units;
	// 0 uses DefaultMaxWeight.
	MaxWeight int64
	// MaxQueue bounds the admission wait queue; 0 disables queueing
	// (saturation sheds immediately), negative values act as 0. Use
	// DefaultMaxQueue explicitly for the standard bound.
	MaxQueue int
	// RetryAfter is the Retry-After hint on 429 responses; 0 uses
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// DefaultTimeout and MaxTimeout bound per-request mining deadlines;
	// 0 uses the package defaults.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxPatterns, when positive, caps the per-request pattern budget
	// (requests asking for more, or for none, get this cap).
	MaxPatterns int
	// MaxTreeNodes, when positive, caps the per-request repository size.
	MaxTreeNodes int
	// Limits bounds decoded inputs (transaction length, item universe)
	// on both the JSON and the text decode path.
	Limits dataset.Limits
	// MaxBodyBytes bounds the request body; 0 uses DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// StoreDir, when non-empty, opens a durable store there and enables
	// the /tx and /closed endpoints.
	StoreDir string
	// StoreOptions configures the durable store (fault-injection FS,
	// snapshot cadence, ...). StoreOptions.Items must be set when the
	// directory holds no prior state.
	StoreOptions persist.Options
	// BreakerFailures and BreakerCooldown configure the store circuit
	// breaker; 0 uses the package defaults.
	BreakerFailures int
	BreakerCooldown time.Duration
	// DrainTimeout bounds Drain's wait for in-flight requests; 0 waits
	// for the caller's context only.
	DrainTimeout time.Duration
	// Obs, when non-nil, receives a span per request (phase "request"),
	// one for the drain (phase "drain"), and the admission/breaker
	// gauges after every request. Nil costs nothing.
	Obs obs.Sink
}

func (o *Options) fill() {
	if o.MaxWeight <= 0 {
		o.MaxWeight = DefaultMaxWeight
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = DefaultTimeout
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = DefaultMaxTimeout
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
}

// Server is the hardened mining service. Create with New, mount
// Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	opt   Options
	gate  *gate
	store *storeManager // nil when no StoreDir was configured

	latch   drainLatch
	drained atomic.Int64 // requests completed while draining
	panics  atomic.Int64 // requests answered 500 after a contained panic
}

// New builds a Server, opening the durable store when configured.
func New(opt Options) (*Server, error) {
	opt.fill()
	s := &Server{opt: opt, gate: newGate(opt.MaxWeight, opt.MaxQueue)}
	if opt.StoreDir != "" {
		br := newBreaker(opt.BreakerFailures, opt.BreakerCooldown)
		st, err := openStore(opt.StoreDir, opt.StoreOptions, br)
		if err != nil {
			return nil, fmt.Errorf("serve: open store: %w", err)
		}
		s.store = st
	}
	return s, nil
}

// Handler returns the service's HTTP handler. Every route is wrapped in
// the panic containment middleware, so a panicking handler answers 500
// and the process survives.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /mine", s.handleMine)
	mux.HandleFunc("POST /tx", s.handleTx)
	mux.HandleFunc("GET /closed", s.handleClosed)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	return s.contain(mux)
}

// contain is the per-request panic barrier. fim.Mine already contains
// miner and reporter panics; this catches everything else in the
// handler path, reusing guard's panic capture so the log carries the
// stack of the panicking goroutine.
func (s *Server) contain(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				perr := guard.NewPanicError(v)
				writeError(w, http.StatusInternalServerError, perr.Error(), 0)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleMine runs one mining request through the full pipeline:
// decode → admission (weight = weighted transaction count) → guarded
// mine → classify.
func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.latch.begin() {
		writeDraining(w)
		return
	}
	defer s.finish(start, "mine")

	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	db, req, err := decodeMineRequest(r, s.opt.Limits)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	target, err := parseTarget(req.Target)
	if err != nil {
		writeRequestError(w, err)
		return
	}

	weight := int64(txdb.StatsOf(db).Transactions)
	release, err := s.gate.acquire(r.Context(), weight)
	if err != nil {
		if errors.Is(err, ErrShed) {
			w.Header().Set("Retry-After", retryAfterValue(s.opt.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err.Error(), 0)
			return
		}
		// The client went away while queued; nothing to answer.
		writeError(w, statusClientGone, err.Error(), 0)
		return
	}
	defer release()

	timeout := s.opt.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.opt.MaxTimeout {
		timeout = s.opt.MaxTimeout
	}
	maxPatterns := req.MaxPatterns
	if s.opt.MaxPatterns > 0 && (maxPatterns <= 0 || maxPatterns > s.opt.MaxPatterns) {
		maxPatterns = s.opt.MaxPatterns
	}
	maxNodes := req.MaxTreeNodes
	if s.opt.MaxTreeNodes > 0 && (maxNodes <= 0 || maxNodes > s.opt.MaxTreeNodes) {
		maxNodes = s.opt.MaxTreeNodes
	}

	var set fim.ResultSet
	mineErr := fim.Mine(db, fim.Options{
		MinSupport:   req.MinSupport,
		Algorithm:    fim.Algorithm(req.Algorithm),
		Target:       target,
		Context:      r.Context(),
		Deadline:     time.Now().Add(timeout),
		MaxPatterns:  maxPatterns,
		MaxTreeNodes: maxNodes,
		Parallelism:  req.Workers,
	}, set.Collect())

	status, reason, err := classify(mineErr)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	writeJSON(w, status, mineResponse{
		Patterns:  patternsJSON(&set),
		Count:     set.Len(),
		Truncated: status == http.StatusPartialContent,
		Reason:    reason,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// statusClientGone is the status for requests whose client disconnected
// while queued (nobody reads the answer; 499 by nginx convention).
const statusClientGone = 499

// classify maps a Mine error onto the response contract. A non-nil
// third return is a request defect (400).
func classify(err error) (status int, reason string, bad error) {
	switch {
	case err == nil:
		return http.StatusOK, "", nil
	case errors.Is(err, fim.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusPartialContent, "deadline", nil
	case errors.Is(err, fim.ErrBudget):
		return http.StatusPartialContent, "budget", nil
	case errors.Is(err, fim.ErrPartial):
		return http.StatusPartialContent, "degraded", nil
	case errors.Is(err, fim.ErrCanceled) || errors.Is(err, context.Canceled):
		return http.StatusPartialContent, "canceled", nil
	case errors.Is(err, fim.ErrUnknownAlgorithm), errors.Is(err, fim.ErrUnsupportedTarget):
		return 0, "", &clientError{msg: err.Error()}
	default:
		// Contained panics and any other internal failure.
		return http.StatusInternalServerError, "", &serverError{err}
	}
}

// serverError marks an internal failure (500).
type serverError struct{ err error }

func (e *serverError) Error() string { return e.err.Error() }
func (e *serverError) Unwrap() error { return e.err }

// handleTx appends one transaction to the durable store. Client defects
// (bad JSON, out-of-universe items) answer 400 without touching the
// breaker; store faults answer 503 with a Retry-After and feed it.
func (s *Server) handleTx(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.latch.begin() {
		writeDraining(w)
		return
	}
	defer s.finish(start, "tx")

	if s.store == nil {
		writeError(w, http.StatusNotFound, "no durable store configured", 0)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var req txRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON body: %v", err), 0)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "empty transaction", 0)
		return
	}
	if err := checkRows([][]int{req.Items}, s.opt.Limits); err != nil {
		writeRequestError(w, err)
		return
	}
	universe := s.store.Universe()
	for _, v := range req.Items {
		if v < 0 || v >= universe {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("item code %d outside store universe [0,%d)", v, universe), 0)
			return
		}
	}

	release, err := s.gate.acquire(r.Context(), 1)
	if err != nil {
		if errors.Is(err, ErrShed) {
			w.Header().Set("Retry-After", retryAfterValue(s.opt.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err.Error(), 0)
			return
		}
		writeError(w, statusClientGone, err.Error(), 0)
		return
	}
	defer release()

	if err := s.store.Append(itemset.FromInts(req.Items...)); err != nil {
		var ue *unavailableError
		if errors.As(err, &ue) {
			w.Header().Set("Retry-After", retryAfterValue(ue.retryAfter))
		} else {
			w.Header().Set("Retry-After", retryAfterValue(s.opt.RetryAfter))
		}
		writeError(w, http.StatusServiceUnavailable, err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleClosed serves the closed frequent item sets of the durable
// store at ?support=N. It works in read-only degraded mode: a latched
// store or an open breaker does not stop reads.
func (s *Server) handleClosed(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if !s.latch.begin() {
		writeDraining(w)
		return
	}
	defer s.finish(start, "closed")

	if s.store == nil {
		writeError(w, http.StatusNotFound, "no durable store configured", 0)
		return
	}
	support, err := queryInt(r.URL.Query().Get("support"), 1)
	if err != nil || support < 1 {
		writeError(w, http.StatusBadRequest, "invalid support parameter (want a positive integer)", 0)
		return
	}
	set := s.store.ClosedSet(support)
	writeJSON(w, http.StatusOK, mineResponse{
		Patterns:  patternsJSON(set),
		Count:     set.Len(),
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers 200 while the server accepts new work, 503 while
// draining or while the store breaker is open (load balancers should
// route around a degraded instance even though reads still work).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.latch.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if s.store != nil {
		if st := s.store.br.stats(); st.Code != breakerClosed {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "store breaker %s\n", st.State)
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// statusSnapshot is the /statusz body. InFlight counts requests inside
// the handler pipeline (it leads the admission gate's Inflight, which
// only counts requests past the gate).
type statusSnapshot struct {
	Draining  bool        `json:"draining"`
	InFlight  int         `json:"inFlight"`
	Admission gateStats   `json:"admission"`
	Store     *storeStats `json:"store,omitempty"`
	Panics    int64       `json:"panics"`
	Drained   int64       `json:"drained"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	snap := statusSnapshot{
		Draining:  s.latch.isDraining(),
		InFlight:  s.latch.count(),
		Admission: s.gate.stats(),
		Panics:    s.panics.Load(),
		Drained:   s.drained.Load(),
	}
	if s.store != nil {
		st := s.store.stats()
		snap.Store = &st
	}
	writeJSON(w, http.StatusOK, snap)
}

// finish closes out one request: drain accounting, the per-request
// span, and a fresh gauge snapshot. A nil sink pays only the drain
// check.
func (s *Server) finish(start time.Time, phase string) {
	if s.latch.end() {
		s.drained.Add(1)
	}
	if s.opt.Obs != nil {
		obs.EmitSpan(s.opt.Obs, obs.PhaseRequest+":"+phase, start, obs.Counts{})
		s.publishGauges()
	}
}

// publishGauges pushes the admission and breaker state into gauge-capable
// sinks (expvar, recorders). Callers have checked the sink is non-nil.
func (s *Server) publishGauges() {
	sink := s.opt.Obs
	g := s.gate.stats()
	obs.EmitGauge(sink, "serve_active_weight", g.ActiveWeight)
	obs.EmitGauge(sink, "serve_inflight", g.Inflight)
	obs.EmitGauge(sink, "serve_queue_depth", g.QueueDepth)
	obs.EmitGauge(sink, "serve_admitted_total", g.Admitted)
	obs.EmitGauge(sink, "serve_queued_total", g.Queued)
	obs.EmitGauge(sink, "serve_shed_total", g.Shed)
	obs.EmitGauge(sink, "serve_drained_total", s.drained.Load())
	if s.store != nil {
		b := s.store.br.stats()
		obs.EmitGauge(sink, "serve_breaker_state", b.Code)
		obs.EmitGauge(sink, "serve_breaker_trips", b.Trips)
	}
}

// Drain performs the graceful shutdown sequence: stop admitting new
// requests (begin answers 503, /readyz flips), wait for every admitted
// request to finish — bounded by ctx and Options.DrainTimeout — then
// write a final store snapshot. Zero admitted requests are lost: only
// requests that never entered the pipeline see the 503.
func (s *Server) Drain(ctx context.Context) error {
	start := time.Now()
	if s.opt.DrainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opt.DrainTimeout)
		defer cancel()
	}
	s.latch.startDrain()
	err := s.latch.wait(ctx)

	if s.store != nil {
		if serr := s.store.Snapshot(); serr != nil && err == nil {
			err = fmt.Errorf("serve: drain snapshot: %w", serr)
		}
	}
	if s.opt.Obs != nil {
		obs.EmitSpan(s.opt.Obs, obs.PhaseDrain, start, obs.Counts{})
		s.publishGauges()
	}
	return err
}

// Close releases the store handle. Call after Drain.
func (s *Server) Close() error {
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// drainLatch tracks in-flight requests and the draining flag with one
// lock, closing the race between "is the server draining?" and "count
// me in-flight" that a bare WaitGroup would leave open.
type drainLatch struct {
	mu       sync.Mutex
	inflight int
	draining bool
	idle     chan struct{} // closed once draining with zero in-flight
}

// begin registers one request; it reports false — and registers nothing
// — once draining started.
func (l *drainLatch) begin() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.draining {
		return false
	}
	l.inflight++
	return true
}

// end closes out one request and reports whether it completed during a
// drain (for the drained counter).
func (l *drainLatch) end() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inflight--
	if l.draining && l.inflight == 0 && l.idle != nil {
		close(l.idle)
		l.idle = nil
	}
	return l.draining
}

func (l *drainLatch) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

func (l *drainLatch) isDraining() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.draining
}

// startDrain flips the latch; subsequent begin calls fail.
func (l *drainLatch) startDrain() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.draining {
		return
	}
	l.draining = true
	if l.inflight > 0 {
		l.idle = make(chan struct{})
	}
}

// wait blocks until every in-flight request finished or ctx fired.
func (l *drainLatch) wait(ctx context.Context) error {
	l.mu.Lock()
	idle := l.idle
	l.mu.Unlock()
	if idle == nil {
		return nil
	}
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

func retryAfterValue(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string, line int) {
	writeJSON(w, status, errorResponse{Error: msg, Line: line})
}

// writeDraining answers a request rejected by the drain latch.
func writeDraining(w http.ResponseWriter) {
	w.Header().Set("Connection", "close")
	writeError(w, http.StatusServiceUnavailable, "server is draining", 0)
}

// writeRequestError maps decode/validation errors: clientErrors answer
// 400 (with the offending line when known), body-size overruns answer
// 413, everything else 500.
func writeRequestError(w http.ResponseWriter, err error) {
	var ce *clientError
	if errors.As(err, &ce) {
		writeError(w, http.StatusBadRequest, ce.msg, ce.line)
		return
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, err.Error(), 0)
		return
	}
	writeError(w, http.StatusInternalServerError, err.Error(), 0)
}
