package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/prep"
	"repro/internal/result"
)

// Test-only algorithms. "test-block" reports one pattern and then parks
// until the current block channel is closed (or the run is canceled /
// tripped by the guard), giving tests a deterministic way to hold an
// admission slot. "test-panic" panics mid-mine, exercising the panic
// containment path end to end.
var blockState struct {
	mu sync.Mutex
	ch chan struct{}
}

// armBlock installs a fresh block channel and returns the function that
// releases every miner currently (or subsequently) parked on it.
func armBlock() (release func()) {
	ch := make(chan struct{})
	blockState.mu.Lock()
	blockState.ch = ch
	blockState.mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func currentBlock() chan struct{} {
	blockState.mu.Lock()
	defer blockState.mu.Unlock()
	return blockState.ch
}

func init() {
	engine.Register(engine.Registration{
		Name:    "test-block",
		Doc:     "test only: report one pattern, then park until released",
		Targets: []engine.Target{engine.Closed},
		Order:   1000,
		Mine: func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
			rep.Report(itemset.FromInts(0), pre.DB.NumTx())
			ch := currentBlock()
			ticker := time.NewTicker(200 * time.Microsecond)
			defer ticker.Stop()
			for {
				select {
				case <-ch:
					return nil
				case <-spec.Done:
					return mining.ErrCanceled
				case <-ticker.C:
					if spec.Guard != nil {
						if err := spec.Guard.Check(); err != nil {
							return err
						}
					}
				}
			}
		},
	})
	engine.Register(engine.Registration{
		Name:    "test-panic",
		Doc:     "test only: panic mid-mine",
		Targets: []engine.Target{engine.Closed},
		Order:   1001,
		Mine: func(*prep.Prepared, *engine.Spec, result.Reporter) error {
			panic("test-panic: injected failure")
		},
	})
}

// newTestServer builds a Server plus its httptest front end.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, data
}

func decodeMineResponse(t *testing.T, data []byte) mineResponse {
	t.Helper()
	var mr mineResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatalf("decode response %q: %v", data, err)
	}
	return mr
}

// TestMineJSON mines a small database over the wire and checks the
// exact closed sets come back.
func TestMineJSON(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0, 1}, {0, 1}, {0, 2}},
		MinSupport:   2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	mr := decodeMineResponse(t, data)
	want := []patternJSON{{Items: []int{0}, Support: 3}, {Items: []int{0, 1}, Support: 2}}
	if fmt.Sprint(mr.Patterns) != fmt.Sprint(want) {
		t.Errorf("patterns = %v, want %v", mr.Patterns, want)
	}
	if mr.Truncated || mr.Reason != "" || mr.Count != 2 {
		t.Errorf("response = %+v, want complete count 2", mr)
	}
}

// TestMineTextBody sends the same database in FIMI text form with the
// knobs as query parameters.
func TestMineTextBody(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/mine?support=2", "text/plain",
		strings.NewReader("0 1\n0 1\n0 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	if mr := decodeMineResponse(t, data); mr.Count != 2 {
		t.Errorf("count = %d, want 2", mr.Count)
	}
}

// TestMineTextLimitLine proves a text body violating the input limits
// answers 400 and names the offending line, like the CLI's exit 2.
func TestMineTextLimitLine(t *testing.T) {
	_, ts := newTestServer(t, Options{Limits: dataset.Limits{MaxTxLen: 3}})
	resp, err := http.Post(ts.URL+"/mine?support=1", "text/plain",
		strings.NewReader("0 1\n# comment\n0 1 2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, data)
	}
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Line != 3 {
		t.Errorf("line = %d, want 3 (comments counted)", er.Line)
	}
}

// TestMineJSONLimits applies the same limits to the JSON decode path.
func TestMineJSONLimits(t *testing.T) {
	_, ts := newTestServer(t, Options{Limits: dataset.Limits{MaxTxLen: 2, MaxItems: 100}})
	resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0, 1}, {0, 1, 2}}, MinSupport: 1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-long row: status = %d, body %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0, 100}}, MinSupport: 1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-universe code: status = %d, body %s", resp.StatusCode, data)
	}
}

// TestMineBadRequests covers the 400 family: bad JSON, no transactions,
// negative codes, unknown algorithm, unknown target, and the body cap.
func TestMineBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 256})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"no transactions", `{"minSupport":1}`, http.StatusBadRequest},
		{"negative code", `{"transactions":[[-1]],"minSupport":1}`, http.StatusBadRequest},
		{"unknown algorithm", `{"transactions":[[0]],"minSupport":1,"algorithm":"nope"}`, http.StatusBadRequest},
		{"unknown target", `{"transactions":[[0]],"minSupport":1,"target":"open"}`, http.StatusBadRequest},
		{"oversized body", `{"transactions":[[` + strings.Repeat("0,", 400) + `0]]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/mine", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestMineBudget206 caps the pattern budget and expects a 206 partial
// answer whose patterns are a valid prefix.
func TestMineBudget206(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0, 1, 2}, {0, 1}, {0, 2}, {1, 2}},
		MinSupport:   1,
		MaxPatterns:  1,
	})
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d, want 206 (body %s)", resp.StatusCode, data)
	}
	mr := decodeMineResponse(t, data)
	if !mr.Truncated || mr.Reason != "budget" || mr.Count != 1 {
		t.Errorf("response = %+v, want truncated budget count 1", mr)
	}
}

// TestMineServerBudgetCap proves the server-side pattern cap binds even
// when the request asks for more.
func TestMineServerBudgetCap(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxPatterns: 2})
	resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0, 1, 2}, {0, 1}, {0, 2}, {1, 2}},
		MinSupport:   1,
		MaxPatterns:  100,
	})
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d, want 206 (body %s)", resp.StatusCode, data)
	}
	if mr := decodeMineResponse(t, data); mr.Count != 2 {
		t.Errorf("count = %d, want the server cap 2", mr.Count)
	}
}

// TestMineDeadline206 lets the per-request deadline fire inside a
// parked miner and expects 206 with the deadline reason and the prefix
// mined so far.
func TestMineDeadline206(t *testing.T) {
	release := armBlock()
	defer release()
	_, ts := newTestServer(t, Options{})
	resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0, 1}},
		MinSupport:   1,
		Algorithm:    "test-block",
		TimeoutMs:    40,
	})
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d, want 206 (body %s)", resp.StatusCode, data)
	}
	mr := decodeMineResponse(t, data)
	if mr.Reason != "deadline" || !mr.Truncated {
		t.Errorf("response = %+v, want deadline truncation", mr)
	}
	if mr.Count != 1 {
		t.Errorf("count = %d, want the 1-pattern prefix", mr.Count)
	}
}

// TestTxClosedRoundtrip drives the durable endpoints: append
// transactions, mine the closed sets back, reject out-of-universe items.
func TestTxClosedRoundtrip(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{
		StoreDir:     dir,
		StoreOptions: persist.Options{Items: 8},
	})
	for _, items := range [][]int{{0, 1}, {0, 1}, {0, 2}} {
		resp, data := postJSON(t, ts.URL+"/tx", txRequest{Items: items})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/tx %v: status %d, body %s", items, resp.StatusCode, data)
		}
	}
	resp, data := postJSON(t, ts.URL+"/tx", txRequest{Items: []int{99}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-universe /tx: status %d, body %s", resp.StatusCode, data)
	}

	r, err := http.Get(ts.URL + "/closed?support=2")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, _ := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/closed: status %d, body %s", r.StatusCode, body)
	}
	mr := decodeMineResponse(t, body)
	want := []patternJSON{{Items: []int{0}, Support: 3}, {Items: []int{0, 1}, Support: 2}}
	if fmt.Sprint(mr.Patterns) != fmt.Sprint(want) {
		t.Errorf("patterns = %v, want %v", mr.Patterns, want)
	}
}

// TestStoreEndpointsWithoutStore answers 404 when no store is mounted.
func TestStoreEndpointsWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, _ := postJSON(t, ts.URL+"/tx", txRequest{Items: []int{0}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/tx without store: status %d, want 404", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/closed?support=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("/closed without store: status %d, want 404", r.StatusCode)
	}
}

// TestHealthReadyStatus checks the probe endpoints on a healthy server.
func TestHealthReadyStatus(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap statusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	if snap.Draining || snap.Admission.Capacity != DefaultMaxWeight {
		t.Errorf("statusz = %+v, want idle with default capacity", snap)
	}
}

// TestGaugesPublished proves the admission gauges reach a gauge-capable
// sink after a request, and carry the serve_ prefix the dashboards key
// on.
func TestGaugesPublished(t *testing.T) {
	rec := &obs.Recorder{}
	_, ts := newTestServer(t, Options{Obs: rec})
	resp, data := postJSON(t, ts.URL+"/mine", mineRequest{
		Transactions: [][]int{{0, 1}}, MinSupport: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine: status %d, body %s", resp.StatusCode, data)
	}
	g := rec.Gauges()
	if g["serve_admitted_total"] != 1 {
		t.Errorf("serve_admitted_total = %d, want 1 (gauges: %v)", g["serve_admitted_total"], g)
	}
	for _, name := range []string{"serve_active_weight", "serve_queue_depth", "serve_shed_total"} {
		if _, ok := g[name]; !ok {
			t.Errorf("gauge %s not published (gauges: %v)", name, g)
		}
	}
	// Per-request span with the request phase prefix.
	var found bool
	for _, sp := range rec.Spans() {
		if strings.HasPrefix(sp.Phase, obs.PhaseRequest) {
			found = true
		}
	}
	if !found {
		t.Errorf("no request span recorded (spans: %v)", rec.Spans())
	}
}
