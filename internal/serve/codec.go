package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	fim "repro"
	"repro/internal/dataset"
)

// mineRequest is the JSON body of POST /mine. The same endpoint also
// accepts a text/plain body in FIMI format (one transaction per line)
// with the knobs moved to query parameters.
type mineRequest struct {
	// Transactions are rows of non-negative item codes.
	Transactions [][]int `json:"transactions"`
	// MinSupport is the absolute minimum support; values below 1 act as 1.
	MinSupport int `json:"minSupport"`
	// Algorithm selects the miner; empty selects the default (IsTa).
	Algorithm string `json:"algorithm,omitempty"`
	// Target is "closed" (default), "all" or "maximal".
	Target string `json:"target,omitempty"`
	// TimeoutMs bounds the run's wall clock; 0 uses the server default,
	// values above the server maximum are clamped.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// MaxPatterns caps the number of reported patterns; exceeding it
	// yields a 206 partial result.
	MaxPatterns int `json:"maxPatterns,omitempty"`
	// MaxTreeNodes caps the miner repository size (memory bound).
	MaxTreeNodes int `json:"maxTreeNodes,omitempty"`
	// Workers selects parallel mining (0/1 sequential, -1 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// patternJSON is one mined pattern on the wire.
type patternJSON struct {
	Items   []int `json:"items"`
	Support int   `json:"support"`
}

// mineResponse is the body of a 200 or 206 answer from /mine and
// GET /closed. On 206, Truncated is set and Reason names the bound that
// cut the enumeration (the reported patterns are a valid prefix — every
// pattern is genuinely frequent with its exact support).
type mineResponse struct {
	Patterns  []patternJSON `json:"patterns"`
	Count     int           `json:"count"`
	Truncated bool          `json:"truncated,omitempty"`
	Reason    string        `json:"reason,omitempty"`
	ElapsedMs float64       `json:"elapsedMs"`
}

// txRequest is the JSON body of POST /tx.
type txRequest struct {
	Items []int `json:"items"`
}

// errorResponse is the body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
	// Line is the offending input line for input-limit violations on
	// text bodies (mirrors the CLI's exit-2 diagnostics).
	Line int `json:"line,omitempty"`
}

// clientError marks a request defect (HTTP 400/413, the service-side
// twin of the CLI's exit code 2). Line is 0 unless a text input line can
// be named.
type clientError struct {
	msg  string
	line int
}

func (e *clientError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &clientError{msg: fmt.Sprintf(format, args...)}
}

func parseTarget(s string) (fim.Target, error) {
	switch s {
	case "", "closed":
		return fim.TargetClosed, nil
	case "all":
		return fim.TargetAll, nil
	case "maximal":
		return fim.TargetMaximal, nil
	}
	return fim.TargetClosed, badRequestf("unknown target %q (want closed, all or maximal)", s)
}

// decodeMineRequest parses a /mine request into the transaction database
// and the request knobs. JSON bodies carry everything inline; text/plain
// bodies are FIMI-format transactions (parsed through the hardened
// dataset reader, so the input limits and their line diagnostics apply)
// with the knobs in query parameters. The body is already wrapped in
// http.MaxBytesReader by the caller.
func decodeMineRequest(r *http.Request, lim dataset.Limits) (*fim.Database, mineRequest, error) {
	var req mineRequest
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	switch ct {
	case "", "application/json":
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&req); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				return nil, req, err // writeRequestError answers 413
			}
			return nil, req, badRequestf("invalid JSON body: %v", err)
		}
		if len(req.Transactions) == 0 {
			return nil, req, badRequestf("empty request: transactions required")
		}
		if err := checkRows(req.Transactions, lim); err != nil {
			return nil, req, err
		}
		return fim.NewDatabase(req.Transactions), req, nil

	case "text/plain", "text/fimi", "application/octet-stream":
		db, err := fim.ReadLimited(r.Body, lim)
		if err != nil {
			return nil, req, asInputError(err)
		}
		if db.NumTx() == 0 {
			return nil, req, badRequestf("empty request: no transactions in body")
		}
		q := r.URL.Query()
		req.MinSupport, err = queryInt(q.Get("support"), 1)
		if err != nil {
			return nil, req, badRequestf("invalid support parameter: %v", err)
		}
		req.Algorithm = q.Get("algorithm")
		req.Target = q.Get("target")
		if req.TimeoutMs, err = queryInt(q.Get("timeoutMs"), 0); err != nil {
			return nil, req, badRequestf("invalid timeoutMs parameter: %v", err)
		}
		if req.MaxPatterns, err = queryInt(q.Get("maxPatterns"), 0); err != nil {
			return nil, req, badRequestf("invalid maxPatterns parameter: %v", err)
		}
		if req.Workers, err = queryInt(q.Get("workers"), 0); err != nil {
			return nil, req, badRequestf("invalid workers parameter: %v", err)
		}
		return db, req, nil
	}
	return nil, req, badRequestf("unsupported Content-Type %q (want application/json or text/plain)", ct)
}

func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

// checkRows validates JSON transaction rows against the input limits —
// the same bounds the dataset reader enforces on text input, so neither
// decode path can size universe-indexed allocations from one hostile row.
func checkRows(rows [][]int, lim dataset.Limits) error {
	for i, row := range rows {
		if lim.MaxTxLen > 0 && len(row) > lim.MaxTxLen {
			return &clientError{
				msg:  fmt.Sprintf("transaction %d has %d items, limit is %d", i, len(row), lim.MaxTxLen),
				line: i + 1,
			}
		}
		for _, v := range row {
			if v < 0 {
				return badRequestf("transaction %d: negative item code %d", i, v)
			}
			if lim.MaxItems > 0 && v >= lim.MaxItems {
				return &clientError{
					msg:  fmt.Sprintf("transaction %d: item code %d exceeds limit %d", i, v, lim.MaxItems-1),
					line: i + 1,
				}
			}
		}
	}
	return nil
}

// asInputError converts dataset reader errors (including the typed limit
// errors with their line numbers) into clientErrors.
func asInputError(err error) error {
	var le *dataset.LimitError
	if errors.As(err, &le) {
		return &clientError{msg: le.Error(), line: le.Line}
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || err != nil {
		return &clientError{msg: fmt.Sprintf("invalid input: %v", err)}
	}
	return err
}

func patternsJSON(set *fim.ResultSet) []patternJSON {
	set.Sort()
	out := make([]patternJSON, set.Len())
	for i, p := range set.Patterns {
		items := make([]int, len(p.Items))
		for j, it := range p.Items {
			items[j] = int(it)
		}
		out[i] = patternJSON{Items: items, Support: p.Support}
	}
	return out
}
