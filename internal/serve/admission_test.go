package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestGateAdmitRelease covers the basic capacity accounting: admissions
// up to capacity succeed, saturation with no queue sheds, and release
// restores the budget.
func TestGateAdmitRelease(t *testing.T) {
	g := newGate(10, 0)
	rel4, err := g.acquire(context.Background(), 4)
	if err != nil {
		t.Fatalf("acquire(4): %v", err)
	}
	rel6, err := g.acquire(context.Background(), 6)
	if err != nil {
		t.Fatalf("acquire(6): %v", err)
	}
	if _, err := g.acquire(context.Background(), 1); !errors.Is(err, ErrShed) {
		t.Fatalf("acquire at saturation = %v, want ErrShed", err)
	}
	rel4()
	rel, err := g.acquire(context.Background(), 4)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel()
	rel6()

	st := g.stats()
	if st.Admitted != 3 || st.Shed != 1 || st.ActiveWeight != 0 || st.Inflight != 0 {
		t.Errorf("stats = %+v, want 3 admitted, 1 shed, idle", st)
	}
}

// TestGateWeightClamp admits an oversized request alone: its weight is
// clamped to the capacity instead of being unschedulable forever.
func TestGateWeightClamp(t *testing.T) {
	g := newGate(5, 0)
	rel, err := g.acquire(context.Background(), 100)
	if err != nil {
		t.Fatalf("oversized acquire: %v", err)
	}
	if st := g.stats(); st.ActiveWeight != 5 {
		t.Errorf("active weight = %d, want clamped 5", st.ActiveWeight)
	}
	if _, err := g.acquire(context.Background(), 1); !errors.Is(err, ErrShed) {
		t.Errorf("acquire alongside clamped giant = %v, want ErrShed", err)
	}
	rel()
	if st := g.stats(); st.ActiveWeight != 0 {
		t.Errorf("active weight after release = %d, want 0", st.ActiveWeight)
	}
}

// TestGateFIFO proves the queue is strictly FIFO: a small request that
// would fit in the spare capacity must not overtake a larger queued
// one — otherwise a stream of small requests starves the large one
// forever.
func TestGateFIFO(t *testing.T) {
	g := newGate(10, 4)
	relA, err := g.acquire(context.Background(), 8)
	if err != nil {
		t.Fatalf("acquire A: %v", err)
	}

	done := make(chan string, 2)
	go func() {
		rel, err := g.acquire(context.Background(), 6) // does not fit: queued
		if err != nil {
			t.Errorf("B: %v", err)
			return
		}
		done <- "B"
		rel()
	}()
	waitFor(t, func() bool { return g.stats().QueueDepth == 1 })

	go func() {
		rel, err := g.acquire(context.Background(), 1) // fits in the spare 2, must still queue behind B
		if err != nil {
			t.Errorf("C: %v", err)
			return
		}
		done <- "C"
		rel()
	}()
	waitFor(t, func() bool { return g.stats().QueueDepth == 2 })

	// C fits the spare capacity but must not be admitted while B queues.
	time.Sleep(5 * time.Millisecond)
	if st := g.stats(); st.Admitted != 1 || st.QueueDepth != 2 {
		t.Fatalf("stats = %+v, want C held behind B (1 admitted, 2 queued)", st)
	}

	relA() // frees 8: B (6) and then C (1) both fit now
	<-done
	<-done
	if st := g.stats(); st.Admitted != 3 || st.Queued != 2 || st.QueueDepth != 0 {
		t.Errorf("stats = %+v, want 3 admitted, 2 queued, empty queue", st)
	}
}

// TestGateQueueBoundSheds fills the queue and proves the next request
// is shed immediately rather than queued.
func TestGateQueueBoundSheds(t *testing.T) {
	g := newGate(1, 1)
	rel, err := g.acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		rel2, err := g.acquire(context.Background(), 1)
		if err == nil {
			rel2()
		}
		done <- err
	}()
	waitFor(t, func() bool { return g.stats().QueueDepth == 1 })

	if _, err := g.acquire(context.Background(), 1); !errors.Is(err, ErrShed) {
		t.Fatalf("acquire with full queue = %v, want ErrShed", err)
	}
	rel()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if st := g.stats(); st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
}

// TestGateCancelWhileQueued abandons a queued request through its
// context and proves the slot is not leaked.
func TestGateCancelWhileQueued(t *testing.T) {
	g := newGate(1, 2)
	rel, err := g.acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		rel2, err := g.acquire(ctx, 1)
		if err == nil {
			rel2()
		}
		done <- err
	}()
	waitFor(t, func() bool { return g.stats().QueueDepth == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire = %v, want context.Canceled", err)
	}
	rel()
	// The abandoned waiter must not hold capacity: a fresh acquire works.
	rel3, err := g.acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
	rel3()
	if st := g.stats(); st.QueueDepth != 0 || st.ActiveWeight != 0 {
		t.Errorf("stats = %+v, want empty gate", st)
	}
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("condition not reached within 5s")
}
