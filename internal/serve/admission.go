package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrShed reports that a request was shed at admission: the concurrency
// capacity is saturated and the wait queue is full. Shedding bounds both
// latency and memory — an overloaded server answers 429 immediately
// instead of queueing unboundedly. Clients should back off and retry.
var ErrShed = errors.New("serve: overloaded, request shed")

// gate is the weighted-concurrency admission controller: at most
// capacity units of work weight run at once, at most maxQueue requests
// wait in a FIFO queue behind them, and everything beyond that is shed.
//
// Weight is the transaction weight of the request's workload (via
// txdb.Stats), so one huge mining request and many small ones compete
// for the same budget in proportional terms rather than by request
// count. A weight above capacity is clamped to capacity, so oversized
// requests still run — alone.
type gate struct {
	capacity int64
	maxQueue int

	mu     sync.Mutex
	active int64     // admitted weight currently in flight
	queue  []*waiter // FIFO wait queue

	// Cumulative counters and point-in-time gauges, atomics so status
	// endpoints and gauge publishers read them without the lock.
	admitted atomic.Int64 // requests admitted (immediately or after queueing)
	queued   atomic.Int64 // requests that had to wait before admission
	shed     atomic.Int64 // requests rejected with ErrShed
	depth    atomic.Int64 // current queue depth
	inflight atomic.Int64 // admitted requests not yet released
	activeW  atomic.Int64 // mirror of active for lock-free reads
}

type waiter struct {
	weight int64
	ready  chan struct{} // closed when the gate grants the slot
}

// newGate builds a gate with the given weight capacity and queue bound.
// Non-positive values select the defaults.
func newGate(capacity int64, maxQueue int) *gate {
	if capacity <= 0 {
		capacity = DefaultMaxWeight
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{capacity: capacity, maxQueue: maxQueue}
}

// acquire admits a request of the given weight, waiting in the bounded
// FIFO queue if the capacity is saturated. It returns a release function
// on admission, ErrShed when the queue is full, or ctx.Err() when the
// caller gave up (disconnected, deadline) while queued.
func (g *gate) acquire(ctx context.Context, weight int64) (release func(), err error) {
	if weight < 1 {
		weight = 1
	}
	if weight > g.capacity {
		weight = g.capacity
	}

	g.mu.Lock()
	// FIFO: never overtake an already queued request, even if this one
	// would fit — otherwise small requests starve a large queued one.
	if len(g.queue) == 0 && g.active+weight <= g.capacity {
		g.admit(weight)
		g.mu.Unlock()
		return func() { g.release(weight) }, nil
	}
	if len(g.queue) >= g.maxQueue {
		g.mu.Unlock()
		g.shed.Add(1)
		return nil, ErrShed
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.depth.Store(int64(len(g.queue)))
	g.mu.Unlock()
	g.queued.Add(1)

	select {
	case <-w.ready:
		return func() { g.release(weight) }, nil
	case <-ctx.Done():
		g.mu.Lock()
		for i, q := range g.queue {
			if q == w {
				g.queue = append(g.queue[:i], g.queue[i+1:]...)
				g.depth.Store(int64(len(g.queue)))
				g.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		g.mu.Unlock()
		// Lost the race: the grant happened while ctx fired. The slot is
		// ours, so hand it back and report the cancellation.
		<-w.ready
		g.release(weight)
		return nil, ctx.Err()
	}
}

// admit books weight as active. Callers hold g.mu.
func (g *gate) admit(weight int64) {
	g.active += weight
	g.activeW.Store(g.active)
	g.admitted.Add(1)
	g.inflight.Add(1)
}

// release returns weight to the capacity and grants queued waiters in
// FIFO order while they fit.
func (g *gate) release(weight int64) {
	g.mu.Lock()
	g.active -= weight
	g.activeW.Store(g.active)
	g.inflight.Add(-1)
	for len(g.queue) > 0 && g.active+g.queue[0].weight <= g.capacity {
		w := g.queue[0]
		g.queue = g.queue[1:]
		g.admit(w.weight)
		close(w.ready)
	}
	g.depth.Store(int64(len(g.queue)))
	g.mu.Unlock()
}

// gateStats is a point-in-time snapshot for /statusz and the gauges.
type gateStats struct {
	Capacity     int64 `json:"capacity"`
	ActiveWeight int64 `json:"activeWeight"`
	Inflight     int64 `json:"inflight"`
	QueueDepth   int64 `json:"queueDepth"`
	MaxQueue     int   `json:"maxQueue"`
	Admitted     int64 `json:"admitted"`
	Queued       int64 `json:"queued"`
	Shed         int64 `json:"shed"`
}

func (g *gate) stats() gateStats {
	return gateStats{
		Capacity:     g.capacity,
		ActiveWeight: g.activeW.Load(),
		Inflight:     g.inflight.Load(),
		QueueDepth:   g.depth.Load(),
		MaxQueue:     g.maxQueue,
		Admitted:     g.admitted.Load(),
		Queued:       g.queued.Load(),
		Shed:         g.shed.Load(),
	}
}
