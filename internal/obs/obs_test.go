package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRunIsInert(t *testing.T) {
	var r *Run
	r.Observe()
	r.Span(PhaseMine, time.Now())
	r.Finish() // must not panic
	if got := NewRun(nil, 0, nil); got != nil {
		t.Fatalf("NewRun(nil sink) = %v, want nil", got)
	}
}

func TestRunThrottlesAndFinishes(t *testing.T) {
	var rec Recorder
	var counts Counts
	r := NewRun(&rec, time.Hour, func() Counts { return counts })

	// The first interval has not passed: no snapshot.
	counts.Ops = 1
	r.Observe()
	if n := len(rec.Snapshots()); n != 0 {
		t.Fatalf("snapshot before the interval elapsed: %d events", n)
	}

	counts.Ops = 42
	counts.Patterns = 7
	r.Finish()
	snaps := rec.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots after Finish, want 1", len(snaps))
	}
	if !snaps[0].Final {
		t.Fatalf("closing snapshot not marked Final: %+v", snaps[0])
	}
	if snaps[0].Ops != 42 || snaps[0].Patterns != 7 {
		t.Fatalf("final snapshot counts = %+v, want ops=42 patterns=7", snaps[0].Counts)
	}

	// Finish is idempotent and Observe after Finish emits nothing.
	r.Finish()
	r.Observe()
	if n := len(rec.Snapshots()); n != 1 {
		t.Fatalf("events after Finish: %d total", n)
	}
}

func TestRunEmitsWhenIntervalPassed(t *testing.T) {
	var rec Recorder
	r := NewRun(&rec, time.Nanosecond, func() Counts { return Counts{Ops: 5} })
	time.Sleep(time.Millisecond)
	r.Observe()
	snaps := rec.Snapshots()
	if len(snaps) != 1 || snaps[0].Ops != 5 || snaps[0].Final {
		t.Fatalf("got %+v, want one non-final snapshot with ops=5", snaps)
	}
}

func TestRunObserveConcurrent(t *testing.T) {
	var rec Recorder
	r := NewRun(&rec, time.Nanosecond, func() Counts { return Counts{} })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Observe()
			}
		}()
	}
	wg.Wait()
	r.Finish()
	snaps := rec.Snapshots()
	if len(snaps) == 0 || !snaps[len(snaps)-1].Final {
		t.Fatalf("want at least the final snapshot, got %d", len(snaps))
	}
	for _, p := range snaps[:len(snaps)-1] {
		if p.Final {
			t.Fatal("non-closing snapshot marked Final")
		}
	}
}

func TestMonotoneSnapshots(t *testing.T) {
	var rec Recorder
	var mu sync.Mutex
	counts := Counts{}
	r := NewRun(&rec, time.Nanosecond, func() Counts {
		mu.Lock()
		defer mu.Unlock()
		return counts
	})
	for i := 0; i < 50; i++ {
		mu.Lock()
		counts.Ops++
		counts.Checks += 2
		mu.Unlock()
		time.Sleep(50 * time.Microsecond)
		r.Observe()
	}
	r.Finish()
	snaps := rec.Snapshots()
	for i := 1; i < len(snaps); i++ {
		prev, cur := snaps[i-1], snaps[i]
		if cur.Ops < prev.Ops || cur.Checks < prev.Checks || cur.Elapsed < prev.Elapsed {
			t.Fatalf("snapshot %d not monotone: %+v after %+v", i, cur, prev)
		}
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() with no sinks should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	var rec Recorder
	if got := Multi(nil, &rec); got != Sink(&rec) {
		t.Fatalf("Multi with one sink should return it unwrapped, got %T", got)
	}
	var a, b Recorder
	m := Multi(&a, &b)
	m.Span(Span{Phase: PhasePrep})
	m.Progress(Progress{Final: true})
	for _, r := range []*Recorder{&a, &b} {
		if len(r.Spans()) != 1 || len(r.Snapshots()) != 1 {
			t.Fatalf("multi did not fan out: %d spans, %d snapshots", len(r.Spans()), len(r.Snapshots()))
		}
	}
}

func TestProgressSink(t *testing.T) {
	if ProgressSink(nil) != nil {
		t.Fatal("ProgressSink(nil) should be nil")
	}
	var got []Progress
	s := ProgressSink(func(p Progress) { got = append(got, p) })
	s.Span(Span{Phase: PhaseMine}) // dropped
	s.Progress(Progress{Counts: Counts{Patterns: 3}})
	if len(got) != 1 || got[0].Patterns != 3 {
		t.Fatalf("progress callback got %+v", got)
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewTextSink(&buf)
	s.Span(Span{Phase: PhasePrep, Duration: 3 * time.Millisecond, Counts: Counts{Ops: 9}})
	s.Progress(Progress{Elapsed: time.Second, Counts: Counts{Patterns: 4}, Final: true})
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %q", out)
	}
	if !strings.HasPrefix(lines[0], "span phase=prep ") || !strings.Contains(lines[0], "ops=9") {
		t.Errorf("span line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "progress elapsed=1s ") || !strings.HasSuffix(lines[1], " final") {
		t.Errorf("progress line = %q", lines[1])
	}
}

func TestJSONSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONSink(&buf)
	start := time.Now()
	s.Span(Span{Phase: PhaseMine, Start: start, Duration: time.Millisecond, Counts: Counts{Checks: 2}})
	s.Progress(Progress{Elapsed: 5 * time.Millisecond, Counts: Counts{Patterns: 1}, Final: true})

	dec := json.NewDecoder(&buf)
	var span map[string]any
	if err := dec.Decode(&span); err != nil {
		t.Fatalf("span line does not decode: %v", err)
	}
	if span["event"] != "span" || span["phase"] != "mine" || span["checks"] != float64(2) {
		t.Errorf("span event = %v", span)
	}
	var prog map[string]any
	if err := dec.Decode(&prog); err != nil {
		t.Fatalf("progress line does not decode: %v", err)
	}
	if prog["event"] != "progress" || prog["final"] != true || prog["patterns"] != float64(1) {
		t.Errorf("progress event = %v", prog)
	}
}

func TestExpvarSink(t *testing.T) {
	s := NewExpvarSink("obs_test")
	s.Span(Span{Phase: PhaseMine, Duration: 4 * time.Millisecond})
	s.Span(Span{Phase: PhaseMine, Duration: 6 * time.Millisecond})
	s.Progress(Progress{Elapsed: time.Second, Counts: Counts{Patterns: 11, Ops: 22}})
	s.Progress(Progress{Elapsed: 2 * time.Second, Counts: Counts{Patterns: 12, Ops: 30}, Final: true})

	m := expvar.Get("obs_test").(*expvar.Map)
	want := map[string]string{
		"span_mine_count": "2",
		"span_mine_ms":    "10",
		"patterns":        "12",
		"ops":             "30",
		"progress_events": "2",
		"runs":            "1",
	}
	for key, v := range want {
		got := m.Get(key)
		if got == nil || got.String() != v {
			t.Errorf("%s = %v, want %s", key, got, v)
		}
	}

	// A second sink under the same name shares the map and keeps
	// accumulating.
	s2 := NewExpvarSink("obs_test")
	s2.Progress(Progress{Final: true})
	if got := m.Get("runs").String(); got != "2" {
		t.Errorf("runs after second sink = %s, want 2", got)
	}
}

func TestEmitSpanNilSink(t *testing.T) {
	EmitSpan(nil, PhaseSnapshot, time.Now(), Counts{}) // must not panic
	var rec Recorder
	EmitSpan(&rec, PhaseSnapshot, time.Now().Add(-time.Millisecond), Counts{Nodes: 3})
	spans := rec.Spans()
	if len(spans) != 1 || spans[0].Phase != PhaseSnapshot || spans[0].Nodes != 3 || spans[0].Duration <= 0 {
		t.Fatalf("EmitSpan recorded %+v", spans)
	}
}

// TestEmitGauge covers the gauge extension: the expvar publisher and the
// Recorder receive gauges (latest value wins), a Multi fan-out forwards
// them to the gauge-capable members, gauge-less sinks are skipped
// silently, and the nil-sink fast path allocates nothing — the serving
// layer's gauges must preserve the PR-5 "no sink, no counters" contract.
func TestEmitGauge(t *testing.T) {
	// Nil sink: no panic, no allocation.
	if allocs := testing.AllocsPerRun(100, func() {
		EmitGauge(nil, "serve_queue_depth", 7)
	}); allocs != 0 {
		t.Errorf("EmitGauge(nil) allocates %.1f per call, want 0", allocs)
	}

	// Recorder: latest value wins.
	var rec Recorder
	EmitGauge(&rec, "serve_queue_depth", 3)
	EmitGauge(&rec, "serve_queue_depth", 5)
	EmitGauge(&rec, "serve_breaker_state", 1)
	g := rec.Gauges()
	if g["serve_queue_depth"] != 5 || g["serve_breaker_state"] != 1 {
		t.Errorf("recorder gauges = %v", g)
	}

	// A sink without gauge support is skipped without error.
	EmitGauge(NewTextSink(io.Discard), "serve_shed_total", 1)

	// Multi forwards to every gauge-capable member.
	var rec2 Recorder
	m := Multi(NewTextSink(io.Discard), &rec, &rec2)
	EmitGauge(m, "serve_shed_total", 9)
	if rec.Gauges()["serve_shed_total"] != 9 || rec2.Gauges()["serve_shed_total"] != 9 {
		t.Errorf("multi did not forward gauges: %v %v", rec.Gauges(), rec2.Gauges())
	}

	// The expvar publisher overwrites rather than accumulates.
	s := NewExpvarSink("obs_gauge_test")
	EmitGauge(s, "serve_queue_depth", 4)
	EmitGauge(s, "serve_queue_depth", 2)
	mp := expvar.Get("obs_gauge_test").(*expvar.Map)
	if got := mp.Get("serve_queue_depth"); got == nil || got.String() != "2" {
		t.Errorf("expvar gauge = %v, want 2", got)
	}
}
