// Package obs is the run-level observability layer: typed events
// describing one mining run (phase spans, rate-limited progress
// snapshots) and pluggable sinks that receive them (structured text and
// JSON writers, expvar-backed process metrics, an in-memory recorder for
// tests).
//
// The layer is strictly opt-in: a run with no sink configured builds no
// obs state at all and the mining hot loops stay on their atomic-free
// fast path (see internal/mining). When a sink is configured, events are
// produced only on the amortized slow path of mining.Control (progress)
// and at phase boundaries (spans), so the overhead is a few atomic loads
// per budget check — never per pattern-search step. See DESIGN.md §5e
// for the event taxonomy and overhead contract.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase names of the spans the engine and persistence layers emit. The
// set is open — a sink must tolerate unknown phases — but these cover
// the built-in pipeline.
const (
	// PhasePrep is the shared preprocessing pipeline (internal/prep).
	PhasePrep = "prep"
	// PhaseMine is the miner itself, from the prepared database to the
	// last reported pattern (it encloses PhaseMerge in parallel runs).
	PhaseMine = "mine"
	// PhaseMerge is the merge stage of a parallel engine: candidate
	// reconstruction, exact recount, and subsumption filtering for IsTa;
	// the keep-the-maximum fold for Carpenter.
	PhaseMerge = "merge"
	// PhaseSnapshot is one durable snapshot write (internal/persist).
	PhaseSnapshot = "snapshot"
	// PhaseRotate is the log rotation following a snapshot: opening the
	// new WAL segment, closing the old one, pruning dead generations.
	PhaseRotate = "rotate"
	// PhaseRecover is the recovery pass of persist.Open: loading the
	// newest readable snapshot and replaying the WAL tail.
	PhaseRecover = "recover"
	// PhaseRequest is one served request of the mining service
	// (internal/serve): admission wait, mining, and response encoding.
	PhaseRequest = "request"
	// PhaseDrain is the graceful-drain pass of the mining service:
	// from the stop-accepting flip to the last in-flight request (and the
	// final snapshot) completing.
	PhaseDrain = "drain"
)

// Counts is the counter snapshot attached to every event, mirroring
// mining.Counters (plus the reported-pattern count). All fields are
// cumulative over the run and therefore monotone from one event to the
// next.
type Counts struct {
	// Patterns is the number of patterns reported so far.
	Patterns int64 `json:"patterns"`
	// Ops counts algorithm work units (intersections performed,
	// candidate extensions tested).
	Ops int64 `json:"ops"`
	// Checks counts amortized cancellation/budget checkpoints.
	Checks int64 `json:"checks"`
	// Nodes is the peak repository size observed so far (prefix-tree
	// nodes or stored sets).
	Nodes int64 `json:"nodes"`
}

// Span is one completed phase of a run.
type Span struct {
	// Phase names the span (PhasePrep, PhaseMine, ...).
	Phase string `json:"phase"`
	// Start is the wall-clock time the phase began.
	Start time.Time `json:"start"`
	// Duration is the phase's wall-clock length.
	Duration time.Duration `json:"duration"`
	// Counts is the cumulative counter state when the phase ended.
	Counts
}

// Note kinds emitted by the self-healing runtime. Like phase names the
// set is open; sinks must tolerate unknown kinds.
const (
	// NoteRetry is one retry of a failed unit of work: a shard or branch
	// re-mined after a worker fault, or a persistence operation re-run
	// after a transient I/O error.
	NoteRetry = "retry"
	// NoteDegrade is one unit of work abandoned after its retries were
	// exhausted: the run continues degraded and returns a typed partial
	// result.
	NoteDegrade = "degrade"
	// NoteRepair is one auto-repair action of the durable store: a
	// quarantined generation or a swept orphan file.
	NoteRepair = "repair"
)

// Note is a point-in-time event of the self-healing runtime (a retry, a
// degradation, a repair action) — unlike a Span it has no duration.
type Note struct {
	// Kind classifies the event (NoteRetry, NoteDegrade, NoteRepair).
	Kind string `json:"kind"`
	// Detail is a short human-readable description (which shard, which
	// file, which attempt).
	Detail string `json:"detail"`
	// Counts is the cumulative counter state when the event fired.
	Counts
}

// Progress is one rate-limited progress snapshot of a running mine.
type Progress struct {
	// Elapsed is the time since the run started.
	Elapsed time.Duration `json:"elapsed"`
	// Counts is the cumulative counter state at the snapshot.
	Counts
	// Final marks the closing snapshot emitted exactly once when the run
	// finishes (successfully or not); its Counts agree with the run's
	// final engine.Stats.
	Final bool `json:"final,omitempty"`
}

// Sink receives the events of one or more runs. Implementations must
// tolerate concurrent calls: progress snapshots are emitted from
// whichever worker goroutine hits the sampling window (serialized by the
// Run sampler, but spans from a concurrent phase may interleave). The
// sinks in this package serialize internally.
type Sink interface {
	Span(Span)
	Progress(Progress)
	Note(Note)
}

// EmitSpan sends a completed span ending now to sink. A nil sink drops
// the event, so callers need no sink-presence checks at phase
// boundaries.
func EmitSpan(sink Sink, phase string, start time.Time, c Counts) {
	if sink == nil {
		return
	}
	sink.Span(Span{Phase: phase, Start: start, Duration: time.Since(start), Counts: c})
}

// EmitNote sends a self-healing event to sink. A nil sink drops the
// event, so callers need no sink-presence checks on retry paths.
func EmitNote(sink Sink, kind, detail string, c Counts) {
	if sink == nil {
		return
	}
	sink.Note(Note{Kind: kind, Detail: detail, Counts: c})
}

// GaugeSink is an optional Sink extension for point-in-time gauges:
// current values that overwrite rather than accumulate (queue depth,
// in-flight weight, breaker state). Sinks that do not implement it
// simply never see gauges — EmitGauge probes with a type assertion, so
// the Sink interface itself stays stable for span/progress/note-only
// sinks.
type GaugeSink interface {
	Gauge(name string, value int64)
}

// EmitGauge publishes one gauge to sink if it supports gauges. A nil
// sink — the no-observability fast path — costs nothing and allocates
// nothing, preserving the "no sink, no counters" contract.
func EmitGauge(sink Sink, name string, value int64) {
	if sink == nil {
		return
	}
	if gs, ok := sink.(GaugeSink); ok {
		gs.Gauge(name, value)
	}
}

// DefaultInterval is the progress sampling interval used when a run does
// not choose one.
const DefaultInterval = 200 * time.Millisecond

// Run ties a sink to one mining run: span emission against a shared
// start time and rate-limited, serialized progress sampling. A nil *Run
// is inert, so call sites need no nil checks. Observe is safe to call
// concurrently from worker goroutines; at most one progress snapshot is
// emitted per interval, and none after Finish returns.
type Run struct {
	sink  Sink
	read  func() Counts
	start time.Time
	every time.Duration

	mu     sync.Mutex   // serializes emission
	last   atomic.Int64 // elapsed nanoseconds at the last emission
	closed atomic.Bool
}

// NewRun starts the observation of one run: events go to sink, progress
// snapshots are sampled at most once per every (0 or negative selects
// DefaultInterval), and read supplies the cumulative counter state (nil
// reads zero Counts). A nil sink returns a nil (inert) Run.
func NewRun(sink Sink, every time.Duration, read func() Counts) *Run {
	if sink == nil {
		return nil
	}
	if every <= 0 {
		every = DefaultInterval
	}
	if read == nil {
		read = func() Counts { return Counts{} }
	}
	return &Run{sink: sink, read: read, start: time.Now(), every: every}
}

// Observe is the amortized progress probe: it emits a progress snapshot
// if at least the sampling interval passed since the last one, and
// returns immediately otherwise (two atomic loads). Concurrent callers
// never block each other — the loser of the emission lock skips its
// sample instead of waiting.
func (r *Run) Observe() {
	if r == nil || r.closed.Load() {
		return
	}
	now := int64(time.Since(r.start))
	if now-r.last.Load() < int64(r.every) {
		return
	}
	if !r.mu.TryLock() {
		return // another goroutine is emitting this window's snapshot
	}
	defer r.mu.Unlock()
	if r.closed.Load() {
		return
	}
	elapsed := time.Since(r.start)
	if int64(elapsed)-r.last.Load() < int64(r.every) {
		return
	}
	// Read the counters inside the lock so successive snapshots are
	// monotone.
	r.sink.Progress(Progress{Elapsed: elapsed, Counts: r.read()})
	r.last.Store(int64(elapsed))
}

// Span emits a completed span that began at start and ends now, carrying
// the current counter state.
func (r *Run) Span(phase string, start time.Time) {
	if r == nil {
		return
	}
	EmitSpan(r.sink, phase, start, r.read())
}

// Note emits a self-healing event (a retry, a degradation) carrying the
// current counter state. Notes are never throttled — they are rare by
// construction and each one matters for diagnosing a degraded run.
func (r *Run) Note(kind, detail string) {
	if r == nil {
		return
	}
	EmitNote(r.sink, kind, detail, r.read())
}

// Finish emits the final progress snapshot (Final=true) and latches the
// Run closed: any Observe still in flight on another goroutine emits
// nothing afterwards. It is idempotent.
func (r *Run) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Swap(true) {
		return
	}
	r.sink.Progress(Progress{Elapsed: time.Since(r.start), Counts: r.read(), Final: true})
}
