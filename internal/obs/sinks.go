package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sync"
	"time"
)

// Multi fans events out to every non-nil sink. It returns nil when no
// sink remains (so "no sink configured" keeps the fast path), and the
// sink itself when exactly one remains.
func Multi(sinks ...Sink) Sink {
	out := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

type multi []Sink

func (m multi) Span(s Span) {
	for _, sink := range m {
		sink.Span(s)
	}
}

func (m multi) Progress(p Progress) {
	for _, sink := range m {
		sink.Progress(p)
	}
}

func (m multi) Note(n Note) {
	for _, sink := range m {
		sink.Note(n)
	}
}

// Gauge forwards to every member sink that supports gauges, so a gauge
// emitted into a fan-out reaches the expvar publisher (and the test
// Recorder) without the emitter knowing the sink composition.
func (m multi) Gauge(name string, value int64) {
	for _, sink := range m {
		if gs, ok := sink.(GaugeSink); ok {
			gs.Gauge(name, value)
		}
	}
}

// ProgressSink adapts a progress callback to a Sink that drops spans.
func ProgressSink(f func(Progress)) Sink {
	if f == nil {
		return nil
	}
	return progressSink(f)
}

type progressSink func(Progress)

func (f progressSink) Span(Span)           {}
func (f progressSink) Progress(p Progress) { f(p) }
func (f progressSink) Note(Note)           {}

// NewTextSink returns a sink writing one human-readable line per event
// to w. Write errors are dropped: observability output never fails a
// run.
func NewTextSink(w io.Writer) Sink { return &writerSink{w: w} }

// NewJSONSink returns a sink writing one JSON object per event to w
// ({"event":"span",...} / {"event":"progress",...}; durations in
// nanoseconds). Write errors are dropped: observability output never
// fails a run.
func NewJSONSink(w io.Writer) Sink { return &writerSink{w: w, json: true} }

// writerSink serializes event formatting and writing with a mutex so
// lines from concurrent emitters never interleave.
type writerSink struct {
	mu   sync.Mutex
	w    io.Writer
	json bool
}

// jsonEvent is the wire shape of all event kinds; zero-valued fields of
// the other kinds are omitted.
type jsonEvent struct {
	Event string `json:"event"`
	Phase string `json:"phase,omitempty"`
	Start string `json:"start,omitempty"`
	// Duration (spans) and Elapsed (progress) are nanoseconds.
	Duration int64  `json:"duration,omitempty"`
	Elapsed  int64  `json:"elapsed,omitempty"`
	Kind     string `json:"kind,omitempty"`
	Detail   string `json:"detail,omitempty"`
	Counts
	Final bool `json:"final,omitempty"`
}

func (s *writerSink) Span(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.json {
		s.encode(jsonEvent{
			Event:    "span",
			Phase:    sp.Phase,
			Start:    sp.Start.Format(time.RFC3339Nano),
			Duration: int64(sp.Duration),
			Counts:   sp.Counts,
		})
		return
	}
	fmt.Fprintf(s.w, "span phase=%s dur=%s patterns=%d ops=%d checks=%d nodes=%d\n",
		sp.Phase, sp.Duration.Round(time.Microsecond), sp.Patterns, sp.Ops, sp.Checks, sp.Nodes)
}

func (s *writerSink) Progress(p Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.json {
		s.encode(jsonEvent{
			Event:   "progress",
			Elapsed: int64(p.Elapsed),
			Counts:  p.Counts,
			Final:   p.Final,
		})
		return
	}
	final := ""
	if p.Final {
		final = " final"
	}
	fmt.Fprintf(s.w, "progress elapsed=%s patterns=%d ops=%d checks=%d nodes=%d%s\n",
		p.Elapsed.Round(time.Millisecond), p.Patterns, p.Ops, p.Checks, p.Nodes, final)
}

func (s *writerSink) Note(n Note) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.json {
		s.encode(jsonEvent{
			Event:  "note",
			Kind:   n.Kind,
			Detail: n.Detail,
			Counts: n.Counts,
		})
		return
	}
	fmt.Fprintf(s.w, "note kind=%s detail=%q patterns=%d ops=%d checks=%d nodes=%d\n",
		n.Kind, n.Detail, n.Patterns, n.Ops, n.Checks, n.Nodes)
}

func (s *writerSink) encode(e jsonEvent) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.w.Write(append(b, '\n'))
}

// DefaultExpvarName is the expvar map the expvar sink publishes under
// when no name is given.
const DefaultExpvarName = "fim"

var (
	expvarMu   sync.Mutex
	expvarMaps = map[string]*expvar.Map{}
)

// NewExpvarSink returns a sink publishing run counters as process-wide
// expvar metrics under the map named name ("" selects
// DefaultExpvarName), for /debug/vars style endpoints. Same-name sinks
// share one map; progress counters reflect the latest snapshot of the
// most recent run, span metrics (span_<phase>_count, span_<phase>_ms)
// and runs accumulate across runs.
func NewExpvarSink(name string) Sink {
	if name == "" {
		name = DefaultExpvarName
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	m, ok := expvarMaps[name]
	if !ok {
		m = expvar.NewMap(name)
		expvarMaps[name] = m
	}
	return &expvarSink{m: m}
}

type expvarSink struct {
	mu sync.Mutex
	m  *expvar.Map
}

func (s *expvarSink) setInt(key string, v int64) {
	if iv, ok := s.m.Get(key).(*expvar.Int); ok {
		iv.Set(v)
		return
	}
	iv := new(expvar.Int)
	iv.Set(v)
	s.m.Set(key, iv)
}

func (s *expvarSink) Span(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.Add("span_"+sp.Phase+"_count", 1)
	s.m.Add("span_"+sp.Phase+"_ms", sp.Duration.Milliseconds())
}

func (s *expvarSink) Progress(p Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setInt("patterns", p.Patterns)
	s.setInt("ops", p.Ops)
	s.setInt("checks", p.Checks)
	s.setInt("nodes_peak", p.Nodes)
	s.setInt("elapsed_ms", p.Elapsed.Milliseconds())
	s.m.Add("progress_events", 1)
	if p.Final {
		s.m.Add("runs", 1)
	}
}

func (s *expvarSink) Note(n Note) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Accumulate per-kind event counts (retries, degradations, repairs)
	// across runs, like the span metrics.
	s.m.Add("note_"+n.Kind+"_count", 1)
}

// Gauge publishes a point-in-time value under its own name, overwriting
// the previous one (queue depth, breaker state, in-flight weight).
func (s *expvarSink) Gauge(name string, value int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setInt(name, value)
}

// Recorder is an in-memory sink for tests: it stores every event in
// arrival order under a mutex.
type Recorder struct {
	mu       sync.Mutex
	spans    []Span
	progress []Progress
	notes    []Note
	gauges   map[string]int64
}

func (r *Recorder) Span(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, s)
}

func (r *Recorder) Progress(p Progress) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.progress = append(r.progress, p)
}

// Spans returns a copy of the recorded spans in arrival order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Snapshots returns a copy of the recorded progress events in arrival
// order.
func (r *Recorder) Snapshots() []Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Progress(nil), r.progress...)
}

func (r *Recorder) Note(n Note) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notes = append(r.notes, n)
}

// Notes returns a copy of the recorded self-healing events in arrival
// order.
func (r *Recorder) Notes() []Note {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Note(nil), r.notes...)
}

// Gauge records the latest value published under name.
func (r *Recorder) Gauge(name string, value int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]int64{}
	}
	r.gauges[name] = value
}

// Gauges returns a copy of the latest gauge values by name.
func (r *Recorder) Gauges() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}
