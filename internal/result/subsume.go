package result

import (
	"sort"
	"strconv"

	"repro/internal/itemset"
)

// CFITree (closed frequent item set tree) is the repository used by the
// FP-close style miners (and the Eclat closed target) to answer the
// subsumption query "is there an already stored set Y ⊇ X with support s?"
// — which, by the apriori property, is equivalent to supp(Y) ≥ s for
// supersets Y of a set X with supp(X) = s. It follows the role of the
// CFI-tree in Grahne & Zhu's FPclose.
//
// Sets are stored along root-to-node paths with item codes strictly
// ascending. Every node caches the maximum support of any terminal set in
// its subtree, which prunes the subsumption search.
type CFITree struct {
	root cfiNode
	n    int
}

type cfiNode struct {
	children map[itemset.Item]*cfiNode
	// maxSupp is the maximum support of any stored set whose path passes
	// through or ends in this subtree.
	maxSupp int
	// termSupp is the support of the set ending exactly here (0 = none;
	// valid because stored supports are always ≥ 1).
	termSupp int
}

// Len returns the number of stored sets.
func (t *CFITree) Len() int { return t.n }

// Insert stores items with the given support. Items must be canonical.
func (t *CFITree) Insert(items itemset.Set, support int) {
	node := &t.root
	if support > node.maxSupp {
		node.maxSupp = support
	}
	for _, it := range items {
		if node.children == nil {
			node.children = make(map[itemset.Item]*cfiNode, 4)
		}
		next := node.children[it]
		if next == nil {
			next = &cfiNode{}
			node.children[it] = next
		}
		if support > next.maxSupp {
			next.maxSupp = support
		}
		node = next
	}
	if support > node.termSupp {
		node.termSupp = support
	}
	t.n++
}

// Subsumed reports whether some stored set Y ⊇ items has support ≥
// support. A stored copy of items itself also counts (Y ⊇ X includes
// Y = X), which is what the closed-miner duplicate check needs.
func (t *CFITree) Subsumed(items itemset.Set, support int) bool {
	return subsumed(&t.root, items, support)
}

func subsumed(node *cfiNode, items itemset.Set, support int) bool {
	if node.maxSupp < support {
		return false
	}
	if len(items) == 0 {
		// All required items covered; any terminal set in this subtree
		// with sufficient support is a superset.
		return maxTerm(node) >= support
	}
	want := items[0]
	for it, child := range node.children {
		if it > want {
			// Paths are ascending, so `want` cannot occur deeper.
			continue
		}
		if it == want {
			if subsumed(child, items[1:], support) {
				return true
			}
		} else if subsumed(child, items, support) {
			return true
		}
	}
	return false
}

func maxTerm(node *cfiNode) int {
	best := node.termSupp
	for _, child := range node.children {
		if node.maxSupp <= best {
			break
		}
		if v := maxTerm(child); v > best {
			best = v
		}
	}
	return best
}

// SubsumeFilter accumulates closure candidates and, at emit time, keeps
// exactly the candidates that are maximal within their support group:
// a candidate (X, s) is discarded iff some other candidate (Y, s) with
// Y ⊋ X exists. Since every closed set occurs among the candidates and a
// non-closed candidate always has a closed strict superset with the same
// support, the surviving candidates are precisely the closed sets.
type SubsumeFilter struct {
	bySupport map[int][]itemset.Set
	seen      map[string]bool // dedup on (items, support)
}

// NewSubsumeFilter returns an empty filter.
func NewSubsumeFilter() *SubsumeFilter {
	return &SubsumeFilter{
		bySupport: make(map[int][]itemset.Set),
		seen:      make(map[string]bool),
	}
}

// Add records a closure candidate. The items are copied. Duplicate
// candidates collapse.
func (f *SubsumeFilter) Add(items itemset.Set, support int) {
	k := strconv.Itoa(support) + "|" + items.Key()
	if f.seen[k] {
		return
	}
	f.seen[k] = true
	f.bySupport[support] = append(f.bySupport[support], items.Clone())
}

// Emit reports the maximal candidates per support group.
func (f *SubsumeFilter) Emit(rep Reporter) {
	supports := make([]int, 0, len(f.bySupport))
	for s := range f.bySupport {
		supports = append(supports, s)
	}
	sort.Ints(supports)
	for _, s := range supports {
		group := f.bySupport[s]
		// Longer sets cannot be subsumed by shorter ones; check each set
		// only against strictly longer sets via a per-group CFI tree.
		sort.Slice(group, func(i, j int) bool { return len(group[i]) > len(group[j]) })
		var tree CFITree
		for _, x := range group {
			// Subsumed by a previously inserted (longer or equal length)
			// set? Equal-length distinct sets cannot subsume each other,
			// and duplicates were collapsed in Add, so "⊇ with length ≥"
			// means proper superset here.
			if !tree.Subsumed(x, s) {
				rep.Report(x, s)
			}
			tree.Insert(x, s)
		}
	}
}
