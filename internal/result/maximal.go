package result

import "sort"

// FilterMaximal reduces a set of closed frequent patterns to the maximal
// frequent item sets (§2.3): a frequent item set is maximal iff it has no
// frequent proper superset, and since every frequent set has a closed
// superset with the same support, the maximal frequent sets are exactly
// the closed sets without a closed proper superset.
func FilterMaximal(closed *Set) *Set {
	patterns := append([]Pattern(nil), closed.Patterns...)
	// Longest first: a proper superset is always strictly longer.
	sort.Slice(patterns, func(i, j int) bool { return len(patterns[i].Items) > len(patterns[j].Items) })
	var tree CFITree
	var out Set
	for _, p := range patterns {
		// Support 1 in the query accepts any stored superset, regardless
		// of its support; sets are distinct, so a hit on an equal-length
		// set is impossible and any hit is a proper superset.
		if !tree.Subsumed(p.Items, 1) {
			out.Add(p.Items, p.Support)
		}
		tree.Insert(p.Items, 1)
	}
	out.Sort()
	return &out
}
