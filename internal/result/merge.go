package result

import (
	"sort"

	"repro/internal/itemset"
)

// MaxMerger merges pattern streams from parallel workers that may report
// the same item set more than once with different partial supports (e.g.
// the parallel Carpenter branches, where a branch started inside a set's
// cover counts only the tail of the cover). It keeps the maximum support
// per item set — for such streams the maximum is the true support, because
// the branch rooted at the first covering transaction counts the whole
// cover — and emits in canonical order, so the merged output is
// deterministic regardless of worker scheduling.
type MaxMerger struct {
	supp map[string]int
	sets map[string]itemset.Set
}

// NewMaxMerger returns an empty merger.
func NewMaxMerger() *MaxMerger {
	return &MaxMerger{supp: make(map[string]int), sets: make(map[string]itemset.Set)}
}

// Add records one reported pattern; the items are copied.
func (g *MaxMerger) Add(items itemset.Set, support int) {
	k := items.Key()
	if old, ok := g.supp[k]; !ok {
		g.supp[k] = support
		g.sets[k] = items.Clone()
	} else if support > old {
		g.supp[k] = support
	}
}

// Len returns the number of distinct item sets recorded.
func (g *MaxMerger) Len() int { return len(g.supp) }

// Emit reports every recorded set whose merged support reaches minSupport,
// in canonical item set order.
func (g *MaxMerger) Emit(minSupport int, rep Reporter) {
	keys := make([]string, 0, len(g.sets))
	for k := range g.sets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return itemset.Compare(g.sets[keys[i]], g.sets[keys[j]]) < 0
	})
	for _, k := range keys {
		if s := g.supp[k]; s >= minSupport {
			rep.Report(g.sets[k], s)
		}
	}
}
