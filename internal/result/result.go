// Package result holds the common output machinery of the miners: reported
// patterns, streaming reporters, canonical result sets that can be compared
// across algorithms, and verification helpers (closedness / frequency
// checks against the database, same-support subsumption filtering).
package result

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// Pattern is one mined item set together with its absolute support.
type Pattern struct {
	Items   itemset.Set
	Support int
}

func (p Pattern) String() string {
	return fmt.Sprintf("%s (%d)", p.Items, p.Support)
}

// Reporter receives mined patterns as they are found. Implementations must
// treat the items slice as borrowed: it may be reused by the miner after
// Report returns.
type Reporter interface {
	Report(items itemset.Set, support int)
}

// ReporterFunc adapts a function to the Reporter interface.
type ReporterFunc func(items itemset.Set, support int)

// Report calls f.
func (f ReporterFunc) Report(items itemset.Set, support int) { f(items, support) }

// Counter is a Reporter that only counts patterns; the bench harness uses
// it so that timing excludes result materialization.
type Counter struct{ N int }

// Report increments the counter.
func (c *Counter) Report(itemset.Set, int) { c.N++ }

// Set is a collected, canonicalizable set of patterns.
type Set struct {
	Patterns []Pattern
	sorted   bool
}

// Collect returns a Reporter that appends (copies of) reported patterns to
// the set.
func (s *Set) Collect() Reporter {
	return ReporterFunc(func(items itemset.Set, support int) {
		s.Add(items, support)
	})
}

// Add copies the pattern into the set.
func (s *Set) Add(items itemset.Set, support int) {
	s.Patterns = append(s.Patterns, Pattern{Items: items.Clone(), Support: support})
	s.sorted = false
}

// Len returns the number of patterns.
func (s *Set) Len() int { return len(s.Patterns) }

// Sort puts the set into canonical order: by size, then lexicographically,
// then by support. Two equal result sets compare element-wise after Sort.
func (s *Set) Sort() {
	if s.sorted {
		return
	}
	sort.Slice(s.Patterns, func(i, j int) bool {
		c := itemset.Compare(s.Patterns[i].Items, s.Patterns[j].Items)
		if c != 0 {
			return c < 0
		}
		return s.Patterns[i].Support < s.Patterns[j].Support
	})
	s.sorted = true
}

// Equal reports whether s and t contain exactly the same patterns (item
// sets and supports). Both sets are sorted as a side effect.
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	s.Sort()
	t.Sort()
	for i := range s.Patterns {
		if s.Patterns[i].Support != t.Patterns[i].Support ||
			!s.Patterns[i].Items.Equal(t.Patterns[i].Items) {
			return false
		}
	}
	return true
}

// Diff describes, for debugging and tests, how t differs from s: patterns
// only in s, only in t, and patterns present in both but with different
// support. At most max entries per category are rendered.
func (s *Set) Diff(t *Set, max int) string {
	s.Sort()
	t.Sort()
	key := func(p Pattern) string { return p.Items.Key() }
	sm := map[string]int{}
	for _, p := range s.Patterns {
		sm[key(p)] = p.Support
	}
	tm := map[string]int{}
	for _, p := range t.Patterns {
		tm[key(p)] = p.Support
	}
	var b strings.Builder
	miss, extra, diff := 0, 0, 0
	for _, p := range s.Patterns {
		if ts, ok := tm[key(p)]; !ok {
			if miss < max {
				fmt.Fprintf(&b, "  only in A: %s\n", p)
			}
			miss++
		} else if ts != p.Support {
			if diff < max {
				fmt.Fprintf(&b, "  support mismatch %s: A=%d B=%d\n", p.Items, p.Support, ts)
			}
			diff++
		}
	}
	for _, p := range t.Patterns {
		if _, ok := sm[key(p)]; !ok {
			if extra < max {
				fmt.Fprintf(&b, "  only in B: %s\n", p)
			}
			extra++
		}
	}
	fmt.Fprintf(&b, "  totals: A=%d B=%d onlyA=%d onlyB=%d suppDiff=%d", s.Len(), t.Len(), miss, extra, diff)
	return b.String()
}

// Write renders the set in Borgelt's output format: items separated by
// spaces, the support appended in parentheses.
func (s *Set) Write(w io.Writer, names []string) error {
	s.Sort()
	for _, p := range s.Patterns {
		var b strings.Builder
		for i, it := range p.Items {
			if i > 0 {
				b.WriteByte(' ')
			}
			if names != nil {
				b.WriteString(names[it])
			} else {
				fmt.Fprintf(&b, "%d", it)
			}
		}
		fmt.Fprintf(&b, " (%d)\n", p.Support)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Support computes the absolute (weighted) support of items in db.
func Support(db txdb.Source, items itemset.Set) int {
	n := 0
	for k, rows := 0, db.NumTx(); k < rows; k++ {
		if items.SubsetOf(db.Tx(k)) {
			n += db.Weight(k)
		}
	}
	return n
}

// Closure returns the closure of items in db: the intersection of all
// transactions containing items. If no transaction contains items, the
// second return value is false.
func Closure(db txdb.Source, items itemset.Set) (itemset.Set, bool) {
	var clo itemset.Set
	first := true
	for k, rows := 0, db.NumTx(); k < rows; k++ {
		t := db.Tx(k)
		if !items.SubsetOf(t) {
			continue
		}
		if first {
			clo = t.Clone()
			first = false
		} else {
			clo = clo.Intersect(t)
		}
		if len(clo) == len(items) {
			// cannot shrink below items, early out
			break
		}
	}
	return clo, !first
}

// IsClosed reports whether items is closed in db (equal to the
// intersection of all transactions containing it), per §2.4 of the paper.
// The empty set and sets with empty cover are not considered closed.
func IsClosed(db txdb.Source, items itemset.Set) bool {
	if len(items) == 0 {
		return false
	}
	clo, ok := Closure(db, items)
	return ok && clo.Equal(items)
}

// Verify checks every pattern of s against db: support must match a direct
// count, be at least minSupport, and the item set must be closed. It
// returns a descriptive error for the first violation. Tests use it as a
// semantic check that is independent of any particular oracle.
func Verify(db txdb.Source, s *Set, minSupport int) error {
	for _, p := range s.Patterns {
		supp := Support(db, p.Items)
		if supp != p.Support {
			return fmt.Errorf("pattern %s: reported support %d, actual %d", p.Items, p.Support, supp)
		}
		if supp < minSupport {
			return fmt.Errorf("pattern %s: support %d below minimum %d", p.Items, supp, minSupport)
		}
		if !IsClosed(db, p.Items) {
			clo, _ := Closure(db, p.Items)
			return fmt.Errorf("pattern %s: not closed (closure %s)", p.Items, clo)
		}
	}
	// No duplicates.
	seen := make(map[string]bool, len(s.Patterns))
	for _, p := range s.Patterns {
		k := p.Items.Key()
		if seen[k] {
			return fmt.Errorf("pattern %s reported twice", p.Items)
		}
		seen[k] = true
	}
	return nil
}
