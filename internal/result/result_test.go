package result

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

func paperDB() *dataset.Database {
	return dataset.FromInts(
		[]int{0, 1, 2},
		[]int{0, 3, 4},
		[]int{1, 2, 3},
		[]int{0, 1, 2, 3},
		[]int{1, 2},
		[]int{0, 1, 3},
		[]int{3, 4},
		[]int{2, 3, 4},
	)
}

func TestSupport(t *testing.T) {
	db := paperDB()
	tests := []struct {
		items itemset.Set
		want  int
	}{
		{itemset.FromInts(), 8},
		{itemset.FromInts(0), 4},
		{itemset.FromInts(3), 6},
		{itemset.FromInts(1, 2), 4},
		{itemset.FromInts(0, 1, 2), 2},
		{itemset.FromInts(0, 4), 1},
		{itemset.FromInts(0, 1, 2, 3, 4), 0},
	}
	for _, tc := range tests {
		if got := Support(db, tc.items); got != tc.want {
			t.Errorf("Support(%v) = %d, want %d", tc.items, got, tc.want)
		}
	}
}

func TestClosureAndIsClosed(t *testing.T) {
	db := paperDB()
	// {b} appears in t1,t3,t4,t5,t6; intersection = {b} — closed? t1∩t3 =
	// {b,c}; all five: {a,b,c}∩{b,c,d}∩{a,b,c,d}∩{b,c}∩{a,b,d} = {b}. So {b}
	// is closed.
	clo, ok := Closure(db, itemset.FromInts(1))
	if !ok || !clo.Equal(itemset.FromInts(1)) {
		t.Fatalf("closure({b}) = %v, %v", clo, ok)
	}
	if !IsClosed(db, itemset.FromInts(1)) {
		t.Error("{b} should be closed")
	}
	// {c} occurs in t1,t3,t4,t5,t8: intersection = {c}; closed.
	if !IsClosed(db, itemset.FromInts(2)) {
		t.Error("{c} should be closed")
	}
	// {b,c} occurs in t1,t3,t4,t5 → intersection {b,c}: closed.
	if !IsClosed(db, itemset.FromInts(1, 2)) {
		t.Error("{b,c} should be closed")
	}
	// {a,c} occurs in t1,t4 → intersection {a,b,c}: not closed.
	if IsClosed(db, itemset.FromInts(0, 2)) {
		t.Error("{a,c} should not be closed")
	}
	clo, ok = Closure(db, itemset.FromInts(0, 2))
	if !ok || !clo.Equal(itemset.FromInts(0, 1, 2)) {
		t.Fatalf("closure({a,c}) = %v", clo)
	}
	// Empty cover.
	if _, ok := Closure(db, itemset.FromInts(0, 1, 2, 3, 4)); ok {
		t.Error("closure of uncovered set should report ok=false")
	}
	if IsClosed(db, itemset.FromInts()) {
		t.Error("the empty set is never reported as closed here")
	}
}

func TestSetSortEqualDiff(t *testing.T) {
	var a, b Set
	a.Add(itemset.FromInts(1, 2), 3)
	a.Add(itemset.FromInts(0), 5)
	b.Add(itemset.FromInts(0), 5)
	b.Add(itemset.FromInts(1, 2), 3)
	if !a.Equal(&b) {
		t.Fatalf("sets should be equal:\n%s", a.Diff(&b, 10))
	}
	b.Add(itemset.FromInts(9), 1)
	if a.Equal(&b) {
		t.Fatal("sets should differ")
	}
	d := a.Diff(&b, 10)
	if !strings.Contains(d, "only in B") {
		t.Fatalf("diff = %s", d)
	}
	var c Set
	c.Add(itemset.FromInts(0), 4) // support mismatch
	c.Add(itemset.FromInts(1, 2), 3)
	if a.Equal(&c) {
		t.Fatal("support mismatch must break equality")
	}
	if !strings.Contains(a.Diff(&c, 10), "support mismatch") {
		t.Fatal("diff should mention support mismatch")
	}
}

func TestCollectCopies(t *testing.T) {
	var s Set
	rep := s.Collect()
	buf := itemset.FromInts(1, 2)
	rep.Report(buf, 2)
	buf[0] = 9 // miner reuses its buffer
	if !s.Patterns[0].Items.Equal(itemset.FromInts(1, 2)) {
		t.Fatal("Collect must copy the reported items")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Report(itemset.FromInts(1), 1)
	c.Report(itemset.FromInts(2), 1)
	if c.N != 2 {
		t.Fatalf("N = %d", c.N)
	}
}

func TestWrite(t *testing.T) {
	var s Set
	s.Add(itemset.FromInts(2, 0), 4)
	s.Add(itemset.FromInts(1), 7)
	var sb strings.Builder
	if err := s.Write(&sb, nil); err != nil {
		t.Fatal(err)
	}
	want := "1 (7)\n0 2 (4)\n"
	if sb.String() != want {
		t.Fatalf("Write = %q, want %q", sb.String(), want)
	}
	sb.Reset()
	if err := s.Write(&sb, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "a c (4)") {
		t.Fatalf("named Write = %q", sb.String())
	}
}

func TestVerify(t *testing.T) {
	db := paperDB()
	var good Set
	good.Add(itemset.FromInts(1), 5)
	good.Add(itemset.FromInts(1, 2), 4)
	if err := Verify(db, &good, 4); err != nil {
		t.Fatalf("Verify(good): %v", err)
	}

	var wrongSupp Set
	wrongSupp.Add(itemset.FromInts(1), 4)
	if err := Verify(db, &wrongSupp, 1); err == nil {
		t.Error("expected support mismatch error")
	}

	var notClosed Set
	notClosed.Add(itemset.FromInts(0, 2), 2)
	if err := Verify(db, &notClosed, 1); err == nil {
		t.Error("expected not-closed error")
	}

	var infrequent Set
	infrequent.Add(itemset.FromInts(1), 5)
	if err := Verify(db, &infrequent, 6); err == nil {
		t.Error("expected below-minimum error")
	}

	var dup Set
	dup.Add(itemset.FromInts(1), 5)
	dup.Add(itemset.FromInts(1), 5)
	if err := Verify(db, &dup, 1); err == nil {
		t.Error("expected duplicate error")
	}
}

func TestCFITreeBasics(t *testing.T) {
	var tr CFITree
	tr.Insert(itemset.FromInts(1, 3, 5), 4)
	tr.Insert(itemset.FromInts(2, 3), 6)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tests := []struct {
		items itemset.Set
		supp  int
		want  bool
	}{
		{itemset.FromInts(1, 3, 5), 4, true},  // exact match
		{itemset.FromInts(3, 5), 4, true},     // subset of first
		{itemset.FromInts(1, 5), 4, true},     // subset with skip
		{itemset.FromInts(3), 6, true},        // subset of second
		{itemset.FromInts(3), 7, false},       // support too high
		{itemset.FromInts(1, 3, 5), 5, false}, // support too high
		{itemset.FromInts(1, 2), 1, false},    // not a subset of anything
		{itemset.FromInts(), 6, true},         // empty set subsumed by all
		{itemset.FromInts(5, 9), 1, false},
	}
	for _, tc := range tests {
		if got := tr.Subsumed(tc.items, tc.supp); got != tc.want {
			t.Errorf("Subsumed(%v, %d) = %v, want %v", tc.items, tc.supp, got, tc.want)
		}
	}
}

func TestCFITreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		var tr CFITree
		type stored struct {
			s    itemset.Set
			supp int
		}
		var all []stored
		for i := 0; i < 30; i++ {
			s := randSet(rng, 16, 6)
			supp := 1 + rng.Intn(5)
			tr.Insert(s, supp)
			all = append(all, stored{s, supp})
		}
		for q := 0; q < 50; q++ {
			query := randSet(rng, 16, 5)
			supp := 1 + rng.Intn(5)
			want := false
			for _, st := range all {
				if st.supp >= supp && query.SubsetOf(st.s) {
					want = true
					break
				}
			}
			if got := tr.Subsumed(query, supp); got != want {
				t.Fatalf("Subsumed(%v, %d) = %v, want %v", query, supp, got, want)
			}
		}
	}
}

func randSet(rng *rand.Rand, universe, maxLen int) itemset.Set {
	n := rng.Intn(maxLen + 1)
	items := make([]itemset.Item, n)
	for i := range items {
		items[i] = itemset.Item(rng.Intn(universe))
	}
	return itemset.New(items...)
}

func TestSubsumeFilter(t *testing.T) {
	f := NewSubsumeFilter()
	f.Add(itemset.FromInts(1, 2), 3)
	f.Add(itemset.FromInts(1), 3)       // subsumed by {1,2} at support 3
	f.Add(itemset.FromInts(1), 5)       // survives: different support group
	f.Add(itemset.FromInts(1, 2, 4), 2) // survives
	f.Add(itemset.FromInts(2, 4), 2)    // subsumed
	f.Add(itemset.FromInts(1, 2), 3)    // duplicate, collapses
	var out Set
	f.Emit(out.Collect())
	var want Set
	want.Add(itemset.FromInts(1, 2), 3)
	want.Add(itemset.FromInts(1), 5)
	want.Add(itemset.FromInts(1, 2, 4), 2)
	if !out.Equal(&want) {
		t.Fatalf("filter output:\n%s", out.Diff(&want, 10))
	}
}

func TestSubsumeFilterRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		f := NewSubsumeFilter()
		type cand struct {
			s    itemset.Set
			supp int
		}
		var cands []cand
		seen := map[string]bool{}
		for i := 0; i < 40; i++ {
			s := randSet(rng, 12, 5)
			supp := 1 + rng.Intn(4)
			f.Add(s, supp)
			k := s.Key() + "|" + string(rune('0'+supp))
			if !seen[k] {
				seen[k] = true
				cands = append(cands, cand{s, supp})
			}
		}
		var got Set
		f.Emit(got.Collect())
		var want Set
		for _, c := range cands {
			maximal := true
			for _, other := range cands {
				if other.supp == c.supp && c.s.ProperSubsetOf(other.s) {
					maximal = false
					break
				}
			}
			if maximal {
				want.Add(c.s, c.supp)
			}
		}
		if !got.Equal(&want) {
			t.Fatalf("filter mismatch:\n%s", got.Diff(&want, 10))
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	var s Set
	s.Add(itemset.FromInts(3, 17, 42), 8)
	s.Add(itemset.FromInts(0), 12)
	var sb strings.Builder
	if err := s.Write(&sb, nil); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(&s) {
		t.Fatalf("round trip:\n%s", back.Diff(&s, 10))
	}
}

func TestParseNamed(t *testing.T) {
	names := []string{"bread", "milk", "beer"}
	var s Set
	s.Add(itemset.FromInts(0, 2), 5)
	var sb strings.Builder
	if err := s.Write(&sb, names); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()), names)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(&s) {
		t.Fatalf("named round trip:\n%s", back.Diff(&s, 10))
	}
	if _, err := Parse(strings.NewReader("cheese (1)\n"), names); err == nil {
		t.Fatal("unknown name should fail")
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"1 2 3\n",    // no support
		"1 2 (x)\n",  // bad support
		"a b (3)\n",  // non-numeric without names
		"(4)\n",      // empty set
		"1 -2 (3)\n", // negative item
	} {
		if _, err := Parse(strings.NewReader(in), nil); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
	// Comments and blank lines are fine.
	s, err := Parse(strings.NewReader("# c\n\n1 (2)\n"), nil)
	if err != nil || s.Len() != 1 {
		t.Fatalf("comment handling: %v %d", err, s.Len())
	}
}
