package result

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/itemset"
)

// Parse reads a result set in the format produced by Set.Write (Borgelt's
// output format): one pattern per line, whitespace-separated items
// followed by the support in parentheses, e.g. "3 17 42 (8)". If names is
// non-nil, item tokens are resolved against it; otherwise tokens must be
// numeric codes. Blank lines and '#' comments are skipped.
func Parse(r io.Reader, names []string) (*Set, error) {
	index := map[string]itemset.Item{}
	for i, n := range names {
		index[n] = itemset.Item(i)
	}
	var out Set
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		open := strings.LastIndexByte(text, '(')
		close_ := strings.LastIndexByte(text, ')')
		if open < 0 || close_ < open {
			return nil, fmt.Errorf("result: line %d: missing support parentheses: %q", line, text)
		}
		supp, err := strconv.Atoi(strings.TrimSpace(text[open+1 : close_]))
		if err != nil {
			return nil, fmt.Errorf("result: line %d: bad support: %w", line, err)
		}
		var items []itemset.Item
		for _, tok := range strings.Fields(text[:open]) {
			if names != nil {
				code, ok := index[tok]
				if !ok {
					return nil, fmt.Errorf("result: line %d: unknown item name %q", line, tok)
				}
				items = append(items, code)
				continue
			}
			v, err := strconv.Atoi(tok)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("result: line %d: bad item %q", line, tok)
			}
			items = append(items, itemset.Item(v))
		}
		if len(items) == 0 {
			return nil, fmt.Errorf("result: line %d: empty item set", line)
		}
		out.Add(itemset.New(items...), supp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("result: parse: %w", err)
	}
	return &out, nil
}
