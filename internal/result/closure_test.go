package result

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
)

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

// TestClosureOperatorLaws checks that the compound map f∘g of the Galois
// connection in §2.5 of the paper is a closure operator: extensive
// (I ⊆ closure(I)), monotone (I ⊆ J ⇒ closure(I) ⊆ closure(J)), and
// idempotent (closure(closure(I)) = closure(I)).
func TestClosureOperatorLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		db := randDB(rng, 10, 8, 0.4)
		i := randSet(rng, 10, 4)
		j := i.Union(randSet(rng, 10, 3))

		ci, okI := Closure(db, i)
		cj, okJ := Closure(db, j)
		if !okI {
			// Nothing contains i; the closure is undefined, as is j's if
			// j ⊇ i.
			continue
		}
		// Extensive.
		if !i.SubsetOf(ci) {
			t.Fatalf("closure not extensive: %v -> %v", i, ci)
		}
		// Monotone (where defined).
		if okJ && !ci.SubsetOf(cj) {
			t.Fatalf("closure not monotone: cl(%v)=%v, cl(%v)=%v", i, ci, j, cj)
		}
		// Idempotent.
		cci, ok := Closure(db, ci)
		if !ok || !cci.Equal(ci) {
			t.Fatalf("closure not idempotent: %v -> %v -> %v", i, ci, cci)
		}
		// The closure has the same cover (hence support).
		if Support(db, i) != Support(db, ci) {
			t.Fatalf("closure changed support: %v (%d) -> %v (%d)",
				i, Support(db, i), ci, Support(db, ci))
		}
		// The closure is closed.
		if len(ci) > 0 && !IsClosed(db, ci) {
			t.Fatalf("closure %v of %v is not closed", ci, i)
		}
	}
}

// TestClosedIffNoPerfectExtension cross-checks the two characterizations
// of closedness in §2.3/§2.4: an item set with non-empty cover is closed
// iff it has no perfect extension (no item outside it contained in every
// covering transaction).
func TestClosedIffNoPerfectExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 200; trial++ {
		db := randDB(rng, 9, 8, 0.4)
		s := randSet(rng, 9, 4)
		if len(s) == 0 || Support(db, s) == 0 {
			continue
		}
		perfect := false
		for i := 0; i < db.Items; i++ {
			it := itemset.Item(i)
			if s.Contains(it) {
				continue
			}
			if Support(db, s.WithItem(it)) == Support(db, s) {
				perfect = true
				break
			}
		}
		if got := IsClosed(db, s); got == perfect {
			t.Fatalf("closed=%v but perfect-extension=%v for %v in %v", got, perfect, s, db.Trans)
		}
	}
}
