package fpgrowth

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/result"
)

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

// bruteAllFrequent enumerates all frequent item sets directly.
func bruteAllFrequent(db *dataset.Database, minsup int) *result.Set {
	var out result.Set
	items := make(itemset.Set, 0, db.Items)
	for mask := 1; mask < 1<<uint(db.Items); mask++ {
		items = items[:0]
		for i := 0; i < db.Items; i++ {
			if mask&(1<<uint(i)) != 0 {
				items = append(items, itemset.Item(i))
			}
		}
		if supp := result.Support(db, items); supp >= minsup {
			out.Add(items, supp)
		}
	}
	return &out
}

func TestAllMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for trial := 0; trial < 60; trial++ {
		items := 2 + rng.Intn(7)
		n := 1 + rng.Intn(10)
		db := randDB(rng, items, n, 0.2+rng.Float64()*0.5)
		for _, minsup := range []int{1, 2} {
			want := bruteAllFrequent(db, minsup)
			var got result.Set
			if err := Mine(db, Options{MinSupport: minsup, Target: All}, got.Collect()); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("FP-growth(all) mismatch (minsup=%d db=%v):\n%s", minsup, db.Trans, got.Diff(want, 10))
			}
		}
	}
}

func TestClosedMatchesIsTaLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 5; trial++ {
		db := randDB(rng, 30+rng.Intn(30), 60+rng.Intn(80), 0.1+rng.Float64()*0.2)
		minsup := 2 + rng.Intn(6)
		var want result.Set
		if err := core.Mine(db, core.Options{MinSupport: minsup}, want.Collect()); err != nil {
			t.Fatal(err)
		}
		var got result.Set
		if err := Mine(db, Options{MinSupport: minsup}, got.Collect()); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(&want) {
			t.Fatalf("FP-close disagrees with IsTa (minsup=%d):\n%s", minsup, got.Diff(&want, 10))
		}
	}
}

func TestEdgeCases(t *testing.T) {
	var got result.Set
	if err := Mine(&dataset.Database{Items: 3}, Options{MinSupport: 1}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty db")
	}

	db := dataset.FromInts([]int{0, 1, 2})
	got = result.Set{}
	if err := Mine(db, Options{MinSupport: 1}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	var want result.Set
	want.Add(itemset.FromInts(0, 1, 2), 1)
	if !got.Equal(&want) {
		t.Fatalf("single transaction closed: %s", got.Diff(&want, 5))
	}

	bad := &dataset.Database{Items: 1, Trans: []itemset.Set{{3}}}
	if err := Mine(bad, Options{MinSupport: 1}, &result.Counter{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestCancel(t *testing.T) {
	done := make(chan struct{})
	close(done)
	db := randDB(rand.New(rand.NewSource(7)), 50, 200, 0.4)
	err := Mine(db, Options{MinSupport: 2, Done: done}, &result.Counter{})
	if err != mining.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestFPTreeStructure(t *testing.T) {
	// Two overlapping transactions must share a prefix path.
	tree := newFPTree(3)
	tree.insert([]int32{0, 1}, 1)
	tree.insert([]int32{0, 1, 2}, 1)
	tree.insert([]int32{1}, 1)
	if tree.counts[0] != 2 || tree.counts[1] != 3 || tree.counts[2] != 1 {
		t.Fatalf("counts = %v", tree.counts)
	}
	// Item 0 must have a single node with count 2.
	n := tree.heads[0]
	if n == nil || n.next != nil || n.count != 2 {
		t.Fatalf("item 0 chain wrong: %+v", n)
	}
	// Item 1 has two nodes: one under 0 (count 2), one under root (count 1).
	chain := 0
	for n := tree.heads[1]; n != nil; n = n.next {
		chain++
	}
	if chain != 2 {
		t.Fatalf("item 1 chain length = %d", chain)
	}
}
