// Package fpgrowth implements FP-growth (Han et al.) and its closed-set
// variant FP-close (Grahne & Zhu), the strongest item set *enumeration*
// baseline the paper compares against (the FIMI'03 winning implementation).
//
// The FP-tree stores the database as a prefix tree of transactions with
// per-item node chains; mining proceeds by projecting conditional pattern
// bases. For the closed target, each branch first absorbs its perfect
// extensions into a closure candidate, which is checked against a CFI
// repository: because items are processed in ascending frequency
// (descending code) order, any same-support superset of a candidate has
// either already been inserted (extra item with larger code) or is part of
// the candidate itself (smaller-code perfect extensions are absorbed), so
// a candidate that is not subsumed can be reported immediately, and a
// subsumed candidate prunes its entire branch.
package fpgrowth

import (
	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/txdb"
)

// Target selects what Mine reports.
//
// Deprecated: Target and its constants are aliases for the shared
// engine.Target.
type Target = engine.Target

const (
	// Closed reports closed frequent item sets (FP-close).
	Closed = engine.Closed
	// All reports every frequent item set (plain FP-growth).
	All = engine.All
)

// Options configures the miner.
type Options struct {
	// MinSupport is the absolute minimum support; values < 1 act as 1.
	MinSupport int
	// Target selects closed-only (default) or all frequent item sets.
	Target Target
	// Done optionally cancels the run.
	Done <-chan struct{}
	// Guard optionally bounds the run (deadline and pattern budget). May
	// be nil.
	Guard *guard.Guard
}

// fpNode is one FP-tree node.
type fpNode struct {
	item     int32
	count    int32
	parent   *fpNode
	next     *fpNode // header chain of nodes with the same item
	children map[int32]*fpNode
}

// fpTree is an FP-tree plus its header table.
type fpTree struct {
	root   fpNode
	heads  []*fpNode // per item code
	counts []int32   // per item support within this (conditional) tree
}

func newFPTree(items int) *fpTree {
	return &fpTree{
		heads:  make([]*fpNode, items),
		counts: make([]int32, items),
	}
}

// insert adds a path of ascending item codes with the given count.
func (t *fpTree) insert(path []int32, count int32) {
	node := &t.root
	for _, it := range path {
		t.counts[it] += count
		child := node.children[it]
		if child == nil {
			child = &fpNode{item: it, parent: node, next: t.heads[it]}
			t.heads[it] = child
			if node.children == nil {
				node.children = make(map[int32]*fpNode, 4)
			}
			node.children[it] = child
		}
		child.count += count
		node = child
	}
}

// Mine runs FP-growth / FP-close on db and reports patterns in original
// item codes.
func Mine(db txdb.Source, opts Options, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	// Descending frequency coding puts frequent items near the root,
	// which is what keeps the FP-tree compact.
	pre := prep.Prepare(db, minsup, prep.Config{Items: prep.OrderDescFreq, Trans: prep.OrderOriginal})
	ctl := mining.Guarded(opts.Done, opts.Guard)
	return minePrepared(pre, minsup, opts.Target, ctl, rep)
}

// minePrepared is FP-growth / FP-close on an already preprocessed
// database.
func minePrepared(pre *prep.Prepared, minsup int, target Target, ctl *mining.Control, rep result.Reporter) error {
	pdb := pre.DB
	if pdb.NumItems() == 0 {
		return nil
	}

	tree := newFPTree(pdb.NumItems())
	for k, n := 0, pdb.NumTx(); k < n; k++ {
		// Rows are []int32 already — the FP-tree consumes them directly,
		// with the row weight as the path count.
		tree.insert(pdb.Tx(k), int32(pdb.Weight(k)))
	}

	m := &fpMiner{
		minsup: int32(minsup),
		target: target,
		pre:    pre,
		rep:    rep,
		ctl:    ctl,
	}
	prefix := make(itemset.Set, 0, 32)
	return m.mine(tree, prefix)
}

type fpMiner struct {
	minsup int32
	target Target
	pre    *prep.Prepared
	rep    result.Reporter
	ctl    *mining.Control
	cfi    result.CFITree // repository for the closed target
}

// mine processes one (conditional) FP-tree whose patterns all extend
// prefix. Items are visited in descending code order (ascending
// frequency), matching the divide-and-conquer scheme of §2.2.
func (m *fpMiner) mine(tree *fpTree, prefix itemset.Set) error {
	for i := len(tree.counts) - 1; i >= 0; i-- {
		supp := tree.counts[i]
		if supp < m.minsup {
			continue
		}
		if err := m.ctl.Tick(); err != nil {
			return err
		}
		m.ctl.CountOps(1) // one conditional projection per frequent item

		// Count the conditional pattern base of item i.
		condCounts := make([]int32, i) // only items with smaller codes occur above i
		for n := tree.heads[i]; n != nil; n = n.next {
			for p := n.parent; p != nil && p.parent != nil; p = p.parent {
				condCounts[p.item] += n.count
			}
		}

		switch m.target {
		case All:
			m.emit(append(prefix, itemset.Item(i)), int(supp))
			cond := m.buildConditional(tree, i, condCounts, nil)
			if cond != nil {
				if err := m.mine(cond, append(prefix, itemset.Item(i))); err != nil {
					return err
				}
			}

		case Closed:
			// Perfect extensions: conditional items occurring in every
			// transaction that contains prefix∪{i}.
			var perfect []int32
			for j, c := range condCounts {
				if c == supp {
					perfect = append(perfect, int32(j))
				}
			}
			// Closure candidate: prefix ∪ {i} ∪ perfect extensions.
			cand := make(itemset.Set, 0, len(prefix)+1+len(perfect))
			cand = append(cand, prefix...)
			cand = append(cand, itemset.Item(i))
			for _, j := range perfect {
				cand = append(cand, itemset.Item(j))
			}
			canon := itemset.New(cand...)
			if m.cfi.Subsumed(canon, int(supp)) {
				// A previously reported closed superset with equal
				// support exists; neither this candidate nor anything in
				// its branch can be closed.
				continue
			}
			m.cfi.Insert(canon, int(supp))
			m.emit(canon, int(supp))

			cond := m.buildConditional(tree, i, condCounts, perfect)
			if cond != nil {
				newPrefix := canon.Clone()
				if err := m.mine(cond, newPrefix); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// buildConditional materializes the conditional FP-tree of item i,
// dropping infrequent conditional items and (for the closed target) the
// perfect extensions, which are carried in the prefix instead. Returns nil
// if the conditional database is empty.
func (m *fpMiner) buildConditional(tree *fpTree, i int, condCounts []int32, perfect []int32) *fpTree {
	skip := make(map[int32]bool, len(perfect))
	for _, j := range perfect {
		skip[j] = true
	}
	any := false
	for j, c := range condCounts {
		if c >= m.minsup && !skip[int32(j)] {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	cond := newFPTree(i)
	path := make([]int32, 0, 32)
	for n := tree.heads[i]; n != nil; n = n.next {
		path = path[:0]
		for p := n.parent; p != nil && p.parent != nil; p = p.parent {
			if condCounts[p.item] >= m.minsup && !skip[p.item] {
				path = append(path, p.item)
			}
		}
		if len(path) == 0 {
			continue
		}
		// The walk produced descending codes (leaf to root); reverse into
		// ascending insertion order.
		for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
			path[a], path[b] = path[b], path[a]
		}
		cond.insert(path, n.count)
	}
	return cond
}

// emit decodes and reports one pattern.
func (m *fpMiner) emit(items itemset.Set, supp int) {
	m.rep.Report(m.pre.DecodeSet(items), supp)
}
