package fpgrowth

import (
	"repro/internal/engine"
	"repro/internal/prep"
	"repro/internal/result"
)

func init() {
	engine.Register(engine.Registration{
		Name:    "fpclose",
		Doc:     "FP-growth over a frequent-pattern tree; closed output via a CFI repository (Grahne & Zhu)",
		Targets: []engine.Target{engine.Closed, engine.All},
		Prep:    prep.Config{Items: prep.OrderDescFreq, Trans: prep.OrderOriginal},
		Order:   30,
		Mine: func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
			return minePrepared(pre, spec.MinSupport, spec.Target, spec.Control(), rep)
		},
	})
}
