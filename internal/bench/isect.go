package bench

import (
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/gendata"
	"repro/internal/tidset"
)

// This file implements the isect experiment: a micro-benchmark of the
// tid-set intersection kernels (pure sorted-sparse merge vs pure dense
// bitmap AND vs the adaptive tidset kernel, across densities) followed
// by the dense end-to-end mining workload the kernel was built for. The
// JSON written from a full run is the repository's checked-in perf
// baseline (BENCH_10.json).

// isectSets is the micro-benchmark input: one batch of random tid sets
// at a fixed density, held in all three representations under test.
type isectSets struct {
	n     int       // universe size
	tids  [][]int32 // sorted-sparse reference form
	words [][]uint64
	sets  []tidset.Set
	ker   *tidset.Kernel
}

func buildIsectSets(n, count int, density float64, seed int64) *isectSets {
	rng := rand.New(rand.NewSource(seed))
	u := tidset.Universe{N: n}
	wl := &isectSets{n: n, ker: tidset.NewKernel(u)}
	nw := (n + 63) / 64
	for s := 0; s < count; s++ {
		var tids []int32
		words := make([]uint64, nw)
		for t := 0; t < n; t++ {
			if rng.Float64() < density {
				tids = append(tids, int32(t))
				words[t/64] |= 1 << (uint(t) % 64)
			}
		}
		wl.tids = append(wl.tids, tids)
		wl.words = append(wl.words, words)
		wl.sets = append(wl.sets, u.Promote(u.FromSorted(tids)))
	}
	return wl
}

func (wl *isectSets) pairs() int { k := len(wl.tids); return k * (k - 1) / 2 }

// sparsePass is the pre-kernel reference: a two-pointer merge over the
// sorted tid slices, materializing every result into a fresh slice
// (exactly what the deleted per-miner intersectTids helpers did).
func (wl *isectSets) sparsePass() int {
	sum := 0
	for i := range wl.tids {
		for j := i + 1; j < len(wl.tids); j++ {
			a, b := wl.tids[i], wl.tids[j]
			out := make([]int32, 0, min(len(a), len(b)))
			x, y := 0, 0
			for x < len(a) && y < len(b) {
				switch {
				case a[x] < b[y]:
					x++
				case a[x] > b[y]:
					y++
				default:
					out = append(out, a[x])
					x++
					y++
				}
			}
			sum += len(out)
		}
	}
	return sum
}

// densePass is the pure-bitmap reference: word-parallel AND into a
// freshly allocated word buffer plus a popcount sweep, paying the full
// universe width regardless of how sparse the operands are.
func (wl *isectSets) densePass() int {
	sum := 0
	for i := range wl.words {
		for j := i + 1; j < len(wl.words); j++ {
			a, b := wl.words[i], wl.words[j]
			out := make([]uint64, len(a))
			c := 0
			for k := range out {
				out[k] = a[k] & b[k]
				c += bits.OnesCount64(out[k])
			}
			sum += c
		}
	}
	return sum
}

// adaptivePass runs the same pair set through the tidset kernel, with
// the arena reset once per outer set — the same cadence as one eclat
// recursion level — so the steady state runs allocation-free.
func (wl *isectSets) adaptivePass() int {
	sum := 0
	ar := wl.ker.Level(0)
	for i := range wl.sets {
		ar.Reset()
		for j := i + 1; j < len(wl.sets); j++ {
			res, _ := wl.ker.Intersect(ar, &wl.sets[i], &wl.sets[j], 0)
			sum += res.Support()
		}
	}
	return sum
}

// measurePass times one already-warm pass and charges its allocation
// delta per intersection (the Cell's allocs/bytes fields therefore hold
// per-op values here, unlike the end-to-end sweeps where they hold the
// whole run's totals).
func measurePass(pass func() int, ops int) (Cell, int) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	sum := pass()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Cell{
		Time: elapsed, Closed: sum, Ops: int64(ops),
		Allocs: int64(after.Mallocs-before.Mallocs) / int64(ops),
		Bytes:  int64(after.TotalAlloc-before.TotalAlloc) / int64(ops),
	}, sum
}

var isectMicroCols = []string{"isect-sparse", "isect-dense", "isect-adaptive"}

// runIsectMicro measures the three strategies at each density and
// returns one Row per density, with the density (in percent) standing
// in for the row's support level and the agreed support checksum in the
// Closed column.
func runIsectMicro(cfg Config, w io.Writer) ([]Row, error) {
	// The universe is wide enough (256 words) that the dense reference's
	// fixed per-pair cost is visible at the sparse end — that crossover
	// is exactly what the adaptive kernel navigates.
	n := int(16384 * cfg.scale(1))
	if n < 256 {
		n = 256
	}
	const count = 64
	densities := []float64{0.01, 0.05, 0.30, 0.60, 0.90}

	fmt.Fprintf(w, "pairwise intersection kernels: %d sets, %d-tid universe, %d pairs per pass\n",
		count, n, count*(count-1)/2)
	fmt.Fprintf(w, "(rows are densities; closed column holds the support checksum all strategies must agree on)\n\n")
	fmt.Fprintf(w, "%-8s", "density")
	for _, c := range isectMicroCols {
		fmt.Fprintf(w, "  %22s", c)
	}
	fmt.Fprintf(w, "  %12s\n", "checksum")
	fmt.Fprintf(w, "%-8s", "")
	for range isectMicroCols {
		fmt.Fprintf(w, "  %10s %11s", "ns/op", "allocs/op")
	}
	fmt.Fprintln(w)

	rows := make([]Row, 0, len(densities))
	for di, d := range densities {
		wl := buildIsectSets(n, count, d, cfg.seed(11)+int64(di))
		ops := wl.pairs()
		row := Row{MinSupport: int(d * 100), Cells: map[string]Cell{}, Closed: -1}

		passes := []struct {
			name string
			run  func() int
		}{
			{"isect-sparse", wl.sparsePass},
			{"isect-dense", wl.densePass},
			{"isect-adaptive", wl.adaptivePass},
		}
		fmt.Fprintf(w, "%-8.2f", d)
		for _, p := range passes {
			p.run() // warm-up: size arenas, fault in the operands
			wl.ker.DrainStats()
			cell, sum := measurePass(p.run, ops)
			if p.name == "isect-adaptive" {
				st := wl.ker.DrainStats()
				cell.Isects, cell.EarlyStops, cell.RepSwitches = st.Isects, st.EarlyStops, st.Switches
			}
			if row.Closed == -1 {
				row.Closed = sum
			} else if row.Closed != sum {
				return nil, fmt.Errorf("bench: isect checksum mismatch at density %.2f: %s counted %d, others %d",
					d, p.name, sum, row.Closed)
			}
			row.Cells[p.name] = cell
			fmt.Fprintf(w, "  %10.0f %11d", float64(cell.Time.Nanoseconds())/float64(ops), cell.Allocs)
		}
		fmt.Fprintf(w, "  %12d\n", row.Closed)
		rows = append(rows, row)
	}
	fmt.Fprintln(w)
	return rows, nil
}

var isectMacroAlgos = []string{"eclat-closed", "cobbler", "fpclose", "lcm"}

// runIsect is the isect experiment: the kernel micro-benchmark above,
// then the dense Bernoulli-ramp mining workload whose eclat/cobbler
// times the kernel was built to improve. The combined measurements are
// written as BENCH_10.json — the checked-in perf baseline.
func runIsect(cfg Config, w io.Writer) error {
	micro, err := runIsectMicro(cfg, w)
	if err != nil {
		return err
	}

	nTx := int(2000 * cfg.scale(1))
	db := gendata.Dense(nTx, 48, 0.30, 0.90, cfg.seed(42))
	supports := []int{nTx * 60 / 100, nTx * 50 / 100, nTx * 45 / 100}
	rows, err := Sweep(db, supports, isectMacroAlgos, cfg.timeout(60*time.Second))
	if err != nil {
		return err
	}
	WriteTable(w, "dense ramp workload (end-to-end, kernel miners vs references)", db.Stats(), isectMacroAlgos, rows)
	if ms, f, ok := Speedup(rows, "eclat-closed", "fpclose"); ok {
		if f < 1 {
			fmt.Fprintf(w, "at minsup %d: fpclose is %.1fx faster than eclat-closed\n", ms, 1/f)
		} else {
			fmt.Fprintf(w, "at minsup %d: eclat-closed is %.1fx faster than fpclose\n", ms, f)
		}
	}
	fmt.Fprintln(w)

	workload := fmt.Sprintf(
		"micro rows (min_support = density %%): pairwise kernel intersections, allocs/bytes are per op; macro rows: %s, dense ramp 0.30..0.90",
		db.Stats())
	return cfg.writeJSON(w, "10", workload,
		append(append([]string{}, isectMicroCols...), isectMacroAlgos...),
		append(micro, rows...))
}
