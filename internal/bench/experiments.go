package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gendata"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/txdb"
)

// Config tunes an experiment run. Zero values select the experiment
// defaults, which are sized so that a full experiment finishes within a
// couple of minutes on a laptop while still showing the paper's regime
// (raise Scale to approach the paper's data set sizes).
type Config struct {
	Scale   float64
	Seed    int64
	Timeout time.Duration
	// Parallelism, when >= 2, makes the par experiment measure exactly
	// that worker count instead of the default 2/4/8 ladder.
	Parallelism int
	// JSONDir, when non-empty, additionally writes each experiment's
	// measurements (including the per-phase prep/mine split and work
	// counters) as BENCH_<id>.json into this directory.
	JSONDir string
}

// writeJSON writes the experiment's measurements to Config.JSONDir (a
// no-op when unset) and notes the file in the report.
func (c Config) writeJSON(w io.Writer, id, workload string, algos []string, rows []Row) error {
	if c.JSONDir == "" {
		return nil
	}
	path, err := WriteBenchJSON(c.JSONDir, id, workload, algos, rows)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n\n", path)
	return nil
}

// parWorkers returns the worker counts the par experiment measures.
func (c Config) parWorkers() []int {
	if c.Parallelism >= 2 {
		return []int{c.Parallelism}
	}
	return []int{2, 4, 8}
}

func (c Config) scale(def float64) float64 {
	if c.Scale > 0 {
		return c.Scale
	}
	return def
}

func (c Config) seed(def int64) int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return def
}

func (c Config) timeout(def time.Duration) time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return def
}

// Experiment is one reproducible experiment from the paper's evaluation.
type Experiment struct {
	ID    string
	Title string
	// Notes states what shape the paper reports, for comparison.
	Notes string
	Run   func(cfg Config, w io.Writer) error
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{
			ID:    "table1",
			Title: "Table 1: matrix representation of the example transaction database",
			Notes: "exact reproduction of the paper's worked example",
			Run:   runTable1,
		},
		{
			ID:    "fig5",
			Title: "Figure 5: yeast-like expression data (few transactions, very many items)",
			Notes: "IsTa/Carpenter flat as minsup drops, FP-close and LCM explode below ~minsup 20; IsTa clearly beats Carpenter",
			Run:   runFig5,
		},
		{
			ID:    "fig6",
			Title: "Figure 6: NCBI60-like data (60 cell lines, support sweep near n)",
			Notes: "carp-table and IsTa on par (IsTa wins at the lowest support), carp-lists slower by a constant factor; FP-growth/LCM failed on this data",
			Run:   runFig6,
		},
		{
			ID:    "fig7",
			Title: "Figure 7: thrombin-like subset (64 transactions, very wide sparse features)",
			Notes: "like NCBI60 — carp-table ≈ IsTa, lists slower; FP-close/LCM competitive only down to minsup 32-34",
			Run:   runFig7,
		},
		{
			ID:    "fig8",
			Title: "Figure 8: transposed webview-like click streams",
			Notes: "like yeast — IsTa clearly beats both Carpenter variants; FP-close/LCM competitive only down to ~minsup 11",
			Run:   runFig8,
		},
		{
			ID:    "flat",
			Title: "§5: prefix-tree IsTa vs the flat cumulative scheme of Mielikäinen (FIMI'03)",
			Notes: "the flat scheme is often >100x slower — the prefix tree is the contribution",
			Run:   runFlat,
		},
		{
			ID:    "orders",
			Title: "§3.4 ablation: item coding and transaction processing order for IsTa",
			Notes: "ascending-frequency item codes + ascending-size transactions is fastest",
			Run:   runOrders,
		},
		{
			ID:    "prune",
			Title: "§3.1.1/§3.2 ablation: item elimination / pruning on and off",
			Notes: "item elimination gives a considerable speed-up",
			Run:   runPrune,
		},
		{
			ID:    "cobbler",
			Title: "Cobbler (combined column/row enumeration) vs IsTa and Carpenter",
			Notes: "§1 mentions Cobbler as Carpenter's closely related variant; the row-switch threshold trades the two search styles",
			Run:   runCobbler,
		},
		{
			ID:    "scaling",
			Title: "scaling study: time vs workload size at a fixed relative support",
			Notes: "§1: enumeration scales with the item count, intersection with the transaction count — the gap widens with the data",
			Run:   runScaling,
		},
		{
			ID:    "repo",
			Title: "§3.1.1 ablation: Carpenter repository as prefix tree vs hash table",
			Notes: "the prefix tree with a flat top level is the paper's repository design",
			Run:   runRepo,
		},
		{
			ID:    "isect",
			Title: "intersection kernels: sparse vs dense vs adaptive across densities, plus the dense mining workload",
			Notes: "not in the paper — the adaptive kernel stays near the faster pure representation across densities with zero steady-state allocations; writes the checked-in BENCH_10.json baseline",
			Run:   runIsect,
		},
		{
			ID:    "par",
			Title: "parallel engines: sequential vs 2/4/8 workers (identical output, measured speedup)",
			Notes: "not in the paper — shard-and-merge IsTa and branch-parallel Carpenter; speedups require as many free cores as workers",
			Run:   runParallel,
		},
	}
}

// Get finds an experiment by id.
func Get(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sweep is the shared driver for figure-style experiments.
func sweep(w io.Writer, cfg Config, id, title string, db *txdb.DB, supports []int, algos []string, timeout time.Duration) error {
	rows, err := Sweep(db, supports, algos, timeout)
	if err != nil {
		return err
	}
	WriteTable(w, title, db.Stats(), algos, rows)
	WriteLogSeries(w, algos, rows)
	if err := cfg.writeJSON(w, id, db.Stats().String(), algos, rows); err != nil {
		return err
	}
	report := func(a, b string) {
		ms, f, ok := Speedup(rows, a, b)
		if !ok {
			return
		}
		if f < 1 {
			a, b, f = b, a, 1/f
		}
		fmt.Fprintf(w, "at minsup %d (lowest level both finished): %s is %.1fx faster than %s\n", ms, a, f, b)
	}
	report("ista", "fpclose")
	report("ista", "lcm")
	report("ista", "carp-table")
	report("carp-table", "carp-lists")
	fmt.Fprintln(w)
	return nil
}

var figureAlgos = []string{"ista", "carp-table", "carp-lists", "fpclose", "lcm"}

func runFig5(cfg Config, w io.Writer) error {
	db := gendata.Yeast(cfg.scale(0.15), cfg.seed(1))
	supports := []int{24, 22, 20, 18, 16, 14, 12, 10, 9, 8}
	return sweep(w, cfg, "fig5", "Figure 5 (yeast-like)", db, supports, figureAlgos, cfg.timeout(20*time.Second))
}

func runFig6(cfg Config, w io.Writer) error {
	db := gendata.NCBI60(cfg.scale(0.20), cfg.seed(2))
	supports := []int{54, 53, 52, 51, 50, 49, 48, 47, 46}
	return sweep(w, cfg, "fig6", "Figure 6 (NCBI60-like)", db, supports, figureAlgos, cfg.timeout(20*time.Second))
}

func runFig7(cfg Config, w io.Writer) error {
	db := gendata.Thrombin(cfg.scale(0.02), cfg.seed(3))
	supports := []int{40, 38, 36, 34, 32, 30, 28, 26}
	return sweep(w, cfg, "fig7", "Figure 7 (thrombin-like)", db, supports, figureAlgos, cfg.timeout(20*time.Second))
}

func runFig8(cfg Config, w io.Writer) error {
	db := gendata.WebView(cfg.scale(0.30), cfg.seed(4))
	supports := []int{20, 18, 16, 14, 12, 10, 8, 7, 6, 5}
	return sweep(w, cfg, "fig8", "Figure 8 (transposed webview-like)", db, supports, figureAlgos, cfg.timeout(20*time.Second))
}

func runFlat(cfg Config, w io.Writer) error {
	db := gendata.Yeast(cfg.scale(0.05), cfg.seed(5))
	supports := []int{12, 10, 8}
	algos := []string{"ista", "flat"}
	rows, err := Sweep(db, supports, algos, cfg.timeout(60*time.Second))
	if err != nil {
		return err
	}
	WriteTable(w, "Flat cumulative scheme vs IsTa", db.Stats(), algos, rows)
	if ms, f, ok := Speedup(rows, "ista", "flat"); ok {
		fmt.Fprintf(w, "at minsup %d: IsTa (prefix tree) is %.0fx faster than the flat repository\n\n", ms, f)
	}
	return cfg.writeJSON(w, "flat", db.Stats().String(), algos, rows)
}

func runOrders(cfg Config, w io.Writer) error {
	db := gendata.Yeast(cfg.scale(0.15), cfg.seed(1))
	minsup := 12
	fmt.Fprintf(w, "IsTa at minsup %d under all order combinations\n", minsup)
	fmt.Fprintf(w, "workload: %s\n\n", db.Stats())
	fmt.Fprintf(w, "%-16s  %-16s  %10s  %9s\n", "item order", "trans order", "time(s)", "#closed")
	type combo struct {
		io prep.ItemOrder
		to prep.TransOrder
	}
	for _, c := range []combo{
		{prep.OrderAscFreq, prep.OrderSizeAsc},
		{prep.OrderAscFreq, prep.OrderSizeDesc},
		{prep.OrderAscFreq, prep.OrderOriginal},
		{prep.OrderDescFreq, prep.OrderSizeAsc},
		{prep.OrderDescFreq, prep.OrderSizeDesc},
		{prep.OrderKeep, prep.OrderSizeAsc},
	} {
		var counter result.Counter
		start := time.Now()
		err := core.Mine(db, core.Options{MinSupport: minsup, ItemOrder: c.io, TransOrder: c.to}, &counter)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s  %-16s  %10s  %9d\n", c.io, c.to, formatSeconds(time.Since(start)), counter.N)
	}
	fmt.Fprintln(w)
	return nil
}

func runPrune(cfg Config, w io.Writer) error {
	algos := []string{"ista", "ista-noprune", "carp-table", "carp-table-noelim", "carp-lists", "carp-lists-noelim"}
	db := gendata.Yeast(cfg.scale(0.15), cfg.seed(1))
	if err := sweepPlain(w, cfg, "prune-yeast", "Pruning/elimination ablation (yeast-like)", db, []int{16, 14, 12}, algos, cfg.timeout(15*time.Second)); err != nil {
		return err
	}
	db = gendata.Thrombin(cfg.scale(0.02), cfg.seed(3))
	return sweepPlain(w, cfg, "prune-thrombin", "Pruning/elimination ablation (thrombin-like)", db, []int{38, 36, 34}, algos, cfg.timeout(15*time.Second))
}

func runCobbler(cfg Config, w io.Writer) error {
	db := gendata.Thrombin(cfg.scale(0.02), cfg.seed(3))
	return sweepPlain(w, cfg, "cobbler", "Cobbler vs intersection miners (thrombin-like)", db,
		[]int{40, 36, 34, 32}, []string{"ista", "carp-table", "cobbler", "eclat-closed"}, cfg.timeout(20*time.Second))
}

func runScaling(cfg Config, w io.Writer) error {
	algos := []string{"ista", "carp-table", "fpclose", "lcm"}
	fmt.Fprintln(w, "yeast-like workloads of growing size, minsup = 10% of the transactions")
	for _, scale := range []float64{0.05, 0.10, 0.15, 0.20} {
		db := gendata.Yeast(scale, cfg.seed(1))
		minsup := db.NumTx() / 10
		rows, err := Sweep(db, []int{minsup}, algos, cfg.timeout(30*time.Second))
		if err != nil {
			return err
		}
		r := rows[0]
		fmt.Fprintf(w, "scale %.2f  (%s)  minsup %d  #closed %d\n", scale, db.Stats(), minsup, r.Closed)
		for _, a := range algos {
			fmt.Fprintf(w, "    %-12s %s\n", a, formatCell(r.Cells[a]))
		}
	}
	fmt.Fprintln(w)
	return nil
}

func runRepo(cfg Config, w io.Writer) error {
	db := gendata.Yeast(cfg.scale(0.15), cfg.seed(1))
	return sweepPlain(w, cfg, "repo", "Repository layout ablation (Carpenter, yeast-like)", db,
		[]int{16, 14, 12}, []string{"carp-table", "carp-table-hash"}, cfg.timeout(30*time.Second))
}

// runParallel measures the parallel engines against their sequential
// counterparts on workloads suited to each: sharded IsTa on a
// many-transaction basket workload, branch-parallel Carpenter on a dense
// few-transaction one. Every run must report the same number of closed
// sets; the speedup column is wall-clock sequential/parallel (≈1x on a
// single-core machine — the engines trade per-worker duplicated merge
// work for concurrency, so gains need real cores).
func runParallel(cfg Config, w io.Writer) error {
	registry := Algorithms()
	fmt.Fprintf(w, "(%d cores available)\n\n", runtime.NumCPU())
	var jrows []Row
	var jalgos []string
	section := func(title string, db *txdb.DB, minsup int, seqName string, parAlgo func(p int) Algo) error {
		fmt.Fprintf(w, "%s\nworkload: %s, minsup %d\n", title, db.Stats(), minsup)
		fmt.Fprintf(w, "%-16s  %10s  %9s  %9s  %8s\n", "engine", "time(s)", "mine(s)", "#closed", "speedup")
		base := RunOne(registry[seqName], db, minsup, cfg.timeout(60*time.Second))
		if base.Err != nil {
			return base.Err
		}
		row := Row{MinSupport: minsup, Cells: map[string]Cell{seqName: base}, Closed: base.Closed}
		jalgos = append(jalgos, seqName)
		fmt.Fprintf(w, "%-16s  %10s  %10s  %9d  %8s\n", seqName, formatSeconds(base.Time), formatSeconds(base.MineTime), base.Closed, "1.0x")
		for _, p := range cfg.parWorkers() {
			a := parAlgo(p)
			cell := RunOne(a, db, minsup, cfg.timeout(60*time.Second))
			if cell.Err != nil {
				return cell.Err
			}
			row.Cells[a.Name] = cell
			jalgos = append(jalgos, a.Name)
			if cell.TimedOut {
				fmt.Fprintf(w, "%-16s  %10s\n", a.Name, "timeout")
				continue
			}
			if cell.Closed != base.Closed {
				return fmt.Errorf("bench: %s found %d closed sets, sequential %d", a.Name, cell.Closed, base.Closed)
			}
			fmt.Fprintf(w, "%-16s  %10s  %10s  %9d  %7.1fx\n", a.Name, formatSeconds(cell.Time), formatSeconds(cell.MineTime), cell.Closed,
				float64(base.Time)/float64(cell.Time))
		}
		jrows = append(jrows, row)
		fmt.Fprintln(w)
		return nil
	}
	quest := gendata.Quest(gendata.QuestConfig{
		Transactions: int(4000 * cfg.scale(1)), Items: 120, AvgLen: 10,
		Patterns: 30, AvgPatternLen: 4, Seed: cfg.seed(7),
	})
	if err := section("sharded IsTa (many transactions)", quest, quest.NumTx()/100,
		"ista", func(p int) Algo {
			return engineAlgo(fmt.Sprintf("ista-p%d", p), "ista", p)
		}); err != nil {
		return err
	}
	ncbi := gendata.NCBI60(cfg.scale(1)*0.25, cfg.seed(5))
	if err := section("branch-parallel Carpenter (few dense transactions)", ncbi, 50,
		"carp-table", func(p int) Algo {
			return engineAlgo(fmt.Sprintf("carp-table-p%d", p), "carpenter-table", p)
		}); err != nil {
		return err
	}
	return cfg.writeJSON(w, "par", "quest + ncbi60 (see sections above)", jalgos, jrows)
}

func sweepPlain(w io.Writer, cfg Config, id, title string, db *txdb.DB, supports []int, algos []string, timeout time.Duration) error {
	rows, err := Sweep(db, supports, algos, timeout)
	if err != nil {
		return err
	}
	WriteTable(w, title, db.Stats(), algos, rows)
	return cfg.writeJSON(w, id, db.Stats().String(), algos, rows)
}

func runTable1(_ Config, w io.Writer) error {
	// The example transaction database of Table 1 (a=0..e=4).
	db := dataset.FromInts(
		[]int{0, 1, 2},
		[]int{0, 3, 4},
		[]int{1, 2, 3},
		[]int{0, 1, 2, 3},
		[]int{1, 2},
		[]int{0, 1, 3},
		[]int{3, 4},
		[]int{2, 3, 4},
	)
	m := txdb.FromSource(db).Matrix()
	names := []string{"a", "b", "c", "d", "e"}
	fmt.Fprintln(w, "Table 1: matrix representation for the improved Carpenter variant")
	fmt.Fprintf(w, "%4s", "")
	for _, n := range names {
		fmt.Fprintf(w, " %3s", n)
	}
	fmt.Fprintln(w)
	for k, row := range m.M {
		fmt.Fprintf(w, "t%-3d", k+1)
		for _, v := range row {
			fmt.Fprintf(w, " %3d", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return nil
}
