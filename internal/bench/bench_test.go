package bench

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gendata"
	"repro/internal/itemset"
	"repro/internal/txdb"
)

func smallDB() *dataset.Database {
	rng := rand.New(rand.NewSource(42))
	trans := make([]itemset.Set, 30)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < 20; i++ {
			if rng.Float64() < 0.3 {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, 20)
}

func TestAlgorithmsRegistryComplete(t *testing.T) {
	algos := Algorithms()
	for _, name := range []string{"ista", "carp-table", "carp-lists", "fpclose", "lcm", "eclat-closed", "flat",
		"cobbler", "sam", "ista-noprune", "carp-table-noelim", "carp-lists-noelim", "carp-table-hash"} {
		if _, ok := algos[name]; !ok {
			t.Errorf("algorithm %q missing from registry", name)
		}
	}
}

// TestSweepAgreement is the cross-algorithm integration test at harness
// level: all registered closed-set miners agree on every sweep level of a
// realistic workload (Sweep returns an error on any disagreement).
func TestSweepAgreement(t *testing.T) {
	db := smallDB()
	algos := []string{"ista", "ista-noprune", "carp-table", "carp-lists",
		"carp-table-noelim", "carp-lists-noelim", "carp-table-hash",
		"fpclose", "lcm", "eclat-closed", "cobbler", "sam", "flat"}
	rows, err := Sweep(db, []int{8, 5, 3, 2}, algos, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Closed < 0 {
			t.Fatalf("no algorithm finished at minsup %d", r.MinSupport)
		}
	}
	// Counts must strictly grow as support drops on this workload.
	for i := 1; i < len(rows); i++ {
		if rows[i].Closed < rows[i-1].Closed {
			t.Fatalf("closed count decreased: %v", rows)
		}
	}
}

func TestSweepAgreementOnGeneratedWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("generated workloads are slow")
	}
	cases := []struct {
		name string
		db   *txdb.DB
		ms   []int
	}{
		{"yeast", gendata.Yeast(0.04, 7), []int{10, 6}},
		{"ncbi60", gendata.NCBI60(0.05, 8), []int{54, 50}},
		{"thrombin", gendata.Thrombin(0.005, 9), []int{38, 34}},
		{"webview", gendata.WebView(0.06, 10), []int{10, 6}},
	}
	algos := []string{"ista", "carp-table", "carp-lists", "fpclose", "lcm"}
	for _, tc := range cases {
		if _, err := Sweep(tc.db, tc.ms, algos, time.Minute); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestSweepUnknownAlgo(t *testing.T) {
	if _, err := Sweep(smallDB(), []int{2}, []string{"nope"}, time.Second); err == nil {
		t.Fatal("expected unknown algorithm error")
	}
}

func TestRunOneTimeout(t *testing.T) {
	// A 1ns timeout must cancel any non-trivial run.
	db := gendata.Yeast(0.05, 3)
	cell := RunOne(Algorithms()["ista"], db, 2, time.Nanosecond)
	if !cell.TimedOut {
		t.Fatal("expected timeout")
	}
	// Timed-out algorithms are skipped at lower supports. (Both levels are
	// expensive enough to reach a cancellation checkpoint.)
	rows, err := Sweep(db, []int{3, 2}, []string{"ista"}, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].Cells["ista"].TimedOut {
		t.Fatal("first level should time out")
	}
	if !rows[1].Cells["ista"].Skipped {
		t.Fatal("second level should be skipped")
	}
}

func TestWriteTableFormatting(t *testing.T) {
	rows := []Row{
		{MinSupport: 5, Closed: 10, Cells: map[string]Cell{
			"ista": {Time: 1500 * time.Microsecond},
			"lcm":  {TimedOut: true},
		}},
		{MinSupport: 3, Closed: -1, Cells: map[string]Cell{
			"ista": {Time: 2 * time.Second},
			"lcm":  {Skipped: true},
		}},
	}
	var sb strings.Builder
	WriteTable(&sb, "demo", txdb.Stats{Transactions: 4}, []string{"ista", "lcm"}, rows)
	out := sb.String()
	for _, want := range []string{"demo", "minsup", "t/o", "0.0015", "2.00", "#closed", "10"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	WriteLogSeries(&sb, []string{"ista", "lcm"}, rows)
	if !strings.Contains(sb.String(), "log10") {
		t.Error("log series header missing")
	}
}

func TestSpeedup(t *testing.T) {
	rows := []Row{
		{MinSupport: 5, Cells: map[string]Cell{
			"a": {Time: time.Second},
			"b": {Time: 2 * time.Second},
		}},
		{MinSupport: 3, Cells: map[string]Cell{
			"a": {Time: time.Second},
			"b": {TimedOut: true},
		}},
	}
	ms, f, ok := Speedup(rows, "a", "b")
	if !ok || ms != 5 || f != 2.0 {
		t.Fatalf("Speedup = %d %f %v", ms, f, ok)
	}
	if _, _, ok := Speedup(rows, "a", "c"); ok {
		t.Fatal("missing algorithm should not report a speedup")
	}
}

func TestExperimentRegistry(t *testing.T) {
	reg := Registry()
	if len(reg) < 9 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	ids := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, id := range []string{"table1", "fig5", "fig6", "fig7", "fig8", "flat", "orders", "prune", "cobbler", "scaling", "repo"} {
		if !ids[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := Get("fig5"); !ok {
		t.Error("Get(fig5) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) should fail")
	}
}

// TestTable1Experiment checks that the table1 experiment renders the
// paper's exact matrix.
func TestTable1Experiment(t *testing.T) {
	e, _ := Get("table1")
	var sb strings.Builder
	if err := e.Run(Config{}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"t1     4   5   5   0   0",
		"t2     3   0   0   6   3",
		"t8     0   0   1   1   1",
	} {
		if !strings.Contains(sb.String(), line) {
			t.Errorf("table1 output missing %q:\n%s", line, sb.String())
		}
	}
}

// TestTinyExperimentsRun smoke-tests the sweep experiments at a tiny scale
// so `go test` exercises the full harness path end to end.
func TestTinyExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	// The tight timeout keeps this a smoke test: levels that exceed it
	// are reported as timeouts, which is a valid harness outcome.
	cfg := Config{Scale: 0.02, Timeout: 300 * time.Millisecond}
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var sb strings.Builder
		if err := e.Run(cfg, &sb); err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if !strings.Contains(sb.String(), "minsup") {
			t.Errorf("%s produced no table", id)
		}
	}
}
