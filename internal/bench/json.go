package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// BenchJSON is the machine-readable form of one experiment's
// measurements, written as BENCH_<id>.json when Config.JSONDir is set.
// Durations are milliseconds; the prep/mine split and the work counters
// come from engine.Stats and are zero for the ablation variants that
// bypass the engine.
type BenchJSON struct {
	Experiment string    `json:"experiment"`
	Workload   string    `json:"workload"`
	Algorithms []string  `json:"algorithms"`
	Rows       []JSONRow `json:"rows"`
}

// JSONRow is one support level of an experiment.
type JSONRow struct {
	MinSupport int `json:"min_support"`
	// Closed is the agreed closed-set count (-1 if nothing finished).
	Closed int                 `json:"closed"`
	Cells  map[string]JSONCell `json:"cells"`
}

// JSONCell is one (algorithm, support level) measurement.
type JSONCell struct {
	Millis     float64 `json:"millis"`
	PrepMillis float64 `json:"prep_millis"`
	MineMillis float64 `json:"mine_millis"`
	Closed     int     `json:"closed"`
	Ops        int64   `json:"ops"`
	NodesPeak  int64   `json:"nodes_peak"`
	Allocs     int64   `json:"allocs_per_op"`
	Bytes      int64   `json:"bytes_per_op"`
	// Kernel counters; omitted for miners that do not run on the tidset
	// intersection kernel.
	Isects      int64 `json:"isects,omitempty"`
	EarlyStops  int64 `json:"early_stops,omitempty"`
	RepSwitches int64 `json:"rep_switches,omitempty"`
	TimedOut    bool  `json:"timed_out,omitempty"`
	Skipped     bool  `json:"skipped,omitempty"`
}

// WriteBenchJSON writes the rows of one experiment as BENCH_<id>.json
// into dir (created if missing) and returns the file's path.
func WriteBenchJSON(dir, id, workload string, algos []string, rows []Row) (string, error) {
	doc := BenchJSON{Experiment: id, Workload: workload, Algorithms: algos, Rows: make([]JSONRow, 0, len(rows))}
	for _, r := range rows {
		jr := JSONRow{MinSupport: r.MinSupport, Closed: r.Closed, Cells: make(map[string]JSONCell, len(r.Cells))}
		for name, c := range r.Cells {
			jr.Cells[name] = JSONCell{
				Millis:      millis(c.Time),
				PrepMillis:  millis(c.PrepTime),
				MineMillis:  millis(c.MineTime),
				Closed:      c.Closed,
				Ops:         c.Ops,
				NodesPeak:   c.NodesPeak,
				Allocs:      c.Allocs,
				Bytes:       c.Bytes,
				Isects:      c.Isects,
				EarlyStops:  c.EarlyStops,
				RepSwitches: c.RepSwitches,
				TimedOut:    c.TimedOut,
				Skipped:     c.Skipped,
			}
		}
		doc.Rows = append(doc.Rows, jr)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
