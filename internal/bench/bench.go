// Package bench is the experiment harness that regenerates the paper's
// evaluation (Figures 5–8, Table 1, and the ablations discussed in §3 and
// §5). Every experiment pairs a deterministic synthetic workload (package
// gendata) with a minimum-support sweep over a fixed set of algorithms,
// measures wall-clock time per point with a per-run timeout (the paper's
// curves are likewise cut off where a program exceeds the time frame), and
// cross-checks that all algorithms that finished report the same number of
// closed sets.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/carpenter"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mining"
	"repro/internal/result"
	"repro/internal/txdb"

	// Link the remaining algorithm packages (core and carpenter are
	// imported above for the ablations) and the parallel engines; each
	// registers itself with the engine from init.
	_ "repro/internal/cobbler"
	_ "repro/internal/eclat"
	_ "repro/internal/fpgrowth"
	_ "repro/internal/lcm"
	_ "repro/internal/naive"
	_ "repro/internal/parallel"
	_ "repro/internal/sam"
)

// Algo is one mining algorithm under test.
type Algo struct {
	// Name is the short column label ("ista", "carp-table", ...).
	Name string
	// Run mines db at minsup, reporting into rep; done cancels. st, when
	// non-nil, receives the run's counters and phase timings; algorithms
	// that bypass the engine (the ablation variants) may leave it empty.
	Run func(db txdb.Source, minsup int, done <-chan struct{}, st *engine.Stats, rep result.Reporter) error
}

// engineAlgo adapts a registered miner to a bench Algo under the given
// column label. workers selects the engine: 1 forces the sequential
// miner, >= 2 the parallel engine where one is registered.
func engineAlgo(label, regName string, workers int) Algo {
	return Algo{label, func(db txdb.Source, ms int, done <-chan struct{}, st *engine.Stats, rep result.Reporter) error {
		return engine.Run(db, regName, engine.Spec{MinSupport: ms, Workers: workers, Done: done, Stats: st}, rep)
	}}
}

// Algorithms returns the algorithm registry keyed by name. The base
// algorithms run through the engine registry (the code path cmd/fim and
// fim.Mine use); the ablation variants keep their direct package entry
// points because they toggle knobs the engine deliberately does not
// expose.
func Algorithms() map[string]Algo {
	algos := []Algo{
		engineAlgo("ista", "ista", 1),
		engineAlgo("carp-table", "carpenter-table", 1),
		engineAlgo("carp-lists", "carpenter-lists", 1),
		engineAlgo("fpclose", "fpclose", 1),
		engineAlgo("lcm", "lcm", 1),
		engineAlgo("eclat-closed", "eclat", 1),
		engineAlgo("cobbler", "cobbler", 1),
		engineAlgo("sam", "sam", 1),
		engineAlgo("flat", "flat", 1),
		{"ista-noprune", func(db txdb.Source, ms int, done <-chan struct{}, _ *engine.Stats, rep result.Reporter) error {
			return core.Mine(db, core.Options{MinSupport: ms, Done: done, DisablePruning: true}, rep)
		}},
		{"carp-table-noelim", func(db txdb.Source, ms int, done <-chan struct{}, _ *engine.Stats, rep result.Reporter) error {
			return carpenter.Mine(db, carpenter.Options{MinSupport: ms, Variant: carpenter.Table, DisableElimination: true, Done: done}, rep)
		}},
		{"carp-lists-noelim", func(db txdb.Source, ms int, done <-chan struct{}, _ *engine.Stats, rep result.Reporter) error {
			return carpenter.Mine(db, carpenter.Options{MinSupport: ms, Variant: carpenter.Lists, DisableElimination: true, Done: done}, rep)
		}},
		{"carp-table-hash", func(db txdb.Source, ms int, done <-chan struct{}, _ *engine.Stats, rep result.Reporter) error {
			return carpenter.Mine(db, carpenter.Options{MinSupport: ms, Variant: carpenter.Table, HashRepository: true, Done: done}, rep)
		}},
	}
	// Parallel engines at fixed worker counts, for the speedup experiment.
	for _, p := range []int{2, 4, 8} {
		algos = append(algos,
			engineAlgo(fmt.Sprintf("ista-p%d", p), "ista", p),
			engineAlgo(fmt.Sprintf("carp-table-p%d", p), "carpenter-table", p),
		)
	}
	m := make(map[string]Algo, len(algos))
	for _, a := range algos {
		m[a.Name] = a
	}
	return m
}

// Cell is one (algorithm, minsup) measurement.
type Cell struct {
	Time     time.Duration
	Closed   int
	TimedOut bool
	Skipped  bool // earlier timeout at a higher support level
	Err      error

	// Per-phase split and work counters of the run (from engine.Stats;
	// zero for the ablation variants, which bypass the engine).
	PrepTime  time.Duration
	MineTime  time.Duration
	Ops       int64
	NodesPeak int64

	// Intersection-kernel counters (zero for miners that do not run on
	// the tidset kernel): intersections performed, of which cut short by
	// the early-stopping bound, and representation switches (sparse
	// promotions to dense, dense demotions, diffset materialisations).
	Isects      int64
	EarlyStops  int64
	RepSwitches int64

	// Allocation footprint of the run (heap allocation count and bytes,
	// from runtime.MemStats deltas around the single measured run). The
	// columnar store makes these nearly size-independent for prep; the
	// CI smoke run asserts the prep budget never regresses.
	Allocs int64
	Bytes  int64
}

// Row is one support level of a sweep.
type Row struct {
	MinSupport int
	Cells      map[string]Cell
	// Closed is the agreed number of closed sets (-1 if no algorithm
	// finished at this level).
	Closed int
}

// RunOne measures one algorithm on one workload at one support level.
func RunOne(a Algo, db txdb.Source, minsup int, timeout time.Duration) Cell {
	done := make(chan struct{})
	var timer *time.Timer
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() { close(done) })
	}
	var counter result.Counter
	var st engine.Stats
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := a.Run(db, minsup, done, &st, &counter)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if timer != nil {
		timer.Stop()
	}
	cell := Cell{
		Time: elapsed, Closed: counter.N,
		PrepTime: st.PrepTime, MineTime: st.MineTime,
		Ops: st.Ops, NodesPeak: st.NodesPeak,
		Isects: st.Isects, EarlyStops: st.EarlyStops, RepSwitches: st.RepSwitches,
		Allocs: int64(after.Mallocs - before.Mallocs),
		Bytes:  int64(after.TotalAlloc - before.TotalAlloc),
	}
	switch {
	case err == mining.ErrCanceled:
		cell.TimedOut = true
	case err != nil:
		cell.Err = err
	}
	return cell
}

// Sweep runs every named algorithm across the support levels (given from
// high to low, like the paper's plots read right to left). An algorithm
// that times out at some level is skipped for all lower levels, since the
// workload only grows as the support drops. Finished algorithms must agree
// on the number of closed sets; a mismatch is returned as an error because
// it would mean one of the miners is wrong.
func Sweep(db txdb.Source, supports []int, algoNames []string, timeout time.Duration) ([]Row, error) {
	registry := Algorithms()
	dead := map[string]bool{}
	rows := make([]Row, 0, len(supports))
	for _, ms := range supports {
		row := Row{MinSupport: ms, Cells: map[string]Cell{}, Closed: -1}
		for _, name := range algoNames {
			a, ok := registry[name]
			if !ok {
				return nil, fmt.Errorf("bench: unknown algorithm %q", name)
			}
			if dead[name] {
				row.Cells[name] = Cell{Skipped: true}
				continue
			}
			cell := RunOne(a, db, ms, timeout)
			if cell.Err != nil {
				return nil, fmt.Errorf("bench: %s at minsup %d: %w", name, ms, cell.Err)
			}
			if cell.TimedOut {
				dead[name] = true
			} else {
				if row.Closed == -1 {
					row.Closed = cell.Closed
				} else if row.Closed != cell.Closed {
					return nil, fmt.Errorf("bench: result mismatch at minsup %d: %s found %d closed sets, others %d",
						ms, name, cell.Closed, row.Closed)
				}
			}
			row.Cells[name] = cell
		}
		rows = append(rows, row)
	}
	return rows, nil
}
