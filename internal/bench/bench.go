// Package bench is the experiment harness that regenerates the paper's
// evaluation (Figures 5–8, Table 1, and the ablations discussed in §3 and
// §5). Every experiment pairs a deterministic synthetic workload (package
// gendata) with a minimum-support sweep over a fixed set of algorithms,
// measures wall-clock time per point with a per-run timeout (the paper's
// curves are likewise cut off where a program exceeds the time frame), and
// cross-checks that all algorithms that finished report the same number of
// closed sets.
package bench

import (
	"fmt"
	"time"

	"repro/internal/carpenter"
	"repro/internal/cobbler"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eclat"
	"repro/internal/fpgrowth"
	"repro/internal/lcm"
	"repro/internal/mining"
	"repro/internal/naive"
	"repro/internal/parallel"
	"repro/internal/result"
	"repro/internal/sam"
)

// Algo is one mining algorithm under test.
type Algo struct {
	// Name is the short column label ("ista", "carp-table", ...).
	Name string
	// Run mines db at minsup, reporting into rep; done cancels.
	Run func(db *dataset.Database, minsup int, done <-chan struct{}, rep result.Reporter) error
}

// Algorithms returns the algorithm registry keyed by name.
func Algorithms() map[string]Algo {
	algos := []Algo{
		{"ista", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return core.Mine(db, core.Options{MinSupport: ms, Done: done}, rep)
		}},
		{"ista-noprune", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return core.Mine(db, core.Options{MinSupport: ms, Done: done, DisablePruning: true}, rep)
		}},
		{"carp-table", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return carpenter.Mine(db, carpenter.Options{MinSupport: ms, Variant: carpenter.Table, Done: done}, rep)
		}},
		{"carp-lists", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return carpenter.Mine(db, carpenter.Options{MinSupport: ms, Variant: carpenter.Lists, Done: done}, rep)
		}},
		{"carp-table-noelim", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return carpenter.Mine(db, carpenter.Options{MinSupport: ms, Variant: carpenter.Table, DisableElimination: true, Done: done}, rep)
		}},
		{"carp-lists-noelim", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return carpenter.Mine(db, carpenter.Options{MinSupport: ms, Variant: carpenter.Lists, DisableElimination: true, Done: done}, rep)
		}},
		{"carp-table-hash", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return carpenter.Mine(db, carpenter.Options{MinSupport: ms, Variant: carpenter.Table, HashRepository: true, Done: done}, rep)
		}},
		{"fpclose", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return fpgrowth.Mine(db, fpgrowth.Options{MinSupport: ms, Target: fpgrowth.Closed, Done: done}, rep)
		}},
		{"lcm", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return lcm.Mine(db, lcm.Options{MinSupport: ms, Done: done}, rep)
		}},
		{"eclat-closed", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return eclat.Mine(db, eclat.Options{MinSupport: ms, Target: eclat.Closed, Done: done}, rep)
		}},
		{"cobbler", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return cobbler.Mine(db, cobbler.Options{MinSupport: ms, Done: done}, rep)
		}},
		{"sam", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return sam.Mine(db, sam.Options{MinSupport: ms, Target: sam.Closed, Done: done}, rep)
		}},
		{"flat", func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
			return naive.FlatCumulative(db, naive.FlatOptions{MinSupport: ms, Done: done}, rep)
		}},
	}
	// Parallel engines at fixed worker counts, for the speedup experiment.
	for _, p := range []int{2, 4, 8} {
		p := p
		algos = append(algos,
			Algo{fmt.Sprintf("ista-p%d", p), func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
				return parallel.MineIsTa(db, parallel.Options{MinSupport: ms, Workers: p, Done: done}, rep)
			}},
			Algo{fmt.Sprintf("carp-table-p%d", p), func(db *dataset.Database, ms int, done <-chan struct{}, rep result.Reporter) error {
				return parallel.MineCarpenterTable(db, parallel.Options{MinSupport: ms, Workers: p, Done: done}, rep)
			}},
		)
	}
	m := make(map[string]Algo, len(algos))
	for _, a := range algos {
		m[a.Name] = a
	}
	return m
}

// Cell is one (algorithm, minsup) measurement.
type Cell struct {
	Time     time.Duration
	Closed   int
	TimedOut bool
	Skipped  bool // earlier timeout at a higher support level
	Err      error
}

// Row is one support level of a sweep.
type Row struct {
	MinSupport int
	Cells      map[string]Cell
	// Closed is the agreed number of closed sets (-1 if no algorithm
	// finished at this level).
	Closed int
}

// RunOne measures one algorithm on one workload at one support level.
func RunOne(a Algo, db *dataset.Database, minsup int, timeout time.Duration) Cell {
	done := make(chan struct{})
	var timer *time.Timer
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() { close(done) })
	}
	var counter result.Counter
	start := time.Now()
	err := a.Run(db, minsup, done, &counter)
	elapsed := time.Since(start)
	if timer != nil {
		timer.Stop()
	}
	cell := Cell{Time: elapsed, Closed: counter.N}
	switch {
	case err == mining.ErrCanceled:
		cell.TimedOut = true
	case err != nil:
		cell.Err = err
	}
	return cell
}

// Sweep runs every named algorithm across the support levels (given from
// high to low, like the paper's plots read right to left). An algorithm
// that times out at some level is skipped for all lower levels, since the
// workload only grows as the support drops. Finished algorithms must agree
// on the number of closed sets; a mismatch is returned as an error because
// it would mean one of the miners is wrong.
func Sweep(db *dataset.Database, supports []int, algoNames []string, timeout time.Duration) ([]Row, error) {
	registry := Algorithms()
	dead := map[string]bool{}
	rows := make([]Row, 0, len(supports))
	for _, ms := range supports {
		row := Row{MinSupport: ms, Cells: map[string]Cell{}, Closed: -1}
		for _, name := range algoNames {
			a, ok := registry[name]
			if !ok {
				return nil, fmt.Errorf("bench: unknown algorithm %q", name)
			}
			if dead[name] {
				row.Cells[name] = Cell{Skipped: true}
				continue
			}
			cell := RunOne(a, db, ms, timeout)
			if cell.Err != nil {
				return nil, fmt.Errorf("bench: %s at minsup %d: %w", name, ms, cell.Err)
			}
			if cell.TimedOut {
				dead[name] = true
			} else {
				if row.Closed == -1 {
					row.Closed = cell.Closed
				} else if row.Closed != cell.Closed {
					return nil, fmt.Errorf("bench: result mismatch at minsup %d: %s found %d closed sets, others %d",
						ms, name, cell.Closed, row.Closed)
				}
			}
			row.Cells[name] = cell
		}
		rows = append(rows, row)
	}
	return rows, nil
}
