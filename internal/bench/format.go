package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/txdb"
)

// WriteTable renders sweep rows as an aligned text table in the spirit of
// the paper's figures: one row per minimum support, one time column per
// algorithm, and the agreed closed-set count. Cells show seconds; "t/o"
// marks a timeout and "-" a level skipped after an earlier timeout.
func WriteTable(w io.Writer, title string, stats txdb.Stats, algoNames []string, rows []Row) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "workload: %s\n\n", stats)

	cols := []string{"minsup"}
	cols = append(cols, algoNames...)
	cols = append(cols, "#closed")
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
		if widths[i] < 9 {
			widths[i] = 9
		}
	}

	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		line := []string{fmt.Sprintf("%d", r.MinSupport)}
		for _, name := range algoNames {
			line = append(line, formatCell(r.Cells[name]))
		}
		if r.Closed >= 0 {
			line = append(line, fmt.Sprintf("%d", r.Closed))
		} else {
			line = append(line, "-")
		}
		cells = append(cells, line)
		for i, s := range line {
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}

	writeLine := func(fields []string) {
		var b strings.Builder
		for i, f := range fields {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], f)
		}
		fmt.Fprintln(w, b.String())
	}
	writeLine(cols)
	for _, line := range cells {
		writeLine(line)
	}
	fmt.Fprintln(w)
}

func formatCell(c Cell) string {
	switch {
	case c.Skipped:
		return "-"
	case c.TimedOut:
		return "t/o"
	default:
		return formatSeconds(c.Time)
	}
}

func formatSeconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s < 0.0001:
		return fmt.Sprintf("%.5f", s)
	case s < 1:
		return fmt.Sprintf("%.4f", s)
	default:
		return fmt.Sprintf("%.2f", s)
	}
}

// WriteLogSeries renders the same rows as log10(time/seconds) — the
// paper's y-axis — so the curve shapes can be compared directly against
// Figures 5–8.
func WriteLogSeries(w io.Writer, algoNames []string, rows []Row) {
	fmt.Fprintln(w, "log10(time/seconds), as in the paper's figures:")
	widths := 10
	var head strings.Builder
	fmt.Fprintf(&head, "%*s", widths, "minsup")
	for _, n := range algoNames {
		fmt.Fprintf(&head, "  %*s", widths, n)
	}
	fmt.Fprintln(w, head.String())
	for _, r := range rows {
		var b strings.Builder
		fmt.Fprintf(&b, "%*d", widths, r.MinSupport)
		for _, n := range algoNames {
			c := r.Cells[n]
			if c.Skipped || c.TimedOut {
				fmt.Fprintf(&b, "  %*s", widths, "·")
				continue
			}
			fmt.Fprintf(&b, "  %*.2f", widths, math.Log10(math.Max(c.Time.Seconds(), 1e-6)))
		}
		fmt.Fprintln(w, b.String())
	}
	fmt.Fprintln(w)
}

// Speedup summarises, for the last row in which both algorithms finished,
// how much faster a is than b (the "who wins by what factor" statement
// EXPERIMENTS.md records per figure).
func Speedup(rows []Row, a, b string) (minsup int, factor float64, ok bool) {
	for i := len(rows) - 1; i >= 0; i-- {
		ca, okA := rows[i].Cells[a]
		cb, okB := rows[i].Cells[b]
		if okA && okB && !ca.Skipped && !ca.TimedOut && !cb.Skipped && !cb.TimedOut && ca.Time > 0 {
			return rows[i].MinSupport, cb.Time.Seconds() / ca.Time.Seconds(), true
		}
	}
	return 0, 0, false
}
