// Package txdb is the columnar transaction store every mining layer
// shares: one flat, immutable CSR-style representation of a transaction
// database. Transactions live in a single contiguous []itemset.Item array
// addressed through an offsets column, with an optional weights column for
// duplicate-merged (multiset) databases. The layout is built once — by
// prep's pipeline or a Builder — and then read by every miner, engine and
// shard without copying: Tx returns a subslice of the shared items array,
// and Slice cuts a contiguous zero-copy range view for the parallel
// engines.
//
// Immutability contract: once a *DB is built, its columns never change.
// Everything handed out (Tx sets, Slice views, vertical tid lists) aliases
// the shared arrays and must be treated as read-only. This is what makes
// the zero-copy sharing safe across goroutines: concurrent readers need no
// locks because there are no writers. The derived views (item frequencies,
// the vertical tid-list view) are built lazily on first use under a
// sync.Once, so miners that never ask for them (IsTa, SaM, FP-growth) pay
// nothing, while Eclat-family miners get them exactly once per DB.
//
// txdb sits at the bottom of the package DAG: it depends on nothing above
// internal/itemset and internal/tidset (enforced by the repository's
// import lint).
package txdb

import (
	"fmt"
	"sync"

	"repro/internal/itemset"
	"repro/internal/tidset"
)

// Source is the read-only transaction-database view every miner and the
// engine layer consume. *DB implements it natively; *dataset.Database
// implements it as an adapter so the public API's row-oriented databases
// flow into the engines without conversion copies.
//
// Weight is the multiplicity of row k (≥ 1); databases without merged
// duplicates report 1 for every row. Support semantics throughout the
// repository are weighted: the support of an item set is the total weight
// of the rows containing it, which for uniform weights is exactly the
// classical row count.
type Source interface {
	// NumItems is the size of the dense item universe; items in rows are
	// in [0, NumItems).
	NumItems() int
	// NumTx is the number of (distinct, if merged) transaction rows.
	NumTx() int
	// Tx returns row k as a canonical item set. The returned slice may
	// alias internal storage and must not be modified.
	Tx(k int) itemset.Set
	// Weight returns the multiplicity of row k (≥ 1).
	Weight(k int) int
}

// DB is the flat columnar store. The k-th transaction is
// ids[offs[k]:offs[k+1]]; offsets are absolute positions into ids, so a
// Slice view can share both columns unchanged. weights is nil for uniform
// (all-1) databases — the common case — so the weights column costs
// nothing unless duplicates were actually merged.
type DB struct {
	items   int
	ids     []itemset.Item
	offs    []int32 // len NumTx()+1, absolute into ids
	weights []int32 // nil ⇒ every row has weight 1
	totalW  int     // sum of row weights

	freqOnce sync.Once
	freq     []int // weighted item frequencies, built lazily

	vertOnce sync.Once
	vert     *Vertical // lazy vertical (tid-list) view

	kernOnce sync.Once
	kern     []tidset.Set // lazy kernel-set view of the vertical lists
}

// NumItems returns the size of the item universe.
func (db *DB) NumItems() int { return db.items }

// NumTx returns the number of transaction rows.
func (db *DB) NumTx() int { return len(db.offs) - 1 }

// Tx returns row k as a zero-copy canonical item set aliasing the shared
// items column. Callers must not modify it.
func (db *DB) Tx(k int) itemset.Set {
	return itemset.Set(db.ids[db.offs[k]:db.offs[k+1]])
}

// Len returns the length of row k without materializing it.
func (db *DB) Len(k int) int { return int(db.offs[k+1] - db.offs[k]) }

// Weight returns the multiplicity of row k.
func (db *DB) Weight(k int) int {
	if db.weights == nil {
		return 1
	}
	return int(db.weights[k])
}

// Uniform reports whether every row has weight 1 (no weights column).
// Miners use it to keep count-based fast paths on undeduplicated input.
func (db *DB) Uniform() bool { return db.weights == nil }

// TotalWeight is the sum of all row weights — the weighted transaction
// count that support thresholds compare against. For uniform databases it
// equals NumTx().
func (db *DB) TotalWeight() int { return db.totalW }

// NumIds returns the total length of the items column (the sum of row
// lengths) — the amount of "work" in the database, which the parallel
// engines balance shards by.
func (db *DB) NumIds() int { return int(db.offs[len(db.offs)-1] - db.offs[0]) }

// ItemFreqs returns the weighted frequency of every item: the total weight
// of the rows containing it. The slice is computed once, cached, and must
// be treated as read-only.
func (db *DB) ItemFreqs() []int {
	db.freqOnce.Do(func() {
		freq := make([]int, db.items)
		n := db.NumTx()
		for k := 0; k < n; k++ {
			w := db.Weight(k)
			for _, i := range db.Tx(k) {
				freq[i] += w
			}
		}
		db.freq = freq
	})
	return db.freq
}

// Slice returns the zero-copy view of rows [lo, hi): the view shares the
// items, offsets and weights columns with db (offsets stay absolute, so no
// rebasing copy is needed) and only its row indexing is shifted. Derived
// views (ItemFreqs, Vertical) are per-view and built lazily; a vertical
// view's tids are relative to the slice (0..hi-lo-1).
func (db *DB) Slice(lo, hi int) *DB {
	if lo < 0 || hi < lo || hi > db.NumTx() {
		panic(fmt.Sprintf("txdb: Slice[%d:%d) out of range [0:%d)", lo, hi, db.NumTx()))
	}
	v := &DB{
		items: db.items,
		ids:   db.ids,
		offs:  db.offs[lo : hi+1 : hi+1],
	}
	if db.weights != nil {
		v.weights = db.weights[lo:hi:hi]
		for _, w := range v.weights {
			v.totalW += int(w)
		}
	} else {
		v.totalW = hi - lo
	}
	return v
}

// FromSource materializes any Source into a flat DB in a single pass with
// a constant number of allocations. If src is already a *DB it is returned
// unchanged (it is immutable, so sharing is safe).
func FromSource(src Source) *DB {
	if db, ok := src.(*DB); ok {
		return db
	}
	n := src.NumTx()
	total := 0
	uniform := true
	for k := 0; k < n; k++ {
		total += len(src.Tx(k))
		if src.Weight(k) != 1 {
			uniform = false
		}
	}
	db := &DB{
		items: src.NumItems(),
		ids:   make([]itemset.Item, 0, total),
		offs:  make([]int32, 1, n+1),
	}
	if !uniform {
		db.weights = make([]int32, 0, n)
	}
	for k := 0; k < n; k++ {
		db.ids = append(db.ids, src.Tx(k)...)
		db.offs = append(db.offs, int32(len(db.ids)))
		w := src.Weight(k)
		if !uniform {
			db.weights = append(db.weights, int32(w))
		}
		db.totalW += w
	}
	return db
}

// TotalWeightOf returns the weighted transaction count of any Source,
// using the cached value when src is a *DB.
func TotalWeightOf(src Source) int {
	if db, ok := src.(*DB); ok {
		return db.TotalWeight()
	}
	n := src.NumTx()
	total := 0
	for k := 0; k < n; k++ {
		total += src.Weight(k)
	}
	return total
}

// Validate checks the structural invariants every miner relies on: rows
// canonical (strictly ascending), items inside the universe, weights
// positive. The engine layer calls it once on entry so malformed input
// fails fast instead of corrupting a repository.
func Validate(src Source) error {
	items := src.NumItems()
	if items < 0 {
		return fmt.Errorf("txdb: negative item universe %d", items)
	}
	n := src.NumTx()
	for k := 0; k < n; k++ {
		t := src.Tx(k)
		if !t.IsCanonical() {
			return fmt.Errorf("txdb: transaction %d is not canonical: %v", k, t)
		}
		if len(t) > 0 && (t[0] < 0 || int(t[len(t)-1]) >= items) {
			return fmt.Errorf("txdb: transaction %d has item outside universe [0,%d): %v", k, items, t)
		}
		if src.Weight(k) < 1 {
			return fmt.Errorf("txdb: transaction %d has non-positive weight %d", k, src.Weight(k))
		}
	}
	return nil
}

// Stats summarises a database; the bench harness prints it next to every
// experiment so the workload shape (the paper's key variable) is visible.
// Row-shape statistics are over distinct rows; Transactions is the
// weighted count.
type Stats struct {
	Transactions int     // weighted transaction count
	Rows         int     // distinct rows (== Transactions when uniform)
	Items        int     // universe size
	UsedItems    int     // items occurring at least once
	MinLen       int     // shortest transaction
	MaxLen       int     // longest transaction
	AvgLen       float64 // mean transaction length
	Density      float64 // AvgLen / UsedItems
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d |B|=%d used=%d len[min=%d avg=%.1f max=%d] density=%.4f",
		s.Transactions, s.Items, s.UsedItems, s.MinLen, s.AvgLen, s.MaxLen, s.Density)
}

// Stats computes summary statistics of db.
func (db *DB) Stats() Stats { return StatsOf(db) }

// StatsOf computes summary statistics for any Source.
func StatsOf(src Source) Stats {
	n := src.NumTx()
	s := Stats{Rows: n, Items: src.NumItems()}
	if n == 0 {
		return s
	}
	used := make(map[itemset.Item]struct{})
	s.MinLen = len(src.Tx(0))
	total := 0
	for k := 0; k < n; k++ {
		t := src.Tx(k)
		s.Transactions += src.Weight(k)
		total += len(t)
		if len(t) < s.MinLen {
			s.MinLen = len(t)
		}
		if len(t) > s.MaxLen {
			s.MaxLen = len(t)
		}
		for _, i := range t {
			used[i] = struct{}{}
		}
	}
	s.UsedItems = len(used)
	s.AvgLen = float64(total) / float64(n)
	if s.UsedItems > 0 {
		s.Density = s.AvgLen / float64(s.UsedItems)
	}
	return s
}
