package txdb

import (
	"repro/internal/itemset"
	"repro/internal/tidset"
)

// Vertical is the vertical database view: for each item, the ascending
// list of indices of the rows that contain it. The Eclat family, LCM and
// the list-based Carpenter consume it. Tid lists are subslices of one flat
// backing array (two allocations for the whole view, not one per item).
//
// With merged duplicates a tid identifies a weighted row; weighted support
// of a tid list is the sum of Weight(tid), for which miners use
// DB.TidsWeight.
type Vertical struct {
	Items int
	N     int // number of rows
	Tids  [][]int32
}

// Vertical returns the vertical view of db, built lazily on first use and
// cached. The view is immutable and shared; callers must not modify the
// tid lists. On a Slice view, tids are relative to the slice.
func (db *DB) Vertical() *Vertical {
	db.vertOnce.Do(func() {
		n := db.NumTx()
		v := &Vertical{Items: db.items, N: n}
		// Unweighted per-item row counts size the flat backing exactly.
		counts := make([]int32, db.items)
		for _, i := range db.ids[db.offs[0]:db.offs[n]] {
			counts[i]++
		}
		total := 0
		for _, c := range counts {
			total += int(c)
		}
		flat := make([]int32, total)
		v.Tids = make([][]int32, db.items)
		pos := 0
		for i, c := range counts {
			v.Tids[i] = flat[pos : pos : pos+int(c)]
			pos += int(c)
		}
		for k := 0; k < n; k++ {
			for _, i := range db.Tx(k) {
				v.Tids[i] = append(v.Tids[i], int32(k))
			}
		}
		db.vert = v
	})
	return db.vert
}

// KernelUniverse returns the tidset universe of db: its row count and
// weights column. Kernel sets and tidset.Kernel instances built from it
// share db's weight semantics (TidsWeight == Universe.WeightOf).
func (db *DB) KernelUniverse() tidset.Universe {
	return tidset.Universe{N: db.NumTx(), W: db.weights}
}

// KernelSets returns the per-item base tid sets the vertical miners
// intersect against: the Vertical view's tid lists wrapped as kernel
// sets, with dense covers promoted to bitmaps once for the whole run.
// Built lazily on first use and cached; the sets are immutable and
// shared, and the backing array is stable so Diff results may reference
// the sets by pointer.
func (db *DB) KernelSets() []tidset.Set {
	db.kernOnce.Do(func() {
		u := db.KernelUniverse()
		v := db.Vertical()
		sets := make([]tidset.Set, db.items)
		for i, tids := range v.Tids {
			sets[i] = u.Promote(u.FromSorted(tids))
		}
		db.kern = sets
	})
	return db.kern
}

// TidsWeight returns the weighted support of a tid list: the total weight
// of the identified rows. For uniform databases this is len(tids).
func (db *DB) TidsWeight(tids []int32) int {
	if db.weights == nil {
		return len(tids)
	}
	w := 0
	for _, t := range tids {
		w += int(db.weights[t])
	}
	return w
}

// SuffixWeight returns the total weight of rows k..NumTx()-1 — the
// weighted generalization of "transactions from k on", which Carpenter's
// suffix pruning bound needs.
func (db *DB) SuffixWeight(k int) int {
	if db.weights == nil {
		return db.NumTx() - k
	}
	w := 0
	for _, x := range db.weights[k:] {
		w += int(x)
	}
	return w
}

// Matrix is the table representation of §3.1.2 (Table 1 of the paper):
//
//	M[k][i] = weight of { j : k ≤ j < n, i ∈ t_j }  if i ∈ t_k,
//	M[k][i] = 0                                     otherwise.
//
// The entry simultaneously answers membership (non-zero) and "how much
// support remains from row k on" (the item-elimination counter). With
// uniform weights the entries are exactly the paper's transaction counts.
type Matrix struct {
	Items int
	N     int
	M     [][]int32
}

// Matrix builds the table representation of db. It is not cached: only
// the table Carpenter uses it, exactly once per run.
func (db *DB) Matrix() *Matrix {
	n := db.NumTx()
	m := &Matrix{Items: db.items, N: n}
	m.M = make([][]int32, n)
	if n == 0 {
		return m
	}
	flat := make([]int32, n*db.items)
	for k := range m.M {
		m.M[k], flat = flat[:db.items:db.items], flat[db.items:]
	}
	// Running weighted counts of occurrences in rows k..n-1, back to front.
	remain := make([]int32, db.items)
	for k := n - 1; k >= 0; k-- {
		t := db.Tx(k)
		w := int32(db.Weight(k))
		for _, i := range t {
			remain[i] += w
		}
		row := m.M[k]
		for _, i := range t {
			row[i] = remain[i]
		}
	}
	return m
}

// Transpose returns the transposed database: row k of db becomes item k of
// the result, and item i of db becomes row i. This is the gene-expression
// duality from §4 of the paper (genes as transactions vs. genes as items).
// Empty rows of the transposed database (items of db contained in no row)
// are kept so that Transpose∘Transpose is the identity up to trailing
// items. Weights do not survive transposition (a row multiplicity has no
// dual), so db must be uniform.
func (db *DB) Transpose() *DB {
	if db.weights != nil {
		panic("txdb: Transpose of a weighted database")
	}
	n := db.NumTx()
	v := db.Vertical()
	out := &DB{
		items:  n,
		ids:    make([]itemset.Item, 0, db.NumIds()),
		offs:   make([]int32, 1, db.items+1),
		totalW: db.items,
	}
	for i := 0; i < db.items; i++ {
		for _, tid := range v.Tids[i] {
			out.ids = append(out.ids, itemset.Item(tid))
		}
		out.offs = append(out.offs, int32(len(out.ids)))
	}
	return out
}
