package txdb

import (
	"slices"

	"repro/internal/itemset"
)

// Builder accumulates transactions directly into the flat columns, so
// producers (dataset I/O, the synthetic generators, prep) emit straight
// into the final representation with no per-transaction allocations —
// growth is amortized over the two backing arrays. A Builder is single-use:
// Build hands its columns to the DB without copying.
type Builder struct {
	items   int // universe floor; raised by observed items
	ids     []itemset.Item
	offs    []int32
	weights []int32 // nil until a weight ≠ 1 is added
	totalW  int
}

// NewBuilder returns a Builder. rowsHint/idsHint pre-size the columns
// (0 is fine).
func NewBuilder(rowsHint, idsHint int) *Builder {
	b := &Builder{
		ids:  make([]itemset.Item, 0, idsHint),
		offs: make([]int32, 1, rowsHint+1),
	}
	return b
}

// SetNumItems sets a floor for the item universe; the final universe is
// the larger of this and 1 + the largest item observed.
func (b *Builder) SetNumItems(n int) { b.items = n }

// NumRows returns the number of rows added so far.
func (b *Builder) NumRows() int { return len(b.offs) - 1 }

// AddSet appends one transaction with weight 1. t must already be
// canonical (strictly ascending); its contents are copied.
func (b *Builder) AddSet(t itemset.Set) { b.AddWeighted(t, 1) }

// AddWeighted appends one canonical transaction with the given
// multiplicity (w ≥ 1).
func (b *Builder) AddWeighted(t itemset.Set, w int) {
	b.ids = append(b.ids, t...)
	b.closeRow(len(t), w)
}

// AddRow appends one transaction given as an arbitrary (unsorted, possibly
// duplicated) item list: the row is canonicalized in place inside the flat
// array, with no temporary allocation. This replaces the ad-hoc
// append-then-sort canonicalization producers used to do per row.
func (b *Builder) AddRow(row []itemset.Item) {
	start := len(b.ids)
	b.ids = append(b.ids, row...)
	seg := b.ids[start:]
	slices.Sort(seg)
	// Deduplicate in place.
	wr := 0
	for r := range seg {
		if r == 0 || seg[r] != seg[wr-1] {
			seg[wr] = seg[r]
			wr++
		}
	}
	b.ids = b.ids[:start+wr]
	b.closeRow(wr, 1)
}

// AddInts appends one transaction given as ints; a test and generator
// convenience equivalent to AddRow.
func (b *Builder) AddInts(row ...int) {
	start := len(b.ids)
	for _, v := range row {
		b.ids = append(b.ids, itemset.Item(v))
	}
	seg := b.ids[start:]
	slices.Sort(seg)
	wr := 0
	for r := range seg {
		if r == 0 || seg[r] != seg[wr-1] {
			seg[wr] = seg[r]
			wr++
		}
	}
	b.ids = b.ids[:start+wr]
	b.closeRow(wr, 1)
}

func (b *Builder) closeRow(rowLen, w int) {
	b.offs = append(b.offs, int32(len(b.ids)))
	if w != 1 && b.weights == nil {
		b.weights = make([]int32, 0, cap(b.offs))
		for i := 0; i < b.NumRows()-1; i++ {
			b.weights = append(b.weights, 1)
		}
	}
	if b.weights != nil {
		b.weights = append(b.weights, int32(w))
	}
	b.totalW += w
	if rowLen > 0 {
		if top := int(b.ids[len(b.ids)-1]) + 1; top > b.items {
			b.items = top
		}
	}
}

// Build finalizes the accumulated rows into an immutable DB. The Builder
// must not be used afterwards (the DB owns the columns).
func (b *Builder) Build() *DB {
	db := &DB{
		items:   b.items,
		ids:     b.ids,
		offs:    b.offs,
		weights: b.weights,
		totalW:  b.totalW,
	}
	b.ids, b.offs, b.weights = nil, nil, nil
	return db
}

// MergeDuplicates returns a database in which identical rows are merged
// into one row whose weight is the sum of the originals' weights (the
// multiset-to-weighted-set reduction of §2 of the paper: support counting
// only ever needs the multiplicity). Rows keep the order of their first
// occurrence, so a database without duplicates comes back row-identical.
// The input is unchanged; if nothing merges the result still owns fresh
// columns only when duplicates existed — otherwise db itself is returned.
func MergeDuplicates(db *DB) *DB {
	n := db.NumTx()
	if n < 2 {
		return db
	}
	// Sort a permutation by row content; identical rows become adjacent.
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	slices.SortFunc(perm, func(a, c int32) int {
		if cmp := itemset.Compare(db.Tx(int(a)), db.Tx(int(c))); cmp != 0 {
			return cmp
		}
		return int(a - c) // stable: first occurrence first within a group
	})
	// keeper[k] = index of the first row equal to row k; weight accumulates
	// on the keeper.
	keeper := make([]int32, n)
	addW := make([]int64, n)
	dups := 0
	for i := 0; i < n; {
		j := i
		lead := perm[i]
		for j < n && db.Tx(int(perm[j])).Equal(db.Tx(int(lead))) {
			k := perm[j]
			if k < lead {
				lead = k
			}
			j++
		}
		for ; i < j; i++ {
			k := perm[i]
			keeper[k] = lead
			addW[lead] += int64(db.Weight(int(k)))
			if k != lead {
				dups++
			}
		}
	}
	if dups == 0 {
		return db
	}
	out := NewBuilder(n-dups, db.NumIds())
	out.SetNumItems(db.items)
	for k := 0; k < n; k++ {
		if int(keeper[k]) != k {
			continue
		}
		out.AddWeighted(db.Tx(k), int(addW[k]))
	}
	return out.Build()
}
