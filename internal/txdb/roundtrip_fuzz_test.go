package txdb_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/txdb"
)

// FuzzDatasetRoundTrip drives arbitrary FIMI text through the full
// representation cycle — row database → columnar store → FIMI text → row
// database — and checks nothing is gained, lost or reordered. A second
// leg merges duplicates before writing and checks the expanded multiset
// comes back (weights serialize as repetition).
func FuzzDatasetRoundTrip(f *testing.F) {
	f.Add("0 1 2\n0 2\n1 2\n")
	f.Add("\n\n")
	f.Add("3 3 1\n# comment\n2\n")
	f.Add("0 1\n0 1\n0 1\n2\n")
	f.Fuzz(func(t *testing.T, text string) {
		// Keep the corpus in the numeric-token regime: named tokens go
		// through dataset's name table, which WriteSource deliberately
		// does not carry.
		for _, r := range text {
			if !strings.ContainsRune("0123456789 \t\n#", r) {
				t.Skip()
			}
		}
		db, err := dataset.Read(strings.NewReader(text))
		if err != nil {
			t.Skip() // malformed input (e.g. out-of-range numbers) is not this test's concern
		}

		col := txdb.FromSource(db)
		if err := txdb.Validate(col); err != nil {
			t.Fatalf("columnar store invalid: %v", err)
		}
		if col.NumTx() != len(db.Trans) || col.NumItems() != db.Items {
			t.Fatalf("shape changed: %d×%d vs %d×%d", col.NumTx(), col.NumItems(), len(db.Trans), db.Items)
		}

		var buf bytes.Buffer
		if err := dataset.WriteSource(&buf, col); err != nil {
			t.Fatal(err)
		}
		back, err := dataset.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-tripped text does not parse: %v", err)
		}
		if len(back.Trans) != len(db.Trans) {
			t.Fatalf("row count changed: %d -> %d", len(db.Trans), len(back.Trans))
		}
		for k := range db.Trans {
			if !back.Trans[k].Equal(db.Trans[k]) {
				t.Fatalf("row %d changed: %v -> %v", k, db.Trans[k], back.Trans[k])
			}
		}

		// Merged leg: weights come back as repeated rows; compare as
		// sorted multisets since merging reorders occurrences.
		merged := txdb.MergeDuplicates(col)
		if merged.TotalWeight() != col.TotalWeight() {
			t.Fatalf("merge changed total weight: %d -> %d", col.TotalWeight(), merged.TotalWeight())
		}
		buf.Reset()
		if err := dataset.WriteSource(&buf, merged); err != nil {
			t.Fatal(err)
		}
		expanded, err := dataset.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("merged text does not parse: %v", err)
		}
		if len(expanded.Trans) != len(db.Trans) {
			t.Fatalf("expanded row count = %d, want %d", len(expanded.Trans), len(db.Trans))
		}
		a := sortedRows(db.Trans)
		b := sortedRows(expanded.Trans)
		for k := range a {
			if !a[k].Equal(b[k]) {
				t.Fatalf("multiset changed after merge round trip at sorted row %d: %v vs %v", k, a[k], b[k])
			}
		}
	})
}

func sortedRows(rows []itemset.Set) []itemset.Set {
	out := make([]itemset.Set, len(rows))
	copy(out, rows)
	sort.Slice(out, func(i, j int) bool { return itemset.Compare(out[i], out[j]) < 0 })
	return out
}
