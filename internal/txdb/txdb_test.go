package txdb_test

import (
	"math/rand"
	"testing"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// buildRandom returns a random database over [0, items) with n rows; with
// weighted set, random multiplicities in [1, 4] are attached.
func buildRandom(rng *rand.Rand, items, n int, density float64, weighted bool) *txdb.DB {
	b := txdb.NewBuilder(n, 0)
	b.SetNumItems(items)
	row := make(itemset.Set, 0, items)
	for k := 0; k < n; k++ {
		row = row[:0]
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				row = append(row, itemset.Item(i))
			}
		}
		if weighted {
			b.AddWeighted(row, 1+rng.Intn(4))
		} else {
			b.AddSet(row)
		}
	}
	return b.Build()
}

func support(db *txdb.DB, items itemset.Set) int {
	s := 0
	for k := 0; k < db.NumTx(); k++ {
		if items.SubsetOf(db.Tx(k)) {
			s += db.Weight(k)
		}
	}
	return s
}

func TestBuilderCanonicalizesRows(t *testing.T) {
	b := txdb.NewBuilder(0, 0)
	b.AddRow([]itemset.Item{5, 1, 3, 1, 5})
	b.AddInts(2, 2, 0)
	b.AddSet(itemset.Set{})
	db := b.Build()
	if db.NumTx() != 3 {
		t.Fatalf("rows = %d", db.NumTx())
	}
	if !db.Tx(0).Equal(itemset.FromInts(1, 3, 5)) {
		t.Fatalf("row 0 = %v", db.Tx(0))
	}
	if !db.Tx(1).Equal(itemset.FromInts(0, 2)) {
		t.Fatalf("row 1 = %v", db.Tx(1))
	}
	if db.Len(2) != 0 {
		t.Fatalf("row 2 len = %d", db.Len(2))
	}
	if db.NumItems() != 6 {
		t.Fatalf("universe = %d, want 6 (largest item + 1)", db.NumItems())
	}
	if !db.Uniform() || db.TotalWeight() != 3 {
		t.Fatalf("uniform=%v totalW=%d", db.Uniform(), db.TotalWeight())
	}
	if err := txdb.Validate(db); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderWeightsLateFirstWeight(t *testing.T) {
	// The weights column materializes only when a non-1 weight appears;
	// earlier rows must be backfilled with weight 1.
	b := txdb.NewBuilder(0, 0)
	b.AddSet(itemset.FromInts(0))
	b.AddSet(itemset.FromInts(1))
	b.AddWeighted(itemset.FromInts(2), 5)
	db := b.Build()
	if db.Uniform() {
		t.Fatal("database with weight 5 row reported uniform")
	}
	if db.Weight(0) != 1 || db.Weight(1) != 1 || db.Weight(2) != 5 {
		t.Fatalf("weights = %d %d %d", db.Weight(0), db.Weight(1), db.Weight(2))
	}
	if db.TotalWeight() != 7 {
		t.Fatalf("total weight = %d", db.TotalWeight())
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := txdb.NewBuilder(0, 0)
	bad.AddWeighted(itemset.Set{3, 1}, 1) // not canonical, bypasses AddRow's sort
	if err := txdb.Validate(bad.Build()); err == nil {
		t.Fatal("non-canonical row passed Validate")
	}
	b := txdb.NewBuilder(0, 0)
	b.AddSet(itemset.FromInts(0, 1))
	db := b.Build()
	if err := txdb.Validate(db); err != nil {
		t.Fatal(err)
	}
}

func TestItemFreqsWeighted(t *testing.T) {
	b := txdb.NewBuilder(0, 0)
	b.SetNumItems(4)
	b.AddWeighted(itemset.FromInts(0, 1), 3)
	b.AddWeighted(itemset.FromInts(1, 2), 2)
	b.AddSet(itemset.FromInts(3))
	db := b.Build()
	freq := db.ItemFreqs()
	want := []int{3, 5, 2, 1}
	for i, w := range want {
		if freq[i] != w {
			t.Fatalf("freq[%d] = %d, want %d (all: %v)", i, freq[i], w, freq)
		}
	}
}

func TestSliceSharesBacking(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := buildRandom(rng, 20, 50, 0.4, false)
	v := db.Slice(10, 30)
	if v.NumTx() != 20 {
		t.Fatalf("view rows = %d", v.NumTx())
	}
	for k := 0; k < v.NumTx(); k++ {
		whole, view := db.Tx(10+k), v.Tx(k)
		if !whole.Equal(view) {
			t.Fatalf("row %d differs between view and parent", k)
		}
		if len(view) > 0 && &whole[0] != &view[0] {
			t.Fatalf("row %d was copied; Slice must alias the parent's items column", k)
		}
	}
}

func TestSlicePropertyShardSupports(t *testing.T) {
	// Cutting a database into contiguous shards must preserve weighted
	// supports additively: for any item set, the sum of shard supports
	// equals the whole-database support, and total weights add up too.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		items := 4 + rng.Intn(12)
		n := rng.Intn(60)
		db := buildRandom(rng, items, n, 0.2+rng.Float64()*0.5, trial%2 == 1)

		// Random contiguous partition of [0, n).
		var cuts []int
		lo := 0
		for lo < n {
			hi := lo + 1 + rng.Intn(n-lo)
			cuts = append(cuts, hi)
			lo = hi
		}
		shards := make([]*txdb.DB, 0, len(cuts))
		prev := 0
		for _, hi := range cuts {
			shards = append(shards, db.Slice(prev, hi))
			prev = hi
		}

		totalW := 0
		for _, s := range shards {
			totalW += s.TotalWeight()
		}
		if totalW != db.TotalWeight() {
			t.Fatalf("trial %d: shard weights sum to %d, whole DB has %d", trial, totalW, db.TotalWeight())
		}

		for probe := 0; probe < 10; probe++ {
			var q itemset.Set
			for i := 0; i < items; i++ {
				if rng.Float64() < 0.25 {
					q = append(q, itemset.Item(i))
				}
			}
			sum := 0
			for _, s := range shards {
				sum += support(s, q)
			}
			if whole := support(db, q); sum != whole {
				t.Fatalf("trial %d: support(%v) = %d over shards, %d on whole DB", trial, q, sum, whole)
			}
			q = nil
		}
	}
}

func TestSliceBoundsPanic(t *testing.T) {
	db := buildRandom(rand.New(rand.NewSource(3)), 5, 10, 0.5, false)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Slice did not panic")
		}
	}()
	db.Slice(4, 11)
}

// opaque hides a *DB behind a plain Source so FromSource takes its
// materializing path instead of the *DB fast path.
type opaque struct{ db *txdb.DB }

func (o opaque) NumItems() int        { return o.db.NumItems() }
func (o opaque) NumTx() int           { return o.db.NumTx() }
func (o opaque) Tx(k int) itemset.Set { return o.db.Tx(k) }
func (o opaque) Weight(k int) int     { return o.db.Weight(k) }

func TestFromSourceIdentityAndCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := buildRandom(rng, 10, 20, 0.4, true)
	if txdb.FromSource(db) != db {
		t.Fatal("FromSource of a *DB must return it unchanged")
	}
	view := db.Slice(5, 15)
	if txdb.FromSource(view) != view {
		t.Fatal("FromSource of a Slice view (itself a *DB) must return it unchanged")
	}
	flat := txdb.FromSource(opaque{view})
	if flat.NumTx() != view.NumTx() || flat.TotalWeight() != view.TotalWeight() {
		t.Fatalf("shape changed: %d/%d rows, %d/%d weight",
			flat.NumTx(), view.NumTx(), flat.TotalWeight(), view.TotalWeight())
	}
	for k := 0; k < view.NumTx(); k++ {
		if !flat.Tx(k).Equal(view.Tx(k)) || flat.Weight(k) != view.Weight(k) {
			t.Fatalf("row %d differs after FromSource", k)
		}
	}
}

func TestMergeDuplicates(t *testing.T) {
	b := txdb.NewBuilder(0, 0)
	b.SetNumItems(5)
	b.AddSet(itemset.FromInts(0, 1))
	b.AddSet(itemset.FromInts(2))
	b.AddSet(itemset.FromInts(0, 1))
	b.AddWeighted(itemset.FromInts(0, 1), 2)
	b.AddSet(itemset.FromInts(3))
	db := b.Build()

	m := txdb.MergeDuplicates(db)
	if m.NumTx() != 3 {
		t.Fatalf("merged rows = %d, want 3", m.NumTx())
	}
	// First-occurrence order: {0,1}, {2}, {3}.
	if !m.Tx(0).Equal(itemset.FromInts(0, 1)) || m.Weight(0) != 4 {
		t.Fatalf("row 0 = %v weight %d, want {0 1} weight 4", m.Tx(0), m.Weight(0))
	}
	if !m.Tx(1).Equal(itemset.FromInts(2)) || m.Weight(1) != 1 {
		t.Fatalf("row 1 = %v weight %d", m.Tx(1), m.Weight(1))
	}
	if !m.Tx(2).Equal(itemset.FromInts(3)) || m.Weight(2) != 1 {
		t.Fatalf("row 2 = %v weight %d", m.Tx(2), m.Weight(2))
	}
	if m.TotalWeight() != db.TotalWeight() {
		t.Fatalf("total weight changed: %d vs %d", m.TotalWeight(), db.TotalWeight())
	}

	// No duplicates: the same *DB must come back (no copying).
	u := buildRandom(rand.New(rand.NewSource(5)), 30, 10, 0.5, false)
	if d := txdb.MergeDuplicates(u); d != u && d.NumTx() == u.NumTx() {
		t.Fatal("duplicate-free database should be returned unchanged")
	}
}

func TestMergeDuplicatesPreservesSupports(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		items := 3 + rng.Intn(5) // small universe forces duplicates
		db := buildRandom(rng, items, 2+rng.Intn(40), 0.5, trial%2 == 1)
		m := txdb.MergeDuplicates(db)
		if err := txdb.Validate(m); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for probe := 0; probe < 8; probe++ {
			var q itemset.Set
			for i := 0; i < items; i++ {
				if rng.Float64() < 0.3 {
					q = append(q, itemset.Item(i))
				}
			}
			if a, b := support(db, q), support(m, q); a != b {
				t.Fatalf("trial %d: support(%v) changed %d -> %d after merge", trial, q, a, b)
			}
		}
	}
}

func TestVerticalAndTidsWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, weighted := range []bool{false, true} {
		db := buildRandom(rng, 12, 30, 0.4, weighted)
		v := db.Vertical()
		freq := db.ItemFreqs()
		for i := 0; i < db.NumItems(); i++ {
			if got := db.TidsWeight(v.Tids[i]); got != freq[i] {
				t.Fatalf("weighted=%v item %d: TidsWeight=%d freq=%d", weighted, i, got, freq[i])
			}
			for _, tid := range v.Tids[i] {
				if !db.Tx(int(tid)).Contains(itemset.Item(i)) {
					t.Fatalf("item %d tid %d does not contain it", i, tid)
				}
			}
		}
		if v != db.Vertical() {
			t.Fatal("Vertical must be cached")
		}
	}
}

func TestSuffixWeight(t *testing.T) {
	db := buildRandom(rand.New(rand.NewSource(8)), 8, 25, 0.4, true)
	for k := 0; k <= db.NumTx(); k++ {
		want := 0
		for j := k; j < db.NumTx(); j++ {
			want += db.Weight(j)
		}
		if got := db.SuffixWeight(k); got != want {
			t.Fatalf("SuffixWeight(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	db := buildRandom(rand.New(rand.NewSource(9)), 15, 20, 0.35, false)
	tr := db.Transpose()
	if tr.NumItems() != db.NumTx() {
		t.Fatalf("transposed universe = %d, want %d", tr.NumItems(), db.NumTx())
	}
	back := tr.Transpose()
	if back.NumTx() != db.NumTx() {
		t.Fatalf("double transpose rows = %d, want %d", back.NumTx(), db.NumTx())
	}
	for k := 0; k < db.NumTx(); k++ {
		if !back.Tx(k).Equal(db.Tx(k)) {
			t.Fatalf("row %d changed after double transpose: %v vs %v", k, back.Tx(k), db.Tx(k))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Transpose of a weighted database must panic")
		}
	}()
	buildRandom(rand.New(rand.NewSource(10)), 5, 5, 0.5, true).Transpose()
}

func TestStats(t *testing.T) {
	b := txdb.NewBuilder(0, 0)
	b.SetNumItems(10)
	b.AddWeighted(itemset.FromInts(0, 1, 2), 3)
	b.AddSet(itemset.FromInts(4))
	db := b.Build()
	s := db.Stats()
	if s.Transactions != 4 || s.Rows != 2 {
		t.Fatalf("weighted/distinct counts: %+v", s)
	}
	if s.Items != 10 || s.UsedItems != 4 {
		t.Fatalf("universe: %+v", s)
	}
	if s.MinLen != 1 || s.MaxLen != 3 || s.AvgLen != 2 {
		t.Fatalf("lengths: %+v", s)
	}
}

func TestMatrixWeighted(t *testing.T) {
	// Table 1 semantics with weights: M[k][i] is the weighted count of
	// rows j >= k containing i, when i ∈ t_k.
	b := txdb.NewBuilder(0, 0)
	b.AddWeighted(itemset.FromInts(0, 1), 2)
	b.AddSet(itemset.FromInts(1))
	db := b.Build()
	m := db.Matrix()
	if m.M[0][0] != 2 || m.M[0][1] != 3 {
		t.Fatalf("row 0 = %v", m.M[0])
	}
	if m.M[1][0] != 0 || m.M[1][1] != 1 {
		t.Fatalf("row 1 = %v", m.M[1])
	}
}
