package sam

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/result"
)

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

func bruteAllFrequent(db *dataset.Database, minsup int) *result.Set {
	var out result.Set
	items := make(itemset.Set, 0, db.Items)
	for mask := 1; mask < 1<<uint(db.Items); mask++ {
		items = items[:0]
		for i := 0; i < db.Items; i++ {
			if mask&(1<<uint(i)) != 0 {
				items = append(items, itemset.Item(i))
			}
		}
		if supp := result.Support(db, items); supp >= minsup {
			out.Add(items, supp)
		}
	}
	return &out
}

func TestAllMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	for trial := 0; trial < 60; trial++ {
		items := 2 + rng.Intn(7)
		n := 1 + rng.Intn(10)
		db := randDB(rng, items, n, 0.2+rng.Float64()*0.5)
		for _, minsup := range []int{1, 2} {
			want := bruteAllFrequent(db, minsup)
			var got result.Set
			if err := Mine(db, Options{MinSupport: minsup, Target: All}, got.Collect()); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("SaM(all) mismatch (minsup=%d db=%v):\n%s", minsup, db.Trans, got.Diff(want, 10))
			}
		}
	}
}

func TestDuplicateTransactionsCollapse(t *testing.T) {
	db := dataset.FromInts([]int{0, 1}, []int{0, 1}, []int{0, 1}, []int{1})
	var got result.Set
	if err := Mine(db, Options{MinSupport: 3, Target: All}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	var want result.Set
	want.Add(itemset.FromInts(0), 3)
	want.Add(itemset.FromInts(1), 4)
	want.Add(itemset.FromInts(0, 1), 3)
	if !got.Equal(&want) {
		t.Fatalf("weights: %s", got.Diff(&want, 5))
	}
}

func TestMergeAndCollapse(t *testing.T) {
	a := []wtrans{{w: 1, items: itemset.FromInts(1)}, {w: 2, items: itemset.FromInts(1, 2)}}
	b := []wtrans{{w: 3, items: itemset.FromInts(1, 2)}, {w: 1, items: itemset.FromInts(2)}}
	out := merge(a, b)
	if len(out) != 3 {
		t.Fatalf("merge length = %d", len(out))
	}
	if out[1].w != 5 || !out[1].items.Equal(itemset.FromInts(1, 2)) {
		t.Fatalf("merged weights wrong: %+v", out)
	}
	c := collapse([]wtrans{
		{w: 1, items: itemset.FromInts(3)},
		{w: 2, items: itemset.FromInts(3)},
		{w: 1, items: itemset.FromInts(4)},
	})
	if len(c) != 2 || c[0].w != 3 {
		t.Fatalf("collapse wrong: %+v", c)
	}
}

func TestEdgeCasesAndCancel(t *testing.T) {
	var got result.Set
	if err := Mine(&dataset.Database{Items: 2}, Options{MinSupport: 1}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty db")
	}

	bad := &dataset.Database{Items: 1, Trans: []itemset.Set{{3}}}
	if err := Mine(bad, Options{MinSupport: 1}, &result.Counter{}); err == nil {
		t.Fatal("expected validation error")
	}

	done := make(chan struct{})
	close(done)
	db := randDB(rand.New(rand.NewSource(19)), 30, 80, 0.5)
	err := Mine(db, Options{MinSupport: 2, Done: done}, &result.Counter{})
	if err != mining.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
