package sam

import (
	"repro/internal/engine"
	"repro/internal/prep"
	"repro/internal/result"
)

func init() {
	engine.Register(engine.Registration{
		Name:    "sam",
		Doc:     "split-and-merge over weighted transaction suffixes; closed output via subsumption filter (Borgelt & Wang)",
		Targets: []engine.Target{engine.Closed, engine.All},
		Prep:    prep.Config{Items: prep.OrderDescFreq, Trans: prep.OrderOriginal},
		Order:   60,
		Mine: func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
			return minePrepared(pre, spec.MinSupport, spec.Target, spec.Control(), rep)
		},
	})
}
