// Package sam implements SaM, the Split-and-Merge frequent item set miner
// (Borgelt & Wang — reference [3] of the paper): an item set enumeration
// algorithm with an exceptionally simple data structure, a single array of
// weighted transaction suffixes kept in lexicographic order. Each step
// *splits* off the group of transactions starting with the current minimum
// item (their weight sum is that item's support) and *merges* the
// remainder with the split group's suffixes, collapsing equal suffixes by
// adding weights.
//
// SaM enumerates all frequent item sets; the closed target is obtained
// with the same-support subsumption filter also used by the Apriori
// closed target (every closed set occurs among the frequent sets, and a
// frequent set is closed iff no frequent superset has equal support).
package sam

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/txdb"
)

// Target selects what Mine reports.
//
// Deprecated: Target and its constants are aliases for the shared
// engine.Target; the zero value is Closed (it used to be All).
type Target = engine.Target

const (
	// All reports every frequent item set.
	All = engine.All
	// Closed reports the closed frequent item sets.
	Closed = engine.Closed
)

// Options configures the miner.
type Options struct {
	// MinSupport is the absolute minimum support; values < 1 act as 1.
	MinSupport int
	// Target selects closed (default) or all sets.
	Target Target
	// Done optionally cancels the run.
	Done <-chan struct{}
	// Guard optionally bounds the run (deadline and pattern budget). May
	// be nil.
	Guard *guard.Guard
}

// wtrans is one weighted transaction suffix. The items slice is shared
// with ancestors (suffixes are made by reslicing), which is what keeps
// SaM's memory footprint small.
type wtrans struct {
	w     int
	items itemset.Set
}

// Mine runs SaM on db and reports patterns in original item codes.
func Mine(db txdb.Source, opts Options, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	// Descending frequency coding: SaM wants frequent items early so the
	// split groups are large and merge lists shrink quickly.
	pre := prep.Prepare(db, minsup, prep.Config{Items: prep.OrderDescFreq, Trans: prep.OrderOriginal})
	ctl := mining.Guarded(opts.Done, opts.Guard)
	return minePrepared(pre, minsup, opts.Target, ctl, rep)
}

// minePrepared is the split-and-merge search on an already preprocessed
// database.
func minePrepared(pre *prep.Prepared, minsup int, target Target, ctl *mining.Control, rep result.Reporter) error {
	pdb := pre.DB
	if pdb.NumItems() == 0 {
		return nil
	}

	// Initial array: all rows at their multiset weight (SaM is natively
	// weighted), identical transactions collapsed, lexicographically
	// ascending.
	list := make([]wtrans, 0, pdb.NumTx())
	for k, n := 0, pdb.NumTx(); k < n; k++ {
		list = append(list, wtrans{w: pdb.Weight(k), items: pdb.Tx(k)})
	}
	sort.Slice(list, func(a, b int) bool {
		return itemset.CompareLex(list[a].items, list[b].items) < 0
	})
	list = collapse(list)

	m := &samMiner{
		minsup: minsup,
		pre:    pre,
		ctl:    ctl,
	}
	switch target {
	case All:
		m.out = func(items itemset.Set, supp int) {
			rep.Report(pre.DecodeSet(items), supp)
		}
	default: // Closed
		m.filter = result.NewSubsumeFilter()
		m.out = func(items itemset.Set, supp int) {
			m.filter.Add(items, supp)
		}
	}

	prefix := make(itemset.Set, 0, 32)
	if err := m.mine(list, prefix); err != nil {
		return err
	}
	if m.filter != nil {
		var closed result.Set
		m.filter.Emit(closed.Collect())
		closed.Sort()
		for _, p := range closed.Patterns {
			rep.Report(pre.DecodeSet(p.Items), p.Support)
		}
	}
	return nil
}

type samMiner struct {
	minsup int
	pre    *prep.Prepared
	ctl    *mining.Control
	out    func(items itemset.Set, supp int)
	filter *result.SubsumeFilter
}

// mine processes one conditional database (a lexicographically sorted
// array of weighted suffixes); every reported set extends prefix.
func (m *samMiner) mine(list []wtrans, prefix itemset.Set) error {
	for len(list) > 0 {
		if err := m.ctl.Tick(); err != nil {
			return err
		}
		m.ctl.CountOps(1) // one split-and-merge step
		// Split: the group of transactions starting with the minimum item
		// is the contiguous head of the sorted array.
		item := list[0].items[0]
		split := 0
		supp := 0
		for split < len(list) && list[split].items[0] == item {
			supp += list[split].w
			split++
		}

		// Conditional database: the split group with the item removed.
		cond := make([]wtrans, 0, split)
		for _, t := range list[:split] {
			if len(t.items) > 1 {
				cond = append(cond, wtrans{w: t.w, items: t.items[1:]})
			}
		}
		// Dropping the common head preserves lexicographic order, so the
		// suffixes are still sorted; equal suffixes became adjacent and
		// are collapsed.
		cond = collapse(cond)

		if supp >= m.minsup {
			m.out(append(prefix, item), supp)
			if len(cond) > 0 {
				if err := m.mine(cond, append(prefix, item)); err != nil {
					return err
				}
			}
		}

		// Merge: fold the conditional suffixes back into the remainder —
		// the database "without the item" (§2.2's second subproblem).
		list = merge(cond, list[split:])
	}
	return nil
}

// collapse merges adjacent equal transactions by adding weights (the
// input must be sorted).
func collapse(list []wtrans) []wtrans {
	if len(list) < 2 {
		return list
	}
	w := 0
	for r := 1; r < len(list); r++ {
		if list[r].items.Equal(list[w].items) {
			list[w].w += list[r].w
		} else {
			w++
			list[w] = list[r]
		}
	}
	return list[:w+1]
}

// merge combines two sorted weighted-suffix arrays, collapsing equal
// transactions.
func merge(a, b []wtrans) []wtrans {
	out := make([]wtrans, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := itemset.CompareLex(a[i].items, b[j].items); {
		case c == 0:
			out = append(out, wtrans{w: a[i].w + b[j].w, items: a[i].items})
			i++
			j++
		case c < 0:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
