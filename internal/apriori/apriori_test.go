package apriori

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/naive"
	"repro/internal/result"
)

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

func bruteAllFrequent(db *dataset.Database, minsup int) *result.Set {
	var out result.Set
	items := make(itemset.Set, 0, db.Items)
	for mask := 1; mask < 1<<uint(db.Items); mask++ {
		items = items[:0]
		for i := 0; i < db.Items; i++ {
			if mask&(1<<uint(i)) != 0 {
				items = append(items, itemset.Item(i))
			}
		}
		if supp := result.Support(db, items); supp >= minsup {
			out.Add(items, supp)
		}
	}
	return &out
}

func TestAllMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 60; trial++ {
		items := 2 + rng.Intn(7)
		n := 1 + rng.Intn(10)
		db := randDB(rng, items, n, 0.2+rng.Float64()*0.5)
		for _, minsup := range []int{1, 2} {
			want := bruteAllFrequent(db, minsup)
			var got result.Set
			if err := Mine(db, Options{MinSupport: minsup, Target: All}, got.Collect()); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("apriori(all) mismatch (minsup=%d db=%v):\n%s", minsup, db.Trans, got.Diff(want, 10))
			}
		}
	}
}

func TestMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	for trial := 0; trial < 40; trial++ {
		db := randDB(rng, 2+rng.Intn(7), 1+rng.Intn(10), 0.2+rng.Float64()*0.5)
		minsup := 1 + rng.Intn(3)
		closed, err := naive.ClosedByTransactionSubsets(db, minsup)
		if err != nil {
			t.Fatal(err)
		}
		want := result.FilterMaximal(closed)
		var got result.Set
		if err := Mine(db, Options{MinSupport: minsup, Target: Maximal}, got.Collect()); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("apriori(maximal) mismatch (minsup=%d db=%v):\n%s", minsup, db.Trans, got.Diff(want, 10))
		}
	}
}

func TestEdgeCasesAndCancel(t *testing.T) {
	var got result.Set
	if err := Mine(&dataset.Database{Items: 2}, Options{MinSupport: 1}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty db")
	}

	bad := &dataset.Database{Items: 1, Trans: []itemset.Set{{3}}}
	if err := Mine(bad, Options{MinSupport: 1}, &result.Counter{}); err == nil {
		t.Fatal("expected validation error")
	}

	done := make(chan struct{})
	close(done)
	db := randDB(rand.New(rand.NewSource(13)), 30, 60, 0.5)
	err := Mine(db, Options{MinSupport: 2, Done: done}, &result.Counter{})
	if err != mining.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestHelpers(t *testing.T) {
	if !samePrefix(itemset.FromInts(1, 2, 5), itemset.FromInts(1, 2, 7)) {
		t.Error("samePrefix false negative")
	}
	if samePrefix(itemset.FromInts(1, 3, 5), itemset.FromInts(1, 2, 7)) {
		t.Error("samePrefix false positive")
	}
	if samePrefix(itemset.FromInts(1), itemset.FromInts(1, 2)) {
		t.Error("different lengths never share a join prefix")
	}

	freq := map[string]bool{
		itemset.FromInts(1, 2).Key(): true,
		itemset.FromInts(1, 3).Key(): true,
		itemset.FromInts(2, 3).Key(): true,
	}
	if !allSubsetsFrequent(itemset.FromInts(1, 2, 3), freq) {
		t.Error("all subsets are frequent")
	}
	delete(freq, itemset.FromInts(2, 3).Key())
	if allSubsetsFrequent(itemset.FromInts(1, 2, 3), freq) {
		t.Error("missing subset must fail the prune")
	}
	if !allSubsetsFrequent(itemset.FromInts(1, 2), freq) {
		t.Error("pairs always pass")
	}
}
