// Package apriori implements the classic level-wise Apriori algorithm
// (Agrawal & Srikant), included as the textbook enumeration baseline the
// paper's §1/§2 discussion starts from. Candidates of size k+1 are joined
// from frequent sets of size k, pruned by the apriori property, and
// counted against the horizontal database. Closed and maximal targets are
// derived from the full frequent collection by post-filtering, which is
// exactly how the original algorithm family would be used for those
// tasks.
package apriori

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/txdb"
)

// Target selects what Mine reports.
//
// Deprecated: Target and its constants are aliases for the shared
// engine.Target; the zero value is Closed (it used to be All).
type Target = engine.Target

const (
	// All reports every frequent item set.
	All = engine.All
	// Closed reports the closed frequent item sets.
	Closed = engine.Closed
	// Maximal reports the maximal frequent item sets.
	Maximal = engine.Maximal
)

// Options configures the miner.
type Options struct {
	// MinSupport is the absolute minimum support; values < 1 act as 1.
	MinSupport int
	// Target selects closed (default), all, or maximal sets.
	Target Target
	// Done optionally cancels the run.
	Done <-chan struct{}
	// Guard optionally bounds the run (deadline and pattern budget). May
	// be nil.
	Guard *guard.Guard
}

// Mine runs Apriori on db, reporting patterns in original item codes.
func Mine(db txdb.Source, opts Options, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	ctl := mining.Guarded(opts.Done, opts.Guard)
	pre := prep.Prepare(db, minsup, prep.Config{Items: prep.OrderKeep, Trans: prep.OrderOriginal})
	return minePrepared(pre, minsup, opts.Target, ctl, rep)
}

// minePrepared is the level-wise search on an already preprocessed
// database.
func minePrepared(pre *prep.Prepared, minsup int, target Target, ctl *mining.Control, rep result.Reporter) error {
	pdb := pre.DB
	if pdb.NumItems() == 0 {
		return nil
	}

	// Precompute a bit set per row for O(k) candidate counting; weighted
	// rows keep their multiplicity next to the bits.
	n := pdb.NumTx()
	bits := make([]*itemset.BitSet, n)
	rowW := make([]int, n)
	for k := 0; k < n; k++ {
		b := itemset.NewBitSet(pdb.NumItems())
		b.SetAll(pdb.Tx(k))
		bits[k] = b
		rowW[k] = pdb.Weight(k)
	}

	var out func(items itemset.Set, supp int)
	var filter *result.SubsumeFilter
	switch target {
	case All:
		out = func(items itemset.Set, supp int) {
			rep.Report(pre.DecodeSet(items), supp)
		}
	case Closed, Maximal:
		// Collect closure candidates; every closed set is frequent and
		// maximal in its support group among all frequent sets.
		filter = result.NewSubsumeFilter()
		out = func(items itemset.Set, supp int) {
			filter.Add(items, supp)
		}
	}

	// Level 1.
	type entry struct {
		items itemset.Set
		supp  int
	}
	var level []entry
	for i := 0; i < pdb.NumItems(); i++ {
		// Preprocessing removed infrequent items, so every remaining item
		// is frequent by construction.
		level = append(level, entry{items: itemset.Set{itemset.Item(i)}, supp: pre.Freq[i]})
		out(itemset.Set{itemset.Item(i)}, pre.Freq[i])
	}

	for len(level) > 0 {
		// Join step: combine sets sharing the first k-1 items.
		sort.Slice(level, func(a, b int) bool {
			return itemset.CompareLex(level[a].items, level[b].items) < 0
		})
		frequentKeys := make(map[string]bool, len(level))
		for _, e := range level {
			frequentKeys[e.items.Key()] = true
		}
		var nextLevel []entry
		for a := 0; a < len(level); a++ {
			base := level[a].items
			for b := a + 1; b < len(level); b++ {
				other := level[b].items
				if !samePrefix(base, other) {
					break // sorted: no later set shares the prefix either
				}
				if err := ctl.Tick(); err != nil {
					return err
				}
				ctl.CountOps(1) // one candidate join/count attempt
				cand := base.WithItem(other[len(other)-1])
				// Prune step: every k-subset must be frequent.
				if !allSubsetsFrequent(cand, frequentKeys) {
					continue
				}
				supp := 0
				for k, bset := range bits {
					if bset.ContainsSet(cand) {
						supp += rowW[k]
					}
				}
				if supp >= minsup {
					nextLevel = append(nextLevel, entry{items: cand, supp: supp})
					out(cand, supp)
				}
			}
		}
		level = nextLevel
	}

	switch target {
	case Closed:
		var closed result.Set
		filter.Emit(closed.Collect())
		closed.Sort()
		for _, p := range closed.Patterns {
			rep.Report(pre.DecodeSet(p.Items), p.Support)
		}
	case Maximal:
		var closed result.Set
		filter.Emit(closed.Collect())
		maximal := result.FilterMaximal(&closed)
		for _, p := range maximal.Patterns {
			rep.Report(pre.DecodeSet(p.Items), p.Support)
		}
	}
	return nil
}

// samePrefix reports whether a and b (equal length, canonical) agree on
// all but the last item.
func samePrefix(a, b itemset.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent checks the apriori prune: every subset of cand with
// one item removed must be frequent.
func allSubsetsFrequent(cand itemset.Set, frequent map[string]bool) bool {
	if len(cand) <= 2 {
		return true // both 1-subsets are frequent items by construction
	}
	sub := make(itemset.Set, len(cand)-1)
	for drop := range cand {
		copy(sub, cand[:drop])
		copy(sub[drop:], cand[drop+1:])
		if !frequent[sub.Key()] {
			return false
		}
	}
	return true
}
