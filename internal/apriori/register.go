package apriori

import (
	"repro/internal/engine"
	"repro/internal/prep"
	"repro/internal/result"
)

func init() {
	engine.Register(engine.Registration{
		Name:    "apriori",
		Doc:     "classic level-wise candidate generation; closed/maximal via post-filter (Agrawal & Srikant)",
		Targets: []engine.Target{engine.Closed, engine.All, engine.Maximal},
		Prep:    prep.Config{Items: prep.OrderKeep, Trans: prep.OrderOriginal},
		Order:   100,
		Mine: func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
			return minePrepared(pre, spec.MinSupport, spec.Target, spec.Control(), rep)
		},
	})
}
