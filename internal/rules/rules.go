// Package rules induces association rules from a set of closed frequent
// item sets — the application that motivated frequent item set mining in
// the first place (§1/§2.1 of the paper). Closed sets are sufficient for
// this: the support of an arbitrary item set is the maximum support of the
// closed sets containing it (§2.3), which this package answers with a
// support index over the closed collection.
package rules

import (
	"fmt"
	"sort"

	"repro/internal/itemset"
	"repro/internal/result"
)

// Rule is an association rule "Antecedent → Consequent".
type Rule struct {
	Antecedent itemset.Set
	Consequent itemset.Set
	// Support is the absolute support of Antecedent ∪ Consequent.
	Support int
	// Confidence = supp(A ∪ C) / supp(A).
	Confidence float64
	// Lift = Confidence / (supp(C) / totalTransactions).
	Lift float64
}

func (r Rule) String() string {
	return fmt.Sprintf("%s -> %s (supp=%d conf=%.3f lift=%.3f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// Index answers support queries for arbitrary item sets from a closed-set
// collection.
type Index struct {
	patterns []result.Pattern
	byItem   map[itemset.Item][]int // closed sets containing each item
	total    int                    // number of transactions in the database
}

// NewIndex builds a support index over closed frequent patterns mined at
// some minimum support; total is the transaction count of the database.
func NewIndex(closed *result.Set, total int) *Index {
	idx := &Index{
		patterns: closed.Patterns,
		byItem:   make(map[itemset.Item][]int),
		total:    total,
	}
	for i, p := range closed.Patterns {
		for _, it := range p.Items {
			idx.byItem[it] = append(idx.byItem[it], i)
		}
	}
	return idx
}

// Total returns the transaction count the index was built with.
func (idx *Index) Total() int { return idx.total }

// Support returns the support of items: the maximum support of any closed
// superset (§2.3). The second return value is false if no closed superset
// exists, meaning the set's support is below the mining threshold (its
// exact value is unknown from the closed collection alone). The empty set
// has support Total.
func (idx *Index) Support(items itemset.Set) (int, bool) {
	if len(items) == 0 {
		return idx.total, true
	}
	// Scan the candidate list of the rarest item.
	var cands []int
	first := true
	for _, it := range items {
		l := idx.byItem[it]
		if first || len(l) < len(cands) {
			cands = l
			first = false
		}
	}
	best, ok := 0, false
	for _, i := range cands {
		p := idx.patterns[i]
		if p.Support > best && items.SubsetOf(p.Items) {
			best = p.Support
			ok = true
		}
	}
	return best, ok
}

// Options configures rule induction.
type Options struct {
	// MinConfidence filters rules below this confidence.
	MinConfidence float64
	// MinLift, if > 0, additionally requires at least this lift.
	MinLift float64
	// MaxConsequentItems limits consequent size; 0 means single-item
	// consequents (the classic and by far the most common setting).
	MaxConsequentItems int
}

// FromClosed generates association rules from the closed frequent item
// sets: for every closed set Z and every split of Z into antecedent A and
// a consequent C of bounded size, the rule A → C is emitted if its
// confidence (and lift, if requested) passes the thresholds. Rules are
// returned sorted by descending confidence, then descending support.
func FromClosed(closed *result.Set, total int, opts Options) []Rule {
	idx := NewIndex(closed, total)
	maxCons := opts.MaxConsequentItems
	if maxCons < 1 {
		maxCons = 1
	}
	var out []Rule
	for _, p := range closed.Patterns {
		if len(p.Items) < 2 {
			continue
		}
		emitSplits(idx, p, maxCons, opts, &out)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if c := itemset.Compare(out[i].Antecedent, out[j].Antecedent); c != 0 {
			return c < 0
		}
		return itemset.Compare(out[i].Consequent, out[j].Consequent) < 0
	})
	return out
}

func emitSplits(idx *Index, p result.Pattern, maxCons int, opts Options, out *[]Rule) {
	n := len(p.Items)
	// Enumerate consequents of size 1..maxCons (bounded: rule induction
	// with single-item consequents is linear in the set size).
	var rec func(start int, cons itemset.Set)
	rec = func(start int, cons itemset.Set) {
		if len(cons) > 0 {
			ante := p.Items.Minus(cons)
			if len(ante) > 0 {
				anteSupp, ok := idx.Support(ante)
				if ok && anteSupp > 0 {
					conf := float64(p.Support) / float64(anteSupp)
					if conf >= opts.MinConfidence {
						lift := 0.0
						if consSupp, ok2 := idx.Support(cons); ok2 && consSupp > 0 && idx.total > 0 {
							lift = conf / (float64(consSupp) / float64(idx.total))
						}
						if opts.MinLift <= 0 || lift >= opts.MinLift {
							*out = append(*out, Rule{
								Antecedent: ante,
								Consequent: cons.Clone(),
								Support:    p.Support,
								Confidence: conf,
								Lift:       lift,
							})
						}
					}
				}
			}
		}
		if len(cons) == maxCons {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cons, p.Items[i]))
		}
	}
	rec(0, nil)
}
