package rules

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/naive"
	"repro/internal/result"
)

func paperDB() *dataset.Database {
	return dataset.FromInts(
		[]int{0, 1, 2},
		[]int{0, 3, 4},
		[]int{1, 2, 3},
		[]int{0, 1, 2, 3},
		[]int{1, 2},
		[]int{0, 1, 3},
		[]int{3, 4},
		[]int{2, 3, 4},
	)
}

func closedSet(t *testing.T, db *dataset.Database, minsup int) *result.Set {
	t.Helper()
	s, err := naive.ClosedByTransactionSubsets(db, minsup)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIndexSupport(t *testing.T) {
	db := paperDB()
	closed := closedSet(t, db, 1)
	idx := NewIndex(closed, len(db.Trans))
	rng := rand.New(rand.NewSource(71))
	// For every item set with non-zero support, the index must return the
	// exact support (closed sets preserve all support information at
	// minsup 1).
	for trial := 0; trial < 300; trial++ {
		var items itemset.Set
		for i := 0; i < 5; i++ {
			if rng.Intn(2) == 0 {
				items = append(items, itemset.Item(i))
			}
		}
		items = itemset.New(items...)
		want := result.Support(db, items)
		got, ok := idx.Support(items)
		if want == 0 {
			if ok {
				t.Fatalf("Support(%v) = %d, want absent", items, got)
			}
			continue
		}
		if !ok || got != want {
			t.Fatalf("Support(%v) = %d/%v, want %d", items, got, ok, want)
		}
	}
	if got, _ := idx.Support(nil); got != 8 {
		t.Fatalf("empty set support = %d", got)
	}
	if idx.Total() != 8 {
		t.Fatalf("Total = %d", idx.Total())
	}
}

func TestFromClosedConfidences(t *testing.T) {
	db := paperDB()
	closed := closedSet(t, db, 1)
	rulesOut := FromClosed(closed, len(db.Trans), Options{MinConfidence: 0.0})
	if len(rulesOut) == 0 {
		t.Fatal("no rules generated")
	}
	// Every rule's numbers must match direct computation.
	for _, r := range rulesOut {
		union := r.Antecedent.Union(r.Consequent)
		supp := result.Support(db, union)
		if supp != r.Support {
			t.Fatalf("rule %v: support %d, want %d", r, r.Support, supp)
		}
		anteSupp := result.Support(db, r.Antecedent)
		wantConf := float64(supp) / float64(anteSupp)
		if math.Abs(wantConf-r.Confidence) > 1e-9 {
			t.Fatalf("rule %v: confidence %f, want %f", r, r.Confidence, wantConf)
		}
		consSupp := result.Support(db, r.Consequent)
		wantLift := wantConf / (float64(consSupp) / 8.0)
		if math.Abs(wantLift-r.Lift) > 1e-9 {
			t.Fatalf("rule %v: lift %f, want %f", r, r.Lift, wantLift)
		}
	}
	// Sorted by descending confidence.
	for i := 1; i < len(rulesOut); i++ {
		if rulesOut[i].Confidence > rulesOut[i-1].Confidence+1e-12 {
			t.Fatal("rules not sorted by confidence")
		}
	}
}

func TestMinConfidenceFilter(t *testing.T) {
	db := paperDB()
	closed := closedSet(t, db, 1)
	all := FromClosed(closed, len(db.Trans), Options{MinConfidence: 0})
	strict := FromClosed(closed, len(db.Trans), Options{MinConfidence: 0.9})
	if len(strict) >= len(all) {
		t.Fatal("confidence filter should remove rules")
	}
	for _, r := range strict {
		if r.Confidence < 0.9 {
			t.Fatalf("rule %v below threshold", r)
		}
	}
	// {d,e} is closed with support 3; {e} has support 3, so e → d has
	// confidence 1.
	foundED := false
	for _, r := range strict {
		if r.Antecedent.Equal(itemset.FromInts(4)) && r.Consequent.Equal(itemset.FromInts(3)) {
			foundED = true
			if r.Confidence != 1.0 || r.Support != 3 {
				t.Fatalf("e→d rule wrong: %v", r)
			}
		}
	}
	if !foundED {
		t.Fatal("expected rule e → d with confidence 1")
	}
}

func TestMinLiftFilter(t *testing.T) {
	db := paperDB()
	closed := closedSet(t, db, 1)
	lifted := FromClosed(closed, len(db.Trans), Options{MinConfidence: 0, MinLift: 1.2})
	for _, r := range lifted {
		if r.Lift < 1.2 {
			t.Fatalf("rule %v below lift threshold", r)
		}
	}
}

func TestMultiItemConsequents(t *testing.T) {
	db := paperDB()
	closed := closedSet(t, db, 1)
	single := FromClosed(closed, len(db.Trans), Options{MinConfidence: 0})
	multi := FromClosed(closed, len(db.Trans), Options{MinConfidence: 0, MaxConsequentItems: 2})
	if len(multi) <= len(single) {
		t.Fatal("two-item consequents should add rules")
	}
	hasTwo := false
	for _, r := range multi {
		if len(r.Consequent) == 2 {
			hasTwo = true
			if len(r.Antecedent) == 0 {
				t.Fatal("empty antecedent emitted")
			}
		}
	}
	if !hasTwo {
		t.Fatal("no two-item consequent generated")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: itemset.FromInts(1),
		Consequent: itemset.FromInts(2),
		Support:    3, Confidence: 0.75, Lift: 1.5,
	}
	if r.String() != "{1} -> {2} (supp=3 conf=0.750 lift=1.500)" {
		t.Fatalf("String = %q", r.String())
	}
}
