package gendata

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixCSV parses a gene expression matrix from CSV/TSV text: one row
// per gene, one numeric column per condition (comma, semicolon, tab or
// whitespace separated). A first column or first row of non-numeric labels
// is skipped, so typical expression exports load directly. The returned
// matrix feeds Discretize, completing the §4 pipeline of the paper for
// real data.
func ReadMatrixCSV(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var rows [][]float64
	width := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := splitCSV(text)
		// Drop a leading label column.
		if len(fields) > 0 {
			if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
				fields = fields[1:]
			}
		}
		vals := make([]float64, 0, len(fields))
		numeric := true
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				numeric = false
				break
			}
			vals = append(vals, v)
		}
		if !numeric {
			// A fully non-numeric row is a header; it is only acceptable
			// before any data row.
			if len(rows) == 0 {
				continue
			}
			return nil, fmt.Errorf("gendata: line %d: non-numeric value in matrix body", line)
		}
		if len(vals) == 0 {
			continue
		}
		if width == -1 {
			width = len(vals)
		} else if len(vals) != width {
			return nil, fmt.Errorf("gendata: line %d has %d values, expected %d", line, len(vals), width)
		}
		rows = append(rows, vals)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gendata: read matrix: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("gendata: empty matrix")
	}
	m := &Matrix{Genes: len(rows), Conditions: width, v: make([]float64, len(rows)*width)}
	for g, row := range rows {
		copy(m.v[g*width:], row)
	}
	return m, nil
}

// WriteMatrixCSV renders the matrix as comma-separated values, one gene
// per row.
func WriteMatrixCSV(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	for g := 0; g < m.Genes; g++ {
		for c := 0; c < m.Conditions; c++ {
			if c > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(m.At(g, c), 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func splitCSV(line string) []string {
	sep := func(r rune) bool { return r == ',' || r == ';' || r == '\t' || r == ' ' }
	return strings.FieldsFunc(line, sep)
}
