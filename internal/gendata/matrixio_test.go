package gendata

import (
	"math"
	"strings"
	"testing"
)

func TestReadMatrixCSVPlain(t *testing.T) {
	in := "0.5,-0.3,0.1\n-0.2,0.4,0\n"
	m, err := ReadMatrixCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Genes != 2 || m.Conditions != 3 {
		t.Fatalf("shape %d×%d", m.Genes, m.Conditions)
	}
	if m.At(0, 1) != -0.3 || m.At(1, 2) != 0 {
		t.Fatalf("values wrong: %v %v", m.At(0, 1), m.At(1, 2))
	}
}

func TestReadMatrixCSVWithLabels(t *testing.T) {
	in := strings.Join([]string{
		"gene\tcond1\tcond2", // header row
		"YAL001C\t0.25\t-0.31",
		"YAL002W\t-0.05\t0.44",
		"# a comment",
		"",
		"YAL003W\t0.01\t0.02",
	}, "\n")
	m, err := ReadMatrixCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Genes != 3 || m.Conditions != 2 {
		t.Fatalf("shape %d×%d", m.Genes, m.Conditions)
	}
	if m.At(0, 0) != 0.25 || m.At(2, 1) != 0.02 {
		t.Fatal("label column not skipped correctly")
	}
}

func TestReadMatrixCSVErrors(t *testing.T) {
	if _, err := ReadMatrixCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadMatrixCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := ReadMatrixCSV(strings.NewReader("1,2\n3,abc\n")); err == nil {
		t.Error("non-numeric body should fail")
	}
}

func TestMatrixCSVRoundTrip(t *testing.T) {
	m := Expression(ExpressionConfig{
		Genes: 25, Conditions: 12, Modules: 2,
		ModuleGeneFrac: 0.5, ModuleCondFrac: 0.4,
		Effect: 0.5, Noise: 0.15, Seed: 77,
	})
	var sb strings.Builder
	if err := WriteMatrixCSV(&sb, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Genes != m.Genes || back.Conditions != m.Conditions {
		t.Fatalf("shape changed: %d×%d", back.Genes, back.Conditions)
	}
	for g := 0; g < m.Genes; g++ {
		for c := 0; c < m.Conditions; c++ {
			if math.Abs(back.At(g, c)-m.At(g, c)) > 1e-12 {
				t.Fatalf("value (%d,%d) changed: %v vs %v", g, c, back.At(g, c), m.At(g, c))
			}
		}
	}
	// The round-tripped matrix must discretize identically.
	a := Discretize(m, 0.2, 0.2, ConditionsAsTransactions)
	b := Discretize(back, 0.2, 0.2, ConditionsAsTransactions)
	for k := 0; k < a.NumTx(); k++ {
		if !a.Tx(k).Equal(b.Tx(k)) {
			t.Fatalf("row %d differs after round trip", k)
		}
	}
}
