// Package gendata generates the synthetic workloads that stand in for the
// paper's four evaluation data sets (baker's yeast compendium, NCBI60,
// thrombin, transposed BMS-WebView-1), which are not redistributable. Each
// generator is deterministic given its seed and is shaped to the regime
// that drives the paper's results: few transactions, very many items, with
// co-occurrence structure that makes the number of closed sets explode as
// the minimum support drops. See DESIGN.md §3 for the substitution
// rationale.
package gendata

import (
	"math"
	"math/rand"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// ExpressionConfig describes a synthetic gene expression experiment: a
// genes × conditions matrix of log expression ratios with co-regulated
// gene modules responding to groups of conditions, over Gaussian
// background noise. This mirrors the structure of compendium data such as
// Hughes et al. (the paper's yeast data set).
type ExpressionConfig struct {
	Genes      int
	Conditions int
	// Modules is the number of co-regulated gene modules.
	Modules int
	// ModuleGeneFrac is the fraction of genes assigned to modules.
	ModuleGeneFrac float64
	// ModuleCondFrac is the fraction of conditions a module responds to.
	ModuleCondFrac float64
	// Effect is the mean absolute log-ratio shift of a responding
	// module gene (sign chosen per module×condition).
	Effect float64
	// Noise is the standard deviation of the background log ratios.
	Noise float64
	// ResponseProb is the probability that a module gene responds to a
	// given module condition (0 defaults to 0.85). High values make the
	// module items frequent in almost every responding condition.
	ResponseProb float64
	// DirectionPerGene makes each module gene shift in one consistent
	// direction across all module conditions (instead of a random
	// direction per condition): the resulting items become frequent
	// across most transactions, the regime of the NCBI60 sweep.
	DirectionPerGene bool
	Seed             int64
}

// Matrix is a dense genes × conditions matrix of log expression ratios.
type Matrix struct {
	Genes      int
	Conditions int
	v          []float64 // row-major: gene * Conditions + condition
}

// At returns the log ratio of gene g under condition c.
func (m *Matrix) At(g, c int) float64 { return m.v[g*m.Conditions+c] }

// Expression generates the synthetic expression matrix.
func Expression(cfg ExpressionConfig) *Matrix {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Matrix{
		Genes:      cfg.Genes,
		Conditions: cfg.Conditions,
		v:          make([]float64, cfg.Genes*cfg.Conditions),
	}
	// Background noise.
	for i := range m.v {
		m.v[i] = rng.NormFloat64() * cfg.Noise
	}
	if cfg.Modules <= 0 {
		return m
	}
	moduleGenes := int(float64(cfg.Genes) * cfg.ModuleGeneFrac)
	perModule := moduleGenes / cfg.Modules
	if perModule == 0 {
		perModule = 1
	}
	respond := cfg.ResponseProb
	if respond == 0 {
		respond = 0.85
	}
	gene := 0
	for mod := 0; mod < cfg.Modules && gene < cfg.Genes; mod++ {
		// Conditions this module responds to, with a per-(module,
		// condition) direction so both over- and under-expression items
		// appear.
		nCond := int(float64(cfg.Conditions) * cfg.ModuleCondFrac)
		if nCond < 1 {
			nCond = 1
		}
		conds := rng.Perm(cfg.Conditions)[:nCond]
		dirs := make([]float64, nCond)
		for i := range dirs {
			if rng.Intn(2) == 0 {
				dirs[i] = 1
			} else {
				dirs[i] = -1
			}
		}
		for g := 0; g < perModule && gene < cfg.Genes; g++ {
			geneDir := dirs[rng.Intn(len(dirs))]
			for i, c := range conds {
				// Each module gene responds to most (not all) module
				// conditions, so intersections of condition sets vary.
				if rng.Float64() < respond {
					dir := dirs[i]
					if cfg.DirectionPerGene {
						dir = geneDir
					}
					m.v[gene*cfg.Conditions+c] += dir * cfg.Effect * (0.7 + 0.6*rng.Float64())
				}
			}
			gene++
		}
	}
	return m
}

// Orientation selects how a discretized expression matrix becomes a
// transaction database (§4 of the paper discusses both).
type Orientation int

const (
	// GenesAsTransactions: one transaction per gene, items are
	// (condition, polarity) pairs — many transactions, few items.
	GenesAsTransactions Orientation = iota
	// ConditionsAsTransactions: one transaction per condition, items are
	// (gene, polarity) pairs — few transactions, very many items. This is
	// the regime the intersection algorithms target.
	ConditionsAsTransactions
)

// Discretize converts the matrix into a Boolean transaction database using
// the paper's thresholds: values > hi are "over-expressed", values < -lo
// are "under-expressed" (the paper uses hi = lo = 0.2), everything in
// between is neither. Item code 2*x encodes "x over-expressed" and 2*x+1
// encodes "x under-expressed", where x is a condition or a gene depending
// on the orientation.
func Discretize(m *Matrix, hi, lo float64, orient Orientation) *txdb.DB {
	// Rows are emitted straight into the flat columns; the item codes 2*x
	// and 2*x+1 are generated in ascending x order, so every row is
	// canonical as produced and needs no per-row sort or copy.
	row := make(itemset.Set, 0, 64)
	if orient == GenesAsTransactions {
		b := txdb.NewBuilder(m.Genes, 0)
		b.SetNumItems(2 * m.Conditions)
		for g := 0; g < m.Genes; g++ {
			row = row[:0]
			for c := 0; c < m.Conditions; c++ {
				switch v := m.At(g, c); {
				case v > hi:
					row = append(row, itemset.Item(2*c))
				case v < -lo:
					row = append(row, itemset.Item(2*c+1))
				}
			}
			b.AddSet(row)
		}
		return b.Build()
	}
	b := txdb.NewBuilder(m.Conditions, 0)
	b.SetNumItems(2 * m.Genes)
	for c := 0; c < m.Conditions; c++ {
		row = row[:0]
		for g := 0; g < m.Genes; g++ {
			switch v := m.At(g, c); {
			case v > hi:
				row = append(row, itemset.Item(2*g))
			case v < -lo:
				row = append(row, itemset.Item(2*g+1))
			}
		}
		b.AddSet(row)
	}
	return b.Build()
}

// Yeast builds the stand-in for the baker's yeast compendium in the mined
// orientation of Figure 5: few transactions (conditions), very many items
// (gene/polarity pairs). scale ≈ 1 gives roughly the paper's shape
// (300 × ~12000); the bench harness uses a smaller scale by default.
func Yeast(scale float64, seed int64) *txdb.DB {
	// Genes scale linearly, conditions (= transactions) with the square
	// root, so that scaled-down workloads keep a realistic transaction
	// count (the paper's regime depends on n more than on |B|).
	genes := int(6316 * scale)
	conds := int(300 * math.Sqrt(scale))
	if conds < 8 {
		conds = 8
	}
	if genes < 50 {
		genes = 50
	}
	m := Expression(ExpressionConfig{
		Genes:          genes,
		Conditions:     conds,
		Modules:        18,
		ModuleGeneFrac: 0.65,
		ModuleCondFrac: 0.28,
		Effect:         0.45,
		Noise:          0.16,
		Seed:           seed,
	})
	return Discretize(m, 0.2, 0.2, ConditionsAsTransactions)
}

// NCBI60 builds the stand-in for the NCBI60 cancer cell line data set of
// Figure 6: ~60 transactions with dense common structure, mined at
// supports close to the transaction count.
func NCBI60(scale float64, seed int64) *txdb.DB {
	genes := int(4000 * scale)
	if genes < 50 {
		genes = 50
	}
	m := Expression(ExpressionConfig{
		Genes:            genes,
		Conditions:       60,
		Modules:          10,
		ModuleGeneFrac:   0.8,
		ModuleCondFrac:   0.97, // broad modules: items frequent in most lines
		Effect:           0.5,
		Noise:            0.22,
		ResponseProb:     0.92,
		DirectionPerGene: true,
		Seed:             seed,
	})
	return Discretize(m, 0.2, 0.2, ConditionsAsTransactions)
}

// Thrombin builds the stand-in for the KDD Cup 2001 thrombin subset of
// Figure 7: 64 transactions over a very wide sparse binary feature space
// with correlated feature blocks. scale ≈ 1 gives 139,351 features like
// the paper; the default bench scale is much smaller.
func Thrombin(scale float64, seed int64) *txdb.DB {
	features := int(139351 * scale)
	if features < 200 {
		features = 200
	}
	const n = 64
	rng := rand.New(rand.NewSource(seed))

	// 30% of the features form blocks of ~40 that co-activate; block
	// activity is drawn from a mixture so that feature frequencies span
	// the support range of the Figure 7 sweep (some features occur in
	// most molecules, some in few). When a block is active, each of its
	// features is present with probability 0.85. The remaining features
	// are independent sparse noise (the vast majority of the 139,351
	// thrombin features are rare).
	blockFeatures := features * 30 / 100
	blockSize := 40
	nBlocks := blockFeatures / blockSize
	activity := make([]float64, nBlocks)
	for b := range activity {
		switch rng.Intn(10) {
		case 0:
			activity[b] = 0.80
		case 1, 2:
			activity[b] = 0.60
		case 3, 4, 5:
			activity[b] = 0.40
		default:
			activity[b] = 0.20
		}
	}
	out := txdb.NewBuilder(n, 0)
	out.SetNumItems(features)
	row := make(itemset.Set, 0, 1024)
	for k := 0; k < n; k++ {
		// Feature codes are generated in ascending order, so the row is
		// canonical as produced and goes straight into the flat columns.
		row = row[:0]
		f := 0
		for b := 0; b < nBlocks; b++ {
			active := rng.Float64() < activity[b]
			for j := 0; j < blockSize; j++ {
				if active && rng.Float64() < 0.85 {
					row = append(row, itemset.Item(f))
				}
				f++
			}
		}
		for ; f < features; f++ {
			if rng.Float64() < 0.004 {
				row = append(row, itemset.Item(f))
			}
		}
		out.AddSet(row)
	}
	return out.Build()
}

// WebView builds the stand-in for the transposed BMS-WebView-1 data set of
// Figure 8: a power-law clickstream (many short transactions over few
// pages) transposed so that pages become the transactions and the many
// original transactions become items. scale ≈ 1 approximates the paper's
// 497 × 59,602 shape.
func WebView(scale float64, seed int64) *txdb.DB {
	// Pages (= transactions after transposition) scale with the square
	// root so scaled-down workloads keep a realistic transaction count.
	pages := int(497 * math.Sqrt(scale))
	clicks := int(59602 * scale)
	if pages < 30 {
		pages = 30
	}
	if clicks < 500 {
		clicks = 500
	}
	rng := rand.New(rand.NewSource(seed))

	// Mixture of browsing behaviours, as in real click streams:
	// mostly short Zipf-popularity sessions (the BMS-WebView-1 average
	// session length is ≈ 2.5), plus a heavy tail of long sessions that
	// browse within a "topic" — a pool of related pages. After
	// transposition the long topic sessions are the frequent items, and
	// their varied page subsets give the rich lattice of intersections
	// that makes the closed-set count explode at low support.
	zipf := rand.NewZipf(rng, 1.25, 4, uint64(pages-1))
	nTopics := pages / 25
	if nTopics < 1 {
		nTopics = 1
	}
	topics := make([][]int, nTopics)
	for i := range topics {
		pool := rng.Perm(pages)[:30]
		topics[i] = pool
	}
	b := txdb.NewBuilder(clicks, 3*clicks)
	b.SetNumItems(pages)
	row := make(itemset.Set, 0, 32)
	for k := 0; k < clicks; k++ {
		// Sessions sample pages with repetition and out of order; AddRow
		// canonicalizes the row in place inside the flat columns (this
		// replaces the per-row itemset.New sort-and-dedup allocation).
		row = row[:0]
		if rng.Float64() < 0.25 {
			// Topic session with a heavy-tailed length.
			topic := topics[rng.Intn(nTopics)]
			length := 4 + rng.Intn(14)
			if rng.Float64() < 0.2 {
				length += rng.Intn(12)
			}
			for j := 0; j < length; j++ {
				row = append(row, itemset.Item(topic[rng.Intn(len(topic))]))
			}
		} else {
			length := 1
			for rng.Float64() < 0.55 && length < 12 {
				length++
			}
			for j := 0; j < length; j++ {
				row = append(row, itemset.Item(int(zipf.Uint64())))
			}
		}
		b.AddRow(row)
	}
	return b.Build().Transpose()
}

// QuestConfig parameterises the market-basket generator in the spirit of
// the IBM Quest synthetic data generator (used by the classic FIMI
// benchmarks the paper contrasts with: many transactions, few items).
type QuestConfig struct {
	Items        int
	Transactions int
	// AvgLen is the average transaction length.
	AvgLen int
	// Patterns is the number of potentially frequent base patterns.
	Patterns int
	// AvgPatternLen is the average base pattern length.
	AvgPatternLen int
	// Bundles adds that many product bundles: ordered item pairs (a, b)
	// where b is always bought together with a. Bundles make some
	// frequent sets non-closed (any set containing a but not b has a
	// perfect extension), which is what separates "all" from "closed"
	// output on basket data.
	Bundles int
	Seed    int64
}

// Quest generates a market-basket style database: transactions are built
// from randomly chosen, partially corrupted base patterns.
func Quest(cfg QuestConfig) *txdb.DB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Patterns < 1 {
		cfg.Patterns = 1
	}
	patterns := make([]itemset.Set, cfg.Patterns)
	for i := range patterns {
		ln := 1 + rng.Intn(2*cfg.AvgPatternLen)
		var p itemset.Set
		for j := 0; j < ln; j++ {
			p = append(p, itemset.Item(rng.Intn(cfg.Items)))
		}
		patterns[i] = itemset.New(p...)
	}
	// Pattern popularity is skewed, as in Quest.
	weights := make([]float64, cfg.Patterns)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(rng.Float64(), 2)
		total += weights[i]
	}

	pick := func() itemset.Set {
		r := rng.Float64() * total
		for i, w := range weights {
			if r -= w; r <= 0 {
				return patterns[i]
			}
		}
		return patterns[len(patterns)-1]
	}

	// Bundle map: bundle[a] = b means b accompanies a in every basket.
	bundle := make(map[itemset.Item]itemset.Item)
	for i := 0; i < cfg.Bundles; i++ {
		a := itemset.Item(rng.Intn(cfg.Items))
		b := itemset.Item(rng.Intn(cfg.Items))
		if a != b {
			bundle[a] = b
		}
	}

	out := txdb.NewBuilder(cfg.Transactions, cfg.Transactions*cfg.AvgLen)
	out.SetNumItems(cfg.Items)
	row := make(itemset.Set, 0, 32)
	for k := 0; k < cfg.Transactions; k++ {
		// Patterns overlap and bundles append out of order; AddRow
		// canonicalizes the row in place inside the flat columns (this
		// replaces the per-row itemset.New sort-and-dedup allocation).
		row = row[:0]
		for len(row) < cfg.AvgLen {
			p := pick()
			for _, it := range p {
				// Corruption: drop pattern items occasionally.
				if rng.Float64() < 0.85 {
					row = append(row, it)
				}
			}
			if rng.Float64() < 0.4 {
				break
			}
		}
		if len(row) == 0 {
			row = append(row, itemset.Item(rng.Intn(cfg.Items)))
		}
		for _, it := range row {
			if b, ok := bundle[it]; ok {
				row = append(row, b)
			}
		}
		out.AddRow(row)
	}
	return out.Build()
}

// Dense builds the reference workload of the intersection-kernel
// benchmarks: n rows over m items, where item i is present with
// probability ramping linearly from lo at i=0 to hi at i=m-1. The ramp
// matters: after prep reorders items by frequency, the search descends
// from near-full tid sets (where the kernel's dense bitmaps and
// popcount win) through the crossover region down to sparse tails, so a
// single database exercises every representation and both switch
// directions.
func Dense(n, m int, lo, hi float64, seed int64) *txdb.DB {
	rng := rand.New(rand.NewSource(seed))
	b := txdb.NewBuilder(n, n*m/2)
	b.SetNumItems(m)
	row := make(itemset.Set, 0, m)
	for k := 0; k < n; k++ {
		// Items are generated in ascending order, so the row is already
		// canonical when it reaches the flat columns.
		row = row[:0]
		for i := 0; i < m; i++ {
			p := lo + (hi-lo)*float64(i)/float64(m-1)
			if rng.Float64() < p {
				row = append(row, itemset.Item(i))
			}
		}
		b.AddRow(row)
	}
	return b.Build()
}
