package gendata

import (
	"reflect"
	"testing"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

func TestExpressionDeterministic(t *testing.T) {
	cfg := ExpressionConfig{
		Genes: 50, Conditions: 20, Modules: 3,
		ModuleGeneFrac: 0.5, ModuleCondFrac: 0.3,
		Effect: 0.5, Noise: 0.15, Seed: 42,
	}
	a := Expression(cfg)
	b := Expression(cfg)
	if !reflect.DeepEqual(a.v, b.v) {
		t.Fatal("same seed must give identical matrices")
	}
	cfg.Seed = 43
	c := Expression(cfg)
	if reflect.DeepEqual(a.v, c.v) {
		t.Fatal("different seed should change the matrix")
	}
}

func TestExpressionModulesRaiseSignal(t *testing.T) {
	base := ExpressionConfig{Genes: 200, Conditions: 40, Noise: 0.1, Seed: 7}
	noMod := Expression(base)
	withMod := base
	withMod.Modules = 5
	withMod.ModuleGeneFrac = 0.8
	withMod.ModuleCondFrac = 0.4
	withMod.Effect = 0.6
	mod := Expression(withMod)
	big := func(m *Matrix) int {
		n := 0
		for _, v := range m.v {
			if v > 0.2 || v < -0.2 {
				n++
			}
		}
		return n
	}
	if big(mod) <= big(noMod) {
		t.Fatal("modules should add over/under-expressed entries")
	}
}

func TestDiscretizeOrientations(t *testing.T) {
	m := &Matrix{Genes: 2, Conditions: 3, v: []float64{
		0.5, -0.5, 0.0,
		0.0, 0.3, -0.25,
	}}
	byGene := Discretize(m, 0.2, 0.2, GenesAsTransactions)
	if byGene.NumTx() != 2 || byGene.NumItems() != 6 {
		t.Fatalf("byGene shape: %d × %d", byGene.NumTx(), byGene.NumItems())
	}
	// Gene 0: cond 0 over (item 0), cond 1 under (item 3).
	if !byGene.Tx(0).Equal(itemset.FromInts(0, 3)) {
		t.Fatalf("gene 0 = %v", byGene.Tx(0))
	}
	// Gene 1: cond 1 over (item 2), cond 2 under (item 5).
	if !byGene.Tx(1).Equal(itemset.FromInts(2, 5)) {
		t.Fatalf("gene 1 = %v", byGene.Tx(1))
	}

	byCond := Discretize(m, 0.2, 0.2, ConditionsAsTransactions)
	if byCond.NumTx() != 3 || byCond.NumItems() != 4 {
		t.Fatalf("byCond shape: %d × %d", byCond.NumTx(), byCond.NumItems())
	}
	// Condition 0: gene 0 over (item 0).
	if !byCond.Tx(0).Equal(itemset.FromInts(0)) {
		t.Fatalf("cond 0 = %v", byCond.Tx(0))
	}
	// Condition 1: gene 0 under (item 1), gene 1 over (item 2).
	if !byCond.Tx(1).Equal(itemset.FromInts(1, 2)) {
		t.Fatalf("cond 1 = %v", byCond.Tx(1))
	}
	// Condition 2: gene 1 under (item 3).
	if !byCond.Tx(2).Equal(itemset.FromInts(3)) {
		t.Fatalf("cond 2 = %v", byCond.Tx(2))
	}
}

func TestYeastShape(t *testing.T) {
	db := Yeast(0.1, 1)
	if err := txdb.Validate(db); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	// Few transactions (conditions), many items (gene polarity pairs):
	// the defining regime. Conditions scale with sqrt(0.1) of 300 ≈ 95.
	if s.Transactions < 60 || s.Transactions > 120 {
		t.Fatalf("transactions = %d", s.Transactions)
	}
	if s.UsedItems < 5*s.Transactions {
		t.Fatalf("expected many more items than transactions, got %v", s)
	}
	// Deterministic.
	db2 := Yeast(0.1, 1)
	if db2.NumTx() != db.NumTx() || !db2.Tx(0).Equal(db.Tx(0)) {
		t.Fatal("Yeast must be deterministic for a fixed seed")
	}
}

func TestNCBI60Shape(t *testing.T) {
	db := NCBI60(0.1, 2)
	if err := txdb.Validate(db); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Transactions != 60 {
		t.Fatalf("transactions = %d, want 60", s.Transactions)
	}
	// The Figure 6 sweep mines at minsup 46..54; there must be items that
	// frequent.
	freq := db.ItemFreqs()
	high := 0
	for _, f := range freq {
		if f >= 46 {
			high++
		}
	}
	if high < 10 {
		t.Fatalf("only %d items reach frequency 46; fig6 sweep would be empty", high)
	}
}

func TestThrombinShape(t *testing.T) {
	db := Thrombin(0.01, 3)
	if err := txdb.Validate(db); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Transactions != 64 {
		t.Fatalf("transactions = %d, want 64", s.Transactions)
	}
	if s.Items < 1000 {
		t.Fatalf("items = %d, want a wide feature space", s.Items)
	}
	if s.Density > 0.2 {
		t.Fatalf("density = %f, want sparse", s.Density)
	}
}

func TestWebViewShape(t *testing.T) {
	db := WebView(0.05, 4)
	if err := txdb.Validate(db); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	// Transposed: transactions = pages (few), items = sessions (many).
	// Pages scale with sqrt(0.05) of 497 ≈ 111.
	if s.Transactions < 80 || s.Transactions > 150 {
		t.Fatalf("transactions = %d", s.Transactions)
	}
	if s.UsedItems < 10*s.Transactions {
		t.Fatalf("expected many items, got %v", s)
	}
}

func TestQuest(t *testing.T) {
	db := Quest(QuestConfig{
		Items: 100, Transactions: 500, AvgLen: 8,
		Patterns: 20, AvgPatternLen: 4, Seed: 5,
	})
	if err := txdb.Validate(db); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Transactions != 500 {
		t.Fatalf("transactions = %d", s.Transactions)
	}
	if s.MinLen < 1 {
		t.Fatal("empty transaction generated")
	}
	if s.AvgLen < 2 || s.AvgLen > 20 {
		t.Fatalf("avg length = %f", s.AvgLen)
	}
	// Determinism.
	db2 := Quest(QuestConfig{
		Items: 100, Transactions: 500, AvgLen: 8,
		Patterns: 20, AvgPatternLen: 4, Seed: 5,
	})
	for k := 0; k < db.NumTx(); k++ {
		if !db.Tx(k).Equal(db2.Tx(k)) {
			t.Fatal("Quest must be deterministic")
		}
	}
}

func TestQuestBundles(t *testing.T) {
	cfg := QuestConfig{
		Items: 60, Transactions: 800, AvgLen: 6,
		Patterns: 15, AvgPatternLen: 3, Bundles: 10, Seed: 13,
	}
	db := Quest(cfg)
	if err := txdb.Validate(db); err != nil {
		t.Fatal(err)
	}
	// At least one bundle pair must hold: an item b that occurs in every
	// transaction containing a. Verify by scanning for such a pair among
	// frequent items.
	freq := db.ItemFreqs()
	found := false
	for a := 0; a < db.NumItems() && !found; a++ {
		if freq[a] < 10 {
			continue
		}
		counts := make([]int, db.NumItems())
		for k := 0; k < db.NumTx(); k++ {
			tr := db.Tx(k)
			if !tr.Contains(itemset.Item(a)) {
				continue
			}
			for _, i := range tr {
				counts[i]++
			}
		}
		for b := 0; b < db.NumItems(); b++ {
			if b != a && counts[b] == freq[a] {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no bundle pair materialized")
	}
}
