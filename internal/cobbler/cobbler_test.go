package cobbler

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/naive"
	"repro/internal/result"
)

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

// TestMatchesOracleAcrossThresholds checks correctness for every switching
// regime: pure column enumeration (threshold < 0), mixed, and pure row
// enumeration (threshold ≥ n).
func TestMatchesOracleAcrossThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for trial := 0; trial < 80; trial++ {
		items := 2 + rng.Intn(10)
		n := 1 + rng.Intn(14)
		db := randDB(rng, items, n, 0.1+rng.Float64()*0.6)
		for _, minsup := range []int{1, 2, 3} {
			want, err := naive.ClosedByTransactionSubsets(db, minsup)
			if err != nil {
				t.Fatal(err)
			}
			for _, threshold := range []int{-1, 2, 5, n, 100} {
				var got result.Set
				err := Mine(db, Options{MinSupport: minsup, RowThreshold: threshold}, got.Collect())
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("cobbler mismatch (minsup=%d threshold=%d db=%v):\n%s",
						minsup, threshold, db.Trans, got.Diff(want, 10))
				}
			}
		}
	}
}

func TestMatchesIsTaLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	for trial := 0; trial < 4; trial++ {
		db := randDB(rng, 30+rng.Intn(30), 50+rng.Intn(60), 0.1+rng.Float64()*0.2)
		minsup := 2 + rng.Intn(5)
		var want result.Set
		if err := core.Mine(db, core.Options{MinSupport: minsup}, want.Collect()); err != nil {
			t.Fatal(err)
		}
		var got result.Set
		if err := Mine(db, Options{MinSupport: minsup}, got.Collect()); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(&want) {
			t.Fatalf("cobbler disagrees with IsTa (minsup=%d):\n%s", minsup, got.Diff(&want, 10))
		}
	}
}

func TestNoDuplicateReports(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	for trial := 0; trial < 30; trial++ {
		db := randDB(rng, 3+rng.Intn(8), 4+rng.Intn(10), 0.3+rng.Float64()*0.4)
		seen := map[string]bool{}
		dup := false
		err := Mine(db, Options{MinSupport: 1, RowThreshold: 4},
			result.ReporterFunc(func(s itemset.Set, _ int) {
				if seen[s.Key()] {
					dup = true
				}
				seen[s.Key()] = true
			}))
		if err != nil {
			t.Fatal(err)
		}
		if dup {
			t.Fatalf("duplicate closed set reported for db %v", db.Trans)
		}
	}
}

func TestEdgeCasesAndCancel(t *testing.T) {
	var got result.Set
	if err := Mine(&dataset.Database{Items: 3}, Options{MinSupport: 1}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty db")
	}

	bad := &dataset.Database{Items: 1, Trans: []itemset.Set{{3}}}
	if err := Mine(bad, Options{MinSupport: 1}, &result.Counter{}); err == nil {
		t.Fatal("expected validation error")
	}

	done := make(chan struct{})
	close(done)
	db := randDB(rand.New(rand.NewSource(17)), 50, 150, 0.4)
	err := Mine(db, Options{MinSupport: 2, Done: done}, &result.Counter{})
	if err != mining.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
