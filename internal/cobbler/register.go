package cobbler

import (
	"repro/internal/engine"
	"repro/internal/prep"
	"repro/internal/result"
)

func init() {
	engine.Register(engine.Registration{
		Name:    "cobbler",
		Doc:     "combined column/row enumeration: Eclat-style search switching to Carpenter on small covers (Pan et al.)",
		Targets: []engine.Target{engine.Closed},
		Prep:    prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderOriginal},
		Order:   20,
		Mine: func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
			return minePrepared(pre, spec.MinSupport, 0, spec.Guard, spec.Control(), rep)
		},
	})
}
