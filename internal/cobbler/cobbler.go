// Package cobbler implements a Cobbler-style closed item set miner (Pan,
// Tung, Cong, Xu, SSDBM 2004), mentioned in §1 of the paper as the
// closely related variant of Carpenter: it *combines column and row
// enumeration*. The search starts as item (column) enumeration with a
// vertical representation; as soon as a search node's cover shrinks below
// a switching threshold, the search switches to transaction (row)
// enumeration — Carpenter — on the conditional database.
//
// The switch is justified by the Galois connection of §2.5: the closed
// item sets whose cover is contained in a node's transaction set T are
// exactly the intersections of subsets of T, so a Carpenter run restricted
// to T enumerates every closed set extending the node's closure, and the
// subtree below the node can be abandoned. Intersections of transactions
// are closed in the *full* database and carry their global support, so
// results from row blocks are valid as-is; a repository deduplicates sets
// reachable from several blocks.
package cobbler

import (
	"repro/internal/carpenter"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/tidset"
	"repro/internal/txdb"
)

// Options configures the miner.
type Options struct {
	// MinSupport is the absolute minimum support; values < 1 act as 1.
	MinSupport int
	// RowThreshold is the cover size at or below which the search
	// switches to row enumeration. 0 selects the default (32). A value
	// ≥ the transaction count makes the miner behave like a single
	// Carpenter run; a negative value disables switching entirely
	// (degenerating to pure column enumeration).
	RowThreshold int
	// Done optionally cancels the run.
	Done <-chan struct{}
	// Guard optionally bounds the run (deadline, pattern budget, and
	// reported-set repository size via its node budget). May be nil.
	Guard *guard.Guard
}

// defaultRowThreshold balances the two search styles: row enumeration is
// exponential in the cover size, so blocks must stay small.
const defaultRowThreshold = 32

// Mine runs the combined column/row enumeration on db and reports every
// closed item set with support at least opts.MinSupport in original item
// codes.
func Mine(db txdb.Source, opts Options, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	pre := prep.Prepare(db, minsup, prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderOriginal})
	ctl := mining.Guarded(opts.Done, opts.Guard)
	return minePrepared(pre, minsup, opts.RowThreshold, opts.Guard, ctl, rep)
}

// minePrepared is the combined column/row enumeration on an already
// preprocessed database. g is the shared guard (needed separately from
// ctl because nested Carpenter runs build their own controls on it).
func minePrepared(pre *prep.Prepared, minsup, threshold int, g *guard.Guard, ctl *mining.Control, rep result.Reporter) error {
	if threshold == 0 {
		threshold = defaultRowThreshold
	}
	pdb := pre.DB
	if pdb.NumItems() == 0 || pdb.TotalWeight() < minsup {
		return nil
	}

	m := &miner{
		minsup:    minsup,
		threshold: threshold,
		db:        pdb,
		pre:       pre,
		rep:       rep,
		ctl:       ctl,
		guard:     g,
		reported:  make(map[string]bool),
	}

	// Root: if the whole database is already below the threshold, a
	// single Carpenter run does everything.
	if pdb.NumTx() <= threshold {
		all := make([]int32, pdb.NumTx())
		for k := range all {
			all[k] = int32(k)
		}
		return m.rowEnumerate(all)
	}

	m.ker = tidset.NewKernel(pdb.KernelUniverse())
	sets := pdb.KernelSets()
	exts := make([]ext, 0, len(sets))
	for i := range sets {
		exts = append(exts, ext{item: itemset.Item(i), set: sets[i]})
	}
	return m.mine(0, nil, exts)
}

// ext is one extension candidate: an item and the tid set of
// prefix ∪ {item}. As in package eclat, the Set must stay at a stable
// address while its subtree is mined (diffset children reference it).
type ext struct {
	item itemset.Item
	set  tidset.Set
}

type miner struct {
	minsup    int
	threshold int
	db        *txdb.DB
	pre       *prep.Prepared
	rep       result.Reporter
	ctl       *mining.Control
	guard     *guard.Guard
	cfi       result.CFITree
	reported  map[string]bool

	ker *tidset.Kernel
	// Depth-indexed pools (see eclat): extension and perfect-item buffers
	// of one recursion level, plus a scratch tid list for row switches.
	extBufs  [][]ext
	perfBufs []itemset.Set
	rowBuf   []int32
}

// extend builds the frequent extensions of prefix ∪ {e.item} with the
// shared tidset kernel under the minsup bound; siblings whose
// intersection keeps e's whole tid set become perfect extensions.
// Results live in the depth-scoped arena and buffers, so a call
// allocates nothing in steady state.
func (m *miner) extend(depth int, e *ext, rest []ext) ([]ext, itemset.Set) {
	ar := m.ker.Level(depth)
	ar.Reset() // the previous sibling's subtree is dead
	for len(m.extBufs) <= depth {
		m.extBufs = append(m.extBufs, nil)
		m.perfBufs = append(m.perfBufs, nil)
	}
	next := m.extBufs[depth][:0]
	perfect := m.perfBufs[depth][:0]
	for j := range rest {
		f := &rest[j]
		shared, ok := m.ker.Intersect(ar, &e.set, &f.set, m.minsup)
		if !ok {
			continue
		}
		if shared.Card() == e.set.Card() {
			perfect = append(perfect, f.item)
			continue
		}
		next = append(next, ext{item: f.item, set: shared})
	}
	m.extBufs[depth] = next
	m.perfBufs[depth] = perfect
	return next, perfect
}

// mine is the column-enumeration part: Eclat-style DFS over items with
// closure candidates, switching to row enumeration when a node's cover is
// small enough.
func (m *miner) mine(depth int, prefix itemset.Set, exts []ext) error {
	for idx := range exts {
		e := &exts[idx]
		if err := m.ctl.Tick(); err != nil {
			return err
		}
		m.ctl.CountOps(len(exts) - idx - 1) // tid-set intersections below
		supp := e.set.Support()

		// The switch compares distinct rows, not weight: row enumeration
		// is exponential in the number of rows in the block.
		if e.set.Card() <= m.threshold {
			// Row switch: a Carpenter run over this cover finds every
			// closed set whose cover is contained in it — which includes
			// everything this subtree could produce. The sibling
			// extensions are NOT covered (their tid sets differ), so only
			// this branch is replaced.
			m.rowBuf = e.set.AppendTids(m.rowBuf[:0])
			if err := m.rowEnumerate(m.rowBuf); err != nil {
				return err
			}
			continue
		}

		// Closure candidate via perfect extensions among the remaining
		// items (as in FP-close / Eclat-closed; smaller-code same-support
		// supersets were handled in earlier branches and are caught by
		// the repository).
		next, perfect := m.extend(depth, e, exts[idx+1:])
		st := m.ker.DrainStats()
		m.ctl.CountKernel(st.Isects, st.EarlyStops, st.Switches)
		cand := make(itemset.Set, 0, len(prefix)+1+len(perfect))
		cand = append(cand, prefix...)
		cand = append(cand, e.item)
		cand = append(cand, perfect...)
		canon := itemset.New(cand...)
		if m.cfi.Subsumed(canon, supp) {
			continue
		}
		m.emit(canon, supp)
		if len(next) > 0 {
			if err := m.mine(depth+1, canon.Clone(), next); err != nil {
				return err
			}
		}
	}
	return nil
}

// rowEnumerate runs Carpenter on the sub-database given by tids. The
// intersections of subsets of these transactions are closed in the full
// database and their support within the block equals their global support
// (every transaction containing such a set lies in the block), so results
// can be reported directly after deduplication.
func (m *miner) rowEnumerate(tids []int32) error {
	if m.db.TidsWeight(tids) < m.minsup {
		return nil
	}
	// The block database is rebuilt through the builder so weights ride
	// along; rows alias the parent's items column only during the copy.
	b := txdb.NewBuilder(len(tids), 0)
	b.SetNumItems(m.db.NumItems())
	for _, t := range tids {
		b.AddWeighted(m.db.Tx(int(t)), m.db.Weight(int(t)))
	}
	return carpenter.Mine(b.Build(), carpenter.Options{
		MinSupport: m.minsup,
		Variant:    carpenter.Table,
		Done:       doneOf(m.ctl),
		Guard:      m.guard,
	}, result.ReporterFunc(func(items itemset.Set, supp int) {
		// Carpenter reports in sub's codes, which are this miner's
		// prepared codes (Prepare inside carpenter keeps a bijection that
		// its own decode undoes).
		m.emit(items, supp)
	}))
}

// emit reports a closed set once, in original item codes, and records it
// in both deduplication structures. The deduplication map doubles as the
// repository the guard's node budget bounds; a tripped budget surfaces at
// the next Tick.
func (m *miner) emit(items itemset.Set, supp int) {
	k := items.Key()
	if m.reported[k] {
		return
	}
	m.reported[k] = true
	m.cfi.Insert(items, supp)
	if m.ctl.PollNodes(len(m.reported)) != nil {
		return
	}
	m.rep.Report(m.pre.DecodeSet(items), supp)
}

// doneOf adapts the control back to a done channel for the nested
// Carpenter run: if this miner was canceled, the nested run starts
// canceled as well.
func doneOf(ctl *mining.Control) <-chan struct{} {
	if ctl.Canceled() {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return nil
}
