package tidset

import (
	"fmt"
	"math/rand"
	"testing"
)

// naiveIntersect is the reference: a plain sorted-list merge.
func naiveIntersect(a, b []int32) []int32 {
	out := []int32{}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func tidsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// forceDense builds a Dense set regardless of thresholds.
func forceDense(u Universe, tids []int32) Set {
	words := make([]uint64, u.words())
	for _, t := range tids {
		words[t>>6] |= 1 << (uint(t) & 63)
	}
	return Set{rep: Dense, card: len(tids), weight: u.WeightOf(tids), words: words}
}

// forceDiff builds a Diff set holding tids as members, anchored at
// parent (which must be Sparse and a superset of tids).
func forceDiff(u Universe, parent *Set, tids []int32) Set {
	if parent.rep != Sparse {
		panic("forceDiff: parent must be Sparse")
	}
	diff := []int32{}
	j := 0
	for _, t := range parent.tids {
		if j < len(tids) && tids[j] == t {
			j++
			continue
		}
		diff = append(diff, t)
	}
	if j != len(tids) {
		panic("forceDiff: tids not a subset of parent")
	}
	return Set{rep: Diff, card: len(tids), weight: u.WeightOf(tids), tids: diff, parent: parent}
}

// asRep returns s's members re-packaged in the requested representation.
// For Diff the given parent anchors the set.
func asRep(u Universe, r Rep, tids []int32, parent *Set) Set {
	switch r {
	case Sparse:
		return u.FromSorted(tids)
	case Dense:
		return forceDense(u, tids)
	default:
		return forceDiff(u, parent, tids)
	}
}

// randomSubset draws each of the n tids with probability p.
func randomSubset(rng *rand.Rand, n int, p float64) []int32 {
	out := []int32{}
	for t := 0; t < n; t++ {
		if rng.Float64() < p {
			out = append(out, int32(t))
		}
	}
	return out
}

// checkPair intersects a×b in every representation pair under the given
// bound and cross-checks result tids, weighted support, and the
// early-stop verdict against the naive merge.
func checkPair(t *testing.T, u Universe, atids, btids []int32, bound int) {
	t.Helper()
	want := naiveIntersect(atids, btids)
	wantW := u.WeightOf(want)
	wantOK := bound <= 0 || wantW >= bound

	// Shared Sparse parents for the Diff variants: the operands
	// themselves, and one common superset for the diff-of-diffs path.
	aset, bset := u.FromSorted(atids), u.FromSorted(btids)
	unionTids := naiveUnion(atids, btids)
	shared := u.FromSorted(unionTids)

	reps := []Rep{Sparse, Dense, Diff}
	for _, ra := range reps {
		for _, rb := range reps {
			for variant := 0; variant < 2; variant++ {
				if variant == 1 && (ra != Diff || rb != Diff) {
					continue // shared-parent variant only matters for diff×diff
				}
				pa, pb := &aset, &bset
				if variant == 1 {
					pa, pb = &shared, &shared
				}
				a := asRep(u, ra, atids, pa)
				b := asRep(u, rb, btids, pb)
				name := fmt.Sprintf("%v×%v/v%d/bound=%d", ra, rb, variant, bound)

				k := NewKernel(u)
				ar := k.Level(0)
				got, ok := k.Intersect(ar, &a, &b, bound)
				if ok != wantOK {
					t.Fatalf("%s: ok=%v, want %v (support %d)", name, ok, wantOK, wantW)
				}
				if !ok {
					continue
				}
				if got.Support() != wantW {
					t.Errorf("%s: support=%d, want %d", name, got.Support(), wantW)
				}
				if got.Card() != len(want) {
					t.Errorf("%s: card=%d, want %d", name, got.Card(), len(want))
				}
				if gt := got.AppendTids(nil); !tidsEqual(gt, want) {
					t.Errorf("%s: tids=%v, want %v", name, gt, want)
				}
				if st := k.DrainStats(); st.Isects != 1 {
					t.Errorf("%s: Isects=%d, want 1", name, st.Isects)
				}

				// The flat kernel must agree and never emit Diff.
				fk := NewFlatKernel(u)
				fgot, fok := fk.Intersect(fk.Level(0), &a, &b, bound)
				if !fok {
					t.Fatalf("%s: flat kernel ok=false, want true", name)
				}
				if fgot.Rep() == Diff {
					t.Errorf("%s: flat kernel emitted a Diff result", name)
				}
				if fgot.Support() != wantW || !tidsEqual(fgot.AppendTids(nil), want) {
					t.Errorf("%s: flat kernel disagrees", name)
				}
			}
		}
	}
}

func naiveUnion(a, b []int32) []int32 {
	out := []int32{}
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func testUniverse(n int, weighted bool, rng *rand.Rand) Universe {
	u := Universe{N: n}
	if weighted {
		u.W = make([]int32, n)
		for i := range u.W {
			u.W[i] = int32(1 + rng.Intn(5))
		}
	}
	return u
}

func TestKernelCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{1, 7, 64, 100, 256, 700, 2048}
	densities := []float64{0, 0.01, 0.1, 0.5, 0.95, 1}
	for _, n := range sizes {
		for _, weighted := range []bool{false, true} {
			u := testUniverse(n, weighted, rng)
			for _, da := range densities {
				for _, db := range densities {
					atids := randomSubset(rng, n, da)
					btids := randomSubset(rng, n, db)
					want := naiveIntersect(atids, btids)
					wantW := u.WeightOf(want)
					for _, bound := range []int{0, 1, wantW, wantW + 1, wantW * 2} {
						checkPair(t, u, atids, btids, bound)
						_ = bound
					}
				}
			}
		}
	}
}

// TestKernelSkewed exercises the galloping path: one long list against
// tiny ones, in both operand orders, with and without early stopping.
func TestKernelSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 4096
	for _, weighted := range []bool{false, true} {
		u := testUniverse(n, weighted, rng)
		long := randomSubset(rng, n, 0.6)
		for _, shortLen := range []int{0, 1, 3, 17} {
			short := randomSubset(rng, n, float64(shortLen)/float64(n))
			want := naiveIntersect(long, short)
			wantW := u.WeightOf(want)
			for _, bound := range []int{0, 1, wantW, wantW + 1} {
				checkPair(t, u, long, short, bound)
				checkPair(t, u, short, long, bound)
			}
		}
	}
}

// TestKernelEdgeCases pins empty and full-universe operands.
func TestKernelEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 63, 64, 65, 300} {
		for _, weighted := range []bool{false, true} {
			u := testUniverse(n, weighted, rng)
			full := make([]int32, n)
			for i := range full {
				full[i] = int32(i)
			}
			empty := []int32{}
			half := randomSubset(rng, n, 0.5)
			for _, pair := range [][2][]int32{
				{empty, empty}, {empty, full}, {full, empty},
				{full, full}, {full, half}, {half, full}, {empty, half},
			} {
				for _, bound := range []int{0, 1, n, n + 1} {
					checkPair(t, u, pair[0], pair[1], bound)
				}
			}
		}
	}
}

// TestDiffChainStaysShallow verifies that repeated intersections never
// chain Diff parents: a Diff result's parent is always Sparse, so
// materialization is one merge regardless of recursion depth.
func TestDiffChainStaysShallow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := testUniverse(1000, true, rng)
	k := NewKernel(u)

	base := u.FromSorted(randomSubset(rng, u.N, 0.9))
	cur := &base
	ref := append([]int32(nil), base.tids...)
	sets := make([]*Set, 0, 8) // keep results alive and unmoved
	for depth := 1; depth <= 8; depth++ {
		// Drop a few members via a near-full second operand.
		other := u.FromSorted(randomSubset(rng, u.N, 0.98))
		got, ok := k.Intersect(k.Level(depth), cur, &other, 0)
		if !ok {
			t.Fatal("unbounded intersect reported below-threshold")
		}
		ref = naiveIntersect(ref, other.tids)
		if !tidsEqual(got.AppendTids(nil), ref) {
			t.Fatalf("depth %d: wrong members", depth)
		}
		if got.Rep() == Diff && got.parent.rep != Sparse {
			t.Fatalf("depth %d: Diff parent has rep %v, want Sparse", depth, got.parent.rep)
		}
		s := got
		sets = append(sets, &s)
		cur = &s
	}
}

// TestPromote pins the long-lived base-set promotion thresholds.
func TestPromote(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := Universe{N: 1024}
	dense := u.FromSorted(randomSubset(rng, u.N, 0.5))
	if p := u.Promote(dense); p.Rep() != Dense {
		t.Errorf("dense set not promoted: rep %v", p.Rep())
	} else if p.Support() != dense.Support() || p.Card() != dense.Card() {
		t.Errorf("promotion changed support/card")
	} else if !tidsEqual(p.AppendTids(nil), dense.tids) {
		t.Errorf("promotion changed members")
	}
	sparse := u.FromSorted(randomSubset(rng, u.N, 0.01))
	if p := u.Promote(sparse); p.Rep() != Sparse {
		t.Errorf("sparse set promoted: rep %v", p.Rep())
	}
	small := Universe{N: 100}
	if p := small.Promote(small.FromSorted(randomSubset(rng, 100, 0.9))); p.Rep() != Sparse {
		t.Errorf("small-universe set promoted: rep %v", p.Rep())
	}
}

// TestKernelStats verifies the early-stop and switch counters move when
// they should.
func TestKernelStats(t *testing.T) {
	u := Universe{N: 2048}
	k := NewKernel(u)
	ar := k.Level(0)

	// Disjoint halves: must stop before finishing under a high bound.
	lo := make([]int32, 1024)
	hi := make([]int32, 1024)
	for i := range lo {
		lo[i], hi[i] = int32(i), int32(1024+i)
	}
	a, b := u.FromSorted(lo), u.FromSorted(hi)
	if _, ok := k.Intersect(ar, &a, &b, 1000); ok {
		t.Fatal("disjoint intersect reported ok")
	}
	if st := k.DrainStats(); st.EarlyStops != 1 || st.Isects != 1 {
		t.Errorf("stats after early stop: %+v", st)
	}

	// A dense-dense result demoted to sparse counts a switch.
	da, db := forceDense(u, lo), forceDense(u, naiveIntersect(lo, []int32{0, 1, 2}))
	if got, ok := k.Intersect(ar, &da, &db, 0); !ok || got.Rep() != Sparse {
		t.Fatalf("expected sparse demotion, got rep %v ok=%v", got.Rep(), ok)
	}
	if st := k.DrainStats(); st.Switches == 0 {
		t.Errorf("demotion did not count a switch: %+v", st)
	}
}
