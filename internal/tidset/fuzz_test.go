package tidset

import (
	"math/rand"
	"testing"
)

// FuzzTidsetKernels drives the full representation cross-check from
// fuzzer-chosen universe sizes, densities, weights, and bounds: every
// representation pair (and the flat kernel) must agree with the naive
// sparse merge on members, weighted support, and the early-stop verdict.
func FuzzTidsetKernels(f *testing.F) {
	f.Add(uint16(256), int64(1), int64(2), byte(128), byte(128), uint16(4), true)
	f.Add(uint16(64), int64(3), int64(4), byte(3), byte(250), uint16(0), false)
	f.Add(uint16(2048), int64(5), int64(6), byte(240), byte(1), uint16(30), true)
	f.Add(uint16(0), int64(7), int64(8), byte(0), byte(0), uint16(1), false)
	f.Add(uint16(1000), int64(9), int64(10), byte(255), byte(255), uint16(900), true)
	f.Fuzz(func(t *testing.T, n uint16, sa, sb int64, da, db byte, bound uint16, weighted bool) {
		N := int(n) % 3000
		u := testUniverse(N, weighted, rand.New(rand.NewSource(sa^sb)))
		atids := randomSubset(rand.New(rand.NewSource(sa)), N, float64(da)/255)
		btids := randomSubset(rand.New(rand.NewSource(sb)), N, float64(db)/255)
		checkPair(t, u, atids, btids, int(bound))
	})
}
