// Package tidset provides the shared transaction-id-set kernels of the
// vertical (Eclat-family) miners: one adaptive set value with three
// interchangeable physical representations and intersection kernels that
// pick the cheapest algorithm for the operand pair at hand.
//
// Representations:
//
//   - Sparse: a sorted []int32 tid list — the classical vertical layout,
//     best below ~1/16 density.
//   - Dense: a []uint64 bitmap over the row universe with popcount
//     support counting — word-parallel AND makes intersections on dense
//     covers dozens of times cheaper than element merges.
//   - Diff: a difference list relative to a parent set (dEclat's
//     diffsets, Zaki & Gouda): when a child retains almost all of its
//     parent, storing only what was dropped shrinks both memory and the
//     next level's intersections, which become difference merges.
//
// The representation is chosen adaptively per result at well-defined
// thresholds (see the constants below and DESIGN.md §5i); miners never
// branch on it. All kernels take a minsup bound and stop early — exactly,
// not heuristically — as soon as the running support plus the remaining
// weight cannot reach the bound, returning a below-threshold result so
// callers skip materialization entirely.
//
// tidset sits at the bottom of the package DAG next to internal/itemset:
// it imports nothing of this module (enforced by the repository's import
// lint), so every layer — txdb, miners, the parallel engines — can share
// one kernel implementation.
package tidset

import (
	"fmt"
	"math/bits"
)

// Representation thresholds. The memory crossover between a sorted
// []int32 list (4 bytes per tid) and a bitmap (n/8 bytes) is at density
// 1/32; promotion and demotion sit a factor of four to either side of it
// so sets near the crossover do not flap between representations.
const (
	// denseMinUniverse is the smallest row universe for which bitmaps are
	// considered: below it the fixed word overhead outweighs any win.
	denseMinUniverse = 256
	// densePromoteDiv promotes a sparse result to Dense at density
	// ≥ 1/densePromoteDiv (the bitmap is then at most half the bytes and
	// intersections become word-parallel).
	densePromoteDiv = 16
	// sparseDemoteDiv demotes a dense result to Sparse below density
	// 1/sparseDemoteDiv.
	sparseDemoteDiv = 64
	// diffKeepDiv keeps a result as a diffset while the difference list
	// stays at or below parentCard/diffKeepDiv.
	diffKeepDiv = 8
	// diffMinCard is the smallest parent cardinality for which diffsets
	// pay off.
	diffMinCard = 16
	// gallopRatio switches a sparse×sparse intersection from the linear
	// merge to the galloping (binary-probe) kernel when one list is at
	// least this many times longer than the other.
	gallopRatio = 16
)

// Rep identifies a Set's physical representation.
type Rep uint8

const (
	// Sparse is a sorted tid list.
	Sparse Rep = iota
	// Dense is a bitmap over the row universe.
	Dense
	// Diff is a difference list relative to a parent set.
	Diff
)

func (r Rep) String() string {
	switch r {
	case Sparse:
		return "sparse"
	case Dense:
		return "dense"
	case Diff:
		return "diff"
	}
	return fmt.Sprintf("rep(%d)", int(r))
}

// Universe describes the tid domain all sets of one database share: the
// row count and the optional weights column (nil means every row weighs
// 1, the uniform fast path). It is a value type; copies share the weights
// column.
type Universe struct {
	// N is the number of rows; tids are in [0, N).
	N int
	// W is the per-row weight column; nil means uniform weight 1.
	W []int32
}

// Uniform reports whether every row weighs 1.
func (u Universe) Uniform() bool { return u.W == nil }

// words is the bitmap length of the universe.
func (u Universe) words() int { return (u.N + 63) / 64 }

// weightAt returns the weight of row t.
func (u Universe) weightAt(t int32) int {
	if u.W == nil {
		return 1
	}
	return int(u.W[t])
}

// WeightOf returns the weighted support of a tid list: the total weight
// of the identified rows (its length on a uniform universe).
func (u Universe) WeightOf(tids []int32) int {
	if u.W == nil {
		return len(tids)
	}
	w := 0
	for _, t := range tids {
		w += int(u.W[t])
	}
	return w
}

// wordWeight returns the total weight of the rows set in word w at word
// index wi (the weighted popcount of one bitmap word).
func (u Universe) wordWeight(wi int, w uint64) int {
	if u.W == nil {
		return bits.OnesCount64(w)
	}
	total := 0
	base := int32(wi << 6)
	for w != 0 {
		total += int(u.W[base+int32(bits.TrailingZeros64(w))])
		w &= w - 1
	}
	return total
}

// FromSorted wraps a canonical (strictly ascending) tid list as a Sparse
// set, computing its weighted support once. The slice is borrowed, not
// copied; it must stay immutable for the set's lifetime.
func (u Universe) FromSorted(tids []int32) Set {
	return Set{rep: Sparse, card: len(tids), weight: u.WeightOf(tids), tids: tids}
}

// Promote returns s converted to a freshly allocated Dense bitmap when
// the universe size and s's density warrant it, and s unchanged
// otherwise. It is meant for long-lived base sets (the per-item tid lists
// a whole mining run intersects against); transient results are promoted
// by the kernels themselves out of arena storage.
func (u Universe) Promote(s Set) Set {
	if s.rep != Sparse || u.N < denseMinUniverse || s.card < u.N/densePromoteDiv {
		return s
	}
	words := make([]uint64, u.words())
	for _, t := range s.tids {
		words[t>>6] |= 1 << (uint(t) & 63)
	}
	return Set{rep: Dense, card: s.card, weight: s.weight, words: words}
}

// Set is one adaptive tid set: a value type whose physical representation
// (Sparse, Dense, or Diff) is an implementation detail behind O(1)
// cardinality and weighted-support accessors. Sets are immutable once
// produced; Diff sets additionally reference their parent Set, which must
// outlive them (in the miners, parents live higher on the recursion
// stack, so the contract holds structurally).
type Set struct {
	rep    Rep
	card   int // number of tids in the set
	weight int // weighted support; == card on uniform universes
	tids   []int32
	words  []uint64
	parent *Set
}

// Rep returns the set's current physical representation.
func (s *Set) Rep() Rep { return s.rep }

// Card returns the number of tids in the set.
func (s *Set) Card() int { return s.card }

// Support returns the set's weighted support (== Card on a uniform
// universe). It is O(1): every kernel maintains the weight while
// producing the set.
func (s *Set) Support() int { return s.weight }

// Empty reports whether the set holds no tids.
func (s *Set) Empty() bool { return s.card == 0 }

// AppendTids appends the set's members in ascending order to dst and
// returns the extended slice. This is the materialization boundary for
// callers that need a concrete tid list (row-enumeration switches,
// sub-database builds); Support and Card never need it.
func (s *Set) AppendTids(dst []int32) []int32 {
	switch s.rep {
	case Sparse:
		return append(dst, s.tids...)
	case Dense:
		for wi, w := range s.words {
			base := int32(wi << 6)
			for w != 0 {
				dst = append(dst, base+int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		return dst
	default: // Diff: parent members minus the difference list.
		d := s.tids
		j := 0
		s.parent.forEach(func(t int32) {
			for j < len(d) && d[j] < t {
				j++
			}
			if j < len(d) && d[j] == t {
				return
			}
			dst = append(dst, t)
		})
		return dst
	}
}

// forEach visits the members in ascending order.
func (s *Set) forEach(f func(int32)) {
	switch s.rep {
	case Sparse:
		for _, t := range s.tids {
			f(t)
		}
	case Dense:
		for wi, w := range s.words {
			base := int32(wi << 6)
			for w != 0 {
				f(base + int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	default:
		d := s.tids
		j := 0
		s.parent.forEach(func(t int32) {
			for j < len(d) && d[j] < t {
				j++
			}
			if j < len(d) && d[j] == t {
				return
			}
			f(t)
		})
	}
}
