package tidset

// Arena is a level-scoped bump allocator for kernel results: one arena
// per recursion depth lets a whole Eclat/Cobbler search level run
// allocation-free in steady state. Storage comes from chunks that are
// kept across Reset, so after the first descent to a given depth the
// arena never allocates again unless the level's working set grows past
// its high-water mark. Chunks are never reallocated in place, so slices
// taken earlier stay valid when the arena advances to a new chunk.
//
// Tid (int32) and bitmap-word (uint64) storage live in separate pools;
// the kernels rely on this to build a converted representation while
// still reading the original.
//
// An Arena is single-goroutine; parallel engines give every worker its
// own Kernel (and thereby its own arenas).
type Arena struct {
	ichunks    [][]int32
	ici, ipos  int
	iLastChunk int
	iLastPos   int

	wchunks    [][]uint64
	wci, wpos  int
	wLastChunk int
	wLastPos   int
}

// arenaMinChunk is the smallest chunk size (entries); chunks grow
// geometrically so a level's total storage needs O(log size) chunks.
const arenaMinChunk = 1024

// Reset makes all storage available again. Previously returned slices
// become invalid. Chunks are retained for reuse.
func (a *Arena) Reset() {
	a.ici, a.ipos = 0, 0
	a.wci, a.wpos = 0, 0
}

// takeInts reserves n int32s and returns a zero-length slice with
// capacity n to append into. The reservation is released or shrunk with
// dropInts/shrinkInts, which apply to the most recent take only.
func (a *Arena) takeInts(n int) []int32 {
	if len(a.ichunks) == 0 || cap(a.ichunks[a.ici])-a.ipos < n {
		a.advanceInts(n)
	}
	c := a.ichunks[a.ici]
	a.iLastChunk, a.iLastPos = a.ici, a.ipos
	s := c[a.ipos : a.ipos : a.ipos+n]
	a.ipos += n
	return s
}

// shrinkInts gives back the unused tail of the most recent takeInts: s
// must be (a prefix-extension of) the slice that take returned.
func (a *Arena) shrinkInts(s []int32) {
	a.ici, a.ipos = a.iLastChunk, a.iLastPos+len(s)
}

// dropInts releases the most recent takeInts reservation entirely.
func (a *Arena) dropInts() {
	a.ici, a.ipos = a.iLastChunk, a.iLastPos
}

// intMark captures the int32 pool position so a kernel can release a
// whole group of reservations at once (its abort path).
type intMark struct{ ci, pos int }

func (a *Arena) markInts() intMark { return intMark{a.ici, a.ipos} }

// restoreInts releases every takeInts made since m. Only valid
// immediately followed by fresh takes (it does not rewind the last-take
// bookkeeping, so shrinkInts/dropInts of pre-mark takes are off-limits).
func (a *Arena) restoreInts(m intMark) { a.ici, a.ipos = m.ci, m.pos }

func (a *Arena) advanceInts(n int) {
	for a.ici+1 < len(a.ichunks) {
		a.ici++
		a.ipos = 0
		if cap(a.ichunks[a.ici]) >= n {
			return
		}
	}
	size := arenaMinChunk
	if last := len(a.ichunks); last > 0 {
		size = 2 * cap(a.ichunks[last-1])
	}
	for size < n {
		size *= 2
	}
	a.ichunks = append(a.ichunks, make([]int32, size))
	a.ici, a.ipos = len(a.ichunks)-1, 0
}

// takeWords reserves and zeroes n bitmap words, returning a slice of
// length n. Released with dropWords (most recent take only).
func (a *Arena) takeWords(n int) []uint64 {
	if len(a.wchunks) == 0 || cap(a.wchunks[a.wci])-a.wpos < n {
		a.advanceWords(n)
	}
	c := a.wchunks[a.wci]
	a.wLastChunk, a.wLastPos = a.wci, a.wpos
	s := c[a.wpos : a.wpos+n : a.wpos+n]
	a.wpos += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// dropWords releases the most recent takeWords reservation entirely.
func (a *Arena) dropWords() {
	a.wci, a.wpos = a.wLastChunk, a.wLastPos
}

func (a *Arena) advanceWords(n int) {
	for a.wci+1 < len(a.wchunks) {
		a.wci++
		a.wpos = 0
		if cap(a.wchunks[a.wci]) >= n {
			return
		}
	}
	size := arenaMinChunk
	if last := len(a.wchunks); last > 0 {
		size = 2 * cap(a.wchunks[last-1])
	}
	for size < n {
		size *= 2
	}
	a.wchunks = append(a.wchunks, make([]uint64, size))
	a.wci, a.wpos = len(a.wchunks)-1, 0
}
