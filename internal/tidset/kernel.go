package tidset

import "math/bits"

// Stats counts kernel work since the last drain. The counters are plain
// ints bumped on the kernel's own hot path and drained by the miners into
// mining.Control's amortized slow path, so the engine's nil-sink fast
// path stays free of atomics.
type Stats struct {
	// Isects counts intersections started (including ones stopped early).
	Isects int64
	// EarlyStops counts intersections abandoned by the bound check before
	// the merge finished.
	EarlyStops int64
	// Switches counts representation conversions: sparse→dense
	// promotions, dense→sparse demotions, diffset rebuilds and diffset
	// materializations.
	Switches int64
}

// Kernel bundles a universe with per-depth scratch arenas and work
// counters: one Kernel per mining goroutine, shared by every intersection
// of that run. The zero value is not usable; construct with NewKernel or
// NewFlatKernel.
type Kernel struct {
	u      Universe
	levels []*Arena
	stats  Stats
	flat   bool
}

// NewKernel returns a kernel over u with the full adaptive representation
// repertoire, including diffset results. Diff results reference their
// left operand as parent, so callers must keep operand storage stable for
// the lifetime of results — the natural discipline of a depth-first
// search, where operands live higher on the recursion stack.
func NewKernel(u Universe) *Kernel { return &Kernel{u: u} }

// NewFlatKernel returns a kernel that never produces Diff results, for
// callers without a stable operand stack (the parallel recount stripes,
// which ping-pong two buffers).
func NewFlatKernel(u Universe) *Kernel { return &Kernel{u: u, flat: true} }

// Universe returns the kernel's tid domain.
func (k *Kernel) Universe() Universe { return k.u }

// Level returns the scratch arena for recursion depth d, creating deeper
// levels on first descent. Callers Reset it when the storage taken from
// it is dead (per sibling subtree in the miners).
func (k *Kernel) Level(d int) *Arena {
	for len(k.levels) <= d {
		k.levels = append(k.levels, &Arena{})
	}
	return k.levels[d]
}

// DrainStats returns the work counters accumulated since the last drain
// and resets them.
func (k *Kernel) DrainStats() Stats {
	s := k.stats
	k.stats = Stats{}
	return s
}

// span is an operand normalized for the pair kernels: exactly one of
// tids/words is set.
type span struct {
	tids   []int32
	words  []uint64
	card   int
	weight int
}

// spanOf views s as concrete storage, materializing Diff sets into ar
// (their parents are always Sparse by construction, so this is a single
// difference merge).
func (k *Kernel) spanOf(ar *Arena, s *Set) span {
	switch s.rep {
	case Sparse:
		return span{tids: s.tids, card: s.card, weight: s.weight}
	case Dense:
		return span{words: s.words, card: s.card, weight: s.weight}
	default:
		k.stats.Switches++
		p, d := s.parent.tids, s.tids
		out := ar.takeInts(s.card)
		j := 0
		for _, t := range p {
			if j < len(d) && d[j] == t {
				j++
				continue
			}
			out = append(out, t)
		}
		return span{tids: out, card: s.card, weight: s.weight}
	}
}

// diffParent returns a when an intersection result may be represented as
// a diffset relative to a, and nil otherwise. Only Sparse left operands
// anchor diffsets, which keeps every Diff parent Sparse (chains stay one
// level deep; diff-of-diff results are rebased onto the shared parent).
func (k *Kernel) diffParent(a *Set) *Set {
	if k.flat || a.rep != Sparse || a.card < diffMinCard {
		return nil
	}
	return a
}

// Intersect computes a ∩ b, taking result storage from ar and choosing
// the result representation adaptively. bound, when positive, is the
// caller's minimum support: the kernel abandons the intersection as soon
// as the running matched weight plus the remaining weight of either
// operand cannot reach it, and returns ok=false. The early stop is exact:
// ok=false if and only if the intersection's weighted support is below
// bound, so callers may treat ok=false as "infrequent" without a recount.
//
// Diff results reference a as their parent; a must stay live and
// unmoved while the result is. Operands are never modified.
func (k *Kernel) Intersect(ar *Arena, a, b *Set, bound int) (Set, bool) {
	k.stats.Isects++
	if bound > 0 && (a.weight < bound || b.weight < bound) {
		// The result is contained in both operands, so either weight
		// already bounds it from above.
		k.stats.EarlyStops++
		return Set{}, false
	}
	if !k.flat && a.rep == Diff && b.rep == Diff && a.parent == b.parent {
		return k.isectDiffDiff(ar, a, b, bound)
	}
	av, bv := k.spanOf(ar, a), k.spanOf(ar, b)
	switch {
	case av.words != nil && bv.words != nil:
		return k.isectDenseDense(ar, av, bv, bound)
	case av.words != nil:
		// Dense a × sparse b: probe b's tids against a's bitmap. The
		// result cannot anchor a diffset (its drops are relative to b).
		return k.isectSparseDense(ar, bv, av, nil, bound)
	case bv.words != nil:
		return k.isectSparseDense(ar, av, bv, k.diffParent(a), bound)
	default:
		if av.card >= gallopRatio*bv.card || bv.card >= gallopRatio*av.card {
			return k.isectGallop(ar, av, bv, a, bound)
		}
		return k.isectSparseSparse(ar, av, bv, k.diffParent(a), bound)
	}
}

// finishSparse applies the output-representation decision shared by the
// sparse-producing kernels. out is the last ints reservation in ar;
// dropped is the difference list relative to parent (nil when no diffset
// anchor exists or the drop list overflowed its cap), reserved in ar
// directly below out.
func (k *Kernel) finishSparse(ar *Arena, out []int32, weight int, parent *Set, dropped []int32, droppedOK bool) Set {
	card := len(out)
	if parent != nil && droppedOK && parent.card-card <= parent.card/diffKeepDiv {
		ar.dropInts() // the diffset replaces the materialized members
		return Set{rep: Diff, card: card, weight: weight, tids: dropped, parent: parent}
	}
	if k.u.N >= denseMinUniverse && card >= k.u.N/densePromoteDiv {
		words := ar.takeWords(k.u.words())
		for _, t := range out {
			words[t>>6] |= 1 << (uint(t) & 63)
		}
		ar.dropInts()
		k.stats.Switches++
		return Set{rep: Dense, card: card, weight: weight, words: words}
	}
	ar.shrinkInts(out)
	return Set{rep: Sparse, card: card, weight: weight, tids: out}
}

// isectSparseSparse is the linear merge of two sorted tid lists with
// early stopping: remA/remB track the unconsumed weight of each operand,
// and matched + min(remA, remB) is an exact upper bound on the final
// support — every remaining match costs the same weight on both sides.
func (k *Kernel) isectSparseSparse(ar *Arena, av, bv span, parent *Set, bound int) (Set, bool) {
	mark := ar.markInts()
	var dropped []int32
	droppedOK := parent != nil
	if droppedOK {
		dropped = ar.takeInts(parent.card/diffKeepDiv + 1)
	}
	out := ar.takeInts(min(av.card, bv.card))
	at, bt := av.tids, bv.tids
	matched, remA, remB := 0, av.weight, bv.weight
	i, j := 0, 0
	for i < len(at) && j < len(bt) {
		x, y := at[i], bt[j]
		switch {
		case x == y:
			w := k.u.weightAt(x)
			out = append(out, x)
			matched += w
			remA -= w
			remB -= w
			i++
			j++
		case x < y:
			w := k.u.weightAt(x)
			remA -= w
			if droppedOK {
				if len(dropped) < cap(dropped) {
					dropped = append(dropped, x)
				} else {
					droppedOK = false
				}
			}
			i++
		default:
			remB -= k.u.weightAt(y)
			j++
		}
		if bound > 0 && matched+min(remA, remB) < bound {
			k.stats.EarlyStops++
			ar.restoreInts(mark)
			return Set{}, false
		}
	}
	if bound > 0 && matched < bound {
		ar.restoreInts(mark)
		return Set{}, false
	}
	if droppedOK {
		// Tids of a past the merged range were dropped too.
		for ; i < len(at); i++ {
			if len(dropped) == cap(dropped) {
				droppedOK = false
				break
			}
			dropped = append(dropped, at[i])
		}
	}
	return k.finishSparse(ar, out, matched, parent, dropped, droppedOK), true
}

// isectGallop intersects two sorted lists of very different lengths by
// walking the shorter and binary-probing the longer with exponential
// (galloping) steps from the previous match position. The early-stop
// bound uses the shorter side only — matched + remaining-of-shorter is
// still an exact upper bound, since the result is contained in the
// shorter list.
func (k *Kernel) isectGallop(ar *Arena, av, bv span, a *Set, bound int) (Set, bool) {
	sv, lv := av, bv
	var parent *Set
	if av.card > bv.card {
		sv, lv = bv, av // iterate the shorter list
	} else {
		parent = k.diffParent(a) // drops tracked relative to a's members
	}
	mark := ar.markInts()
	var dropped []int32
	droppedOK := parent != nil
	if droppedOK {
		dropped = ar.takeInts(parent.card/diffKeepDiv + 1)
	}
	out := ar.takeInts(sv.card)
	long := lv.tids
	matched, remS := 0, sv.weight
	pos := 0
	for _, t := range sv.tids {
		w := k.u.weightAt(t)
		remS -= w
		pos = gallop(long, pos, t)
		if pos < len(long) && long[pos] == t {
			out = append(out, t)
			matched += w
			pos++
		} else {
			if droppedOK {
				if len(dropped) < cap(dropped) {
					dropped = append(dropped, t)
				} else {
					droppedOK = false
				}
			}
			if bound > 0 && matched+remS < bound {
				k.stats.EarlyStops++
				ar.restoreInts(mark)
				return Set{}, false
			}
		}
	}
	if bound > 0 && matched < bound {
		ar.restoreInts(mark)
		return Set{}, false
	}
	return k.finishSparse(ar, out, matched, parent, dropped, droppedOK), true
}

// gallop returns the smallest index j >= from with l[j] >= t.
func gallop(l []int32, from int, t int32) int {
	if from >= len(l) || l[from] >= t {
		return from
	}
	lo, hi, step := from, from+1, 1
	for hi < len(l) && l[hi] < t {
		lo = hi
		step <<= 1
		hi += step
	}
	if hi > len(l) {
		hi = len(l)
	}
	// Invariant: l[lo] < t, and l[hi] >= t (or hi == len(l)).
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid] < t {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// isectSparseDense probes the sparse operand's tids against the dense
// operand's bitmap. parent, when non-nil, is the diffset anchor for the
// sparse side (its members are exactly sv's).
func (k *Kernel) isectSparseDense(ar *Arena, sv, dv span, parent *Set, bound int) (Set, bool) {
	mark := ar.markInts()
	var dropped []int32
	droppedOK := parent != nil
	if droppedOK {
		dropped = ar.takeInts(parent.card/diffKeepDiv + 1)
	}
	out := ar.takeInts(min(sv.card, dv.card))
	words := dv.words
	matched, remS := 0, sv.weight
	for _, t := range sv.tids {
		w := k.u.weightAt(t)
		remS -= w
		if words[t>>6]&(1<<(uint(t)&63)) != 0 {
			out = append(out, t)
			matched += w
			continue
		}
		if droppedOK {
			if len(dropped) < cap(dropped) {
				dropped = append(dropped, t)
			} else {
				droppedOK = false
			}
		}
		if bound > 0 && matched+remS < bound {
			k.stats.EarlyStops++
			ar.restoreInts(mark)
			return Set{}, false
		}
	}
	if bound > 0 && matched < bound {
		ar.restoreInts(mark)
		return Set{}, false
	}
	return k.finishSparse(ar, out, matched, parent, dropped, droppedOK), true
}

// isectDenseDense is the word-parallel AND with popcount support
// counting. On uniform universes the early-stop bound subtracts each
// operand word's popcount as it is consumed — matched + min(remA, remB)
// is exact. On weighted universes the per-word weighted popcount makes a
// mid-loop bound as expensive as finishing, so the kernel completes the
// AND and applies only the final bound check (still exact, never early).
func (k *Kernel) isectDenseDense(ar *Arena, av, bv span, bound int) (Set, bool) {
	n := k.u.words()
	out := ar.takeWords(n)
	aw, bw := av.words, bv.words
	matched, card := 0, 0
	uniform := k.u.Uniform()
	remA, remB := av.weight, bv.weight
	for i := 0; i < n; i++ {
		w := aw[i] & bw[i]
		out[i] = w
		c := bits.OnesCount64(w)
		card += c
		if uniform {
			matched += c
			remA -= bits.OnesCount64(aw[i])
			remB -= bits.OnesCount64(bw[i])
			if bound > 0 && matched+min(remA, remB) < bound {
				k.stats.EarlyStops++
				ar.dropWords()
				return Set{}, false
			}
		} else if w != 0 {
			matched += k.u.wordWeight(i, w)
		}
	}
	if bound > 0 && matched < bound {
		ar.dropWords()
		return Set{}, false
	}
	if card < k.u.N/sparseDemoteDiv {
		tids := ar.takeInts(card)
		for wi, w := range out {
			base := int32(wi << 6)
			for w != 0 {
				tids = append(tids, base+int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		ar.dropWords()
		k.stats.Switches++
		return Set{rep: Sparse, card: card, weight: matched, tids: tids}, true
	}
	return Set{rep: Dense, card: card, weight: matched, words: out}, true
}

// isectDiffDiff intersects two diffsets that share a parent P: with
// a = P\Da and b = P\Db, the result is P\(Da ∪ Db), built as a single
// difference-list merge without touching P's members. The result is
// rebased onto P (not chained under a), so diff parents stay Sparse and
// materialization is always one merge away. Early stopping subtracts the
// weight of every tid b removes beyond a's removals from a's support —
// a.weight − removed is an exact upper bound that only decreases.
func (k *Kernel) isectDiffDiff(ar *Arena, a, b *Set, bound int) (Set, bool) {
	p := a.parent
	da, db := a.tids, b.tids
	union := ar.takeInts(len(da) + len(db))
	removed := 0
	i, j := 0, 0
	for i < len(da) || j < len(db) {
		switch {
		case j == len(db) || (i < len(da) && da[i] < db[j]):
			union = append(union, da[i])
			i++
		case i == len(da) || db[j] < da[i]:
			t := db[j]
			union = append(union, t)
			removed += k.u.weightAt(t)
			j++
			if bound > 0 && a.weight-removed < bound {
				k.stats.EarlyStops++
				ar.dropInts()
				return Set{}, false
			}
		default: // equal: removed from a already
			union = append(union, da[i])
			i++
			j++
		}
	}
	weight := a.weight - removed
	card := p.card - len(union)
	if len(union) <= p.card/diffKeepDiv {
		ar.shrinkInts(union)
		return Set{rep: Diff, card: card, weight: weight, tids: union, parent: p}, true
	}
	// The difference list outgrew its keep threshold: materialize the
	// members (P minus union) and fall back to Sparse.
	k.stats.Switches++
	out := ar.takeInts(card)
	j = 0
	for _, t := range p.tids {
		if j < len(union) && union[j] == t {
			j++
			continue
		}
		out = append(out, t)
	}
	return Set{rep: Sparse, card: card, weight: weight, tids: out}, true
}
