package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// Read parses a database in the FIMI workshop format used by the
// implementations the paper benchmarks against: one transaction per line,
// whitespace-separated item tokens. Numeric tokens become item codes
// directly; if any token is non-numeric, all tokens are treated as names
// and mapped to dense codes in first-appearance order (the mapping is
// recorded in Names). Empty lines are kept as empty transactions, matching
// the paper's support semantics; lines starting with '#' are comments.
func Read(r io.Reader) (*Database, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)

	var rawLines [][]string
	numeric := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		rawLines = append(rawLines, fields)
		for _, f := range fields {
			if _, err := strconv.Atoi(f); err != nil {
				numeric = false
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}

	db := &Database{}
	if numeric {
		for ln, fields := range rawLines {
			t := make(itemset.Set, 0, len(fields))
			for _, f := range fields {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: %w", ln+1, err)
				}
				if v < 0 {
					return nil, fmt.Errorf("dataset: line %d: negative item %d", ln+1, v)
				}
				if v > math.MaxInt32 {
					return nil, fmt.Errorf("dataset: line %d: item %d exceeds the item code range", ln+1, v)
				}
				t = append(t, itemset.Item(v))
			}
			sort.Slice(t, func(a, b int) bool { return t[a] < t[b] })
			db.Trans = append(db.Trans, dedup(t))
		}
		for _, t := range db.Trans {
			if len(t) > 0 {
				if top := int(t[len(t)-1]) + 1; top > db.Items {
					db.Items = top
				}
			}
		}
		return db, nil
	}

	codes := map[string]itemset.Item{}
	for _, fields := range rawLines {
		t := make(itemset.Set, 0, len(fields))
		for _, f := range fields {
			c, ok := codes[f]
			if !ok {
				c = itemset.Item(len(codes))
				codes[f] = c
				db.Names = append(db.Names, f)
			}
			t = append(t, c)
		}
		sort.Slice(t, func(a, b int) bool { return t[a] < t[b] })
		db.Trans = append(db.Trans, dedup(t))
	}
	db.Items = len(codes)
	return db, nil
}

func dedup(t itemset.Set) itemset.Set {
	if len(t) < 2 {
		return t
	}
	w := 1
	for r := 1; r < len(t); r++ {
		if t[r] != t[w-1] {
			t[w] = t[r]
			w++
		}
	}
	return t[:w]
}

// Write renders db in the FIMI format accepted by Read. If db.Names is
// non-nil the names are written instead of codes; an item code outside the
// name table is an error, not a panic.
func Write(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	for k, t := range db.Trans {
		for i, it := range t {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			var tok string
			if db.Names != nil {
				if int(it) < 0 || int(it) >= len(db.Names) {
					return fmt.Errorf("dataset: transaction %d holds item code %d outside the name table (%d names)", k, it, len(db.Names))
				}
				tok = db.Names[it]
			} else {
				tok = strconv.Itoa(int(it))
			}
			if _, err := bw.WriteString(tok); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSource renders any transaction source in FIMI format, streaming
// row by row without materializing a row database. A row of weight w is
// written w times, so Read(WriteSource(db)) reproduces the multiset
// exactly. Item codes are written numerically (generic sources carry no
// name table; use Write with a *Database for named output).
func WriteSource(w io.Writer, src txdb.Source) error {
	bw := bufio.NewWriter(w)
	for k, n := 0, src.NumTx(); k < n; k++ {
		t := src.Tx(k)
		for rep := src.Weight(k); rep > 0; rep-- {
			for i, it := range t {
				if i > 0 {
					if err := bw.WriteByte(' '); err != nil {
						return err
					}
				}
				if _, err := bw.WriteString(strconv.Itoa(int(it))); err != nil {
					return err
				}
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFile loads a FIMI-format database from a file.
func ReadFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return db, nil
}

// WriteFile saves db to a file in FIMI format.
func WriteFile(path string, db *Database) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, db); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
