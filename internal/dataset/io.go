package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// Limits bounds what ReadLimited accepts from untrusted input. The zero
// value imposes no bounds, preserving Read's historical behavior for
// trusted files.
type Limits struct {
	// MaxTxLen caps the number of item tokens on one input line. A hostile
	// (or merely broken) producer can put an arbitrarily long transaction
	// on a single line; without a cap the decoded transaction alone can
	// exhaust memory. Values <= 0 mean no cap.
	MaxTxLen int
	// MaxItems caps the item universe: numeric item codes must be below
	// it, and named inputs may introduce at most this many distinct names.
	// Item frequency tables, bitsets and the vertical view are all sized
	// by the universe, so one line saying "2000000000" would otherwise
	// make every consumer allocate gigabytes. Values <= 0 mean no cap.
	MaxItems int
}

// Enabled reports whether the limits bound anything.
func (l Limits) Enabled() bool { return l.MaxTxLen > 0 || l.MaxItems > 0 }

// ErrLimit is wrapped by every error ReadLimited reports for input that
// exceeds a configured admission limit. Match with errors.Is; the
// concrete *LimitError carries the offending line. Limit breaches are
// input errors (the bytes were read fine), distinct from I/O failures.
var ErrLimit = errors.New("dataset: input limit exceeded")

// LimitError reports one input line that exceeded a Limits bound. It
// wraps ErrLimit.
type LimitError struct {
	// Line is the 1-based input line (comment lines counted) the breach
	// was detected on.
	Line int
	// What names the limit ("transaction length" or "item universe").
	What string
	// Value is the offending size or item code; Max the configured bound.
	Value, Max int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("dataset: line %d: %s %d exceeds limit %d", e.Line, e.What, e.Value, e.Max)
}

func (e *LimitError) Unwrap() error { return ErrLimit }

// Read parses a database in the FIMI workshop format used by the
// implementations the paper benchmarks against: one transaction per line,
// whitespace-separated item tokens. Numeric tokens become item codes
// directly; if any token is non-numeric, all tokens are treated as names
// and mapped to dense codes in first-appearance order (the mapping is
// recorded in Names). Empty lines are kept as empty transactions, matching
// the paper's support semantics; lines starting with '#' are comments.
func Read(r io.Reader) (*Database, error) { return ReadLimited(r, Limits{}) }

// ReadLimited is Read with admission limits for untrusted input: a line
// holding more than lim.MaxTxLen items, a numeric item code >=
// lim.MaxItems, or a named input introducing more than lim.MaxItems
// distinct names fails fast with a *LimitError (wrapping ErrLimit)
// carrying the offending line number. Limits are checked while scanning,
// before the line is buffered, so an over-limit line never expands into
// decoded state.
func ReadLimited(r io.Reader, lim Limits) (*Database, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)

	type rawLine struct {
		no     int // 1-based input line number
		fields []string
	}
	var rawLines []rawLine
	numeric := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if lim.MaxTxLen > 0 && len(fields) > lim.MaxTxLen {
			return nil, &LimitError{Line: lineNo, What: "transaction length", Value: len(fields), Max: lim.MaxTxLen}
		}
		rawLines = append(rawLines, rawLine{no: lineNo, fields: fields})
		for _, f := range fields {
			if _, err := strconv.Atoi(f); err != nil {
				numeric = false
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}

	db := &Database{}
	if numeric {
		for _, raw := range rawLines {
			t := make(itemset.Set, 0, len(raw.fields))
			for _, f := range raw.fields {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: %w", raw.no, err)
				}
				if v < 0 {
					return nil, fmt.Errorf("dataset: line %d: negative item %d", raw.no, v)
				}
				if v > math.MaxInt32 {
					return nil, fmt.Errorf("dataset: line %d: item %d exceeds the item code range", raw.no, v)
				}
				if lim.MaxItems > 0 && v >= lim.MaxItems {
					return nil, &LimitError{Line: raw.no, What: "item universe", Value: v, Max: lim.MaxItems}
				}
				t = append(t, itemset.Item(v))
			}
			sort.Slice(t, func(a, b int) bool { return t[a] < t[b] })
			db.Trans = append(db.Trans, dedup(t))
		}
		for _, t := range db.Trans {
			if len(t) > 0 {
				if top := int(t[len(t)-1]) + 1; top > db.Items {
					db.Items = top
				}
			}
		}
		return db, nil
	}

	codes := map[string]itemset.Item{}
	for _, raw := range rawLines {
		t := make(itemset.Set, 0, len(raw.fields))
		for _, f := range raw.fields {
			c, ok := codes[f]
			if !ok {
				if lim.MaxItems > 0 && len(codes) >= lim.MaxItems {
					return nil, &LimitError{Line: raw.no, What: "item universe", Value: len(codes) + 1, Max: lim.MaxItems}
				}
				c = itemset.Item(len(codes))
				codes[f] = c
				db.Names = append(db.Names, f)
			}
			t = append(t, c)
		}
		sort.Slice(t, func(a, b int) bool { return t[a] < t[b] })
		db.Trans = append(db.Trans, dedup(t))
	}
	db.Items = len(codes)
	return db, nil
}

func dedup(t itemset.Set) itemset.Set {
	if len(t) < 2 {
		return t
	}
	w := 1
	for r := 1; r < len(t); r++ {
		if t[r] != t[w-1] {
			t[w] = t[r]
			w++
		}
	}
	return t[:w]
}

// Write renders db in the FIMI format accepted by Read. If db.Names is
// non-nil the names are written instead of codes; an item code outside the
// name table is an error, not a panic.
func Write(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	for k, t := range db.Trans {
		for i, it := range t {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			var tok string
			if db.Names != nil {
				if int(it) < 0 || int(it) >= len(db.Names) {
					return fmt.Errorf("dataset: transaction %d holds item code %d outside the name table (%d names)", k, it, len(db.Names))
				}
				tok = db.Names[it]
			} else {
				tok = strconv.Itoa(int(it))
			}
			if _, err := bw.WriteString(tok); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSource renders any transaction source in FIMI format, streaming
// row by row without materializing a row database. A row of weight w is
// written w times, so Read(WriteSource(db)) reproduces the multiset
// exactly. Item codes are written numerically (generic sources carry no
// name table; use Write with a *Database for named output).
func WriteSource(w io.Writer, src txdb.Source) error {
	bw := bufio.NewWriter(w)
	for k, n := 0, src.NumTx(); k < n; k++ {
		t := src.Tx(k)
		for rep := src.Weight(k); rep > 0; rep-- {
			for i, it := range t {
				if i > 0 {
					if err := bw.WriteByte(' '); err != nil {
						return err
					}
				}
				if _, err := bw.WriteString(strconv.Itoa(int(it))); err != nil {
					return err
				}
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFile loads a FIMI-format database from a file.
func ReadFile(path string) (*Database, error) {
	return ReadFileLimited(path, Limits{})
}

// ReadFileLimited loads a FIMI-format database from a file under the
// given admission limits (see ReadLimited).
func ReadFileLimited(path string, lim Limits) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := ReadLimited(f, lim)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return db, nil
}

// WriteFile saves db to a file in FIMI format.
func WriteFile(path string, db *Database) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, db); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
