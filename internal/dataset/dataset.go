// Package dataset is the row-oriented transaction database of the public
// API and the I/O layer: FIMI-format reading/writing, validation,
// transposition (§4), and summary statistics. The mining layers do not
// consume it directly anymore — every miner runs on the flat columnar
// store of internal/txdb, and *Database is a thin adapter (it implements
// txdb.Source) feeding that representation. The preprocessing pipeline the
// paper's §3.4 describes lives in internal/prep.
package dataset

import (
	"fmt"

	"repro/internal/itemset"
	"repro/internal/txdb"
)

// Database is a transaction database over a dense item universe
// 0..Items-1. Transactions are canonical item sets (strictly ascending).
// Duplicate transactions are allowed and count separately, matching the
// paper's multiset semantics.
type Database struct {
	// Items is the size of the item universe. Item codes in transactions
	// are in [0, Items).
	Items int
	// Trans holds the transactions.
	Trans []itemset.Set
	// Names optionally maps item codes to external names. It may be nil;
	// if non-nil its length is Items.
	Names []string
}

// New builds a Database from raw transactions. The item universe is the
// smallest universe containing every item (or minItems if larger), so an
// explicitly empty universe is only possible for an empty database.
func New(trans []itemset.Set, minItems int) *Database {
	items := minItems
	for _, t := range trans {
		if len(t) > 0 {
			if top := int(t[len(t)-1]) + 1; top > items {
				items = top
			}
		}
	}
	return &Database{Items: items, Trans: trans}
}

// FromInts builds a small database from int literals; it is a test and
// example convenience.
func FromInts(rows ...[]int) *Database {
	trans := make([]itemset.Set, len(rows))
	for i, r := range rows {
		trans[i] = itemset.FromInts(r...)
	}
	return New(trans, 0)
}

// Clone returns a deep copy of the database.
func (db *Database) Clone() *Database {
	c := &Database{Items: db.Items}
	c.Trans = make([]itemset.Set, len(db.Trans))
	for i, t := range db.Trans {
		c.Trans[i] = t.Clone()
	}
	if db.Names != nil {
		c.Names = append([]string(nil), db.Names...)
	}
	return c
}

// Validate checks structural invariants. Miners call it on entry so that
// malformed input fails fast with a useful error instead of corrupting a
// repository.
func (db *Database) Validate() error {
	if db.Items < 0 {
		return fmt.Errorf("dataset: negative item universe %d", db.Items)
	}
	if db.Names != nil && len(db.Names) != db.Items {
		return fmt.Errorf("dataset: %d names for %d items", len(db.Names), db.Items)
	}
	for k, t := range db.Trans {
		if !t.IsCanonical() {
			return fmt.Errorf("dataset: transaction %d is not canonical: %v", k, t)
		}
		if len(t) > 0 {
			if t[0] < 0 || int(t[len(t)-1]) >= db.Items {
				return fmt.Errorf("dataset: transaction %d has item outside universe [0,%d): %v", k, db.Items, t)
			}
		}
	}
	return nil
}

// NumItems implements txdb.Source.
func (db *Database) NumItems() int { return db.Items }

// NumTx implements txdb.Source.
func (db *Database) NumTx() int { return len(db.Trans) }

// Tx implements txdb.Source; the returned set aliases the database row and
// must not be modified.
func (db *Database) Tx(k int) itemset.Set { return db.Trans[k] }

// Weight implements txdb.Source. Row databases carry no weights: duplicate
// transactions appear as separate rows, each with weight 1.
func (db *Database) Weight(k int) int { return 1 }

// FromSource materializes any columnar source back into a row database.
// Weighted rows are expanded into Weight(k) identical rows, so the
// multiset semantics (and hence every support) are preserved exactly.
func FromSource(src txdb.Source) *Database {
	n := src.NumTx()
	trans := make([]itemset.Set, 0, n)
	for k := 0; k < n; k++ {
		t := src.Tx(k).Clone()
		trans = append(trans, t)
		for w := src.Weight(k); w > 1; w-- {
			trans = append(trans, t)
		}
	}
	return &Database{Items: src.NumItems(), Trans: trans}
}

// ItemFrequencies returns, for every item code, the number of transactions
// containing it.
func (db *Database) ItemFrequencies() []int {
	freq := make([]int, db.Items)
	for _, t := range db.Trans {
		for _, i := range t {
			freq[i]++
		}
	}
	return freq
}

// Transpose returns the transposed database: transaction k of db becomes
// item k of the result, and item i of db becomes transaction i. This is
// the gene-expression duality from §4 of the paper (genes as transactions
// vs. genes as items). Empty rows of the transposed database (items of db
// contained in no transaction) are kept so that Transpose∘Transpose is the
// identity up to trailing items.
func (db *Database) Transpose() *Database {
	trans := make([]itemset.Set, db.Items)
	freq := db.ItemFrequencies()
	for i, f := range freq {
		trans[i] = make(itemset.Set, 0, f)
	}
	for k, t := range db.Trans {
		for _, i := range t {
			trans[i] = append(trans[i], itemset.Item(k))
		}
	}
	return &Database{Items: len(db.Trans), Trans: trans}
}

// Stats summarises a database; the bench harness prints it next to every
// experiment so the workload shape (the paper's key variable) is visible.
type Stats struct {
	Transactions int
	Items        int     // universe size
	UsedItems    int     // items occurring at least once
	MinLen       int     // shortest transaction
	MaxLen       int     // longest transaction
	AvgLen       float64 // mean transaction length
	Density      float64 // AvgLen / UsedItems
}

// Stats computes summary statistics.
func (db *Database) Stats() Stats {
	s := Stats{Transactions: len(db.Trans), Items: db.Items}
	if len(db.Trans) == 0 {
		return s
	}
	used := 0
	for _, f := range db.ItemFrequencies() {
		if f > 0 {
			used++
		}
	}
	s.UsedItems = used
	s.MinLen = len(db.Trans[0])
	total := 0
	for _, t := range db.Trans {
		n := len(t)
		total += n
		if n < s.MinLen {
			s.MinLen = n
		}
		if n > s.MaxLen {
			s.MaxLen = n
		}
	}
	s.AvgLen = float64(total) / float64(len(db.Trans))
	if used > 0 {
		s.Density = s.AvgLen / float64(used)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d |B|=%d used=%d len[min=%d avg=%.1f max=%d] density=%.4f",
		s.Transactions, s.Items, s.UsedItems, s.MinLen, s.AvgLen, s.MaxLen, s.Density)
}

// Vertical is the vertical database view: for each item, the ascending
// list of indices of the transactions that contain it. The list-based
// Carpenter variant and LCM consume it.
type Vertical struct {
	Items int
	N     int // number of transactions
	Tids  [][]int32
}

// ToVertical builds the vertical view of db.
func (db *Database) ToVertical() *Vertical {
	v := &Vertical{Items: db.Items, N: len(db.Trans)}
	freq := db.ItemFrequencies()
	v.Tids = make([][]int32, db.Items)
	for i, f := range freq {
		v.Tids[i] = make([]int32, 0, f)
	}
	for k, t := range db.Trans {
		for _, i := range t {
			v.Tids[i] = append(v.Tids[i], int32(k))
		}
	}
	return v
}

// Matrix is the table representation of §3.1.2 (Table 1 of the paper):
//
//	M[k][i] = |{ j : k ≤ j < n, i ∈ t_j }|  if i ∈ t_k,
//	M[k][i] = 0                             otherwise.
//
// The entry simultaneously answers membership (non-zero) and "how many
// transactions from k on contain i" (the item-elimination counter).
type Matrix struct {
	Items int
	N     int
	M     [][]int32
}

// ToMatrix builds the table representation of db.
func (db *Database) ToMatrix() *Matrix {
	n := len(db.Trans)
	m := &Matrix{Items: db.Items, N: n}
	m.M = make([][]int32, n)
	if n == 0 {
		return m
	}
	flat := make([]int32, n*db.Items)
	for k := range m.M {
		m.M[k], flat = flat[:db.Items:db.Items], flat[db.Items:]
	}
	// Running counts of occurrences in t_k..t_{n-1}, filled back to front.
	remain := make([]int32, db.Items)
	for k := n - 1; k >= 0; k-- {
		for _, i := range db.Trans[k] {
			remain[i]++
		}
		row := m.M[k]
		for _, i := range db.Trans[k] {
			row[i] = remain[i]
		}
	}
	return m
}
