// Package dataset provides the transaction database representation shared
// by all miners, together with the preprocessing steps the paper relies on:
// infrequent-item removal, item recoding by frequency (§3.4: rarest item
// gets code 0), transaction ordering (§3.4: increasing size, ties broken
// lexicographically), database transposition (§4), and the horizontal /
// vertical / matrix views the individual algorithms consume.
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/itemset"
)

// Database is a transaction database over a dense item universe
// 0..Items-1. Transactions are canonical item sets (strictly ascending).
// Duplicate transactions are allowed and count separately, matching the
// paper's multiset semantics.
type Database struct {
	// Items is the size of the item universe. Item codes in transactions
	// are in [0, Items).
	Items int
	// Trans holds the transactions.
	Trans []itemset.Set
	// Names optionally maps item codes to external names. It may be nil;
	// if non-nil its length is Items.
	Names []string
}

// New builds a Database from raw transactions. The item universe is the
// smallest universe containing every item (or minItems if larger), so an
// explicitly empty universe is only possible for an empty database.
func New(trans []itemset.Set, minItems int) *Database {
	items := minItems
	for _, t := range trans {
		if len(t) > 0 {
			if top := int(t[len(t)-1]) + 1; top > items {
				items = top
			}
		}
	}
	return &Database{Items: items, Trans: trans}
}

// FromInts builds a small database from int literals; it is a test and
// example convenience.
func FromInts(rows ...[]int) *Database {
	trans := make([]itemset.Set, len(rows))
	for i, r := range rows {
		trans[i] = itemset.FromInts(r...)
	}
	return New(trans, 0)
}

// Clone returns a deep copy of the database.
func (db *Database) Clone() *Database {
	c := &Database{Items: db.Items}
	c.Trans = make([]itemset.Set, len(db.Trans))
	for i, t := range db.Trans {
		c.Trans[i] = t.Clone()
	}
	if db.Names != nil {
		c.Names = append([]string(nil), db.Names...)
	}
	return c
}

// Validate checks structural invariants. Miners call it on entry so that
// malformed input fails fast with a useful error instead of corrupting a
// repository.
func (db *Database) Validate() error {
	if db.Items < 0 {
		return fmt.Errorf("dataset: negative item universe %d", db.Items)
	}
	if db.Names != nil && len(db.Names) != db.Items {
		return fmt.Errorf("dataset: %d names for %d items", len(db.Names), db.Items)
	}
	for k, t := range db.Trans {
		if !t.IsCanonical() {
			return fmt.Errorf("dataset: transaction %d is not canonical: %v", k, t)
		}
		if len(t) > 0 {
			if t[0] < 0 || int(t[len(t)-1]) >= db.Items {
				return fmt.Errorf("dataset: transaction %d has item outside universe [0,%d): %v", k, db.Items, t)
			}
		}
	}
	return nil
}

// ItemFrequencies returns, for every item code, the number of transactions
// containing it.
func (db *Database) ItemFrequencies() []int {
	freq := make([]int, db.Items)
	for _, t := range db.Trans {
		for _, i := range t {
			freq[i]++
		}
	}
	return freq
}

// Transpose returns the transposed database: transaction k of db becomes
// item k of the result, and item i of db becomes transaction i. This is
// the gene-expression duality from §4 of the paper (genes as transactions
// vs. genes as items). Empty rows of the transposed database (items of db
// contained in no transaction) are kept so that Transpose∘Transpose is the
// identity up to trailing items.
func (db *Database) Transpose() *Database {
	trans := make([]itemset.Set, db.Items)
	freq := db.ItemFrequencies()
	for i, f := range freq {
		trans[i] = make(itemset.Set, 0, f)
	}
	for k, t := range db.Trans {
		for _, i := range t {
			trans[i] = append(trans[i], itemset.Item(k))
		}
	}
	return &Database{Items: len(db.Trans), Trans: trans}
}

// Stats summarises a database; the bench harness prints it next to every
// experiment so the workload shape (the paper's key variable) is visible.
type Stats struct {
	Transactions int
	Items        int     // universe size
	UsedItems    int     // items occurring at least once
	MinLen       int     // shortest transaction
	MaxLen       int     // longest transaction
	AvgLen       float64 // mean transaction length
	Density      float64 // AvgLen / UsedItems
}

// Stats computes summary statistics.
func (db *Database) Stats() Stats {
	s := Stats{Transactions: len(db.Trans), Items: db.Items}
	if len(db.Trans) == 0 {
		return s
	}
	used := 0
	for _, f := range db.ItemFrequencies() {
		if f > 0 {
			used++
		}
	}
	s.UsedItems = used
	s.MinLen = len(db.Trans[0])
	total := 0
	for _, t := range db.Trans {
		n := len(t)
		total += n
		if n < s.MinLen {
			s.MinLen = n
		}
		if n > s.MaxLen {
			s.MaxLen = n
		}
	}
	s.AvgLen = float64(total) / float64(len(db.Trans))
	if used > 0 {
		s.Density = s.AvgLen / float64(used)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d |B|=%d used=%d len[min=%d avg=%.1f max=%d] density=%.4f",
		s.Transactions, s.Items, s.UsedItems, s.MinLen, s.AvgLen, s.MaxLen, s.Density)
}

// ItemOrder selects how item codes are (re)assigned during preprocessing.
type ItemOrder int

const (
	// OrderAscFreq gives the rarest item code 0 (the paper's recommended
	// coding, §3.4).
	OrderAscFreq ItemOrder = iota
	// OrderDescFreq gives the most frequent item code 0.
	OrderDescFreq
	// OrderKeep keeps the original codes (after compaction).
	OrderKeep
)

func (o ItemOrder) String() string {
	switch o {
	case OrderAscFreq:
		return "items:asc-freq"
	case OrderDescFreq:
		return "items:desc-freq"
	case OrderKeep:
		return "items:keep"
	}
	return fmt.Sprintf("items:%d", int(o))
}

// TransOrder selects how transactions are ordered during preprocessing.
type TransOrder int

const (
	// OrderSizeAsc processes short transactions first (the paper's
	// recommendation: the prefix tree stays small early on).
	OrderSizeAsc TransOrder = iota
	// OrderSizeDesc processes long transactions first (the paper reports
	// this as clearly worse; kept for the §3.4 ablation).
	OrderSizeDesc
	// OrderOriginal keeps the input order.
	OrderOriginal
)

func (o TransOrder) String() string {
	switch o {
	case OrderSizeAsc:
		return "trans:size-asc"
	case OrderSizeDesc:
		return "trans:size-desc"
	case OrderOriginal:
		return "trans:original"
	}
	return fmt.Sprintf("trans:%d", int(o))
}

// Prepared is a preprocessed database: infrequent items removed, items
// recoded, transactions reordered, plus the bookkeeping needed to report
// results in the original item codes.
type Prepared struct {
	// DB is the preprocessed database (dense recoded universe).
	DB *Database
	// Decode maps a recoded item back to its original code.
	Decode []itemset.Item
	// Freq holds the frequency (in the full database) of each recoded
	// item; since the recoded universe only contains frequent items,
	// Freq[i] >= the minsup used for preparation.
	Freq []int
	// OrigTransactions is the number of transactions in the original
	// database (empty transactions are dropped from DB but still counted
	// here, matching the paper's support semantics).
	OrigTransactions int
}

// Prepare performs the standard preprocessing pipeline shared by all
// miners in this repository:
//
//  1. count item frequencies and drop items with frequency < minSupport
//     (no closed frequent item set can contain them — if an item occurs
//     in every transaction of a cover of size ≥ minsup it is itself
//     frequent);
//  2. recode the surviving items according to itemOrder;
//  3. drop transactions that became empty;
//  4. reorder transactions according to transOrder, ties broken by a
//     lexicographic comparison on descending item codes (§3.4).
//
// minSupport values below 1 are treated as 1.
func Prepare(db *Database, minSupport int, itemOrder ItemOrder, transOrder TransOrder) *Prepared {
	if minSupport < 1 {
		minSupport = 1
	}
	freq := db.ItemFrequencies()

	// Collect surviving items and decide their new codes.
	type itemFreq struct {
		item itemset.Item
		freq int
	}
	alive := make([]itemFreq, 0, db.Items)
	for i, f := range freq {
		if f >= minSupport {
			alive = append(alive, itemFreq{itemset.Item(i), f})
		}
	}
	switch itemOrder {
	case OrderAscFreq:
		sort.Slice(alive, func(a, b int) bool {
			if alive[a].freq != alive[b].freq {
				return alive[a].freq < alive[b].freq
			}
			return alive[a].item < alive[b].item
		})
	case OrderDescFreq:
		sort.Slice(alive, func(a, b int) bool {
			if alive[a].freq != alive[b].freq {
				return alive[a].freq > alive[b].freq
			}
			return alive[a].item < alive[b].item
		})
	case OrderKeep:
		// alive is already in ascending original-code order.
	}

	decode := make([]itemset.Item, len(alive))
	newFreq := make([]int, len(alive))
	encode := make([]itemset.Item, db.Items)
	for i := range encode {
		encode[i] = -1
	}
	for code, af := range alive {
		decode[code] = af.item
		newFreq[code] = af.freq
		encode[af.item] = itemset.Item(code)
	}

	trans := make([]itemset.Set, 0, len(db.Trans))
	for _, t := range db.Trans {
		nt := make(itemset.Set, 0, len(t))
		for _, i := range t {
			if c := encode[i]; c >= 0 {
				nt = append(nt, c)
			}
		}
		if len(nt) == 0 {
			continue
		}
		sort.Slice(nt, func(a, b int) bool { return nt[a] < nt[b] })
		trans = append(trans, nt)
	}

	switch transOrder {
	case OrderSizeAsc:
		sort.SliceStable(trans, func(a, b int) bool {
			if len(trans[a]) != len(trans[b]) {
				return len(trans[a]) < len(trans[b])
			}
			return lexDescLess(trans[a], trans[b])
		})
	case OrderSizeDesc:
		sort.SliceStable(trans, func(a, b int) bool {
			if len(trans[a]) != len(trans[b]) {
				return len(trans[a]) > len(trans[b])
			}
			return lexDescLess(trans[a], trans[b])
		})
	case OrderOriginal:
		// keep input order
	}

	return &Prepared{
		DB:               &Database{Items: len(alive), Trans: trans},
		Decode:           decode,
		Freq:             newFreq,
		OrigTransactions: len(db.Trans),
	}
}

// lexDescLess compares two transactions lexicographically on a descending
// listing of their item codes (the paper uses "a lexicographical order of
// the transactions based on a descending order of items in each
// transaction").
func lexDescLess(a, b itemset.Set) bool {
	i, j := len(a)-1, len(b)-1
	for i >= 0 && j >= 0 {
		if a[i] != b[j] {
			return a[i] < b[j]
		}
		i--
		j--
	}
	return i < 0 && j >= 0
}

// DecodeSet maps a recoded item set back to original codes, in canonical
// order.
func (p *Prepared) DecodeSet(s itemset.Set) itemset.Set {
	out := make(itemset.Set, len(s))
	for i, c := range s {
		out[i] = p.Decode[c]
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Vertical is the vertical database view: for each item, the ascending
// list of indices of the transactions that contain it. The list-based
// Carpenter variant and LCM consume it.
type Vertical struct {
	Items int
	N     int // number of transactions
	Tids  [][]int32
}

// ToVertical builds the vertical view of db.
func (db *Database) ToVertical() *Vertical {
	v := &Vertical{Items: db.Items, N: len(db.Trans)}
	freq := db.ItemFrequencies()
	v.Tids = make([][]int32, db.Items)
	for i, f := range freq {
		v.Tids[i] = make([]int32, 0, f)
	}
	for k, t := range db.Trans {
		for _, i := range t {
			v.Tids[i] = append(v.Tids[i], int32(k))
		}
	}
	return v
}

// Matrix is the table representation of §3.1.2 (Table 1 of the paper):
//
//	M[k][i] = |{ j : k ≤ j < n, i ∈ t_j }|  if i ∈ t_k,
//	M[k][i] = 0                             otherwise.
//
// The entry simultaneously answers membership (non-zero) and "how many
// transactions from k on contain i" (the item-elimination counter).
type Matrix struct {
	Items int
	N     int
	M     [][]int32
}

// ToMatrix builds the table representation of db.
func (db *Database) ToMatrix() *Matrix {
	n := len(db.Trans)
	m := &Matrix{Items: db.Items, N: n}
	m.M = make([][]int32, n)
	if n == 0 {
		return m
	}
	flat := make([]int32, n*db.Items)
	for k := range m.M {
		m.M[k], flat = flat[:db.Items:db.Items], flat[db.Items:]
	}
	// Running counts of occurrences in t_k..t_{n-1}, filled back to front.
	remain := make([]int32, db.Items)
	for k := n - 1; k >= 0; k-- {
		for _, i := range db.Trans[k] {
			remain[i]++
		}
		row := m.M[k]
		for _, i := range db.Trans[k] {
			row[i] = remain[i]
		}
	}
	return m
}
