package dataset

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// TestReadLimitedTxLen rejects a line with more items than MaxTxLen,
// reporting the real input line number (comments counted), and accepts
// inputs exactly at the limit.
func TestReadLimitedTxLen(t *testing.T) {
	in := "# header comment\n1 2\n0 1 2 3 4\n3 4\n"
	_, err := ReadLimited(strings.NewReader(in), Limits{MaxTxLen: 4})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, not a *LimitError", err)
	}
	if le.Line != 3 || le.Value != 5 || le.Max != 4 {
		t.Errorf("limit error = %+v, want line 3 value 5 max 4", le)
	}

	db, err := ReadLimited(strings.NewReader(in), Limits{MaxTxLen: 5})
	if err != nil {
		t.Fatalf("at-limit input rejected: %v", err)
	}
	if len(db.Trans) != 3 {
		t.Errorf("got %d transactions, want 3", len(db.Trans))
	}
}

// TestReadLimitedMaxItemsNumeric rejects a numeric item code at or above
// MaxItems — the single-line attack that would otherwise size every
// universe-indexed allocation in the pipeline.
func TestReadLimitedMaxItemsNumeric(t *testing.T) {
	in := "0 1\n2 2000000000\n"
	_, err := ReadLimited(strings.NewReader(in), Limits{MaxItems: 1000})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LimitError", err)
	}
	if le.Line != 2 || le.Value != 2000000000 || le.Max != 1000 {
		t.Errorf("limit error = %+v, want line 2", le)
	}

	if _, err := ReadLimited(strings.NewReader("0 999\n"), Limits{MaxItems: 1000}); err != nil {
		t.Errorf("code MaxItems-1 rejected: %v", err)
	}
	if _, err := ReadLimited(strings.NewReader("0 1000\n"), Limits{MaxItems: 1000}); !errors.Is(err, ErrLimit) {
		t.Errorf("code == MaxItems accepted (err=%v)", err)
	}
}

// TestReadLimitedMaxItemsNamed rejects a named input once it would
// introduce more distinct names than MaxItems.
func TestReadLimitedMaxItemsNamed(t *testing.T) {
	in := "apple bread\ncheese apple\ndates\n"
	db, err := ReadLimited(strings.NewReader(in), Limits{MaxItems: 4})
	if err != nil {
		t.Fatalf("4 distinct names rejected at MaxItems=4: %v", err)
	}
	if db.Items != 4 {
		t.Errorf("universe = %d, want 4", db.Items)
	}

	_, err = ReadLimited(strings.NewReader(in), Limits{MaxItems: 2})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LimitError", err)
	}
	if le.Line != 2 {
		t.Errorf("limit error on line %d, want 2 (third name appears there)", le.Line)
	}
}

// TestReadLimitedZeroIsUnlimited keeps the historic behavior for the
// zero value: Read == ReadLimited(Limits{}).
func TestReadLimitedZeroIsUnlimited(t *testing.T) {
	in := "0 1 2 3 4 5 6 7 8 9\n"
	db, err := ReadLimited(strings.NewReader(in), Limits{})
	if err != nil {
		t.Fatalf("unlimited read failed: %v", err)
	}
	if len(db.Trans) != 1 || db.Items != 10 {
		t.Errorf("db = %d trans, %d items", len(db.Trans), db.Items)
	}
	if Limits := (Limits{}); Limits.Enabled() {
		t.Error("zero Limits reports Enabled")
	}
}

// TestReadFileLimitedWrapsLimitError keeps errors.As working through the
// path-prefixed wrapper.
func TestReadFileLimitedWrapsLimitError(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/db.dat"
	if err := os.WriteFile(path, []byte("0 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFileLimited(path, Limits{MaxTxLen: 2})
	var le *LimitError
	if !errors.As(err, &le) || !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want wrapped *LimitError", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error %q does not name the file", err)
	}
}
