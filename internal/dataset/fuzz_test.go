package dataset

import (
	"strings"
	"testing"
)

// FuzzReadWriteRoundTrip feeds arbitrary text to the FIMI reader; whatever
// parses must survive a write/read round trip unchanged.
func FuzzReadWriteRoundTrip(f *testing.F) {
	f.Add("1 2 3\n4 5\n")
	f.Add("")
	f.Add("bread milk\nbeer\n")
	f.Add("0\n0 0 0\n\n7")
	f.Add("# comment\n9 3 9\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		db, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("Read produced an invalid database: %v", err)
		}
		var sb strings.Builder
		if err := Write(&sb, db); err != nil {
			t.Fatal(err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back.Trans) != len(db.Trans) {
			t.Fatalf("round trip changed row count: %d -> %d", len(db.Trans), len(back.Trans))
		}
		for k := range db.Trans {
			if !back.Trans[k].Equal(db.Trans[k]) {
				// Named databases re-encode codes by first appearance,
				// which Write preserves, so sets must match exactly.
				t.Fatalf("row %d changed: %v -> %v", k, db.Trans[k], back.Trans[k])
			}
		}
	})
}

// FuzzPrepareInvariants checks the preprocessing invariants on arbitrary
// databases decoded from fuzz bytes.
func FuzzPrepareInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 5}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{255, 0, 255, 0}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, minsupRaw uint8) {
		if len(raw) > 4096 {
			return
		}
		db := dbFromBytes(raw)
		minsup := int(minsupRaw%8) + 1
		p := Prepare(db, minsup, OrderAscFreq, OrderSizeAsc)
		if p.OrigTransactions != len(db.Trans) {
			t.Fatalf("OrigTransactions = %d, want %d", p.OrigTransactions, len(db.Trans))
		}
		if err := p.DB.Validate(); err != nil {
			t.Fatalf("prepared db invalid: %v", err)
		}
		// Every surviving item is frequent, and frequencies are exact.
		freq := make([]int, p.DB.Items)
		for _, tr := range p.DB.Trans {
			if len(tr) == 0 {
				t.Fatal("empty transaction survived preparation")
			}
			for _, i := range tr {
				freq[i]++
			}
		}
		for i, got := range freq {
			if p.Freq[i] < minsup {
				t.Fatalf("item %d kept with frequency %d < %d", i, p.Freq[i], minsup)
			}
			if got != p.Freq[i] {
				t.Fatalf("item %d: recorded freq %d, actual %d", i, p.Freq[i], got)
			}
		}
		// Decode is a bijection into the original universe.
		seen := map[int32]bool{}
		for _, orig := range p.Decode {
			if orig < 0 || int(orig) >= db.Items || seen[orig] {
				t.Fatalf("decode not a bijection: %v", p.Decode)
			}
			seen[orig] = true
		}
	})
}

// dbFromBytes deterministically decodes fuzz bytes into a small database:
// each byte contributes an item (value mod 16); byte value 0 starts a new
// transaction.
func dbFromBytes(raw []byte) *Database {
	var rows [][]int
	cur := []int{}
	for _, b := range raw {
		if b == 0 {
			rows = append(rows, cur)
			cur = []int{}
			continue
		}
		cur = append(cur, int(b%16))
	}
	rows = append(rows, cur)
	return FromInts(rows...)
}
