package dataset

import (
	"strings"
	"testing"
)

// FuzzReadWriteRoundTrip feeds arbitrary text to the FIMI reader; whatever
// parses must survive a write/read round trip unchanged.
func FuzzReadWriteRoundTrip(f *testing.F) {
	f.Add("1 2 3\n4 5\n")
	f.Add("")
	f.Add("bread milk\nbeer\n")
	f.Add("0\n0 0 0\n\n7")
	f.Add("# comment\n9 3 9\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		db, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("Read produced an invalid database: %v", err)
		}
		var sb strings.Builder
		if err := Write(&sb, db); err != nil {
			t.Fatal(err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back.Trans) != len(db.Trans) {
			t.Fatalf("round trip changed row count: %d -> %d", len(db.Trans), len(back.Trans))
		}
		for k := range db.Trans {
			if !back.Trans[k].Equal(db.Trans[k]) {
				// Named databases re-encode codes by first appearance,
				// which Write preserves, so sets must match exactly.
				t.Fatalf("row %d changed: %v -> %v", k, db.Trans[k], back.Trans[k])
			}
		}
	})
}

// The preprocessing fuzz test (FuzzPrepareInvariants) lives in
// internal/prep with the pipeline it checks.
