package dataset

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
)

// paperDB is the example transaction database from Table 1 of the paper,
// with a=0, b=1, c=2, d=3, e=4.
func paperDB() *Database {
	return FromInts(
		[]int{0, 1, 2},    // t1 = a b c
		[]int{0, 3, 4},    // t2 = a d e
		[]int{1, 2, 3},    // t3 = b c d
		[]int{0, 1, 2, 3}, // t4 = a b c d
		[]int{1, 2},       // t5 = b c
		[]int{0, 1, 3},    // t6 = a b d
		[]int{3, 4},       // t7 = d e
		[]int{2, 3, 4},    // t8 = c d e
	)
}

func TestNewUniverse(t *testing.T) {
	db := FromInts([]int{0, 5}, []int{2})
	if db.Items != 6 {
		t.Fatalf("Items = %d, want 6", db.Items)
	}
	db2 := New([]itemset.Set{itemset.FromInts(1)}, 10)
	if db2.Items != 10 {
		t.Fatalf("Items = %d, want 10", db2.Items)
	}
}

func TestValidate(t *testing.T) {
	db := paperDB()
	if err := db.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := &Database{Items: 2, Trans: []itemset.Set{{0, 5}}}
	if err := bad.Validate(); err == nil {
		t.Error("expected out-of-universe error")
	}
	bad2 := &Database{Items: 3, Trans: []itemset.Set{{2, 1}}}
	if err := bad2.Validate(); err == nil {
		t.Error("expected non-canonical error")
	}
	bad3 := &Database{Items: 3, Names: []string{"x"}}
	if err := bad3.Validate(); err == nil {
		t.Error("expected names-length error")
	}
}

func TestItemFrequencies(t *testing.T) {
	got := paperDB().ItemFrequencies()
	want := []int{4, 5, 5, 6, 3} // a,b,c,d,e per Table 1's first row counters
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("frequencies = %v, want %v", got, want)
	}
}

// TestMatrixPaperTable1 reproduces Table 1 of the paper exactly.
func TestMatrixPaperTable1(t *testing.T) {
	m := paperDB().ToMatrix()
	want := [][]int32{
		{4, 5, 5, 0, 0},
		{3, 0, 0, 6, 3},
		{0, 4, 4, 5, 0},
		{2, 3, 3, 4, 0},
		{0, 2, 2, 0, 0},
		{1, 1, 0, 3, 0},
		{0, 0, 0, 2, 2},
		{0, 0, 1, 1, 1},
	}
	if !reflect.DeepEqual(m.M, want) {
		t.Fatalf("matrix =\n%v\nwant\n%v", m.M, want)
	}
}

func TestMatrixEmpty(t *testing.T) {
	m := (&Database{Items: 3}).ToMatrix()
	if m.N != 0 || len(m.M) != 0 {
		t.Fatal("empty database should give empty matrix")
	}
}

func TestVertical(t *testing.T) {
	v := paperDB().ToVertical()
	want := [][]int32{
		{0, 1, 3, 5},    // a
		{0, 2, 3, 4, 5}, // b
		{0, 2, 3, 4, 7}, // c
		{1, 2, 3, 5, 6, 7},
		{1, 6, 7},
	}
	if !reflect.DeepEqual(v.Tids, want) {
		t.Fatalf("vertical = %v, want %v", v.Tids, want)
	}
}

func TestTranspose(t *testing.T) {
	db := FromInts([]int{0, 1}, []int{1, 2})
	tr := db.Transpose()
	if tr.Items != 2 {
		t.Fatalf("transposed universe = %d", tr.Items)
	}
	want := []itemset.Set{
		itemset.FromInts(0),
		itemset.FromInts(0, 1),
		itemset.FromInts(1),
	}
	if !reflect.DeepEqual(tr.Trans, want) {
		t.Fatalf("transpose = %v, want %v", tr.Trans, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		db := randDB(rng, 12, 10, 0.4)
		back := db.Transpose().Transpose()
		// Transpose keeps empty rows, so transposing twice restores the
		// database exactly (universe and all transactions).
		if back.Items != db.Items {
			t.Fatalf("universe changed: %d -> %d", db.Items, back.Items)
		}
		if len(back.Trans) != len(db.Trans) {
			t.Fatalf("transpose² rows = %d, want %d", len(back.Trans), len(db.Trans))
		}
		for k := range db.Trans {
			if !back.Trans[k].Equal(db.Trans[k]) {
				t.Fatalf("transpose² row %d = %v, want %v", k, back.Trans[k], db.Trans[k])
			}
		}
	}
}

func randDB(rng *rand.Rand, items, n int, density float64) *Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return New(trans, items)
}

func TestStats(t *testing.T) {
	s := paperDB().Stats()
	if s.Transactions != 8 || s.Items != 5 || s.UsedItems != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinLen != 2 || s.MaxLen != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgLen < 2.87 || s.AvgLen > 2.88 {
		t.Fatalf("avg = %v", s.AvgLen)
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String = %q", s.String())
	}
	empty := (&Database{Items: 3}).Stats()
	if empty.Transactions != 0 {
		t.Fatal("empty stats")
	}
}

func TestReadNumeric(t *testing.T) {
	in := "1 5 3\n\n2 2 4\n# comment\n0\n"
	db, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Items != 6 {
		t.Fatalf("Items = %d", db.Items)
	}
	want := []itemset.Set{
		itemset.FromInts(1, 3, 5),
		{},
		itemset.FromInts(2, 4), // duplicate item collapsed
		itemset.FromInts(0),
	}
	if !reflect.DeepEqual(db.Trans, want) {
		t.Fatalf("trans = %v, want %v", db.Trans, want)
	}
}

func TestReadNamed(t *testing.T) {
	in := "bread milk\nmilk butter\n"
	db, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Items != 3 || len(db.Names) != 3 {
		t.Fatalf("Items = %d Names = %v", db.Items, db.Names)
	}
	if db.Names[0] != "bread" || db.Names[1] != "milk" || db.Names[2] != "butter" {
		t.Fatalf("Names = %v", db.Names)
	}
}

func TestReadRejectsNegative(t *testing.T) {
	if _, err := Read(strings.NewReader("1 -2\n")); err == nil {
		t.Fatal("expected error for negative item")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		db := randDB(rng, 20, 15, 0.3)
		var sb strings.Builder
		if err := Write(&sb, db); err != nil {
			t.Fatal(err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Trans) != len(db.Trans) {
			t.Fatalf("rows %d != %d", len(back.Trans), len(db.Trans))
		}
		for k := range db.Trans {
			if !back.Trans[k].Equal(db.Trans[k]) {
				t.Fatalf("row %d: %v != %v", k, back.Trans[k], db.Trans[k])
			}
		}
	}
}

// TestWriteBadNameCode: an item code outside the name table must surface
// as a descriptive error, not an index-out-of-range panic.
func TestWriteBadNameCode(t *testing.T) {
	db := FromInts([]int{0, 1, 2})
	db.Names = []string{"a", "b"} // code 2 has no name
	var sb strings.Builder
	err := Write(&sb, db)
	if err == nil {
		t.Fatal("expected error for item code outside the name table")
	}
	for _, frag := range []string{"transaction 0", "item code 2", "2 names"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/db.dat"
	db := paperDB()
	if err := WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Trans) != 8 {
		t.Fatalf("rows = %d", len(back.Trans))
	}
	if _, err := ReadFile(dir + "/missing.dat"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestCloneDeep(t *testing.T) {
	db := paperDB()
	c := db.Clone()
	c.Trans[0][0] = 4
	if db.Trans[0][0] != 0 {
		t.Fatal("Clone shares transaction storage")
	}
}

func TestQuickMatrixDefinition(t *testing.T) {
	// Property: the matrix entries satisfy their defining equation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randDB(rng, 8, 9, 0.4)
		m := db.ToMatrix()
		for k := 0; k < m.N; k++ {
			for i := 0; i < db.Items; i++ {
				want := int32(0)
				if db.Trans[k].Contains(itemset.Item(i)) {
					for j := k; j < m.N; j++ {
						if db.Trans[j].Contains(itemset.Item(i)) {
							want++
						}
					}
				}
				if m.M[k][i] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVerticalDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randDB(rng, 10, 12, 0.35)
		v := db.ToVertical()
		for i := 0; i < db.Items; i++ {
			var want []int32
			for k, tr := range db.Trans {
				if tr.Contains(itemset.Item(i)) {
					want = append(want, int32(k))
				}
			}
			if len(want) != len(v.Tids[i]) {
				return false
			}
			for j := range want {
				if want[j] != v.Tids[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
