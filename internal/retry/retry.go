// Package retry holds the self-healing runtime's retry policies and
// error classification. A Policy bounds how often a failed operation may
// be re-attempted and how long to back off between attempts (capped
// exponential growth with deterministic, seeded jitter — two runs with
// the same seed sleep the same schedule, which keeps fault-injection
// tests reproducible).
//
// Classification is interface-driven: an error is retryable only when
// something in its chain implements `Transient() bool` and answers true.
// The outermost marker wins, so a layer that knows better can veto an
// inner classification — internal/persist wraps fsync failures with
// MarkPermanent even when a fault injector marked them transient,
// because a failed fsync leaves the kernel page cache in an unknown
// state and must stay fail-stop. Deliberate stops (cancellation,
// deadlines, budget trips) never implement the interface and are
// therefore permanent by construction.
package retry

import (
	"errors"
	"math/rand"
	"time"
)

// Transienter is implemented by errors that know whether the condition
// they report is worth retrying. Wrap with MarkTransient / MarkPermanent
// to attach the classification to an arbitrary error.
type Transienter interface {
	Transient() bool
}

// IsTransient reports whether err is classified retryable: the first
// (outermost) error in the chain implementing Transienter decides, and
// an unclassified chain is permanent.
func IsTransient(err error) bool {
	var t Transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// marked attaches a Transient classification to an error chain.
type marked struct {
	err       error
	transient bool
}

func (m *marked) Error() string   { return m.err.Error() }
func (m *marked) Unwrap() error   { return m.err }
func (m *marked) Transient() bool { return m.transient }

// MarkTransient classifies err as retryable. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, transient: true}
}

// MarkPermanent classifies err as not retryable, overriding any
// transient marker deeper in the chain (the outermost marker wins).
// A nil err stays nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, transient: false}
}

// Policy bounds the retries of a failing operation. The zero value
// disables retrying entirely (Enabled reports false), which is the
// default everywhere: healing is strictly opt-in.
type Policy struct {
	// MaxAttempts is the number of re-attempts after the initial failure;
	// values <= 0 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt up to MaxDelay. Zero sleeps not at all (the common choice
	// for in-process re-mining, where the failed work is CPU-bound and
	// waiting buys nothing).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; 0 selects 64 × BaseDelay.
	MaxDelay time.Duration
	// Seed drives the deterministic jitter: the delay before attempt k is
	// drawn from [delay/2, delay) by a PRNG seeded with Seed and k, so
	// equal seeds back off identically. With Seed 0 the jitter is still
	// deterministic (seeded with 0).
	Seed int64
}

// Enabled reports whether the policy allows any retry.
func (p Policy) Enabled() bool { return p.MaxAttempts > 0 }

// Backoff returns the delay to wait before retry attempt (1-based):
// capped exponential growth from BaseDelay with deterministic seeded
// jitter in [delay/2, delay). A zero BaseDelay returns 0.
func (p Policy) Backoff(attempt int) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 64 * p.BaseDelay
	}
	d := p.BaseDelay
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Equal jitter, deterministically derived from (Seed, attempt).
	rng := rand.New(rand.NewSource(p.Seed ^ int64(uint64(attempt)*0x9e3779b97f4a7c15)))
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rng.Int63n(half))
}

// Sleep blocks for the attempt's backoff delay, returning early with
// false if done closes first. It returns true when the caller should
// proceed with the retry.
func (p Policy) Sleep(done <-chan struct{}, attempt int) bool {
	d := p.Backoff(attempt)
	if d <= 0 {
		select {
		case <-done:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}

// Do runs op, retrying per the policy while the failure classifies as
// transient (IsTransient). onRetry, when non-nil, is invoked before each
// re-attempt with the 1-based attempt number and the error being
// retried. Do returns nil on the first success and the last error once
// attempts are exhausted, the error turns permanent, or done closes
// during a backoff sleep.
func (p Policy) Do(done <-chan struct{}, onRetry func(attempt int, err error), op func() error) error {
	err := op()
	if err == nil || !p.Enabled() {
		return err
	}
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if !IsTransient(err) {
			return err
		}
		if !p.Sleep(done, attempt) {
			return err
		}
		if onRetry != nil {
			onRetry(attempt, err)
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return err
}
