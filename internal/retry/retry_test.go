package retry

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestClassification(t *testing.T) {
	base := errors.New("boom")
	if IsTransient(base) {
		t.Error("unclassified error must be permanent")
	}
	if IsTransient(nil) {
		t.Error("nil must be permanent")
	}
	if !IsTransient(MarkTransient(base)) {
		t.Error("MarkTransient not recognized")
	}
	if IsTransient(MarkPermanent(base)) {
		t.Error("MarkPermanent must be permanent")
	}
	// The outermost marker wins: a layer can veto an inner transient
	// classification (the fsync rule in internal/persist).
	if IsTransient(MarkPermanent(MarkTransient(base))) {
		t.Error("outer MarkPermanent must override inner MarkTransient")
	}
	if !IsTransient(MarkTransient(MarkPermanent(base))) {
		t.Error("outer MarkTransient must override inner MarkPermanent")
	}
	// Wrapping with fmt.Errorf keeps the classification reachable.
	if !IsTransient(fmt.Errorf("context: %w", MarkTransient(base))) {
		t.Error("classification lost through fmt.Errorf wrapping")
	}
	// errors.Is still sees through the marker.
	if !errors.Is(MarkTransient(base), base) {
		t.Error("MarkTransient must unwrap to the original error")
	}
	if MarkTransient(nil) != nil || MarkPermanent(nil) != nil {
		t.Error("marking nil must stay nil")
	}
}

func TestBackoffDeterministic(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Seed: 42}
	q := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Seed: 42}
	for a := 1; a <= 5; a++ {
		d1, d2 := p.Backoff(a), q.Backoff(a)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed gave different delays %v vs %v", a, d1, d2)
		}
		if d1 > 60*time.Millisecond {
			t.Fatalf("attempt %d: delay %v exceeds cap", a, d1)
		}
		if d1 <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v with positive base", a, d1)
		}
	}
	if (Policy{MaxAttempts: 3}).Backoff(2) != 0 {
		t.Error("zero BaseDelay must not sleep")
	}
}

func TestDoRetriesTransient(t *testing.T) {
	calls, retries := 0, 0
	err := Policy{MaxAttempts: 3}.Do(nil, func(int, error) { retries++ }, func() error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want healed nil", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3 and 2", calls, retries)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	err := Policy{MaxAttempts: 5}.Do(nil, nil, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the permanent error after one call", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	inner := errors.New("always down")
	err := Policy{MaxAttempts: 2}.Do(nil, nil, func() error {
		calls++
		return MarkTransient(inner)
	})
	if !errors.Is(err, inner) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want the last error after 1+2 calls", err, calls)
	}
}

func TestDoDisabledPolicy(t *testing.T) {
	calls := 0
	err := Policy{}.Do(nil, nil, func() error {
		calls++
		return MarkTransient(errors.New("x"))
	})
	if err == nil || calls != 1 {
		t.Fatalf("zero policy must not retry (err=%v calls=%d)", err, calls)
	}
}

func TestSleepCanceled(t *testing.T) {
	done := make(chan struct{})
	close(done)
	p := Policy{MaxAttempts: 1, BaseDelay: time.Hour}
	start := time.Now()
	if p.Sleep(done, 1) {
		t.Error("Sleep must report cancellation on a closed done channel")
	}
	if time.Since(start) > time.Second {
		t.Error("Sleep blocked despite closed done channel")
	}
}
