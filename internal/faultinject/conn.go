package faultinject

import (
	"net"
	"sync"
	"time"
)

// SlowConn wraps a net.Conn and degrades it the way a slow or hung peer
// does: every Read and Write first waits Delay (a trickling client), and
// Hang blocks the next operation until the connection is closed (a
// client that went away mid-request without closing its socket). The
// server-level chaos suite uses it client-side against a live server to
// prove that slow and hung clients neither wedge the accept loop nor
// hold admission slots.
//
// Close unblocks any hung operation with net.ErrClosed, so tests can
// always release the injected stall deterministically.
type SlowConn struct {
	net.Conn
	// Delay is waited before every Read and Write.
	Delay time.Duration

	mu     sync.Mutex
	hung   bool
	closed chan struct{}
	once   sync.Once
}

// NewSlowConn wraps c so every Read and Write stalls for delay first.
func NewSlowConn(c net.Conn, delay time.Duration) *SlowConn {
	return &SlowConn{Conn: c, Delay: delay, closed: make(chan struct{})}
}

// Hang makes every subsequent Read and Write block until Close — the
// injected equivalent of a peer that stopped mid-request but kept the
// socket open.
func (c *SlowConn) Hang() {
	c.mu.Lock()
	c.hung = true
	c.mu.Unlock()
}

// stall waits out the configured delay (or forever, when hung) and
// reports whether the connection was closed while waiting.
func (c *SlowConn) stall() error {
	c.mu.Lock()
	hung := c.hung
	c.mu.Unlock()
	if hung {
		<-c.closed
		return net.ErrClosed
	}
	if c.Delay <= 0 {
		return nil
	}
	select {
	case <-time.After(c.Delay):
		return nil
	case <-c.closed:
		return net.ErrClosed
	}
}

func (c *SlowConn) Read(p []byte) (int, error) {
	if err := c.stall(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *SlowConn) Write(p []byte) (int, error) {
	if err := c.stall(); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// Close closes the underlying connection and releases any operation
// blocked in a Hang or Delay stall.
func (c *SlowConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}
