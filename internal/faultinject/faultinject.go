// Package faultinject is the fault-injection harness for the guarded
// execution layer (internal/guard): misbehaving reporters, deterministic
// panic and deadline injection into the cooperative tick checks every
// miner runs under, and panic injection into prefix-tree node
// allocation — which fires inside whatever goroutine grows the tree, so
// it exercises worker-panic containment in the parallel engines.
//
// The injectors that arm global seams (PanicAtTick, DeadlineAtTick,
// PanicAtTreeNode) return a restore function. Arming and disarming the
// tick seams is race-free even while runs are active (Controls sample
// the hook atomically at construction), but deterministic injection
// still requires arming before the target run starts — a running miner's
// Controls keep the hook they sampled. The conformance suite in the
// repository root drives every algorithm through them.
package faultinject

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/result"
	"repro/internal/retry"
)

// ReporterFault is the value a failing reporter panics with; the guarded
// layer is expected to contain it into a *guard.PanicError.
type ReporterFault struct {
	// N is the 1-based index of the report that failed.
	N int
}

func (f ReporterFault) String() string {
	return fmt.Sprintf("injected reporter fault at report %d", f.N)
}

// FailingReporter forwards to inner and panics with a ReporterFault on
// the n-th report (1-based); the inner reporter sees exactly n-1
// patterns. It simulates a downstream consumer that blows up mid-stream.
func FailingReporter(n int, inner result.Reporter) result.Reporter {
	count := 0
	return result.ReporterFunc(func(items itemset.Set, support int) {
		count++
		if count >= n {
			panic(ReporterFault{N: count})
		}
		inner.Report(items, support)
	})
}

// FlakyReporter forwards to inner but silently drops every k-th report
// (1-based; k < 1 drops nothing). It simulates a lossy consumer: miners
// must complete normally regardless of what the reporter does with the
// patterns.
func FlakyReporter(k int, inner result.Reporter) result.Reporter {
	count := 0
	return result.ReporterFunc(func(items itemset.Set, support int) {
		count++
		if k >= 1 && count%k == 0 {
			return
		}
		inner.Report(items, support)
	})
}

// TickFault is the value tick-injected panics carry.
type TickFault struct {
	// K is the global tick count at which the fault fired.
	K int64
}

func (f TickFault) String() string {
	return fmt.Sprintf("injected tick fault at tick %d", f.K)
}

// PanicAtTick arms a global fault: the k-th cooperative tick check
// (counted across all controls and workers of all subsequent runs)
// panics with a TickFault. For parallel engines the panic fires inside a
// worker goroutine, exercising worker-panic containment. The check
// amortization interval is forced to 1 so every Tick checks. Call the
// returned function to disarm.
func PanicAtTick(k int64) (restore func()) {
	restoreInterval := mining.SetCheckInterval(1)
	var ticks atomic.Int64
	restoreHook := mining.SetTickHook(func() error {
		if t := ticks.Add(1); t >= k {
			panic(TickFault{K: t})
		}
		return nil
	})
	return func() {
		restoreHook()
		restoreInterval()
	}
}

// DeadlineAtTick arms a global fault: from the k-th cooperative tick
// check on (counted across all controls and workers), every check
// reports guard.ErrDeadline — a deterministic stand-in for an expired
// wall-clock deadline, with no real clock involved. Call the returned
// function to disarm.
func DeadlineAtTick(k int64) (restore func()) {
	restoreInterval := mining.SetCheckInterval(1)
	var ticks atomic.Int64
	restoreHook := mining.SetTickHook(func() error {
		if ticks.Add(1) >= k {
			return guard.ErrDeadline
		}
		return nil
	})
	return func() {
		restoreHook()
		restoreInterval()
	}
}

// TreeFault is the value tree-allocation panics carry.
type TreeFault struct {
	// Live is the live node count at which the fault fired.
	Live int
}

func (f TreeFault) String() string {
	return fmt.Sprintf("injected tree fault at node %d", f.Live)
}

// PanicAtTreeNode arms a global fault: the allocation that brings any
// core prefix tree to n live nodes panics with a TreeFault, inside
// whichever goroutine grew the tree (a shard worker in the parallel IsTa
// engine). Call the returned function to disarm.
func PanicAtTreeNode(n int) (restore func()) {
	core.TestHookAlloc = func(live int) {
		if live >= n {
			panic(TreeFault{Live: live})
		}
	}
	return func() { core.TestHookAlloc = nil }
}

// PanicAtTreeNodeOnce is PanicAtTreeNode with a consume-once trigger:
// the first allocation (in any goroutine) reaching n live nodes panics,
// and the fault then disarms itself — a re-mined shard succeeds. It is
// the canonical "heals on retry" fault for the self-healing supervisor.
func PanicAtTreeNodeOnce(n int) (restore func()) {
	var fired atomic.Bool
	core.TestHookAlloc = func(live int) {
		if live >= n && !fired.Swap(true) {
			panic(TreeFault{Live: live})
		}
	}
	return func() { core.TestHookAlloc = nil }
}

// TransientErrAtTick arms a global fault: from the k-th cooperative tick
// check on (counted across all controls and workers), every check fails
// with an error classified retryable (retry.MarkTransient wrapping
// ErrIO's tick analogue). Unlike a panic the failure is persistent, so
// it exercises retry exhaustion: a supervisor re-mining the failed unit
// keeps failing until its attempt budget runs out. Call the returned
// function to disarm.
func TransientErrAtTick(k int64) (restore func()) {
	restoreInterval := mining.SetCheckInterval(1)
	var ticks atomic.Int64
	restoreHook := mining.SetTickHook(func() error {
		if t := ticks.Add(1); t >= k {
			return retry.MarkTransient(fmt.Errorf("injected transient fault at tick %d: %w", t, ErrChaos))
		}
		return nil
	})
	return func() {
		restoreHook()
		restoreInterval()
	}
}
