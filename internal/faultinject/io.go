package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/persist"
	"repro/internal/retry"
)

// ErrIO is the error injected I/O faults carry; persist must surface it
// (wrapped) instead of panicking or silently succeeding.
var ErrIO = errors.New("faultinject: injected I/O fault")

// FaultFS wraps a persist.FS and injects one write-path fault: the Nth
// mutating operation — file write, file sync, file close, create,
// rename or directory sync — fails, and every mutating operation after
// it fails too, simulating the process dying at that point. In short
// mode a Write fault first writes half its bytes (a torn write) before
// failing. Read-side operations pass through untouched, so the dying
// session's own recovery attempts see the real files.
//
// With FailAt 0 the wrapper never fails and merely counts, which sizes
// a crash-point sweep: run once cleanly, read Ops, then rerun once per
// operation index.
type FaultFS struct {
	inner     persist.FS
	failAt    int64
	short     bool
	transient bool
	ops       atomic.Int64
	crashed   atomic.Bool
}

// NewFaultFS wraps inner so that the failAt-th mutating operation
// (1-based; 0 = never) fails — with a short write first when short is
// set — and the file system behaves as crashed from then on.
func NewFaultFS(inner persist.FS, failAt int64, short bool) *FaultFS {
	return &FaultFS{inner: inner, failAt: failAt, short: short}
}

// NewTransientFaultFS wraps inner so that exactly the failAt-th mutating
// operation (1-based; 0 = never) fails once, with an error classified
// retryable (retry.MarkTransient); every operation before and after
// succeeds. It simulates a hiccup — EINTR, a momentary ENOSPC — rather
// than a dying process, and is what the store's Options.Retry is meant
// to heal.
func NewTransientFaultFS(inner persist.FS, failAt int64) *FaultFS {
	return &FaultFS{inner: inner, failAt: failAt, transient: true}
}

// Ops returns the number of mutating operations seen so far.
func (f *FaultFS) Ops() int64 { return f.ops.Load() }

// Crashed reports whether the fault has fired.
func (f *FaultFS) Crashed() bool { return f.crashed.Load() }

// trip counts one mutating operation and reports whether it must fail.
func (f *FaultFS) trip() bool {
	if f.transient {
		return f.ops.Add(1) == f.failAt && f.failAt > 0
	}
	if f.crashed.Load() {
		return true
	}
	if n := f.ops.Add(1); f.failAt > 0 && n >= f.failAt {
		f.crashed.Store(true)
		return true
	}
	return false
}

// fault counts one mutating operation and returns the injected error it
// must fail with, or nil. Transient-mode errors carry a retryable
// classification; crash-mode errors are unclassified (permanent).
func (f *FaultFS) fault(op, name string) error {
	if !f.trip() {
		return nil
	}
	err := fmt.Errorf("%s %s: %w", op, name, ErrIO)
	if f.transient {
		return retry.MarkTransient(err)
	}
	return err
}

func (f *FaultFS) Create(name string) (persist.File, error) {
	if err := f.fault("create", name); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: name}, nil
}

func (f *FaultFS) Open(name string) (io.ReadCloser, error) { return f.inner.Open(name) }

func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.fault("rename", oldname); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.fault("remove", name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.fault("mkdir", dir); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.fault("syncdir", dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads the fault state through an open file's own
// operations.
type faultFile struct {
	fs   *FaultFS
	f    persist.File
	name string
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.fault("write", f.name); err != nil {
		if f.fs.short && len(p) > 0 {
			// A torn write: half the bytes reach the file, then the
			// "process" dies.
			n, _ := f.f.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return f.f.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.fault("sync", f.name); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *faultFile) Close() error {
	if err := f.fs.fault("close", f.name); err != nil {
		// Release the real handle regardless: a crashed process's
		// descriptors are closed by the kernel.
		f.f.Close()
		return err
	}
	return f.f.Close()
}

// FlipBit flips one bit of the file at path in place (byte offset from
// the start, bit 0..7) — a deterministic stand-in for media corruption.
// The recovery conformance suite flips every region of snapshot and WAL
// files and requires reopen to either recover a valid prefix or fail
// with persist.ErrCorrupt, never panic.
func FlipBit(path string, offset int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	_, err = f.WriteAt(b[:], offset)
	return err
}
