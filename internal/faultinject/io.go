package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/persist"
)

// ErrIO is the error injected I/O faults carry; persist must surface it
// (wrapped) instead of panicking or silently succeeding.
var ErrIO = errors.New("faultinject: injected I/O fault")

// FaultFS wraps a persist.FS and injects one write-path fault: the Nth
// mutating operation — file write, file sync, file close, create,
// rename or directory sync — fails, and every mutating operation after
// it fails too, simulating the process dying at that point. In short
// mode a Write fault first writes half its bytes (a torn write) before
// failing. Read-side operations pass through untouched, so the dying
// session's own recovery attempts see the real files.
//
// With FailAt 0 the wrapper never fails and merely counts, which sizes
// a crash-point sweep: run once cleanly, read Ops, then rerun once per
// operation index.
type FaultFS struct {
	inner   persist.FS
	failAt  int64
	short   bool
	ops     atomic.Int64
	crashed atomic.Bool
}

// NewFaultFS wraps inner so that the failAt-th mutating operation
// (1-based; 0 = never) fails — with a short write first when short is
// set — and the file system behaves as crashed from then on.
func NewFaultFS(inner persist.FS, failAt int64, short bool) *FaultFS {
	return &FaultFS{inner: inner, failAt: failAt, short: short}
}

// Ops returns the number of mutating operations seen so far.
func (f *FaultFS) Ops() int64 { return f.ops.Load() }

// Crashed reports whether the fault has fired.
func (f *FaultFS) Crashed() bool { return f.crashed.Load() }

// trip counts one mutating operation and reports whether it must fail.
func (f *FaultFS) trip() bool {
	if f.crashed.Load() {
		return true
	}
	if n := f.ops.Add(1); f.failAt > 0 && n >= f.failAt {
		f.crashed.Store(true)
		return true
	}
	return false
}

func (f *FaultFS) Create(name string) (persist.File, error) {
	if f.trip() {
		return nil, fmt.Errorf("create %s: %w", name, ErrIO)
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: name}, nil
}

func (f *FaultFS) Open(name string) (io.ReadCloser, error) { return f.inner.Open(name) }

func (f *FaultFS) Rename(oldname, newname string) error {
	if f.trip() {
		return fmt.Errorf("rename %s: %w", oldname, ErrIO)
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if f.trip() {
		return fmt.Errorf("remove %s: %w", name, ErrIO)
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *FaultFS) MkdirAll(dir string) error {
	if f.trip() {
		return fmt.Errorf("mkdir %s: %w", dir, ErrIO)
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) SyncDir(dir string) error {
	if f.trip() {
		return fmt.Errorf("syncdir %s: %w", dir, ErrIO)
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads the fault state through an open file's own
// operations.
type faultFile struct {
	fs   *FaultFS
	f    persist.File
	name string
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.fs.trip() {
		if f.fs.short && len(p) > 0 {
			// A torn write: half the bytes reach the file, then the
			// "process" dies.
			n, _ := f.f.Write(p[:len(p)/2])
			return n, fmt.Errorf("write %s: %w", f.name, ErrIO)
		}
		return 0, fmt.Errorf("write %s: %w", f.name, ErrIO)
	}
	return f.f.Write(p)
}

func (f *faultFile) Sync() error {
	if f.fs.trip() {
		return fmt.Errorf("sync %s: %w", f.name, ErrIO)
	}
	return f.f.Sync()
}

func (f *faultFile) Close() error {
	if f.fs.trip() {
		// Release the real handle regardless: a crashed process's
		// descriptors are closed by the kernel.
		f.f.Close()
		return fmt.Errorf("close %s: %w", f.name, ErrIO)
	}
	return f.f.Close()
}

// FlipBit flips one bit of the file at path in place (byte offset from
// the start, bit 0..7) — a deterministic stand-in for media corruption.
// The recovery conformance suite flips every region of snapshot and WAL
// files and requires reopen to either recover a valid prefix or fail
// with persist.ErrCorrupt, never panic.
func FlipBit(path string, offset int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	_, err = f.WriteAt(b[:], offset)
	return err
}
