package faultinject

import (
	"runtime"
	"time"
)

// LeakCheck snapshots the goroutine count and returns a verifier to be
// deferred at the end of the test: it fails the test if, after a settling
// grace period, more goroutines are alive than at the snapshot. Faulted
// mining runs must drain their worker pools completely, so the count must
// return to the baseline.
//
//	defer faultinject.LeakCheck(t)()
func LeakCheck(tb testingTB) func() {
	tb.Helper()
	before := runtime.NumGoroutine()
	return func() {
		tb.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		tb.Errorf("goroutine leak: %d before, %d after settling\n%s", before, now, buf)
	}
}

// testingTB is the subset of testing.TB LeakCheck needs; avoiding the
// real interface keeps package testing out of non-test builds that import
// faultinject.
type testingTB interface {
	Helper()
	Errorf(format string, args ...any)
}
