package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mining"
	"repro/internal/retry"
)

// ErrChaos is the base error the chaos scheduler's injected transient
// failures wrap (errors.Is-matchable through the retry classification).
var ErrChaos = errors.New("faultinject: injected chaos fault")

// ChaosConfig bounds one seeded fault schedule: how many faults of each
// kind to draw and the ranges they are drawn from. Kinds with count 0
// are absent from the schedule.
type ChaosConfig struct {
	// PanicTicks is the number of one-shot worker panics injected at
	// cooperative tick checks.
	PanicTicks int
	// ErrTicks is the number of one-shot transient errors injected at
	// tick checks (classified retryable, so supervisors retry them).
	ErrTicks int
	// TreeNodes is the number of one-shot panics injected at prefix-tree
	// node allocations.
	TreeNodes int
	// MaxTick bounds the tick indices drawn (faults land in [1, MaxTick]).
	MaxTick int64
	// MaxTreeNode bounds the live-node thresholds drawn (in
	// [2, MaxTreeNode]).
	MaxTreeNode int
}

// Chaos is one deterministic fault schedule: a seeded PRNG draws
// distinct fault points for each kind once at construction, and Arm
// installs consume-once triggers for all of them across the process
// seams (tick hook, tree-allocation hook). Two Chaos values with equal
// seed and config inject byte-identical schedules, which is what makes
// a chaos-suite failure reproducible from its printed seed.
type Chaos struct {
	seed int64
	cfg  ChaosConfig

	// Immutable sorted copies of the schedule, for String.
	panicAt []int64
	errAt   []int64
	treeAt  []int

	ticks atomic.Int64

	mu         sync.Mutex
	panicTicks map[int64]bool
	errTicks   map[int64]bool
	treeNodes  []int // sorted ascending, consumed entries removed
	fired      int
}

// NewChaos draws the fault schedule for seed under cfg. Kind counts are
// clamped so distinct draws exist (at most half the range, keeping the
// draw loop short).
func NewChaos(seed int64, cfg ChaosConfig) *Chaos {
	if cfg.MaxTick < 2 {
		cfg.MaxTick = 2
	}
	if cfg.MaxTreeNode < 3 {
		cfg.MaxTreeNode = 3
	}
	clamp := func(n int, space int64) int {
		if int64(n) > space/2 {
			return int(space / 2)
		}
		return n
	}
	cfg.PanicTicks = clamp(cfg.PanicTicks, cfg.MaxTick)
	cfg.ErrTicks = clamp(cfg.ErrTicks, cfg.MaxTick)
	cfg.TreeNodes = clamp(cfg.TreeNodes, int64(cfg.MaxTreeNode)-1)

	rng := rand.New(rand.NewSource(seed))
	c := &Chaos{
		seed:       seed,
		cfg:        cfg,
		panicTicks: make(map[int64]bool),
		errTicks:   make(map[int64]bool),
	}
	// Tick draws are distinct across both tick kinds so a schedule never
	// stacks two faults on one check.
	taken := make(map[int64]bool)
	drawTick := func() int64 {
		for {
			t := rng.Int63n(cfg.MaxTick) + 1
			if !taken[t] {
				taken[t] = true
				return t
			}
		}
	}
	for i := 0; i < cfg.PanicTicks; i++ {
		t := drawTick()
		c.panicTicks[t] = true
		c.panicAt = append(c.panicAt, t)
	}
	for i := 0; i < cfg.ErrTicks; i++ {
		t := drawTick()
		c.errTicks[t] = true
		c.errAt = append(c.errAt, t)
	}
	nodesTaken := make(map[int]bool)
	for i := 0; i < cfg.TreeNodes; i++ {
		for {
			n := rng.Intn(cfg.MaxTreeNode-1) + 2
			if !nodesTaken[n] {
				nodesTaken[n] = true
				c.treeNodes = append(c.treeNodes, n)
				c.treeAt = append(c.treeAt, n)
				break
			}
		}
	}
	sort.Slice(c.panicAt, func(i, j int) bool { return c.panicAt[i] < c.panicAt[j] })
	sort.Slice(c.errAt, func(i, j int) bool { return c.errAt[i] < c.errAt[j] })
	sort.Ints(c.treeAt)
	sort.Ints(c.treeNodes)
	return c
}

// Arm installs the schedule's consume-once triggers into the process
// seams: every cooperative tick checks (interval forced to 1), tick
// faults fire by global tick index, and tree faults fire when any tree's
// live node count first reaches a drawn threshold. Each fault fires at
// most once per Chaos value. Call the returned function to disarm; a
// Chaos is single-use (construct a fresh one to rerun a schedule).
func (c *Chaos) Arm() (restore func()) {
	restoreInterval := mining.SetCheckInterval(1)
	restoreHook := mining.SetTickHook(func() error {
		t := c.ticks.Add(1)
		c.mu.Lock()
		if c.panicTicks[t] {
			delete(c.panicTicks, t)
			c.fired++
			c.mu.Unlock()
			panic(TickFault{K: t})
		}
		if c.errTicks[t] {
			delete(c.errTicks, t)
			c.fired++
			c.mu.Unlock()
			return retry.MarkTransient(fmt.Errorf("chaos tick %d: %w", t, ErrChaos))
		}
		c.mu.Unlock()
		return nil
	})
	core.TestHookAlloc = func(live int) {
		c.mu.Lock()
		// Thresholds are sorted; fire (and consume) the smallest one this
		// allocation reaches.
		fire := false
		if len(c.treeNodes) > 0 && live >= c.treeNodes[0] {
			c.treeNodes = c.treeNodes[1:]
			c.fired++
			fire = true
		}
		c.mu.Unlock()
		if fire {
			panic(TreeFault{Live: live})
		}
	}
	return func() {
		core.TestHookAlloc = nil
		restoreHook()
		restoreInterval()
	}
}

// Fired returns the number of scheduled faults that have fired so far.
func (c *Chaos) Fired() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// String prints the seed and the full schedule — enough to reconstruct
// the exact run that failed.
func (c *Chaos) String() string {
	return fmt.Sprintf("chaos(seed=%d panic@%v err@%v tree@%v)", c.seed, c.panicAt, c.errAt, c.treeAt)
}
