package persist

import (
	"testing"

	"repro/internal/itemset"
	"repro/internal/obs"
)

// TestDurableObsSpans verifies that the store emits a span per snapshot
// write and log rotation, a recover span on reopen, and that Snapshots()
// counts this handle's snapshot writes.
func TestDurableObsSpans(t *testing.T) {
	dir := t.TempDir()
	var rec obs.Recorder
	d, err := Open(dir, Options{Items: 8, SnapshotEvery: 4, Obs: &rec})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh store still runs (an empty) recovery.
	if n := countSpans(rec.Spans(), obs.PhaseRecover); n != 1 {
		t.Fatalf("recover spans on fresh open = %d, want 1", n)
	}
	if d.Snapshots() != 0 {
		t.Fatalf("fresh store Snapshots() = %d", d.Snapshots())
	}

	trans := stream(8, 10, 3)
	addAll(t, d, trans)
	// 10 adds at cadence 4 → automatic snapshots after 4 and 8.
	if got := d.Snapshots(); got != 2 {
		t.Fatalf("Snapshots() after 10 adds = %d, want 2", got)
	}
	// An explicit snapshot at a new step counts too.
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Snapshot at an unchanged step is a no-op: no span, no count.
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := d.Snapshots(); got != 3 {
		t.Fatalf("Snapshots() = %d, want 3", got)
	}
	spans := rec.Spans()
	if n := countSpans(spans, obs.PhaseSnapshot); n != 3 {
		t.Fatalf("snapshot spans = %d, want 3", n)
	}
	if n := countSpans(spans, obs.PhaseRotate); n != 3 {
		t.Fatalf("rotate spans = %d, want 3", n)
	}
	for _, s := range spans {
		if s.Phase == obs.PhaseSnapshot && s.Counts.Nodes <= 0 {
			t.Fatalf("snapshot span carries no node count: %+v", s)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a sink: recovery emits its span; the snapshot count
	// restarts per handle.
	var rec2 obs.Recorder
	d2, err := Open(dir, Options{Items: 8, Obs: &rec2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if n := countSpans(rec2.Spans(), obs.PhaseRecover); n != 1 {
		t.Fatalf("recover spans on reopen = %d, want 1", n)
	}
	if d2.Snapshots() != 0 {
		t.Fatalf("reopened handle Snapshots() = %d, want 0", d2.Snapshots())
	}
	requireState(t, d2, 8, trans, len(trans))
}

// TestDurableNoSink pins that a store without a sink works unchanged (the
// nil-sink fast path of obs.EmitSpan).
func TestDurableNoSink(t *testing.T) {
	d, err := Open(t.TempDir(), Options{Items: 5, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Add(itemset.Item(0), itemset.Item(2)); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(itemset.Item(1)); err != nil {
		t.Fatal(err)
	}
	if d.Snapshots() != 1 {
		t.Fatalf("Snapshots() = %d, want 1", d.Snapshots())
	}
}

func countSpans(spans []obs.Span, phase string) int {
	n := 0
	for _, s := range spans {
		if s.Phase == phase {
			n++
		}
	}
	return n
}
