package persist

import (
	"fmt"
	"strings"
)

// QuarantineSuffix is appended to the name of a corrupt snapshot file
// that auto-repair moved aside. The suffix makes the name unparseable as
// a generation (parseSnapName rejects it), so a quarantined file can
// never be picked up by a later recovery, while its bytes stay on disk
// for forensics.
const QuarantineSuffix = ".quarantined"

// GenerationSkip records one generation recovery could not use: the
// durable file and why it was passed over (snapshot unreadable, replay
// gap, torn-before-durable segment).
type GenerationSkip struct {
	// Name is the file the failure was detected on.
	Name string
	// Err is the failure, wrapping ErrCorrupt for damage.
	Err error

	// badSnap marks a snapshot whose own bytes were unreadable — the
	// only case auto-repair may quarantine. A generation skipped because
	// its WAL replay failed keeps its snapshot: the snapshot itself may
	// be fine and is evidence either way.
	badSnap bool
}

func (s GenerationSkip) String() string {
	return fmt.Sprintf("%s: %v", s.Name, s.Err)
}

// RepairReport describes everything the durable store's self-healing
// machinery did on behalf of the caller: orphaned temp files swept on
// open, generations recovery skipped (and why), corrupt snapshots
// quarantined, and transient I/O operations retried. It is always
// populated — with Repair disabled it still records sweeps and skips,
// only the quarantine action is withheld.
type RepairReport struct {
	// SweptTemp lists the orphaned ".tmp" files (crash traces of atomic
	// writes) removed on open.
	SweptTemp []string
	// Skipped lists the generations recovery passed over before finding
	// a usable one, newest first.
	Skipped []GenerationSkip
	// Quarantined lists the new names of corrupt snapshot files moved
	// aside (original name + QuarantineSuffix). Empty unless
	// Options.Repair was set and recovery succeeded from an older
	// generation.
	Quarantined []string
	// Retried counts transient snapshot/rotation I/O operations re-run
	// under Options.Retry by this handle.
	Retried int
}

// Empty reports whether no repair action or anomaly was recorded.
func (r *RepairReport) Empty() bool {
	return len(r.SweptTemp) == 0 && len(r.Skipped) == 0 &&
		len(r.Quarantined) == 0 && r.Retried == 0
}

func (r *RepairReport) String() string {
	if r.Empty() {
		return "clean"
	}
	var parts []string
	if n := len(r.SweptTemp); n > 0 {
		parts = append(parts, fmt.Sprintf("swept %d temp file(s)", n))
	}
	for _, s := range r.Skipped {
		parts = append(parts, fmt.Sprintf("skipped %s", s))
	}
	for _, q := range r.Quarantined {
		parts = append(parts, fmt.Sprintf("quarantined %s", q))
	}
	if r.Retried > 0 {
		parts = append(parts, fmt.Sprintf("retried %d op(s)", r.Retried))
	}
	return strings.Join(parts, "; ")
}
