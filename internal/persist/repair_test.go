// Auto-repair conformance for the durable store, from outside the
// package (faultinject imports persist, so these tests live in
// persist_test to use both): the startup sweep of orphaned temp files,
// quarantine of damaged snapshot generations, transient-I/O retry, and
// the fsync fail-stop veto.
package persist_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/itemset"
	"repro/internal/persist"
	"repro/internal/retry"
)

func repairStream(items, n int) []itemset.Set {
	out := make([]itemset.Set, n)
	for i := range out {
		out[i] = itemset.FromInts(i%items, (i*3+1)%items, (i*7+2)%items)
	}
	return out
}

func repairSnapName(step uint64) string { return fmt.Sprintf("snap-%016d.ista", step) }

// TestRepairSweepOrphanTemps proves the startup sweep: stale .tmp files
// — including one that is byte-for-byte a valid snapshot — are removed
// on open, reported in the RepairReport, and never mistaken for a
// generation.
func TestRepairSweepOrphanTemps(t *testing.T) {
	const items, n = 8, 12
	trans := repairStream(items, n)
	dir := t.TempDir()

	d, err := persist.Open(dir, persist.Options{Items: items, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trans {
		if err := d.AddSet(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Plant orphans: garbage temp files and — the trap — a copy of the
	// real snapshot under a .tmp name claiming a much later step. If the
	// sweep ever parsed temp names as generations, recovery would jump to
	// step 9000 and the transaction count below would expose it.
	snapBytes, err := os.ReadFile(filepath.Join(dir, repairSnapName(uint64(n))))
	if err != nil {
		t.Fatal(err)
	}
	orphans := []string{
		repairSnapName(9000) + ".tmp",
		"wal-0000000000009000.log.tmp",
		"snap-garbage.tmp",
	}
	for _, name := range orphans {
		body := []byte("leftover")
		if strings.HasPrefix(name, "snap-0") {
			body = snapBytes
		}
		if err := os.WriteFile(filepath.Join(dir, name), body, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d, err = persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.Transactions(); got != n {
		t.Fatalf("recovered %d transactions, want %d (a temp file was treated as state)", got, n)
	}
	rep := d.RepairReport()
	if len(rep.SweptTemp) != len(orphans) {
		t.Fatalf("report lists %d swept temps %v, want %d", len(rep.SweptTemp), rep.SweptTemp, len(orphans))
	}
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphan %s survived the sweep (stat err = %v)", name, err)
		}
	}
	if len(rep.Skipped) != 0 || len(rep.Quarantined) != 0 {
		t.Errorf("sweep-only open reports skips/quarantines: %s", rep.String())
	}
}

// TestRepairQuarantine damages the newest snapshot and requires recovery
// to fall back a generation; with Repair set the damaged file is renamed
// aside (and invisible to the next open), without Repair it stays put —
// either way nothing durable is lost and the report says what happened.
func TestRepairQuarantine(t *testing.T) {
	const items, n = 9, 27
	trans := repairStream(items, n)

	for _, repair := range []bool{true, false} {
		t.Run(fmt.Sprintf("repair=%v", repair), func(t *testing.T) {
			dir := t.TempDir()
			d, err := persist.Open(dir, persist.Options{Items: items, SnapshotEvery: 10, Keep: 2})
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range trans {
				if err := d.AddSet(tr); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			// Snapshots exist at steps 10 and 20; corrupt the newest.
			bad := repairSnapName(20)
			if err := faultinject.FlipBit(filepath.Join(dir, bad), 40, 3); err != nil {
				t.Fatal(err)
			}

			d, err = persist.Open(dir, persist.Options{Repair: repair})
			if err != nil {
				t.Fatalf("fallback recovery failed: %v", err)
			}
			if got := d.Transactions(); got != n {
				t.Fatalf("recovered %d transactions, want %d", got, n)
			}
			rep := d.RepairReport()
			if len(rep.Skipped) == 0 {
				t.Fatalf("report shows no skipped generation: %s", rep.String())
			}
			if !strings.Contains(rep.Skipped[0].String(), bad) {
				t.Errorf("skip report %q does not name %s", rep.Skipped[0].String(), bad)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			_, statBad := os.Stat(filepath.Join(dir, bad))
			_, statQuar := os.Stat(filepath.Join(dir, bad+persist.QuarantineSuffix))
			if repair {
				if len(rep.Quarantined) != 1 || rep.Quarantined[0] != bad+persist.QuarantineSuffix {
					t.Errorf("report quarantined %v, want [%s]", rep.Quarantined, bad+persist.QuarantineSuffix)
				}
				if !errors.Is(statBad, os.ErrNotExist) || statQuar != nil {
					t.Errorf("quarantine did not rename %s aside (orig err %v, quarantined err %v)", bad, statBad, statQuar)
				}
			} else {
				if len(rep.Quarantined) != 0 {
					t.Errorf("Repair off but report quarantined %v", rep.Quarantined)
				}
				if statBad != nil || !errors.Is(statQuar, os.ErrNotExist) {
					t.Errorf("Repair off but %s was moved (orig err %v, quarantined err %v)", bad, statBad, statQuar)
				}
			}

			// The next open must recover identically again (from the
			// quarantined layout or past the still-present damage).
			d, err = persist.Open(dir, persist.Options{})
			if err != nil {
				t.Fatalf("re-open after repair=%v failed: %v", repair, err)
			}
			if got := d.Transactions(); got != n {
				t.Errorf("second recovery holds %d transactions, want %d", got, n)
			}
			d.Close()
		})
	}
}

// TestRepairTransientIOSweep injects one transient fault at every
// mutating file-system operation of an explicit Snapshot, with retry
// enabled. Each position must land in one of exactly two documented
// outcomes: the retry heals it (Snapshot succeeds, Retries counts it,
// nothing is lost) or the fault hit an fsync and the permanent-mark veto
// keeps the store fail-stop (Snapshot fails, the store latches, and a
// reopen still recovers every WAL-durable transaction). The sweep
// asserts both outcomes occur, so the retry path and the veto are each
// demonstrably exercised.
func TestRepairTransientIOSweep(t *testing.T) {
	const items, n = 8, 8
	trans := repairStream(items, n)

	session := func(dir string, fs persist.FS, pol retry.Policy) (*persist.Durable, error) {
		d, err := persist.Open(dir, persist.Options{
			Items: items, SnapshotEvery: -1, FS: fs, Retry: pol,
		})
		if err != nil {
			return nil, err
		}
		for _, tr := range trans {
			if err := d.AddSet(tr); err != nil {
				d.Close()
				return nil, err
			}
		}
		return d, nil
	}

	// Calibrate: count the mutating ops before and after the Snapshot
	// call on a clean run, so faults are injected only inside it.
	count := faultinject.NewFaultFS(persist.OS, 0, false)
	d, err := session(t.TempDir(), count, retry.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	before := count.Ops()
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	after := count.Ops()
	d.Close()
	if after <= before {
		t.Fatalf("snapshot performed no mutating ops (%d..%d)", before, after)
	}

	var healed, latched int
	for failAt := before + 1; failAt <= after; failAt++ {
		dir := t.TempDir()
		fs := faultinject.NewTransientFaultFS(persist.OS, failAt)
		d, err := session(dir, fs, retry.Policy{MaxAttempts: 3})
		if err != nil {
			t.Fatalf("failAt=%d: fault fired before the snapshot phase: %v", failAt, err)
		}
		serr := d.Snapshot()
		switch {
		case serr == nil:
			healed++
			if d.Retries() < 1 {
				t.Errorf("failAt=%d: snapshot healed without counting a retry", failAt)
			}
			if err := d.Close(); err != nil {
				t.Errorf("failAt=%d: close after healed snapshot: %v", failAt, err)
			}
		case errors.Is(serr, faultinject.ErrIO):
			latched++
			if d.Err() == nil {
				t.Errorf("failAt=%d: snapshot failed but the store did not latch", failAt)
			}
			if retry.IsTransient(serr) {
				t.Errorf("failAt=%d: surfaced error still classified transient — the fsync veto failed: %v", failAt, serr)
			}
			d.Close()
		default:
			t.Fatalf("failAt=%d: unexpected snapshot error: %v", failAt, serr)
		}

		// Either way, everything acknowledged before the snapshot is
		// WAL-durable and must recover.
		d2, err := persist.Open(dir, persist.Options{})
		if err != nil {
			t.Fatalf("failAt=%d: reopen failed: %v", failAt, err)
		}
		if got := d2.Transactions(); got != n {
			t.Errorf("failAt=%d: reopen holds %d transactions, want %d", failAt, got, n)
		}
		d2.Close()
	}
	if healed == 0 || latched == 0 {
		t.Fatalf("sweep exercised healed=%d latched=%d positions, want both nonzero", healed, latched)
	}
}

// TestRepairOpenRetry pins that the retry policy also covers the open
// rotation: a transient fault on the fresh segment's creation is healed
// and reported through the handle's counters.
func TestRepairOpenRetry(t *testing.T) {
	const items = 6
	dir := t.TempDir()

	// MkdirAll is op 1; the open rotation's create is op 2.
	fs := faultinject.NewTransientFaultFS(persist.OS, 2)
	d, err := persist.Open(dir, persist.Options{
		Items: items, FS: fs, Retry: retry.Policy{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatalf("open with transient rotate fault failed: %v", err)
	}
	defer d.Close()
	if d.Retries() < 1 {
		t.Fatalf("Retries() = %d, want >= 1", d.Retries())
	}
	if err := d.Add(1, 2, 3); err != nil {
		t.Fatal(err)
	}
}
