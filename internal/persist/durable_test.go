package persist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/itemset"
)

// oracle mines the closed sets of a stream prefix from scratch.
func oracle(t *testing.T, items int, trans []itemset.Set, minsup int) *core.Incremental {
	t.Helper()
	return miner(t, items, trans)
}

func addAll(t *testing.T, d *Durable, trans []itemset.Set) {
	t.Helper()
	for _, tr := range trans {
		if err := d.AddSet(tr); err != nil {
			t.Fatal(err)
		}
	}
}

// requireState checks that d holds exactly the first n transactions of
// trans, cross-checked against a from-scratch miner at several support
// levels.
func requireState(t *testing.T, d *Durable, items int, trans []itemset.Set, n int) {
	t.Helper()
	if d.Transactions() != n {
		t.Fatalf("recovered %d transactions, want %d", d.Transactions(), n)
	}
	om := miner(t, items, trans[:n])
	for _, minsup := range []int{1, 2, (n + 1) / 2, n} {
		want, have := om.ClosedSet(minsup), d.ClosedSet(minsup)
		if !have.Equal(want) {
			t.Fatalf("minsup=%d: recovered closed sets differ from oracle:\n%s", minsup, have.Diff(want, 10))
		}
	}
}

// TestDurableReopen covers the plain lifecycle: open, add, close,
// reopen, continue — across several snapshot cadences, including none.
func TestDurableReopen(t *testing.T) {
	const items = 12
	trans := stream(items, 53, 21)
	for _, every := range []int{-1, 1, 7, 100} {
		dir := t.TempDir()
		opt := Options{Items: items, SnapshotEvery: every}
		d, err := Open(dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		addAll(t, d, trans[:30])
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		d, err = Open(dir, opt)
		if err != nil {
			t.Fatalf("every=%d: reopen: %v", every, err)
		}
		requireState(t, d, items, trans, 30)
		addAll(t, d, trans[30:])
		if err := d.Snapshot(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		d, err = Open(dir, Options{})
		if err != nil {
			t.Fatalf("every=%d: second reopen: %v", every, err)
		}
		requireState(t, d, items, trans, len(trans))
		d.Close()
	}
}

// TestDurableCrashWithoutClose drops the store on the floor (no Close,
// no final snapshot) and reopens: with SyncEvery 1 every acknowledged
// transaction must come back.
func TestDurableCrashWithoutClose(t *testing.T) {
	const items = 10
	trans := stream(items, 41, 8)
	dir := t.TempDir()
	d, err := Open(dir, Options{Items: items, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, d, trans)
	// Simulated crash: the store is simply abandoned.
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireState(t, d2, items, trans, len(trans))
	d2.Close()
}

// TestDurableGenerationPruning checks that old snapshots and dead WAL
// segments are deleted, and that what remains still recovers.
func TestDurableGenerationPruning(t *testing.T) {
	const items = 8
	trans := stream(items, 90, 17)
	dir := t.TempDir()
	d, err := Open(dir, Options{Items: items, SnapshotEvery: 10, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, d, trans)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	var snaps, wals int
	names, err := OS.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		switch {
		case strings.HasPrefix(name, "snap-"):
			snaps++
		case strings.HasPrefix(name, "wal-"):
			wals++
		}
	}
	if snaps > 2 {
		t.Errorf("pruning left %d snapshots, want <= 2", snaps)
	}
	if wals > 3 {
		t.Errorf("pruning left %d WAL segments, want <= 3", wals)
	}
	d, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireState(t, d, items, trans, len(trans))
	d.Close()
}

// TestDurableSnapshotFallback damages the newest snapshot on disk and
// requires recovery to fall back to the previous generation plus the
// log — losing nothing.
func TestDurableSnapshotFallback(t *testing.T) {
	const items = 9
	trans := stream(items, 27, 30)
	dir := t.TempDir()
	d, err := Open(dir, Options{Items: items, SnapshotEvery: 10, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, d, trans) // snapshots at 10 and 20, tail 21..27 in the log
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName(20))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err = Open(dir, Options{})
	if err != nil {
		t.Fatalf("fallback recovery failed: %v", err)
	}
	requireState(t, d, items, trans, len(trans))
	d.Close()
}

// TestDurableUniverse pins the universe rules: an existing store
// ignores a smaller requested universe and rejects a larger one.
func TestDurableUniverse(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Items: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Add(1, 5); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if d, err = Open(dir, Options{Items: 3}); err != nil {
		t.Fatalf("smaller universe should open: %v", err)
	}
	if d.Items() != 6 {
		t.Fatalf("recovered universe %d, want 6", d.Items())
	}
	d.Close()
	if _, err = Open(dir, Options{Items: 9}); err == nil {
		t.Fatal("larger universe must be rejected")
	}
}

// TestDurableRejectsBadInput pins the validation path: out-of-universe
// and non-canonical transactions fail without touching the log.
func TestDurableRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Items: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddSet(itemset.Set{2, 1}); err == nil {
		t.Fatal("non-canonical transaction accepted")
	}
	if err := d.AddSet(itemset.Set{1, 9}); err == nil {
		t.Fatal("out-of-universe transaction accepted")
	}
	if err := d.Add(0, 3); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Transactions() != 1 {
		t.Fatalf("rejected transactions leaked into the log: %d", d.Transactions())
	}
	d.Close()
}
