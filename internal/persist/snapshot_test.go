package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/itemset"
)

// stream builds a reproducible transaction stream over `items` codes.
func stream(items, n int, seed int64) []itemset.Set {
	rng := rand.New(rand.NewSource(seed))
	out := make([]itemset.Set, n)
	for i := range out {
		k := rng.Intn(6)
		t := make([]itemset.Item, k)
		for j := range t {
			t[j] = itemset.Item(rng.Intn(items))
		}
		out[i] = itemset.New(t...)
	}
	return out
}

func miner(tb testing.TB, items int, trans []itemset.Set) *core.Incremental {
	tb.Helper()
	m := core.NewIncremental(items)
	for _, tr := range trans {
		if err := m.AddSet(tr); err != nil {
			tb.Fatal(err)
		}
	}
	return m
}

// TestSnapshotRoundTrip pins the codec: decode(encode(m)) is
// indistinguishable from m — same transactions, nodes, and closed sets
// at every threshold — including the empty-tree and single-transaction
// edges, and the encoding is deterministic.
func TestSnapshotRoundTrip(t *testing.T) {
	cases := [][]itemset.Set{
		nil,                            // empty tree
		{itemset.New(2, 0, 5)},         // single transaction
		{{}},                           // single empty transaction (step only)
		stream(9, 30, 3),               // random
		append(stream(6, 20, 4), nil),  // trailing empty transaction
	}
	for ci, trans := range cases {
		m := miner(t, 10, trans)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, m); err != nil {
			t.Fatalf("case %d: encode: %v", ci, err)
		}
		got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if got.Transactions() != m.Transactions() || got.NodeCount() != m.NodeCount() || got.Items() != m.Items() {
			t.Fatalf("case %d: state differs: %d/%d trans, %d/%d nodes, %d/%d items", ci,
				got.Transactions(), m.Transactions(), got.NodeCount(), m.NodeCount(), got.Items(), m.Items())
		}
		for _, minsup := range []int{1, 2, len(trans)} {
			want, have := m.ClosedSet(minsup), got.ClosedSet(minsup)
			if !have.Equal(want) {
				t.Fatalf("case %d minsup=%d: closed sets differ:\n%s", ci, minsup, have.Diff(want, 10))
			}
		}
		var again bytes.Buffer
		if err := WriteSnapshot(&again, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("case %d: re-encoding the restored miner changed the bytes", ci)
		}
	}
}

// TestSnapshotDecodeRejectsDamage truncates and bit-flips a valid
// snapshot at every byte and requires a typed ErrCorrupt, never a panic
// or a silently wrong tree.
func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	m := miner(t, 8, stream(8, 25, 9))
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	want := m.ClosedSet(1)
	for cut := 0; cut < len(raw); cut++ {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:cut])); !errorsIsCorrupt(err) {
			t.Fatalf("truncation at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
	for off := 0; off < len(raw); off++ {
		flipped := append([]byte(nil), raw...)
		flipped[off] ^= 0x10
		got, err := ReadSnapshot(bytes.NewReader(flipped))
		if err == nil {
			// A flip that decodes cleanly must still checksum-match, which
			// a single-bit error cannot; only a flip that round-trips to
			// the same state could pass. Verify it really is the same.
			if !got.ClosedSet(1).Equal(want) {
				t.Fatalf("bit flip at %d silently changed the decoded state", off)
			}
			continue
		}
		if !errorsIsCorrupt(err) {
			t.Fatalf("bit flip at %d: got %v, want ErrCorrupt", off, err)
		}
	}
}

func errorsIsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

// TestSnapshotItemCap pins the allocation guard: a header declaring an
// absurd universe fails before any large allocation.
func TestSnapshotItemCap(t *testing.T) {
	m := miner(t, 3, nil)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// items is the uvarint after the 8-byte magic and 1-byte version;
	// splice in a huge value.
	var huge bytes.Buffer
	huge.Write(raw[:9])
	huge.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // 2^63-ish
	huge.Write(raw[10:])
	if _, err := ReadSnapshot(bytes.NewReader(huge.Bytes())); !errorsIsCorrupt(err) {
		t.Fatalf("oversized universe: got %v, want ErrCorrupt", err)
	}
}
