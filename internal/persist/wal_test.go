package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/itemset"
)

// writeSegment creates a WAL segment with the given records in a temp
// dir and returns its raw bytes.
func writeSegment(t *testing.T, items int, base uint64, recs []itemset.Set) []byte {
	t.Helper()
	dir := t.TempDir()
	w, err := createWAL(OS, dir, items, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, walName(base)))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestWALRoundTrip(t *testing.T) {
	recs := append(stream(20, 40, 5), itemset.Set{}) // include an empty transaction
	raw := writeSegment(t, 20, 7, recs)
	hdr, got, torn, err := readWAL(bytes.NewReader(raw))
	if err != nil || torn {
		t.Fatalf("read: err=%v torn=%v", err, torn)
	}
	if !hdr.ok || hdr.base != 7 || hdr.items != 20 {
		t.Fatalf("bad header: %+v", hdr)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !got[i].Equal(recs[i]) {
			t.Fatalf("record %d: got %v, want %v", i, got[i], recs[i])
		}
	}
}

// TestWALTornTail truncates a segment at every byte and requires the
// reader to recover exactly the records that are fully present — a torn
// tail is discarded, never fatal, and never yields a phantom record.
func TestWALTornTail(t *testing.T) {
	recs := stream(15, 25, 11)
	raw := writeSegment(t, 15, 0, recs)
	for cut := 0; cut <= len(raw); cut++ {
		hdr, got, torn, err := readWAL(bytes.NewReader(raw[:cut]))
		if err != nil {
			t.Fatalf("cut at %d: unexpected error %v", cut, err)
		}
		if !hdr.ok && len(got) != 0 {
			t.Fatalf("cut at %d: records without a header", cut)
		}
		if len(got) > len(recs) {
			t.Fatalf("cut at %d: %d phantom records", cut, len(got)-len(recs))
		}
		for i := range got {
			if !got[i].Equal(recs[i]) {
				t.Fatalf("cut at %d: record %d diverged", cut, i)
			}
		}
		if cut == len(raw) && (torn || len(got) != len(recs)) {
			t.Fatalf("full segment misread: torn=%v records=%d/%d", torn, len(got), len(recs))
		}
	}
}

// TestWALBitFlip flips a bit in every byte of a segment: the reader
// must either fail with ErrCorrupt or deliver a clean prefix of the
// real records (a flip in the final record's framing is
// indistinguishable from a torn tail) — never panic, never deliver a
// altered record.
func TestWALBitFlip(t *testing.T) {
	recs := stream(15, 20, 13)
	raw := writeSegment(t, 15, 3, recs)
	for off := 0; off < len(raw); off++ {
		flipped := append([]byte(nil), raw...)
		flipped[off] ^= 0x08
		hdr, got, _, err := readWAL(bytes.NewReader(flipped))
		if err != nil {
			if !errorsIsCorrupt(err) {
				t.Fatalf("flip at %d: got %v, want ErrCorrupt", off, err)
			}
			continue
		}
		if !hdr.ok {
			continue // classified as torn header: nothing delivered
		}
		if hdr.base != 3 || hdr.items != 15 {
			t.Fatalf("flip at %d: header silently altered: %+v", off, hdr)
		}
		if len(got) > len(recs) {
			t.Fatalf("flip at %d: phantom records", off)
		}
		for i := range got {
			if !got[i].Equal(recs[i]) {
				t.Fatalf("flip at %d: record %d silently altered", off, i)
			}
		}
	}
}
