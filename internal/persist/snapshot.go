package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/retry"
)

// Snapshot format, version 1 (all integers unsigned varints unless
// noted; the trailing CRC-32/IEEE covers every preceding byte):
//
//	magic    8 bytes  "ISTASNAP"
//	version  uvarint  1
//	items    uvarint  item universe size
//	step     uvarint  transactions processed
//	nodes    uvarint  node count of the preorder stream
//	nodes ×  uvarint depth, uvarint item, uvarint step, uvarint supp
//	crc      4 bytes  little-endian CRC-32 (IEEE)
//
// The node stream is the preorder walk of core.Tree.Export; rebuilding
// it through core.TreeBuilder re-validates every structural invariant,
// so arbitrary bytes either round-trip into a well-formed tree or fail
// with an error wrapping ErrCorrupt — decode never panics, and
// allocation is driven by the bytes actually present, not by declared
// counts.

const (
	snapMagic   = "ISTASNAP"
	snapVersion = 1

	// MaxItems caps the item universe a decoder accepts. The tree's
	// transaction-membership scratch array is allocated eagerly from
	// this value, so it must be bounded before any input is trusted; the
	// largest data set the paper mines (thrombin) has 139,351 items,
	// leaving three orders of magnitude of headroom.
	MaxItems = 1 << 26
)

// WriteSnapshot encodes the complete state of m into w. The encoding is
// deterministic: equal miner states produce identical bytes.
func WriteSnapshot(w io.Writer, m *core.Incremental) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	buf := make([]byte, 0, 64)
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, snapVersion)
	buf = binary.AppendUvarint(buf, uint64(m.Items()))
	buf = binary.AppendUvarint(buf, uint64(m.Transactions()))
	buf = binary.AppendUvarint(buf, uint64(m.NodeCount()))
	if _, err := cw.Write(buf); err != nil {
		return err
	}
	err := m.Tree().Export(func(r core.NodeRecord) error {
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(r.Depth))
		buf = binary.AppendUvarint(buf, uint64(r.Item))
		buf = binary.AppendUvarint(buf, uint64(r.Step))
		buf = binary.AppendUvarint(buf, uint64(r.Supp))
		_, werr := cw.Write(buf)
		return werr
	})
	if err != nil {
		return err
	}
	if _, err := bw.Write(appendTrailer(nil, cw.crc)); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot decodes a snapshot back into an online miner. Corrupt,
// truncated or structurally invalid input fails with an error wrapping
// ErrCorrupt; ReadSnapshot never panics and never allocates beyond the
// input's actual size.
func ReadSnapshot(r io.Reader) (*core.Incremental, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, corruptf("persist: snapshot truncated in header")
	}
	if string(magic[:]) != snapMagic {
		return nil, corruptf("persist: bad snapshot magic %q", magic[:])
	}
	version, err := readUvarint(cr)
	if err != nil {
		return nil, corruptf("persist: snapshot truncated in header")
	}
	if version != snapVersion {
		return nil, corruptf("persist: unsupported snapshot version %d", version)
	}
	hdr := make([]uint64, 3) // items, step, nodes
	for i := range hdr {
		if hdr[i], err = readUvarint(cr); err != nil {
			return nil, corruptf("persist: snapshot truncated in header")
		}
	}
	items, step, nodes := hdr[0], hdr[1], hdr[2]
	if items > MaxItems {
		return nil, corruptf("persist: snapshot item universe %d exceeds limit %d", items, MaxItems)
	}
	b, err := core.NewTreeBuilder(int(items), int(step))
	if err != nil {
		return nil, corruptf("persist: %v", err)
	}
	// Each node costs at least 4 bytes of input, so the loop — and with
	// it all tree allocation — is bounded by the real input size even if
	// the declared count is garbage.
	var rec [4]uint64
	for n := uint64(0); n < nodes; n++ {
		for i := range rec {
			if rec[i], err = readUvarint(cr); err != nil {
				return nil, corruptf("persist: snapshot truncated at node %d of %d", n, nodes)
			}
		}
		if rec[0] > maxInt32 || rec[1] > maxInt32 || rec[2] > maxInt32 || rec[3] > maxInt32 {
			return nil, corruptf("persist: snapshot node %d field overflow", n)
		}
		err = b.Add(core.NodeRecord{
			Depth: int32(rec[0]), Item: int32(rec[1]),
			Step: int32(rec[2]), Supp: int32(rec[3]),
		})
		if err != nil {
			return nil, corruptf("persist: %v", err)
		}
	}
	sum := cr.crc
	want, err := readTrailer(cr.r)
	if err != nil {
		return nil, corruptf("persist: snapshot truncated in checksum")
	}
	if want != sum {
		return nil, corruptf("persist: snapshot checksum mismatch (stored %08x, computed %08x)", want, sum)
	}
	if _, err := cr.r.Peek(1); err == nil {
		return nil, corruptf("persist: trailing bytes after snapshot")
	} else if !isTruncation(err) {
		return nil, err
	}
	tree, err := b.Finish()
	if err != nil {
		return nil, corruptf("persist: %v", err)
	}
	return core.RestoreIncremental(tree), nil
}

const maxInt32 = 1<<31 - 1

// snapName is the durable file name of the snapshot at the given step;
// names sort lexicographically by step.
func snapName(step uint64) string { return fmt.Sprintf("snap-%016d.ista", step) }

// parseSnapName inverts snapName.
func parseSnapName(name string) (step uint64, ok bool) {
	return parseNumbered(name, "snap-", ".ista")
}

// parseNumbered extracts the zero-padded decimal between prefix and
// suffix, rejecting anything else.
func parseNumbered(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// writeSnapshotFile writes m's snapshot into dir atomically: the bytes
// go to a temp file that is synced, closed and only then renamed to its
// durable name, and the directory is synced so the rename itself is
// durable. A crash at any point leaves either the previous state or the
// complete new snapshot, never a half-written durable file.
func writeSnapshotFile(fs FS, dir string, m *core.Incremental) (name string, err error) {
	name = snapName(uint64(m.Transactions()))
	tmp := join(dir, name+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return "", err
	}
	if err := WriteSnapshot(f, m); err != nil {
		f.Close()
		fs.Remove(tmp) // best effort; stale temp files are swept on open
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		// A failed fsync leaves the kernel page cache in an unknown state;
		// the permanent mark vetoes any transient classification below it
		// so the store stays fail-stop (retry.MarkPermanent wins outermost).
		return "", retry.MarkPermanent(err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return "", err
	}
	if err := fs.Rename(tmp, join(dir, name)); err != nil {
		fs.Remove(tmp)
		return "", err
	}
	if err := fs.SyncDir(dir); err != nil {
		return "", retry.MarkPermanent(err)
	}
	return name, nil
}

// readSnapshotFile loads the snapshot file name from dir.
func readSnapshotFile(fs FS, dir, name string) (*core.Incremental, error) {
	f, err := fs.Open(join(dir, name))
	if err != nil {
		return nil, err
	}
	m, err := ReadSnapshot(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return m, nil
}
