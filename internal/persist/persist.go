// Package persist makes the IsTa mining state durable. The cumulative
// intersection scheme (§3.2 of the paper) keeps the closed item sets of
// every transaction processed so far in one prefix tree, which makes the
// online miner uniquely checkpointable: the tree, the item universe and
// the step counter are the *complete* state, and persisting them resumes
// mining exactly where it stopped.
//
// The package provides three layers:
//
//   - a versioned, CRC-32-checked binary snapshot codec for
//     core.Incremental (WriteSnapshot / ReadSnapshot), written to disk
//     atomically via temp file + fsync + rename;
//   - an append-only transaction write-ahead log with length-prefixed,
//     per-record checksummed framing, whose reader discards a torn final
//     record instead of failing;
//   - Durable, a crash-safe online miner combining both: every Add is
//     logged (and synced) before it is applied, periodic snapshots bound
//     the replay tail and rotate the log, and Open recovers by loading
//     the last good snapshot and replaying the log tail.
//
// The recovery invariant, enforced by the conformance suite in the
// repository root: after a crash at any write/sync/rename boundary,
// Open either restores exactly the durable prefix of the transaction
// stream — never silently dropping an acknowledged transaction — or
// fails with an error wrapping ErrCorrupt. It never panics on corrupt
// or truncated input.
//
// All I/O goes through the FS seam so internal/faultinject can inject
// errors, short writes and crashes at every boundary.
package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ErrCorrupt is wrapped by every error that reports unreadable or
// inconsistent persistent state: a bad magic number or version, a
// checksum mismatch, a structurally invalid node or record stream, or a
// gap in the write-ahead log. Match with errors.Is. A torn final WAL
// record is not corruption — it is the expected trace of a crash during
// an append and is discarded silently.
var ErrCorrupt = errors.New("persist: corrupt state")

// corruptf builds an error wrapping ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
}

// FS is the file system seam all persistence I/O goes through. The
// default implementation is the real file system (OS); the
// fault-injection harness wraps it to fail or truncate the Nth
// operation.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists the file names in dir (directories excluded).
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself, making renames and creates
	// within it durable.
	SyncDir(dir string) error
}

// File is a writable file with explicit durability control.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
}

// OS is the real file system.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// join is filepath.Join, aliased so the package reads uniformly.
func join(dir, name string) string { return filepath.Join(dir, name) }
