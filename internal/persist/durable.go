package persist

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/result"
	"repro/internal/retry"
)

// Options configures a Durable store.
type Options struct {
	// Items is the item universe size, required when the directory holds
	// no prior state. When state exists, the recovered universe wins; a
	// larger requested universe fails (the stored tree cannot represent
	// the new codes).
	Items int
	// SnapshotEvery writes a snapshot and rotates the WAL every n
	// transactions; 0 uses 1024, negative disables periodic snapshots
	// (Snapshot can still be called explicitly).
	SnapshotEvery int
	// SyncEvery fsyncs the WAL every n appends; 0 and 1 sync every
	// append (every acknowledged Add is durable), larger values trade
	// durability of the last n-1 transactions for throughput.
	SyncEvery int
	// Keep is the number of snapshot generations retained (older
	// snapshots and the WAL segments covered only by them are deleted
	// after a successful snapshot); 0 uses 2. Keeping at least two lets
	// recovery fall back to the previous generation if the newest
	// snapshot is damaged on disk.
	Keep int
	// FS overrides the file system (fault injection); nil uses the OS.
	FS FS
	// Obs, when non-nil, receives a span for every recovery (phase
	// "recover", on Open), snapshot write ("snapshot") and WAL rotation
	// ("rotate"), each carrying the prefix-tree node count, plus a note
	// for every retry and repair action. Nil costs nothing.
	Obs obs.Sink
	// Retry, when enabled, re-runs transient snapshot-write and
	// WAL-rotation I/O failures (classified by retry.IsTransient) before
	// latching the store. WAL appends are never retried — a failed append
	// may have left a torn tail, and appending again after it would frame
	// a gap — and fsync failures are always fail-stop (the kernel page
	// cache state is unknowable after one).
	Retry retry.Policy
	// Repair, when set, lets Open quarantine a corrupt newest snapshot
	// (rename it aside with QuarantineSuffix) once recovery has succeeded
	// from an older generation, so the next open does not trip over it
	// again. The quarantine never runs when recovery failed outright —
	// the damaged files are then the only evidence left.
	Repair bool
}

func (o *Options) fill() {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1024
	}
	if o.SyncEvery < 1 {
		o.SyncEvery = 1
	}
	if o.Keep < 1 {
		o.Keep = 2
	}
	if o.FS == nil {
		o.FS = OS
	}
}

// Durable is a crash-safe online closed item set miner: a
// core.Incremental whose transaction stream is made durable through a
// write-ahead log bounded by periodic snapshots. Every acknowledged Add
// (with SyncEvery ≤ 1) is recoverable; Open replays the last good
// snapshot plus the WAL tail.
//
// Durable is crash-only software: after any I/O error the store latches
// the error, every subsequent operation fails with it, and the only way
// forward is to reopen — recovery then restores exactly the durable
// prefix. The in-memory miner stays consistent, so queries (Closed,
// ClosedSet) keep working on the state mined so far even after a write
// fault.
type Durable struct {
	fs     FS
	dir    string
	opt    Options
	m      *core.Incremental
	wal    *walWriter
	dirty  int    // appends since the last WAL sync
	since  int    // transactions since the last snapshot
	snap   uint64 // step of the newest durable snapshot
	snaps  int    // snapshots written by this handle
	err    error  // latched fatal error
	report RepairReport
}

// Open opens (creating if necessary) a durable store in dir, recovering
// any prior state: the newest readable snapshot is loaded and the WAL
// tail replayed, discarding at most a torn final record. Damage that
// would lose durable transactions fails with an error wrapping
// ErrCorrupt.
func Open(dir string, opt Options) (*Durable, error) {
	opt.fill()
	fs := opt.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var report RepairReport
	var snaps, wals []uint64
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			// Stale atomic-write leftovers: a crash trace, never durable
			// state. Record the sweep so the caller can see the store
			// healed itself.
			if fs.Remove(join(dir, name)) == nil {
				report.SweptTemp = append(report.SweptTemp, name)
				obs.EmitNote(opt.Obs, obs.NoteRepair, fmt.Sprintf("swept orphan %s", name), obs.Counts{})
			}
			continue
		}
		if step, ok := parseSnapName(name); ok {
			snaps = append(snaps, step)
		} else if base, ok := parseWALName(name); ok {
			wals = append(wals, base)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })

	recoverStart := time.Now()
	m, snapStep, skipped, err := recoverState(fs, dir, opt, snaps, wals)
	report.Skipped = skipped
	if err != nil {
		// Recovery failed outright: no quarantine — the damaged files are
		// the only evidence left, and renaming them would not make the
		// next open succeed either.
		return nil, err
	}
	if opt.Repair {
		// Recovery succeeded from an older generation; move unreadable
		// newer snapshots aside so the next open starts at the good one.
		for _, s := range skipped {
			if !s.badSnap {
				continue
			}
			if fs.Rename(join(dir, s.Name), join(dir, s.Name+QuarantineSuffix)) == nil {
				report.Quarantined = append(report.Quarantined, s.Name+QuarantineSuffix)
				obs.EmitNote(opt.Obs, obs.NoteRepair, fmt.Sprintf("quarantined %s", s.Name), obs.Counts{})
			}
		}
	}
	obs.EmitSpan(opt.Obs, obs.PhaseRecover, recoverStart, obs.Counts{Nodes: int64(m.NodeCount())})
	d := &Durable{fs: fs, dir: dir, opt: opt, m: m, snap: snapStep, report: report}
	// Start a fresh active segment at the recovered step. If a segment
	// with this base already exists it holds no durable records beyond
	// the recovered state (or recovery would have advanced past it), so
	// truncating it is safe.
	err = d.retryIO("open rotate", func() error {
		var werr error
		d.wal, werr = createWAL(fs, dir, m.Items(), uint64(m.Transactions()))
		return werr
	})
	if err != nil {
		return nil, err
	}
	d.cleanup()
	return d, nil
}

// retryIO runs one snapshot/rotation I/O operation under the store's
// retry policy, counting re-attempts and emitting retry notes. With the
// zero policy it is exactly op().
func (d *Durable) retryIO(what string, op func() error) error {
	return d.opt.Retry.Do(nil, func(attempt int, err error) {
		d.report.Retried++
		obs.EmitNote(d.opt.Obs, obs.NoteRetry,
			fmt.Sprintf("%s attempt %d after: %v", what, attempt, err),
			obs.Counts{Nodes: int64(d.m.NodeCount())})
	}, op)
}

// recoverState rebuilds the miner from the newest usable snapshot plus
// the WAL tail, falling back to older snapshots if the newest cannot be
// read, and finally to an empty state replayed from the full log. Every
// generation passed over lands in skipped (newest first) with the
// failure that disqualified it, whether or not recovery eventually
// succeeds.
func recoverState(fs FS, dir string, opt Options, snaps, wals []uint64) (m *core.Incremental, step uint64, skipped []GenerationSkip, err error) {
	if len(snaps) == 0 && len(wals) == 0 {
		// A brand new store.
		if opt.Items < 0 || opt.Items > MaxItems {
			return nil, 0, nil, fmt.Errorf("persist: item universe %d outside [0,%d]", opt.Items, MaxItems)
		}
		return core.NewIncremental(opt.Items), 0, nil, nil
	}
	for _, step := range snaps {
		m, err := readSnapshotFile(fs, dir, snapName(step))
		if err != nil {
			skipped = append(skipped, GenerationSkip{Name: snapName(step), Err: err, badSnap: true})
			continue
		}
		if err := replayWAL(fs, dir, m, wals); err != nil {
			skipped = append(skipped, GenerationSkip{Name: snapName(step), Err: fmt.Errorf("replay: %w", err)})
			continue
		}
		if err := checkUniverse(opt.Items, m.Items()); err != nil {
			return nil, 0, skipped, err
		}
		return m, step, skipped, nil
	}
	// No readable snapshot: only recoverable if the log reaches back to
	// the beginning of the stream.
	if len(wals) > 0 && wals[0] == 0 {
		hdr, _, _, err := readWALFile(fs, dir, walName(wals[0]))
		switch {
		case err == nil && hdr.ok:
			m := core.NewIncremental(int(hdr.items))
			if err := replayWAL(fs, dir, m, wals); err == nil {
				if err := checkUniverse(opt.Items, m.Items()); err != nil {
					return nil, 0, skipped, err
				}
				return m, 0, skipped, nil
			} else {
				skipped = append(skipped, GenerationSkip{Name: walName(wals[0]), Err: fmt.Errorf("replay: %w", err)})
			}
		case err == nil && len(snaps) == 0 && len(wals) == 1:
			// The store crashed while writing its very first segment
			// header: nothing was ever durable, so this is a brand-new
			// store, not data loss.
			if opt.Items < 0 || opt.Items > MaxItems {
				return nil, 0, skipped, fmt.Errorf("persist: item universe %d outside [0,%d]", opt.Items, MaxItems)
			}
			return core.NewIncremental(opt.Items), 0, skipped, nil
		case err != nil:
			skipped = append(skipped, GenerationSkip{Name: walName(wals[0]), Err: err})
		}
	}
	firstErr := corruptf("persist: no usable snapshot or log in %s", dir)
	if len(skipped) > 0 {
		firstErr = skipped[0].Err
	}
	if !errors.Is(firstErr, ErrCorrupt) {
		firstErr = fmt.Errorf("%v: %w", firstErr, ErrCorrupt)
	}
	return nil, 0, skipped, firstErr
}

func checkUniverse(want, have int) error {
	if want > have {
		return fmt.Errorf("persist: store universe has %d items, %d requested", have, want)
	}
	return nil
}

// replayWAL applies to m every logged transaction newer than m's step,
// checking contiguity: the log segments (ascending base order) must
// seamlessly continue the snapshot. A torn tail is allowed only where a
// crash could have left one — at the very end of a segment that no
// later durable data contradicts.
func replayWAL(fs FS, dir string, m *core.Incremental, wals []uint64) error {
	cur := uint64(m.Transactions())
	// Segments entirely covered by the snapshot need not be read (and
	// may be damaged without affecting recovery): segment i spans
	// (wals[i], wals[i+1]], so it is dead once the next base ≤ cur.
	start := 0
	for start+1 < len(wals) && wals[start+1] <= cur {
		start++
	}
	for i := start; i < len(wals); i++ {
		hdr, recs, torn, err := readWALFile(fs, dir, walName(wals[i]))
		if err != nil {
			return err
		}
		if !hdr.ok {
			// Header torn: the segment crashed during creation and holds
			// nothing. Acceptable only for the final segment.
			if i != len(wals)-1 {
				return corruptf("persist: %s torn before durable segment", walName(wals[i]))
			}
			return nil
		}
		if hdr.base != wals[i] {
			return corruptf("persist: %s header base %d does not match name", walName(wals[i]), hdr.base)
		}
		if int(hdr.items) != m.Items() {
			return corruptf("persist: %s universe %d does not match state %d", walName(wals[i]), hdr.items, m.Items())
		}
		if hdr.base > cur {
			// A segment with base B attests that B transactions were once
			// durable; if replay cannot reach B, that data is lost.
			return corruptf("persist: log gap: segment base %d beyond recovered transaction %d", hdr.base, cur)
		}
		for j, rec := range recs {
			step := hdr.base + uint64(j) + 1
			if step <= cur {
				continue // already covered by the snapshot
			}
			if step != cur+1 {
				return corruptf("persist: log gap: transaction %d follows %d", step, cur)
			}
			if err := m.AddSet(rec); err != nil {
				return corruptf("persist: %v", err)
			}
			cur++
		}
		if torn && i != len(wals)-1 && wals[i+1] != cur {
			// The torn record was superseded by a later segment that does
			// not resume where this one durably ended — durable data lies
			// beyond a hole. (A torn tail at the very end, or one exactly
			// patched by the next segment after an earlier crash-reopen
			// cycle, is the expected crash trace and is discarded.)
			return corruptf("persist: %s torn at transaction %d but next segment starts at %d", walName(wals[i]), cur, wals[i+1])
		}
	}
	return nil
}

// Add logs and applies one transaction. The items may be in any order;
// they are canonicalized. With SyncEvery ≤ 1 the transaction is durable
// when Add returns nil.
func (d *Durable) Add(items ...itemset.Item) error {
	return d.AddSet(itemset.New(items...))
}

// AddSet logs and applies one canonical transaction (write-ahead: the
// record is durable before the in-memory state changes).
func (d *Durable) AddSet(t itemset.Set) error {
	if d.err != nil {
		return d.err
	}
	if !t.IsCanonical() {
		return fmt.Errorf("persist: transaction not canonical: %v", t)
	}
	if len(t) > 0 && (t[0] < 0 || int(t[len(t)-1]) >= d.m.Items()) {
		return fmt.Errorf("persist: transaction item outside universe [0,%d): %v", d.m.Items(), t)
	}
	if err := d.wal.Append(t); err != nil {
		return d.fail(err)
	}
	d.dirty++
	if d.dirty >= d.opt.SyncEvery {
		if err := d.wal.Sync(); err != nil {
			return d.fail(err)
		}
		d.dirty = 0
	}
	if err := d.m.AddSet(t); err != nil {
		return d.fail(err) // unreachable after the checks above
	}
	d.since++
	if d.opt.SnapshotEvery > 0 && d.since >= d.opt.SnapshotEvery {
		return d.Snapshot()
	}
	return nil
}

// Snapshot writes a snapshot of the current state, rotates the WAL so
// the replay tail restarts empty, and prunes generations beyond
// Options.Keep. It is called automatically every SnapshotEvery
// transactions.
func (d *Durable) Snapshot() error {
	if d.err != nil {
		return d.err
	}
	step := uint64(d.m.Transactions())
	if step == d.snap {
		return nil // the durable snapshot already covers this state
	}
	snapStart := time.Now()
	err := d.retryIO("snapshot", func() error {
		_, werr := writeSnapshotFile(d.fs, d.dir, d.m)
		return werr
	})
	if err != nil {
		return d.fail(err)
	}
	obs.EmitSpan(d.opt.Obs, obs.PhaseSnapshot, snapStart, obs.Counts{Nodes: int64(d.m.NodeCount())})
	// The snapshot is durable; records up to step no longer need the old
	// segment. Open the new segment before closing the old one so a
	// failure in between cannot leave the store without an active log.
	rotateStart := time.Now()
	var neww *walWriter
	err = d.retryIO("rotate", func() error {
		var werr error
		neww, werr = createWAL(d.fs, d.dir, d.m.Items(), step)
		return werr
	})
	if err != nil {
		return d.fail(err)
	}
	old := d.wal
	d.wal = neww
	d.dirty = 0
	d.since = 0
	d.snap = step
	d.snaps++
	if err := old.Close(); err != nil {
		return d.fail(err)
	}
	d.cleanup()
	obs.EmitSpan(d.opt.Obs, obs.PhaseRotate, rotateStart, obs.Counts{Nodes: int64(d.m.NodeCount())})
	return nil
}

// cleanup deletes snapshots beyond the Keep newest and WAL segments no
// kept snapshot needs. Failures are ignored: leftovers cost disk space,
// not correctness — recovery always prefers the newest generation.
func (d *Durable) cleanup() {
	names, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return
	}
	var snaps []uint64
	for _, name := range names {
		if step, ok := parseSnapName(name); ok {
			snaps = append(snaps, step)
		}
	}
	if len(snaps) <= d.opt.Keep {
		return
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	oldest := snaps[d.opt.Keep-1] // oldest kept snapshot
	for _, step := range snaps[d.opt.Keep:] {
		d.fs.Remove(join(d.dir, snapName(step)))
	}
	var wals []uint64
	for _, name := range names {
		if base, ok := parseWALName(name); ok {
			wals = append(wals, base)
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	// Segment i spans (wals[i], wals[i+1]]; it is needed iff some kept
	// snapshot's replay can start inside it, i.e. its end > oldest.
	for i := 0; i+1 < len(wals); i++ {
		if wals[i+1] <= oldest {
			d.fs.Remove(join(d.dir, walName(wals[i])))
		}
	}
}

// Sync forces the WAL to stable storage, making every Add so far
// durable regardless of SyncEvery.
func (d *Durable) Sync() error {
	if d.err != nil {
		return d.err
	}
	if err := d.wal.Sync(); err != nil {
		return d.fail(err)
	}
	d.dirty = 0
	return nil
}

// Close syncs and closes the store. The state on disk recovers to
// exactly the transactions added (modulo SyncEvery tail loss if the
// final Sync failed). Close does not snapshot; call Snapshot first to
// bound the next open's replay.
func (d *Durable) Close() error {
	if d.err != nil {
		// Best effort: the store is already poisoned, but release the
		// file handle.
		if d.wal != nil {
			d.wal.f.Close()
		}
		return d.err
	}
	err := d.wal.Close()
	d.err = fmt.Errorf("persist: store closed")
	if err != nil {
		return err
	}
	return nil
}

// fail latches the store's first fatal error. The latched error is
// marked permanent regardless of any transient classification beneath:
// once the store has fail-stopped, re-attempting the operation cannot
// succeed, so surfacing it as retryable would only mislead supervisors.
func (d *Durable) fail(err error) error {
	if d.err == nil {
		d.err = retry.MarkPermanent(fmt.Errorf("persist: store failed: %w", err))
	}
	return d.err
}

// Err returns the latched fatal error, if any.
func (d *Durable) Err() error { return d.err }

// Transactions returns the number of transactions applied so far.
func (d *Durable) Transactions() int { return d.m.Transactions() }

// Items returns the item universe size.
func (d *Durable) Items() int { return d.m.Items() }

// NodeCount returns the current prefix tree size.
func (d *Durable) NodeCount() int { return d.m.NodeCount() }

// Snapshots returns the number of snapshots (each with its WAL rotation)
// this handle has written; recovery on Open does not count.
func (d *Durable) Snapshots() int { return d.snaps }

// RepairReport returns what the self-healing machinery did for this
// handle: temp files swept and generations skipped or quarantined on
// open, plus transient I/O retries performed since.
func (d *Durable) RepairReport() RepairReport { return d.report }

// Retries returns the number of transient I/O operations this handle
// re-ran under Options.Retry.
func (d *Durable) Retries() int { return d.report.Retried }

// Closed reports the closed item sets of the transactions added so far
// whose support reaches minSupport (queries work even after a write
// fault — the in-memory state is always consistent).
func (d *Durable) Closed(minSupport int, rep result.Reporter) {
	d.m.Closed(minSupport, rep)
}

// ClosedSet collects the current closed frequent item sets in canonical
// order.
func (d *Durable) ClosedSet(minSupport int) *result.Set {
	return d.m.ClosedSet(minSupport)
}

// Miner exposes the underlying in-memory miner (read-only use).
func (d *Durable) Miner() *core.Incremental { return d.m }
