package persist

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/itemset"
)

// segmentBytes builds a valid WAL segment in memory, mirroring
// createWAL + Append, for use as fuzz seed material.
func segmentBytes(items int, base uint64, recs []itemset.Set) []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, walMagic...)
	buf = binary.AppendUvarint(buf, walVersion)
	buf = binary.AppendUvarint(buf, uint64(items))
	buf = binary.AppendUvarint(buf, base)
	buf = appendTrailer(buf, crc32Of(buf))
	for _, t := range recs {
		payload := binary.AppendUvarint(nil, uint64(len(t)))
		for i, it := range t {
			if i == 0 {
				payload = binary.AppendUvarint(payload, uint64(it))
			} else {
				payload = binary.AppendUvarint(payload, uint64(it-t[i-1]))
			}
		}
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = append(buf, payload...)
		buf = appendTrailer(buf, crc32Of(payload))
	}
	return buf
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder: it
// must return a miner or an error wrapping ErrCorrupt — never panic,
// and never allocate unboundedly from declared counts (allocation is
// driven by the bytes actually present). An accepted input must
// re-encode into bytes that decode back to the identical mining state.
func FuzzSnapshotDecode(f *testing.F) {
	for _, n := range []int{0, 1, 12} {
		m := miner(f, 8, stream(8, n, int64(n)))
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, m); err != nil {
			f.Fatal(err)
		}
		raw := buf.Bytes()
		f.Add(raw)
		if len(raw) > 10 {
			mut := append([]byte(nil), raw...)
			mut[10] ^= 0xff
			f.Add(mut)
			f.Add(raw[:len(raw)/2])
		}
	}
	f.Add([]byte(snapMagic))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<16 {
			return
		}
		m, err := ReadSnapshot(bytes.NewReader(raw))
		if err != nil {
			if !errorsIsCorrupt(err) {
				t.Fatalf("decode error not typed: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := WriteSnapshot(&out, m); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		m2, err := ReadSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if m2.Transactions() != m.Transactions() || m2.NodeCount() != m.NodeCount() || m2.Items() != m.Items() {
			t.Fatalf("re-encode changed state: %d/%d trans, %d/%d nodes, %d/%d items",
				m2.Transactions(), m.Transactions(), m2.NodeCount(), m.NodeCount(), m2.Items(), m.Items())
		}
		if !m2.ClosedSet(1).Equal(m.ClosedSet(1)) {
			t.Fatal("re-encode changed the closed sets")
		}
	})
}

// FuzzWALReplay feeds arbitrary bytes to the WAL segment reader: it
// must classify them as records + clean end, records + torn tail, or
// typed corruption — never panic, never deliver a record that is
// non-canonical or outside the declared universe.
func FuzzWALReplay(f *testing.F) {
	raw := segmentBytes(10, 3, stream(10, 8, 42))
	f.Add(raw)
	f.Add(raw[:len(raw)/3])
	if len(raw) > 20 {
		mut := append([]byte(nil), raw...)
		mut[20] ^= 0x40
		f.Add(mut)
	}
	f.Add(segmentBytes(5, 0, []itemset.Set{{}}))
	f.Add([]byte(walMagic))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<16 {
			return
		}
		hdr, recs, torn, err := readWAL(bytes.NewReader(raw))
		if err != nil {
			if !errorsIsCorrupt(err) {
				t.Fatalf("read error not typed: %v", err)
			}
			return
		}
		if !hdr.ok {
			if len(recs) != 0 {
				t.Fatal("records delivered without a header")
			}
			return
		}
		if hdr.items > MaxItems {
			t.Fatalf("accepted universe %d beyond cap", hdr.items)
		}
		for i, r := range recs {
			if !r.IsCanonical() {
				t.Fatalf("record %d not canonical: %v", i, r)
			}
			if len(r) > 0 && uint64(r[len(r)-1]) >= hdr.items {
				t.Fatalf("record %d outside universe [0,%d): %v", i, hdr.items, r)
			}
		}
		_ = torn
	})
}
