package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/itemset"
	"repro/internal/retry"
)

// Write-ahead log format, version 1. A segment starts with a
// checksummed header:
//
//	magic    8 bytes  "ISTAWAL\x01"
//	version  uvarint  1
//	items    uvarint  item universe size
//	base     uvarint  step counter when the segment was opened
//	crc      4 bytes  little-endian CRC-32 (IEEE) over the header
//
// followed by one record per transaction (the i-th record, 1-based, is
// transaction base+i of the stream):
//
//	length   uvarint  payload byte count
//	payload  length bytes: uvarint count, uvarint first item,
//	         count-1 × uvarint delta (strictly positive — the set is
//	         canonical, so deltas encode it compactly and re-validate
//	         ascending order on decode)
//	crc      4 bytes  little-endian CRC-32 (IEEE) over the payload
//
// Each record is appended with a single Write call, so a crash leaves at
// worst one partially written record at the tail. The reader classifies
// damage by how it manifests: running out of bytes mid-record is a torn
// tail (the expected trace of a crash — the record was never durable and
// is discarded), while a record whose bytes are all present but whose
// checksum or structure is wrong is corruption and fails with
// ErrCorrupt. A torn header (file shorter than the header) marks an
// empty segment that crashed during creation.

const (
	walMagic   = "ISTAWAL\x01"
	walVersion = 1
)

// walName is the file name of the segment whose first record is
// transaction base+1; names sort lexicographically by base.
func walName(base uint64) string { return fmt.Sprintf("wal-%016d.log", base) }

// parseWALName inverts walName.
func parseWALName(name string) (base uint64, ok bool) {
	return parseNumbered(name, "wal-", ".log")
}

// walHeader is a decoded segment header. ok is false when the header
// itself was torn (the segment holds nothing durable).
type walHeader struct {
	items uint64
	base  uint64
	ok    bool
}

// walWriter appends records to an open segment.
type walWriter struct {
	f    File
	base uint64
	n    uint64 // records appended
	buf  []byte
}

// createWAL creates (truncating) the segment file for base in dir and
// writes its header. The header is synced so the segment's existence
// and base are durable before any record relies on them.
func createWAL(fs FS, dir string, items int, base uint64) (*walWriter, error) {
	f, err := fs.Create(join(dir, walName(base)))
	if err != nil {
		return nil, err
	}
	w := &walWriter{f: f, base: base}
	buf := make([]byte, 0, 64)
	buf = append(buf, walMagic...)
	buf = binary.AppendUvarint(buf, walVersion)
	buf = binary.AppendUvarint(buf, uint64(items))
	buf = binary.AppendUvarint(buf, base)
	buf = appendTrailer(buf, crc32Of(buf))
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		// fsync failures stay fail-stop regardless of any transient
		// classification beneath (see writeSnapshotFile).
		return nil, retry.MarkPermanent(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, retry.MarkPermanent(err)
	}
	return w, nil
}

// Append logs one canonical transaction. The record reaches the
// operating system in a single write; durability additionally requires
// Sync.
func (w *walWriter) Append(t itemset.Set) error {
	payload := w.buf[:0]
	payload = binary.AppendUvarint(payload, uint64(len(t)))
	for i, it := range t {
		if i == 0 {
			payload = binary.AppendUvarint(payload, uint64(it))
		} else {
			payload = binary.AppendUvarint(payload, uint64(it-t[i-1]))
		}
	}
	rec := make([]byte, 0, len(payload)+16)
	rec = binary.AppendUvarint(rec, uint64(len(payload)))
	rec = append(rec, payload...)
	rec = appendTrailer(rec, crc32Of(payload))
	w.buf = payload[:0]
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	w.n++
	return nil
}

// Sync makes all appended records durable.
func (w *walWriter) Sync() error { return w.f.Sync() }

// Close syncs and closes the segment.
func (w *walWriter) Close() error {
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readWAL decodes a whole segment. recs holds the durable records in
// order; torn reports that the tail (or the header, in which case
// hdr.ok is false) was partially written and discarded. Structural or
// checksum damage in fully present bytes fails with an error wrapping
// ErrCorrupt.
func readWAL(r io.Reader) (hdr walHeader, recs []itemset.Set, torn bool, err error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		if isTruncation(err) {
			return hdr, nil, true, nil
		}
		return hdr, nil, false, err
	}
	if string(magic[:]) != walMagic {
		return hdr, nil, false, corruptf("persist: bad WAL magic %q", magic[:])
	}
	fields := make([]uint64, 3) // version, items, base
	for i := range fields {
		if fields[i], err = readUvarint(cr); err != nil {
			if isTruncation(err) {
				return hdr, nil, true, nil
			}
			return hdr, nil, false, err
		}
	}
	sum := cr.crc
	want, err := readTrailer(br)
	if err != nil {
		if isTruncation(err) {
			return hdr, nil, true, nil
		}
		return hdr, nil, false, err
	}
	if want != sum {
		return hdr, nil, false, corruptf("persist: WAL header checksum mismatch")
	}
	if fields[0] != walVersion {
		return hdr, nil, false, corruptf("persist: unsupported WAL version %d", fields[0])
	}
	if fields[1] > MaxItems {
		return hdr, nil, false, corruptf("persist: WAL item universe %d exceeds limit %d", fields[1], MaxItems)
	}
	hdr = walHeader{items: fields[1], base: fields[2], ok: true}

	// A canonical transaction over `items` codes needs at most items
	// varints of ≤5 bytes plus the count; anything longer cannot have
	// been written by Append and is corruption, not a torn tail.
	maxPayload := 16 + 5*hdr.items
	for {
		// A clean EOF exactly at a record boundary ends the segment; any
		// shortage after the first byte of a record is a torn tail.
		if _, err := br.Peek(1); err != nil {
			if isTruncation(err) {
				return hdr, recs, false, nil
			}
			return hdr, recs, false, err
		}
		length, err := readUvarint(br)
		if err != nil {
			if isTruncation(err) {
				return hdr, recs, true, nil
			}
			return hdr, recs, false, err
		}
		if length > maxPayload {
			return hdr, recs, false, corruptf("persist: WAL record %d length %d exceeds limit %d", len(recs), length, maxPayload)
		}
		payload, err := readChunked(br, length)
		if err != nil {
			if isTruncation(err) {
				return hdr, recs, true, nil
			}
			return hdr, recs, false, err
		}
		want, err := readTrailer(br)
		if err != nil {
			if isTruncation(err) {
				return hdr, recs, true, nil
			}
			return hdr, recs, false, err
		}
		if want != crc32Of(payload) {
			return hdr, recs, false, corruptf("persist: WAL record %d checksum mismatch", len(recs))
		}
		set, err := decodeTransaction(payload, hdr.items)
		if err != nil {
			return hdr, recs, false, fmt.Errorf("persist: WAL record %d: %w", len(recs), err)
		}
		recs = append(recs, set)
	}
}

// decodeTransaction rebuilds a canonical item set from a record payload,
// re-validating strict ascending order and the item universe bound.
func decodeTransaction(payload []byte, items uint64) (itemset.Set, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, corruptf("bad item count")
	}
	payload = payload[n:]
	if count > items || count > uint64(len(payload)) {
		return nil, corruptf("item count %d implausible", count)
	}
	set := make(itemset.Set, 0, count)
	var prev uint64
	for i := uint64(0); i < count; i++ {
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, corruptf("truncated item %d", i)
		}
		payload = payload[n:]
		var it uint64
		if i == 0 {
			it = v
		} else {
			if v == 0 {
				return nil, corruptf("non-ascending item %d", i)
			}
			it = prev + v
		}
		if it >= items {
			return nil, corruptf("item %d outside universe [0,%d)", it, items)
		}
		set = append(set, itemset.Item(it))
		prev = it
	}
	if len(payload) != 0 {
		return nil, corruptf("%d trailing payload bytes", len(payload))
	}
	return set, nil
}

// readWALFile decodes the segment file name from dir.
func readWALFile(fs FS, dir, name string) (walHeader, []itemset.Set, bool, error) {
	f, err := fs.Open(join(dir, name))
	if err != nil {
		return walHeader{}, nil, false, err
	}
	hdr, recs, torn, err := readWAL(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return hdr, recs, torn, fmt.Errorf("%s: %w", name, err)
	}
	return hdr, recs, torn, nil
}
