package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

// Shared low-level framing helpers: CRC-accumulating reader/writer
// wrappers and bounded reads that never allocate more than the input
// actually provides (a declared length is only trusted up to the bytes
// that exist, so corrupt or adversarial headers cannot trigger huge
// allocations).

// crcWriter forwards writes and accumulates a CRC-32 (IEEE) over them.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// crcReader reads from a buffered reader and accumulates a CRC-32
// (IEEE) over every byte it hands out. It implements io.ByteReader so
// binary.ReadUvarint can consume it directly.
type crcReader struct {
	r   *bufio.Reader
	crc uint32
	one [1]byte
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	c.one[0] = b
	c.crc = crc32.Update(c.crc, crc32.IEEETable, c.one[:])
	return b, nil
}

// readUvarint is binary.ReadUvarint with the overflow case reported as
// corruption (overlong varints cannot be written by our encoders, so
// they are damage, not I/O); read errors pass through untouched.
func readUvarint(r io.ByteReader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, corruptf("persist: uvarint overflows 64 bits")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, corruptf("persist: uvarint overflows 64 bits")
}

// isTruncation reports whether err is a clean end-of-input — the
// signature of a torn (partially written) tail rather than flipped bits.
func isTruncation(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// readChunked reads exactly n bytes from r, growing the buffer in
// bounded chunks so a corrupt length prefix cannot force an allocation
// larger than the input that is actually present (plus one chunk).
func readChunked(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 64 << 10
	buf := make([]byte, 0, min64(n, chunk))
	for uint64(len(buf)) < n {
		k := min64(n-uint64(len(buf)), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// readTrailer reads the 4-byte little-endian CRC trailer that follows a
// checksummed region (the trailer itself is not part of the checksum).
func readTrailer(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func appendTrailer(buf []byte, crc uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// crc32Of is the CRC-32 (IEEE) of b.
func crc32Of(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
