// Package guard is the resource-guard layer every miner runs under: a
// Budget bounds a mining run by wall-clock deadline, number of reported
// patterns, and repository size, and a Guard enforces it cooperatively
// through the tick checks of internal/mining.Control.
//
// Exceeding a bound never corrupts the run: mining stops at the next
// cooperative check, the patterns already reported form a valid prefix of
// the full result (every reported pattern is a genuinely closed frequent
// item set with its exact support — miners only report fully computed
// patterns), and the run returns a typed error (ErrDeadline or ErrBudget)
// identifying which bound fired. This is the anytime contract of
// cumulative intersection mining: stopping early yields a truncated but
// correct result (cf. Nguyen et al., early-stopping intersections).
//
// A Guard is shared by all worker goroutines of a parallel run; all its
// methods are safe for concurrent use and a tripped guard latches its
// first error.
package guard

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrDeadline reports that a run exceeded its wall-clock deadline. The
// patterns reported before the deadline remain a valid prefix of the
// result.
var ErrDeadline = errors.New("guard: deadline exceeded")

// ErrBudget reports that a run exhausted a resource budget (maximum
// reported patterns or maximum repository nodes). The patterns reported
// before exhaustion remain a valid prefix of the result. Errors returned
// by guarded miners wrap ErrBudget with the specific bound; match with
// errors.Is.
var ErrBudget = errors.New("guard: budget exhausted")

// Budget bounds a mining run. The zero value imposes no bounds.
type Budget struct {
	// Deadline is the wall-clock instant after which the run stops with
	// ErrDeadline; the zero time means no deadline.
	Deadline time.Time
	// MaxPatterns caps the number of reported patterns; once it is
	// reached, further reports are suppressed and the run stops with an
	// error wrapping ErrBudget. Values <= 0 mean no cap.
	MaxPatterns int
	// MaxTreeNodes caps the size of a miner's repository: live prefix-tree
	// nodes for IsTa, stored sets for the Carpenter/Cobbler repositories
	// and the flat cumulative scheme. In a parallel run the cap applies to
	// each worker's private repository. Miners without a repository
	// (FP-close, LCM, Eclat, SaM, Apriori) are not affected. Values <= 0
	// mean no cap.
	MaxTreeNodes int
}

// Enabled reports whether the budget bounds anything.
func (b Budget) Enabled() bool {
	return !b.Deadline.IsZero() || b.MaxPatterns > 0 || b.MaxTreeNodes > 0
}

// Guard enforces a Budget. The nil *Guard enforces nothing; all methods
// are nil-safe so miners can thread an optional guard without checks.
type Guard struct {
	deadline    time.Time
	maxPatterns int64
	maxNodes    int64
	patterns    atomic.Int64
	err         atomic.Pointer[error]
}

// New returns a Guard enforcing b.
func New(b Budget) *Guard {
	return &Guard{
		deadline:    b.Deadline,
		maxPatterns: int64(b.MaxPatterns),
		maxNodes:    int64(b.MaxTreeNodes),
	}
}

// Err returns the latched error of a tripped guard, or nil.
func (g *Guard) Err() error {
	if g == nil {
		return nil
	}
	if p := g.err.Load(); p != nil {
		return *p
	}
	return nil
}

// trip latches err as the guard's error (first trip wins) and returns the
// latched error.
func (g *Guard) trip(err error) error {
	g.err.CompareAndSwap(nil, &err)
	return *g.err.Load()
}

// Check is the periodic probe called from mining.Control's amortized tick
// path: it returns the latched error, or trips and returns ErrDeadline
// once the deadline has passed.
func (g *Guard) Check() error {
	if g == nil {
		return nil
	}
	if err := g.Err(); err != nil {
		return err
	}
	if !g.deadline.IsZero() && !time.Now().Before(g.deadline) {
		return g.trip(ErrDeadline)
	}
	return nil
}

// CountPattern accounts for one reported pattern and reports whether it
// still fits the pattern budget. The first pattern beyond the cap trips
// the guard and returns false; callers must then suppress the report so
// the emitted stream stays within the budget.
func (g *Guard) CountPattern() bool {
	if g == nil {
		return true
	}
	n := g.patterns.Add(1)
	if g.maxPatterns > 0 && n > g.maxPatterns {
		g.trip(fmt.Errorf("%w: pattern budget (%d) reached", ErrBudget, g.maxPatterns))
		return false
	}
	return g.Err() == nil
}

// PollNodes checks a repository size against the node budget, tripping
// the guard with an error wrapping ErrBudget when it is exceeded. It
// returns the guard's latched error, if any.
func (g *Guard) PollNodes(n int) error {
	if g == nil {
		return nil
	}
	if err := g.Err(); err != nil {
		return err
	}
	if g.maxNodes > 0 && int64(n) > g.maxNodes {
		return g.trip(fmt.Errorf("%w: repository node budget (%d) exceeded", ErrBudget, g.maxNodes))
	}
	return nil
}
