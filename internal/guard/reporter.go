package guard

import (
	"repro/internal/itemset"
	"repro/internal/result"
)

// Limit wraps rep so that reports are counted against g's pattern budget
// and suppressed once it is exhausted: the stream seen by rep is exactly
// the first MaxPatterns patterns of the unguarded stream. The mining run
// notices the tripped guard at its next cooperative check and stops with
// the guard's error.
func Limit(g *Guard, rep result.Reporter) result.Reporter {
	if g == nil {
		return rep
	}
	return result.ReporterFunc(func(items itemset.Set, support int) {
		if g.CountPattern() {
			rep.Report(items, support)
		}
	})
}
