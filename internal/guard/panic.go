package guard

import (
	"fmt"
	"runtime"
)

// PanicError is the contained form of a panic that escaped a mining
// worker or a reporter callback: the guarded execution layer recovers the
// panic, joins the worker pool without leaking goroutines, and returns
// the panic as an ordinary error carrying the recovered value and the
// stack of the panicking goroutine.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted stack trace of the panicking goroutine,
	// captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("mining panicked: %v", e.Value)
}

// NewPanicError wraps a recovered panic value. If v already is a
// *PanicError (a panic contained once and rethrown across a layer) it is
// returned unchanged so the original stack survives.
func NewPanicError(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	buf := make([]byte, 64<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return &PanicError{Value: v, Stack: buf}
}

// Recover is the worker-side containment hook: deferred at the top of a
// goroutine or call whose error lands in *errp, it converts a panic into
// a *PanicError without overwriting an error already recorded there.
//
//	defer guard.Recover(&errs[w])
func Recover(errp *error) {
	if r := recover(); r != nil && *errp == nil {
		*errp = NewPanicError(r)
	}
}
