package core

// Compact rebuilds the tree into a fresh arena in preorder (the exact
// order isect traverses it: node, then its children, then its sibling).
// The tree's logical structure is unchanged; only the memory layout
// improves. Because intersection passes dominate the run time and stream
// over millions of nodes, laying the nodes out in traversal order turns
// most link dereferences into sequential memory access. Mine calls it
// together with Prune, so the cost is amortized against tree growth.
func (t *Tree) Compact() {
	var fresh arena
	t.children = compactList(&fresh, t.children)
	t.arena = fresh
}

func compactList(dst *arena, n *node) *node {
	var head *node
	tail := &head
	for ; n != nil; n = n.sibling {
		c := dst.alloc()
		c.item, c.step, c.supp = n.item, n.step, n.supp
		*tail = c
		tail = &c.sibling
		c.children = compactList(dst, n.children)
	}
	*tail = nil
	return head
}
