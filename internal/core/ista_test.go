package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/naive"
	"repro/internal/prep"
	"repro/internal/result"
)

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

// TestMineMatchesOracle is the central correctness test: IsTa must produce
// exactly the closed frequent item sets of the brute-force oracle on many
// randomized databases, for several support thresholds, with and without
// pruning.
func TestMineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 150; trial++ {
		items := 2 + rng.Intn(10)
		n := 1 + rng.Intn(14)
		db := randDB(rng, items, n, 0.1+rng.Float64()*0.6)
		for _, minsup := range []int{1, 2, 3, n/2 + 1} {
			want, err := naive.ClosedByTransactionSubsets(db, minsup)
			if err != nil {
				t.Fatal(err)
			}
			for _, disablePrune := range []bool{false, true} {
				var got result.Set
				err := Mine(db, Options{MinSupport: minsup, DisablePruning: disablePrune}, got.Collect())
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("IsTa mismatch (minsup=%d prune=%v db=%v):\n%s",
						minsup, !disablePrune, db.Trans, got.Diff(want, 10))
				}
			}
		}
	}
}

// TestMineOrderInvariance: the set of closed frequent item sets must not
// depend on the item coding or the transaction processing order (§3.4
// only affects speed).
func TestMineOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	itemOrders := []prep.ItemOrder{prep.OrderAscFreq, prep.OrderDescFreq, prep.OrderKeep}
	transOrders := []prep.TransOrder{prep.OrderSizeAsc, prep.OrderSizeDesc, prep.OrderOriginal}
	for trial := 0; trial < 40; trial++ {
		db := randDB(rng, 2+rng.Intn(9), 2+rng.Intn(12), 0.2+rng.Float64()*0.5)
		minsup := 1 + rng.Intn(3)
		var ref result.Set
		if err := Mine(db, Options{MinSupport: minsup}, ref.Collect()); err != nil {
			t.Fatal(err)
		}
		for _, io := range itemOrders {
			for _, to := range transOrders {
				var got result.Set
				err := Mine(db, Options{MinSupport: minsup, ItemOrder: io, TransOrder: to}, got.Collect())
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(&ref) {
					t.Fatalf("order (%v,%v) changed the result (minsup=%d db=%v):\n%s",
						io, to, minsup, db.Trans, got.Diff(&ref, 10))
				}
			}
		}
	}
}

func TestMineEdgeCases(t *testing.T) {
	// Empty database.
	var got result.Set
	if err := Mine(&dataset.Database{Items: 4}, Options{MinSupport: 1}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty db: %d patterns", got.Len())
	}

	// Single transaction.
	got = result.Set{}
	db := dataset.FromInts([]int{1, 3, 5})
	if err := Mine(db, Options{MinSupport: 1}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	var want result.Set
	want.Add(itemset.FromInts(1, 3, 5), 1)
	if !got.Equal(&want) {
		t.Fatalf("single transaction: %s", got.Diff(&want, 5))
	}

	// MinSupport above the transaction count.
	got = result.Set{}
	if err := Mine(db, Options{MinSupport: 2}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("minsup > n must yield nothing")
	}

	// Identical item in every transaction.
	got = result.Set{}
	db = dataset.FromInts([]int{0, 1}, []int{0, 2}, []int{0})
	if err := Mine(db, Options{MinSupport: 3}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	want = result.Set{}
	want.Add(itemset.FromInts(0), 3)
	if !got.Equal(&want) {
		t.Fatalf("common item: %s", got.Diff(&want, 5))
	}

	// Invalid database is rejected.
	bad := &dataset.Database{Items: 1, Trans: []itemset.Set{{3}}}
	if err := Mine(bad, Options{MinSupport: 1}, &result.Counter{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestMineReportsOriginalCodes(t *testing.T) {
	// Items 10 and 20 with gaps; recoding must be undone on report.
	db := dataset.New([]itemset.Set{
		itemset.FromInts(10, 20),
		itemset.FromInts(10, 20),
		itemset.FromInts(10),
	}, 0)
	var got result.Set
	if err := Mine(db, Options{MinSupport: 2}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	var want result.Set
	want.Add(itemset.FromInts(10), 3)
	want.Add(itemset.FromInts(10, 20), 2)
	if !got.Equal(&want) {
		t.Fatalf("codes: %s", got.Diff(&want, 5))
	}
}

func TestMineCancel(t *testing.T) {
	done := make(chan struct{})
	close(done)
	db := randDB(rand.New(rand.NewSource(3)), 40, 600, 0.4)
	err := Mine(db, Options{MinSupport: 2, Done: done}, &result.Counter{})
	if err != mining.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestPruneEquivalenceLarger drives pruning through its threshold on a
// database big enough that Prune actually runs, and cross-checks the two
// configurations against each other (the oracle would be too slow here).
func TestPruneEquivalenceLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	db := randDB(rng, 60, 120, 0.25)
	for _, minsup := range []int{2, 5, 12, 30} {
		var with, without result.Set
		if err := Mine(db, Options{MinSupport: minsup}, with.Collect()); err != nil {
			t.Fatal(err)
		}
		if err := Mine(db, Options{MinSupport: minsup, DisablePruning: true}, without.Collect()); err != nil {
			t.Fatal(err)
		}
		if !with.Equal(&without) {
			t.Fatalf("pruning changed results at minsup %d:\n%s", minsup, with.Diff(&without, 10))
		}
		if err := result.Verify(db, &with, minsup); err != nil {
			t.Fatalf("verification failed at minsup %d: %v", minsup, err)
		}
	}
}

// TestPruneDirect exercises Tree.Prune explicitly: after pruning with the
// true remaining counts, reporting must still produce exactly the closed
// frequent sets.
func TestPruneDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 60; trial++ {
		items := 3 + rng.Intn(8)
		n := 4 + rng.Intn(12)
		db := randDB(rng, items, n, 0.2+rng.Float64()*0.5)
		minsup := 2 + rng.Intn(3)

		pre := prep.Prepare(db, minsup, prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderSizeAsc})
		remain := append([]int(nil), pre.Freq...)
		tree := NewTree(pre.DB.NumItems())
		for k := 0; k < pre.DB.NumTx(); k++ {
			tr := pre.DB.Tx(k)
			tree.AddTransaction(tr)
			for _, i := range tr {
				remain[i]--
			}
			tree.Prune(remain, minsup) // prune after every transaction: worst case
		}
		var got result.Set
		tree.Report(minsup, func(s itemset.Set, supp int) {
			got.Add(pre.DecodeSet(s), supp)
		})
		want, err := naive.ClosedByTransactionSubsets(db, minsup)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("aggressive pruning broke results (minsup=%d db=%v):\n%s",
				minsup, db.Trans, got.Diff(want, 10))
		}
	}
}

// TestCancelLatencyMidTransaction: cancellation must take effect even in
// the middle of one huge intersection pass (regression test for the
// harness stall where a single AddTransaction on an unpruned tree could
// not be interrupted).
func TestCancelLatencyMidTransaction(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	db := randDB(rng, 120, 300, 0.35)
	done := make(chan struct{})
	start := time.Now()
	time.AfterFunc(150*time.Millisecond, func() { close(done) })
	err := Mine(db, Options{MinSupport: 2, DisablePruning: true, Done: done}, &result.Counter{})
	elapsed := time.Since(start)
	if err != mining.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
}
