// Package core implements IsTa, the paper's primary contribution
// (§3.2–3.4): mining closed frequent item sets by cumulative intersection.
// A prefix tree stores all closed item sets of the transactions processed
// so far; each new transaction is first inserted into the tree and then
// intersected with every stored set in one recursive pass that creates the
// new intersections in place (Fig. 2 of the paper). A final traversal
// reports the nodes that are frequent and closed (Fig. 4).
package core

import (
	"repro/internal/itemset"
)

// node is a prefix tree node, mirroring Fig. 1 of the paper. The item set
// represented by a node consists of the node's item plus the items on the
// path to the root. Children always carry items with lower codes than
// their parent, and sibling lists are sorted by descending item code.
//
// (An int32-index arena layout was tried and measured slower than plain
// pointers: the extra address arithmetic and bounds checks in the
// traversal hot loop cost more than the smaller nodes saved.)
type node struct {
	item     int32 // associated item (last in the represented set)
	step     int32 // most recent update step (transaction index + 1)
	supp     int32 // support of the represented item set
	sibling  *node // successor in the sibling list (descending items)
	children *node // head of the child list
}

// arena is a slab allocator for nodes. It exists for the same reason the C
// implementation manages its own node memory: IsTa allocates and (during
// pruning) releases millions of small nodes, and a freelist plus slab
// blocks is far cheaper than exercising the general-purpose allocator for
// each one.
type arena struct {
	blocks [][]node
	used   int   // used entries in the last block
	free   *node // freelist threaded through sibling pointers
	live   int   // currently allocated (not freed) nodes
}

const arenaBlock = 8192

// TestHookAlloc, when non-nil, is called with the arena's live node count
// after every node allocation. It is a fault-injection seam
// (internal/faultinject uses it to panic at node N, inside whatever
// goroutine grows the tree); it must only be set while no mining run is
// active.
var TestHookAlloc func(live int)

func (a *arena) alloc() *node {
	a.live++
	if h := TestHookAlloc; h != nil {
		h(a.live)
	}
	if n := a.free; n != nil {
		a.free = n.sibling
		*n = node{}
		return n
	}
	if len(a.blocks) == 0 || a.used == arenaBlock {
		a.blocks = append(a.blocks, make([]node, arenaBlock))
		a.used = 0
	}
	n := &a.blocks[len(a.blocks)-1][a.used]
	a.used++
	return n
}

func (a *arena) release(n *node) {
	a.live--
	n.sibling = a.free
	n.children = nil
	a.free = n
}

// Tree is the IsTa repository: a prefix tree over item codes together with
// the per-transaction scratch state of the intersection pass.
type Tree struct {
	children *node // root's child list (the root represents the empty set)
	arena    arena
	trans    []bool // membership flags of the current transaction (Fig. 2's trans[])
	imin     int32  // lowest item code in the current transaction
	step     int32  // current update step = number of transactions processed
	weight   int32  // multiplicity of the current transaction (1 for AddTransaction)

	// Cancellation support: a single intersection pass can stream over
	// millions of nodes, so waiting for the pass to finish would make a
	// caller's timeout arbitrarily late. cancel is polled every
	// cancelInterval node visits; once it fires, the pass unwinds and the
	// tree contents are undefined (the mining run is being abandoned).
	cancel  func() bool
	ticks   int
	aborted bool
}

const cancelInterval = 1 << 14

// SetCancel installs a cancellation probe polled during intersection
// passes. A nil probe (the default) disables polling.
func (t *Tree) SetCancel(cancel func() bool) { t.cancel = cancel }

// Aborted reports whether a cancellation probe fired during a pass; the
// tree contents are undefined afterwards.
func (t *Tree) Aborted() bool { return t.aborted }

// NewTree returns an empty tree over item codes 0..items-1.
func NewTree(items int) *Tree {
	return &Tree{trans: make([]bool, items)}
}

// NodeCount returns the number of live tree nodes (excluding the root).
func (t *Tree) NodeCount() int { return t.arena.live }

// Step returns the number of transactions processed so far.
func (t *Tree) Step() int { return int(t.step) }

// AddTransaction processes one transaction: it inserts the transaction
// into the tree (new nodes start at support 0, per step 3.1 in Fig. 3 of
// the paper) and then runs the intersection pass, which also counts the
// transaction itself through the self-match. Empty transactions only
// advance the step counter. The items must be canonical (ascending).
func (t *Tree) AddTransaction(items itemset.Set) {
	t.addWeighted(items, 1)
}

// AddWeighted processes one transaction that occurs weight times in the
// multiset. It is exactly equivalent to weight consecutive AddTransaction
// calls with the same items — the intersection pass's support increments
// and its same-step discount both scale by the weight — but costs a single
// pass (only the step counter advances once instead of weight times). The
// parallel miner uses it to replay shard results as weighted transactions.
// Weights below 1 are ignored.
func (t *Tree) AddWeighted(items itemset.Set, weight int) {
	if weight < 1 {
		return
	}
	t.addWeighted(items, int32(weight))
}

func (t *Tree) addWeighted(items itemset.Set, weight int32) {
	t.step++
	t.weight = weight
	if len(items) == 0 {
		return
	}

	// Insert the transaction's path (descending item codes from the root).
	ins := &t.children
	for i := len(items) - 1; i >= 0; i-- {
		it := int32(items[i])
		for *ins != nil && (*ins).item > it {
			ins = &(*ins).sibling
		}
		if c := *ins; c != nil && c.item == it {
			ins = &c.children
			continue
		}
		n := t.arena.alloc()
		n.item = it
		n.sibling = *ins
		*ins = n
		ins = &n.children
	}

	// Intersection pass.
	for _, it := range items {
		t.trans[it] = true
	}
	t.imin = int32(items[0])
	t.isect(t.children, &t.children)
	for _, it := range items {
		t.trans[it] = false
	}
}

// isect is the recursive intersection procedure of Fig. 2. n traverses a
// sibling list of the existing tree; ins points at the link that holds the
// list representing the intersection of the already processed part of the
// transaction with the set represented by the path to n, i.e. where nodes
// for extended intersections must be looked up or inserted.
func (t *Tree) isect(n *node, ins **node) {
	trans, imin, step, weight := t.trans, t.imin, t.step, t.weight
	for n != nil {
		if t.aborted {
			return // unwind promptly across all recursion levels
		}
		if t.ticks--; t.ticks <= 0 {
			t.ticks = cancelInterval
			if t.cancel != nil && t.cancel() {
				t.aborted = true
				return
			}
		}
		i := n.item
		if trans[i] {
			// The item is in the intersection: find or create the node
			// for the extended intersection in the ins list.
			d := *ins
			for d != nil && d.item > i {
				ins = &d.sibling
				d = *ins
			}
			if d != nil && d.item == i {
				// Existing node: update its support. If it was already
				// updated in this step, discount the current transaction
				// before taking the maximum (the step field acts as an
				// incremental update flag).
				if d.step >= step {
					d.supp -= weight
				}
				if d.supp < n.supp {
					d.supp = n.supp
				}
				d.supp += weight
				d.step = step
			} else {
				d = t.arena.alloc()
				d.step = step
				d.item = i
				d.supp = n.supp + weight
				d.sibling = *ins
				*ins = d
			}
			if i <= imin {
				// No item below imin can be in the transaction, so
				// neither deeper nodes nor later siblings (all of which
				// carry lower codes) can contribute.
				return
			}
			if n.children != nil {
				t.isect(n.children, &d.children)
			}
		} else {
			if i <= imin {
				return
			}
			// Item not in the intersection: descend without advancing the
			// insertion position.
			if n.children != nil {
				t.isect(n.children, ins)
			}
		}
		n = n.sibling
	}
}

// Report emits every closed item set with support ≥ minSupport, following
// Fig. 4: a node is reported iff its support reaches the minimum and
// strictly exceeds the maximum support of its children (otherwise the
// represented set has a superset with equal support and is not closed).
// The empty set is never reported. The items slice passed to emit is
// reused between calls.
//
// Like the intersection pass, the traversal polls the cancellation probe
// installed with SetCancel: a report pass over a large tree would
// otherwise keep running long after the caller recorded a cancellation.
// Once the probe fires the traversal unwinds promptly and Aborted reports
// true; the sets emitted so far remain a valid prefix.
func (t *Tree) Report(minSupport int, emit func(items itemset.Set, support int)) {
	if minSupport < 1 {
		minSupport = 1
	}
	path := make(itemset.Set, 0, 32)
	t.report(t.children, path, int32(minSupport), emit)
}

func (t *Tree) report(list *node, path itemset.Set, minSupport int32, emit func(items itemset.Set, support int)) {
	for c := list; c != nil; c = c.sibling {
		if t.aborted {
			return // unwind promptly across all recursion levels
		}
		if t.ticks--; t.ticks <= 0 {
			t.ticks = cancelInterval
			if t.cancel != nil && t.cancel() {
				t.aborted = true
				return
			}
		}
		maxChild := int32(-1)
		for g := c.children; g != nil; g = g.sibling {
			if g.supp >= minSupport && g.supp > maxChild {
				maxChild = g.supp
			}
		}
		// An infrequent child can never tie a frequent parent (it would
		// be frequent itself), so only frequent children matter for the
		// closedness check, exactly as in Fig. 4.
		sub := append(path, c.item)
		if c.supp >= minSupport && c.supp > maxChild {
			// The path carries item codes descending from the root;
			// reverse into canonical order.
			out := make(itemset.Set, len(sub))
			for i, it := range sub {
				out[len(sub)-1-i] = it
			}
			emit(out, int(c.supp))
		}
		// Support never increases from parent to child, so an infrequent
		// subtree contains nothing reportable (Fig. 4 skips it too).
		if c.supp >= minSupport {
			t.report(c.children, sub, minSupport, emit)
		}
	}
}

// Walk visits every node of the tree and emits its represented item set
// together with the node's current support value, in the same traversal
// order as Report but without any frequency or closedness filtering. The
// parallel merge uses it to enumerate closure candidates, whose supports
// are then recomputed exactly. The items slice passed to emit is reused
// between calls. Walk honors the SetCancel probe the same way Report does.
func (t *Tree) Walk(emit func(items itemset.Set, support int)) {
	path := make(itemset.Set, 0, 32)
	t.walk(t.children, path, emit)
}

func (t *Tree) walk(list *node, path itemset.Set, emit func(items itemset.Set, support int)) {
	for c := list; c != nil; c = c.sibling {
		if t.aborted {
			return
		}
		if t.ticks--; t.ticks <= 0 {
			t.ticks = cancelInterval
			if t.cancel != nil && t.cancel() {
				t.aborted = true
				return
			}
		}
		sub := append(path, c.item)
		out := make(itemset.Set, len(sub))
		for i, it := range sub {
			out[len(sub)-1-i] = it
		}
		emit(out, int(c.supp))
		t.walk(c.children, sub, emit)
	}
}
