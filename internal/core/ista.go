package core

import (
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/txdb"
)

// Options configures the IsTa miner. The zero value requests the paper's
// recommended configuration: items coded by ascending frequency,
// transactions processed by increasing size, pruning enabled.
type Options struct {
	// MinSupport is the absolute minimum support; values < 1 act as 1.
	MinSupport int
	// ItemOrder selects the item coding (§3.4; default ascending
	// frequency — the rarest item gets code 0).
	ItemOrder prep.ItemOrder
	// TransOrder selects the transaction processing order (§3.4; default
	// increasing size).
	TransOrder prep.TransOrder
	// DisablePruning turns off the item-elimination tree pruning of §3.2.
	// Pruning never changes the result, only time and memory.
	DisablePruning bool
	// Done optionally cancels the run; Mine then returns
	// mining.ErrCanceled.
	Done <-chan struct{}
	// Guard optionally bounds the run (deadline, pattern and tree-node
	// budgets); Mine then returns the guard's typed error once a bound
	// trips. May be nil.
	Guard *guard.Guard
}

// pruneMinNodes avoids pruning while the tree is trivially small.
const pruneMinNodes = 4096

// Mine runs IsTa on db and reports every closed item set with support at
// least opts.MinSupport, in the database's original item codes. It is the
// entry point for the paper's primary algorithm; engine-driven runs enter
// through the registration in register.go instead.
func Mine(db txdb.Source, opts Options, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	ctl := mining.Guarded(opts.Done, opts.Guard)
	pre := prep.Prepare(db, minsup, prep.Config{Items: opts.ItemOrder, Trans: opts.TransOrder})
	return minePrepared(pre, minsup, opts.DisablePruning, ctl, rep)
}

// minePrepared is the IsTa core on an already preprocessed database.
func minePrepared(pre *prep.Prepared, minsup int, disablePruning bool, ctl *mining.Control, rep result.Reporter) error {
	pdb := pre.DB
	if pdb.NumItems() == 0 {
		return nil
	}

	// remain[i] = occurrences of item i in the not-yet-processed
	// transactions; it starts at the global frequencies and is decremented
	// as transactions are consumed (§3.2).
	var remain []int
	if !disablePruning {
		remain = append([]int(nil), pre.Freq...)
	}

	tree := NewTree(pdb.NumItems())
	// Poll cancellation and the node budget inside the intersection passes
	// too: a single pass over a large tree can both exceed the budget (the
	// pass creates the intersection nodes) and delay a timeout arbitrarily.
	tree.SetCancel(func() bool {
		return ctl.PollNodes(tree.NodeCount()) != nil || ctl.Canceled()
	})
	lastPruneNodes := 0
	for k, n := 0, pdb.NumTx(); k < n; k++ {
		t := pdb.Tx(k)
		w := pdb.Weight(k)
		if err := ctl.Tick(); err != nil {
			return err
		}
		ctl.CountOps(1) // one cumulative intersection pass per transaction
		tree.AddWeighted(t, w)
		if tree.Aborted() {
			return ctl.Cause()
		}
		if err := ctl.PollNodes(tree.NodeCount()); err != nil {
			return err
		}
		if remain == nil {
			continue
		}
		for _, i := range t {
			remain[i] -= w
		}
		// Prune when the tree has grown substantially since the last
		// pass; the pass is linear in the tree size, so amortized cost
		// stays proportional to growth.
		if n := tree.NodeCount(); n >= pruneMinNodes && n >= lastPruneNodes+lastPruneNodes/8 {
			tree.Prune(remain, minsup)
			tree.Compact()
			lastPruneNodes = tree.NodeCount()
		}
	}

	// The report pass polls the same cancellation probe as the
	// intersection passes (via SetCancel above): once the reporter records
	// an error the latched control makes the probe fire, so the traversal
	// aborts promptly instead of walking the rest of a large tree while
	// merely skipping emits.
	var err error
	tree.Report(minsup, func(items itemset.Set, support int) {
		if err != nil {
			return
		}
		if e := ctl.Tick(); e != nil {
			err = e
			return
		}
		rep.Report(pre.DecodeSet(items), support)
	})
	if err != nil {
		return err
	}
	if tree.Aborted() {
		return ctl.Cause()
	}
	return nil
}
