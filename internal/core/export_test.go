package core

import (
	"math/rand"
	"testing"

	"repro/internal/itemset"
)

// randomStream builds a reproducible transaction stream.
func randomStream(items, n int, seed int64) []itemset.Set {
	rng := rand.New(rand.NewSource(seed))
	out := make([]itemset.Set, n)
	for i := range out {
		k := rng.Intn(6)
		t := make([]itemset.Item, k)
		for j := range t {
			t[j] = itemset.Item(rng.Intn(items))
		}
		out[i] = itemset.New(t...)
	}
	return out
}

// TestExportRebuildRoundTrip grows a tree, exports it, rebuilds it with
// the builder and checks the rebuilt miner is indistinguishable: same
// step, node count, and closed sets at every support level.
func TestExportRebuildRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 60} {
		m := NewIncremental(12)
		for _, tr := range randomStream(12, n, int64(n)+1) {
			if err := m.AddSet(tr); err != nil {
				t.Fatal(err)
			}
		}
		b, err := NewTreeBuilder(m.Items(), m.Transactions())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Tree().Export(b.Add); err != nil {
			t.Fatalf("n=%d: export: %v", n, err)
		}
		if b.Nodes() != m.NodeCount() {
			t.Fatalf("n=%d: exported %d nodes, tree has %d", n, b.Nodes(), m.NodeCount())
		}
		tree, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		got := RestoreIncremental(tree)
		if got.Transactions() != m.Transactions() || got.NodeCount() != m.NodeCount() || got.Items() != m.Items() {
			t.Fatalf("n=%d: rebuilt state differs: %d/%d trans, %d/%d nodes",
				n, got.Transactions(), m.Transactions(), got.NodeCount(), m.NodeCount())
		}
		for minsup := 1; minsup <= n+1; minsup++ {
			want, have := m.ClosedSet(minsup), got.ClosedSet(minsup)
			if !have.Equal(want) {
				t.Fatalf("n=%d minsup=%d: rebuilt sets differ:\n%s", n, minsup, have.Diff(want, 10))
			}
		}
	}
}

// TestRebuildContinues checks that a rebuilt tree keeps mining
// correctly: adding the tail of a stream to a tree rebuilt mid-stream
// matches mining the whole stream in one go.
func TestRebuildContinues(t *testing.T) {
	stream := randomStream(10, 40, 7)
	whole := NewIncremental(10)
	half := NewIncremental(10)
	for i, tr := range stream {
		if err := whole.AddSet(tr); err != nil {
			t.Fatal(err)
		}
		if i < 20 {
			if err := half.AddSet(tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	b, err := NewTreeBuilder(half.Items(), half.Transactions())
	if err != nil {
		t.Fatal(err)
	}
	if err := half.Tree().Export(b.Add); err != nil {
		t.Fatal(err)
	}
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	resumed := RestoreIncremental(tree)
	for _, tr := range stream[20:] {
		if err := resumed.AddSet(tr); err != nil {
			t.Fatal(err)
		}
	}
	for _, minsup := range []int{1, 2, 5, 40} {
		want, have := whole.ClosedSet(minsup), resumed.ClosedSet(minsup)
		if !have.Equal(want) {
			t.Fatalf("minsup=%d: resumed mining diverged:\n%s", minsup, have.Diff(want, 10))
		}
	}
}

// TestBuilderRejectsInvalid pins the builder's validation: structurally
// impossible streams fail instead of producing a corrupt tree.
func TestBuilderRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		recs []NodeRecord
	}{
		{"depth jump", []NodeRecord{{Depth: 1, Item: 0, Step: 1, Supp: 1}}},
		{"negative depth", []NodeRecord{{Depth: -1, Item: 0, Step: 1, Supp: 1}}},
		{"item outside universe", []NodeRecord{{Depth: 0, Item: 8, Step: 1, Supp: 1}}},
		{"negative item", []NodeRecord{{Depth: 0, Item: -1, Step: 1, Supp: 1}}},
		{"step beyond counter", []NodeRecord{{Depth: 0, Item: 1, Step: 9, Supp: 1}}},
		{"negative support", []NodeRecord{{Depth: 0, Item: 1, Step: 1, Supp: -2}}},
		{"ascending siblings", []NodeRecord{
			{Depth: 0, Item: 1, Step: 1, Supp: 1},
			{Depth: 0, Item: 2, Step: 1, Supp: 1},
		}},
		{"equal siblings", []NodeRecord{
			{Depth: 0, Item: 1, Step: 1, Supp: 1},
			{Depth: 0, Item: 1, Step: 1, Supp: 1},
		}},
		{"child not below parent", []NodeRecord{
			{Depth: 0, Item: 2, Step: 1, Supp: 1},
			{Depth: 1, Item: 3, Step: 1, Supp: 1},
		}},
	}
	for _, tc := range cases {
		b, err := NewTreeBuilder(8, 3)
		if err != nil {
			t.Fatal(err)
		}
		failed := false
		for _, r := range tc.recs {
			if err := b.Add(r); err != nil {
				failed = true
				break
			}
		}
		if !failed {
			t.Errorf("%s: builder accepted an invalid stream", tc.name)
		}
	}
}
