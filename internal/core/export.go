package core

import (
	"fmt"
	"math"
)

// This file is the persistence seam of the IsTa repository. Because the
// prefix tree holds the closed item sets of every transaction processed
// so far (the recursive relation (1) in §3.2 of the paper), the tree —
// together with the item universe and the step counter — *is* the
// complete mining state: exporting its nodes and rebuilding them later
// resumes the cumulative intersection exactly where it stopped. The
// binary codec itself lives in internal/persist; core only provides the
// structural walk (Export) and its validated inverse (TreeBuilder), so
// the node layout stays private to this package.

// NodeRecord describes one prefix-tree node in the preorder export
// stream: its depth below the root (0 for the root's children), the
// node's item code, its most recent update step and its support. A
// preorder stream of NodeRecords determines the tree uniquely.
type NodeRecord struct {
	Depth int32
	Item  int32
	Step  int32
	Supp  int32
}

// Export walks the tree in preorder — siblings in stored order, i.e.
// descending item codes — and hands every node to emit. A non-nil error
// from emit aborts the walk and is returned. Export does not modify the
// tree; it must not run concurrently with AddTransaction.
func (t *Tree) Export(emit func(NodeRecord) error) error {
	return exportList(t.children, 0, emit)
}

func exportList(list *node, depth int32, emit func(NodeRecord) error) error {
	for n := list; n != nil; n = n.sibling {
		if err := emit(NodeRecord{Depth: depth, Item: n.item, Step: n.step, Supp: n.supp}); err != nil {
			return err
		}
		if n.children != nil {
			if err := exportList(n.children, depth+1, emit); err != nil {
				return err
			}
		}
	}
	return nil
}

// Items returns the size of the item universe the tree was built over.
func (t *Tree) Items() int { return len(t.trans) }

// TreeBuilder reconstructs a Tree from a preorder NodeRecord stream as
// produced by Export. Add validates every structural invariant of the
// tree — depth continuity, item ranges, descending sibling order,
// children below their parent, step and support bounds — so a decoder
// may feed it untrusted bytes: a stream the builder accepts yields a
// tree indistinguishable from one grown by AddTransaction calls, and
// anything else fails with a typed error before it can corrupt state.
type TreeBuilder struct {
	t     *Tree
	step  int32    // final step counter, upper bound for node steps
	tails []**node // tails[d]: link where the next node at depth d attaches
	last  []*node  // last[d]: most recently added node at depth d
	bound []int32  // bound[d]: next item at depth d must be < bound[d]
	nodes int
}

// NewTreeBuilder starts rebuilding a tree over item codes 0..items-1
// whose step counter will be step (the number of transactions the
// exported tree had processed).
func NewTreeBuilder(items, step int) (*TreeBuilder, error) {
	if items < 0 {
		return nil, fmt.Errorf("core: negative item universe %d", items)
	}
	if step < 0 || step > math.MaxInt32 {
		return nil, fmt.Errorf("core: step counter %d out of range", step)
	}
	t := NewTree(items)
	b := &TreeBuilder{t: t, step: int32(step)}
	b.tails = append(b.tails, &t.children)
	b.last = append(b.last, nil)
	b.bound = append(b.bound, math.MaxInt32)
	return b, nil
}

// Add appends the next preorder node. It fails if the record cannot be
// part of a valid export stream at this position.
func (b *TreeBuilder) Add(r NodeRecord) error {
	if b.t == nil {
		return fmt.Errorf("core: builder already finished")
	}
	d := int(r.Depth)
	switch {
	case d < 0 || d >= len(b.tails)+1 || d >= b.t.Items():
		return fmt.Errorf("core: node depth %d invalid after depth %d", d, len(b.tails)-1)
	case r.Item < 0 || int(r.Item) >= b.t.Items():
		return fmt.Errorf("core: node item %d outside universe [0,%d)", r.Item, b.t.Items())
	case r.Step < 0 || r.Step > b.step:
		return fmt.Errorf("core: node step %d outside [0,%d]", r.Step, b.step)
	case r.Supp < 0:
		return fmt.Errorf("core: negative node support %d", r.Supp)
	}
	if d == len(b.tails) {
		// First child of the most recently added node: open a new level.
		// Its insertion point is that node's children link; the parent's
		// item bounds the child's (children carry lower codes).
		parent := b.last[d-1]
		if parent == nil {
			return fmt.Errorf("core: node depth %d with no parent node", d)
		}
		b.tails = append(b.tails, &parent.children)
		b.last = append(b.last, nil)
		b.bound = append(b.bound, parent.item)
	} else if d < len(b.tails)-1 {
		// Sibling at a shallower level: close the deeper levels.
		b.tails = b.tails[:d+1]
		b.last = b.last[:d+1]
		b.bound = b.bound[:d+1]
	}
	if r.Item >= b.bound[d] {
		return fmt.Errorf("core: node item %d out of order (must be < %d at depth %d)", r.Item, b.bound[d], d)
	}
	n := b.t.arena.alloc()
	n.item, n.step, n.supp = r.Item, r.Step, r.Supp
	*b.tails[d] = n
	b.tails[d] = &n.sibling
	b.last[d] = n
	b.bound[d] = r.Item
	b.nodes++
	return nil
}

// Nodes returns the number of nodes added so far.
func (b *TreeBuilder) Nodes() int { return b.nodes }

// Finish completes the rebuild and returns the tree.
func (b *TreeBuilder) Finish() (*Tree, error) {
	if b.t == nil {
		return nil, fmt.Errorf("core: builder already finished")
	}
	t := b.t
	t.step = b.step
	b.t = nil
	return t, nil
}
