package core

// Prune implements the item-elimination scheme of §3.2: remain[i] must
// hold the number of occurrences of item i in the not-yet-processed
// transactions. A node is removed when supp + remain[item] < minSupport:
// every set represented in its subtree contains the node's item and has at
// most the node's support, so no such set — nor any future intersection
// that still contains the item, whose occurrences are bounded by
// remain[item] — can reach minSupport. The removal does not discard the
// subtree (whose sets may still generate frequent subsets through future
// intersections) but *removes the item*: the node's children are merged
// into its sibling list, combining nodes with equal items by taking the
// maximum support and merging their child lists recursively.
//
// Note that the bound must use the node's own item, not the minimum
// remaining count along the path: a future intersection may retain this
// item while dropping a scarce ancestor item, so a path-wide bound would
// prune sets that still have a future (this is easy to get wrong — the
// test suite contains a regression case).
//
// This may leave sets in the tree that are not closed; they are harmless
// because they either reappear as genuine intersections (and then carry
// the correct support) or stay below minSupport and are filtered by
// Report, exactly as argued in the paper.
func (t *Tree) Prune(remain []int, minSupport int) {
	if minSupport <= 1 {
		return
	}
	t.children = t.prune(t.children, remain, int32(minSupport))
}

// prune processes one sibling list and returns its new head. Lifting a
// pruned node's children into the remainder of the list keeps it sorted:
// child items are smaller than the pruned item, which in turn is smaller
// than every item already kept, so the ordered merge with the unprocessed
// tail suffices and kept nodes can simply be appended; lifted nodes are
// re-inspected by the continued loop like any other sibling.
func (t *Tree) prune(list *node, remain []int, minSupport int32) *node {
	var head *node
	tail := &head
	n := list
	for n != nil {
		next := n.sibling
		if n.supp+int32(remain[n.item]) < minSupport {
			// No reportable set can retain this item below this node:
			// remove the item, lift the children.
			lifted := n.children
			t.arena.release(n)
			n = t.merge(lifted, next)
			continue
		}
		n.children = t.prune(n.children, remain, minSupport)
		*tail = n
		tail = &n.sibling
		n = next
	}
	*tail = nil
	return head
}

// merge combines two sibling lists (both sorted by descending item code)
// into one, merging nodes with equal items: the surviving node takes the
// maximum support and the recursive merge of both child lists.
func (t *Tree) merge(a, b *node) *node {
	var head *node
	tail := &head
	for a != nil && b != nil {
		switch {
		case a.item > b.item:
			*tail = a
			tail = &a.sibling
			a = a.sibling
		case a.item < b.item:
			*tail = b
			tail = &b.sibling
			b = b.sibling
		default:
			// Same item: keep a, fold b into it.
			if b.supp > a.supp {
				a.supp = b.supp
			}
			a.children = t.merge(a.children, b.children)
			bn := b.sibling
			t.arena.release(b)
			*tail = a
			tail = &a.sibling
			a = a.sibling
			b = bn
		}
	}
	if a != nil {
		*tail = a
	} else {
		*tail = b
	}
	return head
}
