package core

import (
	"testing"

	"repro/internal/itemset"
)

// flatten renders the tree as a map from the represented item set (its
// canonical Key) to its support, for structural assertions.
func flatten(t *Tree) map[string]int {
	out := map[string]int{}
	var walk func(list *node, path itemset.Set)
	walk = func(list *node, path itemset.Set) {
		for c := list; c != nil; c = c.sibling {
			p := append(path, c.item)
			rev := make(itemset.Set, len(p))
			for i, it := range p {
				rev[len(p)-1-i] = it
			}
			out[rev.Key()] = int(c.supp)
			walk(c.children, p)
		}
	}
	walk(t.children, nil)
	return out
}

func key(items ...int) string { return itemset.FromInts(items...).Key() }

// TestFigure3 replays the worked example of Fig. 3 in the paper, with
// items coded a=0, b=1, c=2, d=3, e=4, and checks the tree contents after
// every step.
func TestFigure3(t *testing.T) {
	tree := NewTree(5)

	// Step 1: transaction {e,c,a}.
	tree.AddTransaction(itemset.FromInts(4, 2, 0))
	want := map[string]int{
		key(4):       1, // e
		key(4, 2):    1, // e,c
		key(4, 2, 0): 1, // e,c,a
	}
	if got := flatten(tree); !mapsEqual(got, want) {
		t.Fatalf("after step 1: %v, want %v", got, want)
	}

	// Step 2: transaction {e,d,b}.
	tree.AddTransaction(itemset.FromInts(4, 3, 1))
	want = map[string]int{
		key(4):       2,
		key(4, 2):    1,
		key(4, 2, 0): 1,
		key(4, 3):    1,
		key(4, 3, 1): 1,
	}
	if got := flatten(tree); !mapsEqual(got, want) {
		t.Fatalf("after step 2: %v, want %v", got, want)
	}

	// Step 3: transaction {d,c,b,a}. Fig. 3.3: the transaction's own path
	// d→c→b→a at support 1, plus the intersections {d,b} (with {e,d,b})
	// and {c,a} (with {e,c,a}) at support 2, and d itself at support 2.
	tree.AddTransaction(itemset.FromInts(3, 2, 1, 0))
	want = map[string]int{
		key(4):          2,
		key(4, 2):       1,
		key(4, 2, 0):    1,
		key(4, 3):       1,
		key(4, 3, 1):    1,
		key(3):          2,
		key(3, 2):       1,
		key(3, 2, 1):    1,
		key(3, 2, 1, 0): 1,
		key(3, 1):       2,
		key(2):          2,
		key(2, 0):       2,
	}
	if got := flatten(tree); !mapsEqual(got, want) {
		t.Fatalf("after step 3: %v, want %v", got, want)
	}

	if tree.NodeCount() != len(want) {
		t.Fatalf("NodeCount = %d, want %d", tree.NodeCount(), len(want))
	}
	if tree.Step() != 3 {
		t.Fatalf("Step = %d", tree.Step())
	}

	// Report at minsup 1: closed sets of the three transactions. The sets
	// {e,c}, {e,d} etc. are interior, non-closed prefixes and must be
	// suppressed by the max-child check; {d}:2 has children {d,c}:1 and
	// {d,b}:2 — tied by {d,b}, so {d} is not closed and must be
	// suppressed too.
	got := map[string]int{}
	tree.Report(1, func(items itemset.Set, supp int) {
		got[items.Key()] = supp
	})
	wantClosed := map[string]int{
		key(4):          2, // {e}: t1 ∩ t2
		key(4, 2, 0):    1,
		key(4, 3, 1):    1,
		key(3, 2, 1, 0): 1,
		key(3, 1):       2,
		key(2, 0):       2,
	}
	if !mapsEqual(got, wantClosed) {
		t.Fatalf("report = %v, want %v", got, wantClosed)
	}

	// Report at minsup 2 keeps only the support-2 sets.
	got = map[string]int{}
	tree.Report(2, func(items itemset.Set, supp int) {
		got[items.Key()] = supp
	})
	wantClosed = map[string]int{
		key(4):    2,
		key(3, 1): 2,
		key(2, 0): 2,
	}
	if !mapsEqual(got, wantClosed) {
		t.Fatalf("report(2) = %v, want %v", got, wantClosed)
	}
}

func mapsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestEmptyTransactionOnlyAdvancesStep(t *testing.T) {
	tree := NewTree(3)
	tree.AddTransaction(itemset.Set{})
	if tree.NodeCount() != 0 || tree.Step() != 1 {
		t.Fatalf("nodes=%d step=%d", tree.NodeCount(), tree.Step())
	}
}

func TestDuplicateTransactions(t *testing.T) {
	tree := NewTree(3)
	tr := itemset.FromInts(0, 2)
	tree.AddTransaction(tr)
	tree.AddTransaction(tr)
	tree.AddTransaction(tr)
	got := map[string]int{}
	tree.Report(1, func(items itemset.Set, supp int) { got[items.Key()] = supp })
	want := map[string]int{key(0, 2): 3}
	if !mapsEqual(got, want) {
		t.Fatalf("report = %v, want %v", got, want)
	}
}

func TestArenaReuse(t *testing.T) {
	var a arena
	n1 := a.alloc()
	n1.item = 7
	n2 := a.alloc()
	if a.live != 2 {
		t.Fatalf("live = %d", a.live)
	}
	a.release(n1)
	if a.live != 1 {
		t.Fatalf("live = %d", a.live)
	}
	n3 := a.alloc()
	if n3 != n1 {
		t.Fatal("freelist should hand back the released node")
	}
	if n3.item != 0 || n3.sibling != nil || n3.children != nil {
		t.Fatal("recycled node must be zeroed")
	}
	_ = n2
}

func TestArenaManyBlocks(t *testing.T) {
	var a arena
	seen := map[*node]bool{}
	for i := 0; i < 3*arenaBlock; i++ {
		n := a.alloc()
		if n == nil || seen[n] {
			t.Fatal("allocator handed out a nil or duplicate node")
		}
		seen[n] = true
		n.item = int32(i)
	}
	if a.live != 3*arenaBlock {
		t.Fatalf("live = %d", a.live)
	}
}
