package core

import (
	"math/rand"
	"testing"

	"repro/internal/itemset"
	"repro/internal/result"
)

// randSet draws a random non-empty canonical item set over 0..items-1.
func randSet(rng *rand.Rand, items int) itemset.Set {
	var raw []int
	for i := 0; i < items; i++ {
		if rng.Float64() < 0.5 {
			raw = append(raw, i)
		}
	}
	if len(raw) == 0 {
		raw = append(raw, rng.Intn(items))
	}
	return itemset.FromInts(raw...)
}

// TestAddWeightedEquivalence: AddWeighted(t, w) must leave the tree in
// exactly the state w consecutive AddTransaction(t) calls produce —
// identical node sets and supports, not just identical reports.
func TestAddWeightedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 80; trial++ {
		items := 3 + rng.Intn(8)
		steps := 1 + rng.Intn(10)

		weighted := NewTree(items)
		repeated := NewTree(items)
		for s := 0; s < steps; s++ {
			tr := randSet(rng, items)
			w := 1 + rng.Intn(4)
			weighted.AddWeighted(tr, w)
			for k := 0; k < w; k++ {
				repeated.AddTransaction(tr)
			}
		}
		got, want := flatten(weighted), flatten(repeated)
		if !mapsEqual(got, want) {
			t.Fatalf("trial %d: weighted tree %v, repeated tree %v", trial, got, want)
		}
	}
}

// TestAddWeightedReports cross-checks the reported closed sets of a
// weighted replay against mining the expanded multiset.
func TestAddWeightedReports(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		items := 3 + rng.Intn(6)
		steps := 1 + rng.Intn(8)
		minsup := 1 + rng.Intn(4)

		weighted := NewTree(items)
		var expanded []itemset.Set
		for s := 0; s < steps; s++ {
			tr := randSet(rng, items)
			w := 1 + rng.Intn(3)
			weighted.AddWeighted(tr, w)
			for k := 0; k < w; k++ {
				expanded = append(expanded, tr)
			}
		}
		plain := NewTree(items)
		for _, tr := range expanded {
			plain.AddTransaction(tr)
		}
		var got, want result.Set
		weighted.Report(minsup, func(s itemset.Set, supp int) { got.Add(s, supp) })
		plain.Report(minsup, func(s itemset.Set, supp int) { want.Add(s, supp) })
		if !got.Equal(&want) {
			t.Fatalf("trial %d (minsup %d): %s", trial, minsup, got.Diff(&want, 10))
		}
	}
}

func TestAddWeightedIgnoresNonPositive(t *testing.T) {
	tree := NewTree(3)
	tree.AddWeighted(itemset.FromInts(0, 1), 0)
	tree.AddWeighted(itemset.FromInts(0, 1), -2)
	if tree.NodeCount() != 0 {
		t.Fatalf("non-positive weights must be no-ops, tree has %d nodes", tree.NodeCount())
	}
}

// TestWalkEnumeratesEveryNode: Walk must emit exactly the node sets the
// structural flatten helper sees, with the same supports.
func TestWalkEnumeratesEveryNode(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	tree := NewTree(8)
	for s := 0; s < 12; s++ {
		tree.AddTransaction(randSet(rng, 8))
	}
	got := map[string]int{}
	tree.Walk(func(s itemset.Set, supp int) {
		got[s.Key()] = supp
	})
	if want := flatten(tree); !mapsEqual(got, want) {
		t.Fatalf("Walk saw %v, want %v", got, want)
	}
}

// TestReportAbortsPromptly is the regression test for the report-abort
// bug: a cancellation recorded during the report pass must unwind the
// traversal instead of visiting (and skipping) every remaining node.
func TestReportAbortsPromptly(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	// Dense-ish random data produces a tree with far more nodes than one
	// cancel interval, so a traversal that only skips emits (the old bug)
	// would still walk well past the cancellation point.
	db := randDB(rng, 80, 400, 0.2)
	tree := NewTree(db.Items)
	for _, tr := range db.Trans {
		tree.AddTransaction(tr)
	}
	if tree.NodeCount() <= 2*cancelInterval {
		t.Fatalf("workload too small to exercise the abort: %d nodes", tree.NodeCount())
	}

	emitted := 0
	stopAfter := 10
	canceled := false
	tree.SetCancel(func() bool { return canceled })
	tree.Report(1, func(itemset.Set, int) {
		emitted++
		if emitted == stopAfter {
			canceled = true
		}
	})
	if !tree.Aborted() {
		t.Fatal("report pass did not abort after the probe fired")
	}
	// The traversal may visit up to one cancel interval of nodes past the
	// cancellation point, but must not report the rest of the tree.
	if emitted > stopAfter+cancelInterval {
		t.Fatalf("report pass emitted %d sets after cancellation at %d", emitted, stopAfter)
	}
}
