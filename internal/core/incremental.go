package core

import (
	"fmt"

	"repro/internal/itemset"
	"repro/internal/result"
)

// Incremental is an online closed item set miner built on the cumulative
// intersection scheme: because IsTa processes transactions one at a time
// and its prefix tree always holds the closed sets of everything seen so
// far (the recursive relation (1) in §3.2 of the paper), it extends
// naturally to a streaming setting. Transactions are added as they
// arrive; the closed frequent item sets of the current prefix can be
// queried at any time, at any support threshold.
//
// Unlike the batch miner, Incremental cannot use item-elimination pruning
// (pruning needs the occurrence counts of *future* transactions, which an
// online miner does not know) and does not recode items, so its memory
// grows with the number of closed sets of the stream seen so far. It is
// the right tool when the transaction stream is modest and queries are
// frequent; for one-shot batch mining use Mine.
type Incremental struct {
	tree  *Tree
	items int
}

// NewIncremental returns an online miner over item codes 0..items-1.
func NewIncremental(items int) *Incremental {
	return &Incremental{tree: NewTree(items), items: items}
}

// RestoreIncremental wraps a rebuilt prefix tree (see TreeBuilder) as an
// online miner, resuming the cumulative intersection at the tree's step
// counter. internal/persist uses it to reconstruct a miner from a
// snapshot.
func RestoreIncremental(t *Tree) *Incremental {
	return &Incremental{tree: t, items: t.Items()}
}

// Items returns the size of the item universe.
func (m *Incremental) Items() int { return m.items }

// Tree exposes the underlying repository for persistence export; the
// tree must not be mutated except through the miner.
func (m *Incremental) Tree() *Tree { return m.tree }

// Add processes one transaction. The items may be in any order; they are
// canonicalized. Items outside the universe are rejected.
func (m *Incremental) Add(items ...itemset.Item) error {
	t := itemset.New(items...)
	if len(t) > 0 && (t[0] < 0 || int(t[len(t)-1]) >= m.items) {
		return fmt.Errorf("core: transaction item outside universe [0,%d): %v", m.items, t)
	}
	m.tree.AddTransaction(t)
	return nil
}

// AddSet processes one canonical transaction without copying.
func (m *Incremental) AddSet(t itemset.Set) error {
	if !t.IsCanonical() {
		return fmt.Errorf("core: transaction not canonical: %v", t)
	}
	if len(t) > 0 && (t[0] < 0 || int(t[len(t)-1]) >= m.items) {
		return fmt.Errorf("core: transaction item outside universe [0,%d): %v", m.items, t)
	}
	m.tree.AddTransaction(t)
	return nil
}

// Transactions returns the number of transactions added so far.
func (m *Incremental) Transactions() int { return m.tree.Step() }

// NodeCount returns the current prefix tree size, a direct measure of the
// miner's memory use.
func (m *Incremental) NodeCount() int { return m.tree.NodeCount() }

// Closed reports the closed item sets of the transactions added so far
// whose support reaches minSupport. It may be called repeatedly and at
// different thresholds; it does not modify the miner.
func (m *Incremental) Closed(minSupport int, rep result.Reporter) {
	m.tree.Report(minSupport, func(items itemset.Set, supp int) {
		rep.Report(items, supp)
	})
}

// ClosedSet collects the current closed frequent item sets in canonical
// order.
func (m *Incremental) ClosedSet(minSupport int) *result.Set {
	var out result.Set
	m.Closed(minSupport, out.Collect())
	out.Sort()
	return &out
}
