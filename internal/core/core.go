package core
