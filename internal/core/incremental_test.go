package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
)

// TestIncrementalMatchesOracleAtEveryPrefix is the defining property of
// the cumulative scheme: after each added transaction, the miner holds
// exactly the closed sets of the prefix processed so far.
func TestIncrementalMatchesOracleAtEveryPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 30; trial++ {
		items := 3 + rng.Intn(7)
		n := 3 + rng.Intn(10)
		db := randDB(rng, items, n, 0.2+rng.Float64()*0.5)
		m := NewIncremental(items)
		for k, tr := range db.Trans {
			if err := m.AddSet(tr); err != nil {
				t.Fatal(err)
			}
			if m.Transactions() != k+1 {
				t.Fatalf("Transactions = %d, want %d", m.Transactions(), k+1)
			}
			prefix := &dataset.Database{Items: items, Trans: db.Trans[:k+1]}
			for _, minsup := range []int{1, 2} {
				want, err := naive.ClosedByTransactionSubsets(prefix, minsup)
				if err != nil {
					t.Fatal(err)
				}
				got := m.ClosedSet(minsup)
				if !got.Equal(want) {
					t.Fatalf("prefix %d minsup %d mismatch:\n%s", k+1, minsup, got.Diff(want, 10))
				}
			}
		}
	}
}

func TestIncrementalQueriesAreIdempotent(t *testing.T) {
	m := NewIncremental(5)
	for _, tr := range [][]int32{{0, 1, 2}, {1, 2, 3}, {0, 2, 4}} {
		if err := m.Add(tr...); err != nil {
			t.Fatal(err)
		}
	}
	a := m.ClosedSet(1)
	b := m.ClosedSet(1)
	if !a.Equal(b) {
		t.Fatal("repeated queries must return the same result")
	}
	// A higher threshold is a subset of the lower one.
	high := m.ClosedSet(2)
	if high.Len() >= a.Len() {
		t.Fatalf("threshold 2 (%d sets) should shrink the result (%d sets)", high.Len(), a.Len())
	}
}

func TestIncrementalValidation(t *testing.T) {
	m := NewIncremental(3)
	if err := m.Add(0, 5); err == nil {
		t.Fatal("expected out-of-universe error")
	}
	if err := m.AddSet([]int32{2, 1}); err == nil {
		t.Fatal("expected non-canonical error")
	}
	if err := m.Add(); err != nil {
		t.Fatalf("empty transaction should be accepted: %v", err)
	}
	if m.Transactions() != 1 {
		t.Fatalf("Transactions = %d", m.Transactions())
	}
	if m.NodeCount() != 0 {
		t.Fatalf("NodeCount = %d", m.NodeCount())
	}
}

func TestIncrementalUnsortedInput(t *testing.T) {
	m := NewIncremental(6)
	if err := m.Add(5, 1, 3, 1); err != nil { // duplicates + order fixed by Add
		t.Fatal(err)
	}
	got := m.ClosedSet(1)
	if got.Len() != 1 || !got.Patterns[0].Items.Equal([]int32{1, 3, 5}) {
		t.Fatalf("got %v", got.Patterns)
	}
}
