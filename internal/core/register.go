package core

import (
	"repro/internal/engine"
	"repro/internal/prep"
	"repro/internal/result"
)

func init() {
	engine.Register(engine.Registration{
		Name:    "ista",
		Doc:     "cumulative transaction intersection with a prefix-tree repository (§3.2–3.4)",
		Targets: []engine.Target{engine.Closed},
		Prep:    prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderSizeAsc},
		Order:   0,
		Mine: func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
			return minePrepared(pre, spec.MinSupport, false, spec.Control(), rep)
		},
	})
}
