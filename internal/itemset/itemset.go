// Package itemset provides the item and item set representations shared by
// all mining algorithms in this repository.
//
// An item is a small non-negative integer code. A Set is a strictly
// ascending slice of item codes; keeping sets sorted makes intersection,
// union and subset tests linear merges and gives every set a unique
// canonical form, which the repositories and result collectors rely on.
package itemset

import (
	"fmt"
	"sort"
	"strings"
)

// Item is an item code. Codes are assigned by dataset preprocessing and are
// dense (0..Items-1). int32 keeps vertical representations and matrices
// compact even for very wide databases (the thrombin data set the paper
// uses has 139,351 items).
type Item = int32

// Set is an item set in canonical form: item codes strictly ascending.
type Set []Item

// New returns a canonical Set built from the given items. The input is
// copied, sorted and deduplicated.
func New(items ...Item) Set {
	s := make(Set, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return dedupSorted(s)
}

// FromInts is a convenience constructor used heavily in tests.
func FromInts(items ...int) Set {
	s := make(Set, len(items))
	for i, v := range items {
		s[i] = Item(v)
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return dedupSorted(s)
}

func dedupSorted(s Set) Set {
	if len(s) < 2 {
		return s
	}
	w := 1
	for r := 1; r < len(s); r++ {
		if s[r] != s[w-1] {
			s[w] = s[r]
			w++
		}
	}
	return s[:w]
}

// IsCanonical reports whether s is strictly ascending.
func (s Set) IsCanonical() bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Contains reports whether s contains item x.
func (s Set) Contains(x Item) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// Equal reports whether s and t hold exactly the same items.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every item of s is contained in t.
func (s Set) SubsetOf(t Set) bool {
	if len(s) > len(t) {
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] > t[j]:
			j++
		default: // s[i] < t[j]: item missing from t
			return false
		}
	}
	return i == len(s)
}

// ProperSubsetOf reports whether s ⊊ t.
func (s Set) ProperSubsetOf(t Set) bool {
	return len(s) < len(t) && s.SubsetOf(t)
}

// Intersect returns the intersection of s and t as a fresh Set.
func (s Set) Intersect(t Set) Set {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	out := make(Set, 0, n)
	return appendIntersect(out, s, t)
}

// IntersectInto computes the intersection of s and t into dst (which is
// reset first) and returns it. It lets hot loops reuse buffers.
func (s Set) IntersectInto(dst Set, t Set) Set {
	return appendIntersect(dst[:0], s, t)
}

func appendIntersect(out, s, t Set) Set {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a == b:
			out = append(out, a)
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return out
}

// Union returns the union of s and t as a fresh Set.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a == b:
			out = append(out, a)
			i++
			j++
		case a < b:
			out = append(out, a)
			i++
		default:
			out = append(out, b)
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Minus returns s \ t as a fresh Set.
func (s Set) Minus(t Set) Set {
	out := make(Set, 0, len(s))
	i, j := 0, 0
	for i < len(s) {
		if j >= len(t) || s[i] < t[j] {
			out = append(out, s[i])
			i++
		} else if s[i] == t[j] {
			i++
			j++
		} else {
			j++
		}
	}
	return out
}

// WithItem returns a fresh Set equal to s ∪ {x}.
func (s Set) WithItem(x Item) Set {
	out := make(Set, 0, len(s)+1)
	i := 0
	for i < len(s) && s[i] < x {
		out = append(out, s[i])
		i++
	}
	out = append(out, x)
	if i < len(s) && s[i] == x {
		i++
	}
	out = append(out, s[i:]...)
	return out
}

// Key returns a compact string key uniquely identifying the set. It is
// suitable as a map key (hash repositories, dedup, test diffing).
func (s Set) Key() string {
	if len(s) == 0 {
		return ""
	}
	// Variable-length little-endian delta encoding: compact and unique.
	var b strings.Builder
	b.Grow(len(s) * 2)
	prev := Item(-1)
	for _, x := range s {
		d := uint32(x - prev) // ≥ 1 because strictly ascending
		prev = x
		for d >= 0x80 {
			b.WriteByte(byte(d) | 0x80)
			d >>= 7
		}
		b.WriteByte(byte(d))
	}
	return b.String()
}

// ParseKey reverses Key. It is used by the flat cumulative baseline, which
// stores its repository in a hash map keyed by Key.
func ParseKey(k string) Set {
	var out Set
	prev := Item(-1)
	var d uint32
	var shift uint
	for i := 0; i < len(k); i++ {
		c := k[i]
		d |= uint32(c&0x7f) << shift
		if c&0x80 != 0 {
			shift += 7
			continue
		}
		prev += Item(d)
		out = append(out, prev)
		d, shift = 0, 0
	}
	return out
}

// String renders the set like "{1 4 7}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte('}')
	return b.String()
}

// Compare orders sets first by length, then lexicographically. It gives the
// canonical order used by result sets so outputs of different algorithms
// can be compared element-wise.
func Compare(a, b Set) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// CompareLex orders sets purely lexicographically (shorter prefix first).
func CompareLex(a, b Set) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
