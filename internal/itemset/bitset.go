package itemset

import "math/bits"

// BitSet is a fixed-universe bit vector over item codes. The IsTa miner
// uses one as the per-transaction membership flag array ("trans" in the
// paper's Fig. 2); the oracles use it for fast subset tests on dense data.
type BitSet struct {
	words []uint64
	n     int // universe size
}

// NewBitSet returns an empty BitSet over item codes 0..n-1.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Universe returns the universe size the set was created with.
func (b *BitSet) Universe() int { return b.n }

// Add inserts item x.
func (b *BitSet) Add(x Item) { b.words[x>>6] |= 1 << (uint(x) & 63) }

// Remove deletes item x.
func (b *BitSet) Remove(x Item) { b.words[x>>6] &^= 1 << (uint(x) & 63) }

// Has reports whether item x is present.
func (b *BitSet) Has(x Item) bool { return b.words[x>>6]&(1<<(uint(x)&63)) != 0 }

// Clear removes all items.
func (b *BitSet) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// SetAll inserts every item of s.
func (b *BitSet) SetAll(s Set) {
	for _, x := range s {
		b.Add(x)
	}
}

// ClearAll removes every item of s (cheaper than Clear for sparse use).
func (b *BitSet) ClearAll(s Set) {
	for _, x := range s {
		b.Remove(x)
	}
}

// Count returns the number of items present.
func (b *BitSet) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IntersectWith keeps only items also present in other.
func (b *BitSet) IntersectWith(other *BitSet) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// UnionWith adds all items present in other.
func (b *BitSet) UnionWith(other *BitSet) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// ContainsSet reports whether every item of s is present.
func (b *BitSet) ContainsSet(s Set) bool {
	for _, x := range s {
		if !b.Has(x) {
			return false
		}
	}
	return true
}

// ToSet extracts the members in canonical (ascending) order.
func (b *BitSet) ToSet() Set {
	out := make(Set, 0, 8)
	for wi, w := range b.words {
		base := Item(wi << 6)
		for w != 0 {
			out = append(out, base+Item(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}
