package itemset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewCanonicalizes(t *testing.T) {
	tests := []struct {
		name string
		in   []Item
		want Set
	}{
		{"empty", nil, Set{}},
		{"single", []Item{3}, Set{3}},
		{"sorted", []Item{1, 2, 3}, Set{1, 2, 3}},
		{"reversed", []Item{3, 2, 1}, Set{1, 2, 3}},
		{"dups", []Item{5, 1, 5, 1, 5}, Set{1, 5}},
		{"all same", []Item{7, 7, 7}, Set{7}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := New(tc.in...)
			if !got.Equal(tc.want) {
				t.Fatalf("New(%v) = %v, want %v", tc.in, got, tc.want)
			}
			if !got.IsCanonical() {
				t.Fatalf("New(%v) = %v is not canonical", tc.in, got)
			}
		})
	}
}

func TestContains(t *testing.T) {
	s := FromInts(1, 3, 5, 9, 100)
	for _, x := range []Item{1, 3, 5, 9, 100} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false, want true", x)
		}
	}
	for _, x := range []Item{0, 2, 4, 6, 10, 99, 101} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true, want false", x)
		}
	}
	var empty Set
	if empty.Contains(1) {
		t.Error("empty set should contain nothing")
	}
}

func TestSubsetOf(t *testing.T) {
	tests := []struct {
		a, b Set
		want bool
	}{
		{FromInts(), FromInts(), true},
		{FromInts(), FromInts(1, 2), true},
		{FromInts(1), FromInts(1, 2), true},
		{FromInts(2), FromInts(1, 2), true},
		{FromInts(1, 2), FromInts(1, 2), true},
		{FromInts(1, 3), FromInts(1, 2), false},
		{FromInts(1, 2, 3), FromInts(1, 2), false},
		{FromInts(0), FromInts(1, 2), false},
		{FromInts(1, 5, 9), FromInts(0, 1, 2, 5, 8, 9, 10), true},
	}
	for _, tc := range tests {
		if got := tc.a.SubsetOf(tc.b); got != tc.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestProperSubsetOf(t *testing.T) {
	a := FromInts(1, 2)
	if a.ProperSubsetOf(a) {
		t.Error("a set is not a proper subset of itself")
	}
	if !FromInts(1).ProperSubsetOf(a) {
		t.Error("{1} should be a proper subset of {1,2}")
	}
}

func TestIntersectUnionMinus(t *testing.T) {
	a := FromInts(1, 2, 4, 6, 8)
	b := FromInts(2, 3, 4, 8, 9)
	if got := a.Intersect(b); !got.Equal(FromInts(2, 4, 8)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(FromInts(1, 2, 3, 4, 6, 8, 9)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(FromInts(1, 6)) {
		t.Errorf("Minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(FromInts(3, 9)) {
		t.Errorf("Minus = %v", got)
	}
}

func TestIntersectInto(t *testing.T) {
	a := FromInts(1, 2, 3, 4)
	b := FromInts(2, 4, 6)
	buf := make(Set, 0, 8)
	got := a.IntersectInto(buf, b)
	if !got.Equal(FromInts(2, 4)) {
		t.Errorf("IntersectInto = %v", got)
	}
	// Reuse must reset the buffer.
	got = a.IntersectInto(got, FromInts(3))
	if !got.Equal(FromInts(3)) {
		t.Errorf("IntersectInto reuse = %v", got)
	}
}

func TestWithItem(t *testing.T) {
	s := FromInts(1, 5)
	for _, tc := range []struct {
		x    Item
		want Set
	}{
		{0, FromInts(0, 1, 5)},
		{3, FromInts(1, 3, 5)},
		{9, FromInts(1, 5, 9)},
		{5, FromInts(1, 5)},
		{1, FromInts(1, 5)},
	} {
		if got := s.WithItem(tc.x); !got.Equal(tc.want) {
			t.Errorf("WithItem(%d) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if !s.Equal(FromInts(1, 5)) {
		t.Error("WithItem must not modify the receiver")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(20)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item(rng.Intn(200000))
		}
		s := New(items...)
		got := ParseKey(s.Key())
		if len(s) == 0 {
			if len(got) != 0 {
				t.Fatalf("ParseKey of empty key = %v", got)
			}
			continue
		}
		if !got.Equal(s) {
			t.Fatalf("round trip %v -> %q -> %v", s, s.Key(), got)
		}
	}
}

func TestKeyUnique(t *testing.T) {
	seen := map[string]Set{}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(6)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item(rng.Intn(12))
		}
		s := New(items...)
		k := s.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(s) {
			t.Fatalf("key collision: %v and %v both map to %q", prev, s, k)
		}
		seen[k] = s
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Set
		want int
	}{
		{FromInts(), FromInts(), 0},
		{FromInts(1), FromInts(), 1},
		{FromInts(), FromInts(1), -1},
		{FromInts(1, 2), FromInts(1, 3), -1},
		{FromInts(1, 3), FromInts(1, 2), 1},
		{FromInts(1, 2), FromInts(1, 2), 0},
		{FromInts(9), FromInts(1, 2), -1}, // shorter first
	}
	for _, tc := range tests {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareLex(t *testing.T) {
	tests := []struct {
		a, b Set
		want int
	}{
		{FromInts(), FromInts(), 0},
		{FromInts(), FromInts(1), -1},
		{FromInts(1), FromInts(1, 2), -1},
		{FromInts(2), FromInts(1, 2), 1}, // lexicographic, not by size
		{FromInts(1, 5), FromInts(1, 5), 0},
	}
	for _, tc := range tests {
		if got := CompareLex(tc.a, tc.b); got != tc.want {
			t.Errorf("CompareLex(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestString(t *testing.T) {
	if got := FromInts(3, 1, 2).String(); got != "{1 2 3}" {
		t.Errorf("String = %q", got)
	}
	if got := (Set{}).String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

// randSet is a helper generating random canonical sets for property tests.
func randSet(rng *rand.Rand, universe, maxLen int) Set {
	n := rng.Intn(maxLen + 1)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(rng.Intn(universe))
	}
	return New(items...)
}

func TestPropertyIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		a := randSet(rng, 40, 15)
		b := randSet(rng, 40, 15)
		c := randSet(rng, 40, 15)
		ab := a.Intersect(b)
		// Commutative.
		if !ab.Equal(b.Intersect(a)) {
			t.Fatalf("intersection not commutative: %v %v", a, b)
		}
		// Associative.
		if !ab.Intersect(c).Equal(a.Intersect(b.Intersect(c))) {
			t.Fatalf("intersection not associative: %v %v %v", a, b, c)
		}
		// Result is a subset of both.
		if !ab.SubsetOf(a) || !ab.SubsetOf(b) {
			t.Fatalf("intersection not a subset: %v ∩ %v = %v", a, b, ab)
		}
		// Idempotent.
		if !a.Intersect(a).Equal(a) {
			t.Fatalf("intersection not idempotent: %v", a)
		}
		// Absorption with union.
		if !a.Intersect(a.Union(b)).Equal(a) {
			t.Fatalf("absorption failed: %v %v", a, b)
		}
	}
}

func TestPropertyMinusPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		a := randSet(rng, 30, 12)
		b := randSet(rng, 30, 12)
		inter := a.Intersect(b)
		diff := a.Minus(b)
		// a = (a∩b) ∪ (a\b), disjointly.
		if !inter.Union(diff).Equal(a) {
			t.Fatalf("partition failed: %v %v", a, b)
		}
		if len(inter.Intersect(diff)) != 0 {
			t.Fatalf("partition overlaps: %v %v", a, b)
		}
	}
}

func TestQuickSubsetTransitive(t *testing.T) {
	f := func(xs, ys, zs []uint8) bool {
		toSet := func(v []uint8) Set {
			items := make([]Item, len(v))
			for i, x := range v {
				items[i] = Item(x % 24)
			}
			return New(items...)
		}
		a, b := toSet(xs), toSet(ys)
		c := b.Union(toSet(zs))
		// a∩b ⊆ b ⊆ c, so a∩b ⊆ c.
		return a.Intersect(b).SubsetOf(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		toSet := func(v []uint16) Set {
			items := make([]Item, len(v))
			for i, x := range v {
				items[i] = Item(x)
			}
			return New(items...)
		}
		a, b := toSet(xs), toSet(ys)
		if a.Equal(b) {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(200)
	if b.Universe() != 200 {
		t.Fatalf("Universe = %d", b.Universe())
	}
	b.Add(0)
	b.Add(63)
	b.Add(64)
	b.Add(199)
	for _, x := range []Item{0, 63, 64, 199} {
		if !b.Has(x) {
			t.Errorf("Has(%d) = false", x)
		}
	}
	if b.Has(1) || b.Has(65) {
		t.Error("unexpected members")
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d", b.Count())
	}
	b.Remove(63)
	if b.Has(63) || b.Count() != 3 {
		t.Error("Remove failed")
	}
	if got := b.ToSet(); !got.Equal(FromInts(0, 64, 199)) {
		t.Errorf("ToSet = %v", got)
	}
	b.Clear()
	if b.Count() != 0 {
		t.Error("Clear failed")
	}
}

func TestBitSetSetOps(t *testing.T) {
	a := NewBitSet(128)
	b := NewBitSet(128)
	a.SetAll(FromInts(1, 2, 3, 70))
	b.SetAll(FromInts(2, 3, 4, 100))
	a.IntersectWith(b)
	if got := a.ToSet(); !got.Equal(FromInts(2, 3)) {
		t.Errorf("IntersectWith = %v", got)
	}
	a.UnionWith(b)
	if got := a.ToSet(); !got.Equal(FromInts(2, 3, 4, 100)) {
		t.Errorf("UnionWith = %v", got)
	}
	if !a.ContainsSet(FromInts(2, 100)) {
		t.Error("ContainsSet false negative")
	}
	if a.ContainsSet(FromInts(2, 99)) {
		t.Error("ContainsSet false positive")
	}
	a.ClearAll(FromInts(2, 3))
	if got := a.ToSet(); !got.Equal(FromInts(4, 100)) {
		t.Errorf("ClearAll = %v", got)
	}
}

func TestBitSetMatchesSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		x := randSet(rng, 130, 30)
		y := randSet(rng, 130, 30)
		bx, by := NewBitSet(130), NewBitSet(130)
		bx.SetAll(x)
		by.SetAll(y)
		bx.IntersectWith(by)
		if !bx.ToSet().Equal(x.Intersect(y)) {
			t.Fatalf("bitset intersect mismatch: %v %v", x, y)
		}
		if got, want := by.ContainsSet(x), x.SubsetOf(y); got != want {
			t.Fatalf("bitset subset mismatch: %v %v", x, y)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromInts(1, 2, 3)
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares storage")
	}
	var nilSet Set
	if nilSet.Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestSortStability(t *testing.T) {
	// Compare must induce a strict weak ordering usable with sort.Slice.
	sets := []Set{FromInts(2), FromInts(1, 2), FromInts(), FromInts(1), FromInts(0, 9)}
	sort.Slice(sets, func(i, j int) bool { return Compare(sets[i], sets[j]) < 0 })
	want := []Set{FromInts(), FromInts(1), FromInts(2), FromInts(0, 9), FromInts(1, 2)}
	if !reflect.DeepEqual(sets, want) {
		t.Errorf("sorted = %v, want %v", sets, want)
	}
}
