package naive

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/result"
)

func paperDB() *dataset.Database {
	return dataset.FromInts(
		[]int{0, 1, 2},
		[]int{0, 3, 4},
		[]int{1, 2, 3},
		[]int{0, 1, 2, 3},
		[]int{1, 2},
		[]int{0, 1, 3},
		[]int{3, 4},
		[]int{2, 3, 4},
	)
}

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

// TestOraclesAgree cross-checks the two independent brute-force oracles on
// many random databases — if they agree, either both are right or both
// share a bug, and they share no code paths beyond the set algebra.
func TestOraclesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 120; trial++ {
		items := 2 + rng.Intn(8)
		n := 1 + rng.Intn(10)
		db := randDB(rng, items, n, 0.2+rng.Float64()*0.5)
		for _, minsup := range []int{1, 2, n/2 + 1} {
			a, err := ClosedByTransactionSubsets(db, minsup)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ClosedByItemSubsets(db, minsup)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("oracles disagree (minsup=%d, db=%v):\n%s", minsup, db.Trans, a.Diff(b, 10))
			}
			if err := result.Verify(db, a, minsup); err != nil {
				t.Fatalf("oracle output fails verification: %v", err)
			}
		}
	}
}

func TestOraclePaperExample(t *testing.T) {
	db := paperDB()
	got, err := ClosedByTransactionSubsets(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-derived closed frequent item sets for the Table 1 database at
	// minsup 3 (a=0,b=1,c=2,d=3,e=4):
	// {a}:4 {b}:5 {c}:5 {d}:6; {e} occurs in t2,t7,t8 whose intersection
	// is {d,e}, so {e} is NOT closed but {d,e}:3 is. {a,b}:3 (t1,t4,t6),
	// {b,c}:4 (t1,t3,t4,t5), {c,d}:3 (t3,t4,t8), {b,d}:3 (t3,t4,t6),
	// {a,d}:3 (t2,t4,t6 → intersection exactly {a,d}).
	var want result.Set
	want.Add(itemset.FromInts(0), 4)
	want.Add(itemset.FromInts(1), 5)
	want.Add(itemset.FromInts(2), 5)
	want.Add(itemset.FromInts(3), 6)
	want.Add(itemset.FromInts(0, 1), 3)
	want.Add(itemset.FromInts(1, 2), 4)
	want.Add(itemset.FromInts(2, 3), 3)
	want.Add(itemset.FromInts(3, 4), 3)
	want.Add(itemset.FromInts(1, 3), 3)
	want.Add(itemset.FromInts(0, 3), 3)
	if !got.Equal(&want) {
		t.Fatalf("paper example mismatch:\n%s", got.Diff(&want, 20))
	}
}

func TestOracleLimits(t *testing.T) {
	big := randDB(rand.New(rand.NewSource(1)), 25, 25, 0.3)
	if _, err := ClosedByTransactionSubsets(big, 1); err == nil {
		t.Error("expected transaction-count limit error")
	}
	if _, err := ClosedByItemSubsets(big, 1); err == nil {
		t.Error("expected item-count limit error")
	}
}

func TestFlatCumulativeMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		items := 2 + rng.Intn(9)
		n := 1 + rng.Intn(12)
		db := randDB(rng, items, n, 0.15+rng.Float64()*0.5)
		for _, minsup := range []int{1, 2, 3} {
			want, err := ClosedByTransactionSubsets(db, minsup)
			if err != nil {
				t.Fatal(err)
			}
			var got result.Set
			if err := FlatCumulative(db, FlatOptions{MinSupport: minsup}, got.Collect()); err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("flat cumulative mismatch (minsup=%d, db=%v):\n%s",
					minsup, db.Trans, got.Diff(want, 10))
			}
		}
	}
}

func TestFlatCumulativeEmptyAndDuplicates(t *testing.T) {
	// Empty database.
	var got result.Set
	if err := FlatCumulative(&dataset.Database{Items: 3}, FlatOptions{MinSupport: 1}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty db produced %d patterns", got.Len())
	}
	// Duplicate transactions count individually.
	db := dataset.FromInts([]int{0, 1}, []int{0, 1}, []int{0, 1})
	got = result.Set{}
	if err := FlatCumulative(db, FlatOptions{MinSupport: 3}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	var want result.Set
	want.Add(itemset.FromInts(0, 1), 3)
	if !got.Equal(&want) {
		t.Fatalf("duplicates: %s", got.Diff(&want, 5))
	}
}

func TestFlatCumulativeCancel(t *testing.T) {
	done := make(chan struct{})
	close(done)
	// Large enough that the run performs well over one tick interval of
	// repository work before it could finish.
	db := randDB(rand.New(rand.NewSource(2)), 26, 80, 0.5)
	var got result.Set
	err := FlatCumulative(db, FlatOptions{MinSupport: 1, Done: done}, got.Collect())
	if err != mining.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestFlatCumulativeInvalidDB(t *testing.T) {
	bad := &dataset.Database{Items: 1, Trans: []itemset.Set{{5}}}
	if err := FlatCumulative(bad, FlatOptions{MinSupport: 1}, &result.Counter{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestControlNilSafe(t *testing.T) {
	var c *mining.Control
	if err := c.Tick(); err != nil {
		t.Fatal("nil control must not cancel")
	}
	if c.Canceled() {
		t.Fatal("nil control must not be canceled")
	}
	c2 := mining.NewControl(nil)
	for i := 0; i < 10000; i++ {
		if err := c2.Tick(); err != nil {
			t.Fatal("nil-done control must not cancel")
		}
	}
}

func TestControlCancels(t *testing.T) {
	done := make(chan struct{})
	c := mining.NewControl(done)
	for i := 0; i < 5000; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal("should not cancel before done closes")
		}
	}
	close(done)
	canceled := false
	for i := 0; i < 5000; i++ {
		if err := c.Tick(); err == mining.ErrCanceled {
			canceled = true
			break
		}
	}
	if !canceled {
		t.Fatal("control never reported cancellation")
	}
	if !c.Canceled() {
		t.Fatal("Canceled() should be true")
	}
}
