package naive

import (
	"repro/internal/engine"
	"repro/internal/prep"
	"repro/internal/result"
)

func init() {
	engine.Register(engine.Registration{
		Name:    "flat",
		Doc:     "flat cumulative intersection scheme without a prefix tree (Mielikäinen); the paper's baseline",
		Targets: []engine.Target{engine.Closed},
		Prep:    prep.Config{Items: prep.OrderKeep, Trans: prep.OrderOriginal},
		Order:   70,
		Mine: func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
			return minePrepared(pre, spec.MinSupport, spec.Control(), rep)
		},
	})
}
