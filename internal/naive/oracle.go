package naive

import (
	"fmt"

	"repro/internal/itemset"
	"repro/internal/result"
	"repro/internal/txdb"
)

// maxOracleTransactions bounds the 2^n transaction-subset oracle.
const maxOracleTransactions = 20

// maxOracleItems bounds the 2^|B| item-subset oracle.
const maxOracleItems = 20

// ClosedByTransactionSubsets is a brute-force oracle: it enumerates every
// non-empty subset of transactions, intersects it, and keeps the
// intersections whose cover reaches minSupport (§2.4: the closed sets are
// exactly the intersections of transaction subsets). It only accepts
// databases with at most 20 transactions.
func ClosedByTransactionSubsets(db txdb.Source, minSupport int) (*result.Set, error) {
	if err := txdb.Validate(db); err != nil {
		return nil, err
	}
	n := db.NumTx()
	if n > maxOracleTransactions {
		return nil, fmt.Errorf("naive: oracle limited to %d transactions, got %d", maxOracleTransactions, n)
	}
	if minSupport < 1 {
		minSupport = 1
	}
	seen := map[string]int{}
	for mask := 1; mask < 1<<uint(n); mask++ {
		var inter itemset.Set
		first := true
		for k := 0; k < n && (first || len(inter) > 0); k++ {
			if mask&(1<<uint(k)) == 0 {
				continue
			}
			if first {
				inter = db.Tx(k).Clone()
				first = false
			} else {
				inter = inter.Intersect(db.Tx(k))
			}
		}
		if len(inter) == 0 {
			continue
		}
		key := inter.Key()
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = result.Support(db, inter)
	}
	var out result.Set
	for key, supp := range seen {
		if supp >= minSupport {
			out.Add(itemset.ParseKey(key), supp)
		}
	}
	out.Sort()
	return &out, nil
}

// FrequentByItemSubsets is the brute-force oracle for the "all frequent
// sets" target: it enumerates every non-empty subset of the item
// universe and keeps the ones whose support reaches minSupport. It only
// accepts databases with at most 20 items.
func FrequentByItemSubsets(db txdb.Source, minSupport int) (*result.Set, error) {
	if err := txdb.Validate(db); err != nil {
		return nil, err
	}
	if db.NumItems() > maxOracleItems {
		return nil, fmt.Errorf("naive: oracle limited to %d items, got %d", maxOracleItems, db.NumItems())
	}
	if minSupport < 1 {
		minSupport = 1
	}
	var out result.Set
	items := make(itemset.Set, 0, db.NumItems())
	for mask := 1; mask < 1<<uint(db.NumItems()); mask++ {
		items = items[:0]
		for i := 0; i < db.NumItems(); i++ {
			if mask&(1<<uint(i)) != 0 {
				items = append(items, itemset.Item(i))
			}
		}
		if supp := result.Support(db, items); supp >= minSupport {
			out.Add(items.Clone(), supp)
		}
	}
	out.Sort()
	return &out, nil
}

// ClosedByItemSubsets is the second, fully independent oracle: it
// enumerates every non-empty subset of the item universe, computes its
// support directly, and keeps the sets that are frequent and closed per
// the support-based definition of §2.3 (no superset with equal support,
// checked via single-item extensions). It only accepts databases with at
// most 20 items.
func ClosedByItemSubsets(db txdb.Source, minSupport int) (*result.Set, error) {
	if err := txdb.Validate(db); err != nil {
		return nil, err
	}
	if db.NumItems() > maxOracleItems {
		return nil, fmt.Errorf("naive: oracle limited to %d items, got %d", maxOracleItems, db.NumItems())
	}
	if minSupport < 1 {
		minSupport = 1
	}
	var out result.Set
	items := make(itemset.Set, 0, db.NumItems())
	for mask := 1; mask < 1<<uint(db.NumItems()); mask++ {
		items = items[:0]
		for i := 0; i < db.NumItems(); i++ {
			if mask&(1<<uint(i)) != 0 {
				items = append(items, itemset.Item(i))
			}
		}
		supp := result.Support(db, items)
		if supp < minSupport {
			continue
		}
		// Closed iff no single-item extension preserves support: adding
		// any item i ∉ I either drops support or I has a perfect
		// extension and is not closed (§2.3 and the perfect-extension
		// remark in §2.2).
		closed := true
		for i := 0; i < db.NumItems() && closed; i++ {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			if result.Support(db, items.WithItem(itemset.Item(i))) == supp {
				closed = false
			}
		}
		if closed {
			out.Add(items, supp)
		}
	}
	out.Sort()
	return &out, nil
}
