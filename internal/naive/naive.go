// Package naive contains the reference implementations this repository is
// validated and benchmarked against:
//
//   - FlatCumulative: the cumulative intersection scheme of Mielikäinen
//     (FIMI'03) with a flat repository — the baseline the paper reports to
//     be often >100× slower than IsTa precisely because it lacks the
//     prefix tree (§5);
//   - ClosedByTransactionSubsets and ClosedByItemSubsets: two independent
//     brute-force oracles used by the test suite.
package naive

import (
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/txdb"
)

// FlatOptions configures FlatCumulative.
type FlatOptions struct {
	// MinSupport is the absolute minimum support (values < 1 act as 1).
	MinSupport int
	// Done optionally cancels the run.
	Done <-chan struct{}
	// Guard optionally bounds the run (deadline and pattern budget). May
	// be nil.
	Guard *guard.Guard
}

// FlatCumulative mines closed frequent item sets with the flat cumulative
// intersection scheme: a repository holding every closed item set of the
// transactions processed so far (as a hash map keyed on the canonical set
// encoding), updated per transaction t by the recursion of §3.2:
//
//	C(T ∪ {t}) = C(T) ∪ {t} ∪ { s ∩ t : s ∈ C(T) }
//
// Supports are maintained with the same max rule the prefix tree uses.
// The scheme is exact but quadratic-ish in the repository size per
// transaction, which is the point of benchmarking against it.
func FlatCumulative(db txdb.Source, opts FlatOptions, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	ctl := mining.Guarded(opts.Done, opts.Guard)
	// Keep the original item codes (compacted): removing infrequent items
	// changes neither the closed frequent sets nor their supports — any
	// item in the closure of a frequent set is itself frequent.
	pre := prep.Prepare(db, minsup, prep.Config{Items: prep.OrderKeep, Trans: prep.OrderOriginal})
	return minePrepared(pre, minsup, ctl, rep)
}

// minePrepared is the flat cumulative scheme on an already preprocessed
// database.
func minePrepared(pre *prep.Prepared, minsup int, ctl *mining.Control, rep result.Reporter) error {
	repo := make(map[string]*flatEntry)
	pdb := pre.DB
	for k, n := 0, pdb.NumTx(); k < n; k++ {
		t := pdb.Tx(k)
		// A row of weight w is w identical multiset transactions; the max
		// rule telescopes, so one pass adding w is exactly w passes adding 1.
		w := pdb.Weight(k)
		ctl.CountOps(len(repo)) // one intersection per stored set
		// Collect the support contribution of this step per result set:
		// for result r, the best source is max over stored s with s∩t=r of
		// supp(s); the transaction itself contributes with 0 (it may
		// create a brand-new entry).
		step := map[string]int{t.Key(): 0}
		for _, e := range repo {
			if err := ctl.Tick(); err != nil {
				return err
			}
			r := e.items.Intersect(t)
			if len(r) == 0 {
				continue
			}
			k := r.Key()
			if best, ok := step[k]; !ok || e.supp > best {
				step[k] = e.supp
			}
		}
		for k, best := range step {
			e, ok := repo[k]
			if !ok {
				e = &flatEntry{items: itemset.ParseKey(k)}
				repo[k] = e
			}
			if e.supp > best {
				best = e.supp
			}
			e.supp = best + w
		}
		// The flat repository is the structure the node budget bounds.
		if err := ctl.PollNodes(len(repo)); err != nil {
			return err
		}
	}

	// Every repository entry is an intersection of one or more
	// transactions and therefore closed (§2.4): if r = ∩_{k∈K} t_k then
	// cover(r) ⊇ K and ∩_{k∈cover(r)} t_k is squeezed between r and r.
	// So no closedness filtering is needed — only the support threshold.
	for _, e := range repo {
		if e.supp >= minsup {
			rep.Report(pre.DecodeSet(e.items), e.supp)
		}
		if err := ctl.Tick(); err != nil {
			return err
		}
	}
	return nil
}

type flatEntry struct {
	items itemset.Set
	supp  int
}
