package lcm

import (
	"repro/internal/engine"
	"repro/internal/prep"
	"repro/internal/result"
)

func init() {
	engine.Register(engine.Registration{
		Name:    "lcm",
		Doc:     "prefix-preserving closure extension, repository-free closed enumeration (Uno et al.)",
		Targets: []engine.Target{engine.Closed},
		Prep:    prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderOriginal},
		Order:   40,
		Mine: func(pre *prep.Prepared, spec *engine.Spec, rep result.Reporter) error {
			return minePrepared(pre, spec.MinSupport, spec.Control(), rep)
		},
	})
}
