package lcm

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/result"
)

func randDB(rng *rand.Rand, items, n int, density float64) *dataset.Database {
	trans := make([]itemset.Set, n)
	for k := range trans {
		var t itemset.Set
		for i := 0; i < items; i++ {
			if rng.Float64() < density {
				t = append(t, itemset.Item(i))
			}
		}
		trans[k] = t
	}
	return dataset.New(trans, items)
}

// TestNoDuplicates: ppc-extension must emit every closed set exactly once
// even without any dedup structure — count raw reports.
func TestNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for trial := 0; trial < 40; trial++ {
		db := randDB(rng, 3+rng.Intn(8), 3+rng.Intn(12), 0.3+rng.Float64()*0.4)
		seen := map[string]bool{}
		dup := false
		err := Mine(db, Options{MinSupport: 1}, result.ReporterFunc(func(s itemset.Set, _ int) {
			if seen[s.Key()] {
				dup = true
			}
			seen[s.Key()] = true
		}))
		if err != nil {
			t.Fatal(err)
		}
		if dup {
			t.Fatalf("duplicate closed set emitted for db %v", db.Trans)
		}
	}
}

func TestMatchesIsTaLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 5; trial++ {
		db := randDB(rng, 25+rng.Intn(25), 50+rng.Intn(60), 0.1+rng.Float64()*0.2)
		minsup := 2 + rng.Intn(5)
		var want result.Set
		if err := core.Mine(db, core.Options{MinSupport: minsup}, want.Collect()); err != nil {
			t.Fatal(err)
		}
		var got result.Set
		if err := Mine(db, Options{MinSupport: minsup}, got.Collect()); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(&want) {
			t.Fatalf("LCM disagrees with IsTa (minsup=%d):\n%s", minsup, got.Diff(&want, 10))
		}
	}
}

func TestEdgeCases(t *testing.T) {
	var got result.Set
	if err := Mine(&dataset.Database{Items: 2}, Options{MinSupport: 1}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty db")
	}

	// A database where the root closure is non-empty (item in every
	// transaction).
	db := dataset.FromInts([]int{0, 1}, []int{0, 2}, []int{0})
	got = result.Set{}
	if err := Mine(db, Options{MinSupport: 3}, got.Collect()); err != nil {
		t.Fatal(err)
	}
	var want result.Set
	want.Add(itemset.FromInts(0), 3)
	if !got.Equal(&want) {
		t.Fatalf("root closure: %s", got.Diff(&want, 5))
	}

	bad := &dataset.Database{Items: 1, Trans: []itemset.Set{{3}}}
	if err := Mine(bad, Options{MinSupport: 1}, &result.Counter{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestCancel(t *testing.T) {
	done := make(chan struct{})
	close(done)
	db := randDB(rand.New(rand.NewSource(9)), 50, 200, 0.4)
	err := Mine(db, Options{MinSupport: 2, Done: done}, &result.Counter{})
	if err != mining.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestPrefixPreserved(t *testing.T) {
	tests := []struct {
		p, q itemset.Set
		i    itemset.Item
		want bool
	}{
		{itemset.FromInts(), itemset.FromInts(3), 3, true},
		{itemset.FromInts(), itemset.FromInts(1, 3), 3, false}, // adds 1 < 3
		{itemset.FromInts(1), itemset.FromInts(1, 3), 3, true},
		{itemset.FromInts(1), itemset.FromInts(2, 3), 3, false},
		{itemset.FromInts(1, 5), itemset.FromInts(1, 3, 5), 3, true},
		{itemset.FromInts(0, 1), itemset.FromInts(0, 1, 2, 9), 2, true},
		{itemset.FromInts(0, 1), itemset.FromInts(0, 2, 9), 2, false},
	}
	for _, tc := range tests {
		if got := prefixPreserved(tc.p, tc.q, tc.i); got != tc.want {
			t.Errorf("prefixPreserved(%v, %v, %d) = %v, want %v", tc.p, tc.q, tc.i, got, tc.want)
		}
	}
}
