// Package lcm implements an LCM-style closed frequent item set miner
// (Uno, Kiyomi, Arimura — the FIMI'04 winning enumeration baseline of the
// paper). LCM enumerates closed sets by prefix-preserving closure
// extension (ppc-extension): every closed set has exactly one generating
// parent, so the search needs no repository and emits each closed set
// exactly once.
package lcm

import (
	"repro/internal/guard"
	"repro/internal/itemset"
	"repro/internal/mining"
	"repro/internal/prep"
	"repro/internal/result"
	"repro/internal/txdb"
)

// Options configures the miner.
type Options struct {
	// MinSupport is the absolute minimum support; values < 1 act as 1.
	MinSupport int
	// Done optionally cancels the run.
	Done <-chan struct{}
	// Guard optionally bounds the run (deadline and pattern budget). May
	// be nil.
	Guard *guard.Guard
}

// Mine runs the closed-set enumeration on db, reporting patterns in
// original item codes.
func Mine(db txdb.Source, opts Options, rep result.Reporter) error {
	if err := txdb.Validate(db); err != nil {
		return err
	}
	minsup := opts.MinSupport
	if minsup < 1 {
		minsup = 1
	}
	pre := prep.Prepare(db, minsup, prep.Config{Items: prep.OrderAscFreq, Trans: prep.OrderOriginal})
	ctl := mining.Guarded(opts.Done, opts.Guard)
	return minePrepared(pre, minsup, ctl, rep)
}

// minePrepared is the ppc-extension enumeration on an already
// preprocessed database.
func minePrepared(pre *prep.Prepared, minsup int, ctl *mining.Control, rep result.Reporter) error {
	pdb := pre.DB
	if pdb.NumItems() == 0 || pdb.TotalWeight() < minsup {
		return nil
	}

	m := &lcmMiner{
		minsup: minsup,
		db:     pdb,
		pre:    pre,
		rep:    rep,
		ctl:    ctl,
	}

	// Root: the closure of the full transaction set.
	all := make([]int32, pdb.NumTx())
	for k := range all {
		all[k] = int32(k)
	}
	root, counts := m.closure(all)
	if len(root) > 0 {
		m.rep.Report(m.pre.DecodeSet(root), pdb.TotalWeight())
	}
	return m.expand(root, all, counts, -1)
}

type lcmMiner struct {
	minsup int
	db     *txdb.DB
	pre    *prep.Prepared
	rep    result.Reporter
	ctl    *mining.Control
}

// closure computes the closure of the transaction set tids (the items
// occurring in every listed transaction) and returns it together with the
// per-item weighted occurrence counts within tids (the conditional
// frequencies). An item is in the closure iff its weighted count equals
// the total weight of tids — with uniform weights, the plain cover-size
// test. The counts slice is freshly allocated per call because the
// recursion needs the parent's counts while expanding children.
func (m *lcmMiner) closure(tids []int32) (itemset.Set, []int) {
	counts := make([]int, m.db.NumItems())
	coverW := 0
	for _, t := range tids {
		w := m.db.Weight(int(t))
		coverW += w
		for _, i := range m.db.Tx(int(t)) {
			counts[i] += w
		}
	}
	var clo itemset.Set
	for i, c := range counts {
		if c == coverW {
			clo = append(clo, itemset.Item(i))
		}
	}
	return clo, counts
}

// expand generates the ppc-extensions of the closed set p (with cover
// tids and conditional counts) using extension items greater than core.
func (m *lcmMiner) expand(p itemset.Set, tids []int32, counts []int, core int) error {
	coverW := m.db.TidsWeight(tids)
	for i := core + 1; i < m.db.NumItems(); i++ {
		if counts[i] < m.minsup || counts[i] == coverW {
			// Infrequent, or already in p (a perfect extension of p is
			// in its closure by construction).
			continue
		}
		if err := m.ctl.Tick(); err != nil {
			return err
		}
		m.ctl.CountOps(1) // one ppc-extension attempt (cover + closure)
		// Cover of p ∪ {i}.
		sub := make([]int32, 0, len(tids))
		for _, t := range tids {
			if m.db.Tx(int(t)).Contains(itemset.Item(i)) {
				sub = append(sub, t)
			}
		}
		q, qCounts := m.closure(sub)
		// Prefix-preserving check: the closure may only add items > i
		// beyond what p already contained below i.
		if !prefixPreserved(p, q, itemset.Item(i)) {
			continue
		}
		m.rep.Report(m.pre.DecodeSet(q), m.db.TidsWeight(sub))
		if err := m.expand(q, sub, qCounts, i); err != nil {
			return err
		}
	}
	return nil
}

// prefixPreserved reports whether q agrees with p on all items smaller
// than i (q is then a valid ppc-extension of p by item i).
func prefixPreserved(p, q itemset.Set, i itemset.Item) bool {
	a, b := 0, 0
	for a < len(p) && p[a] < i && b < len(q) && q[b] < i {
		if p[a] != q[b] {
			return false
		}
		a++
		b++
	}
	// Any leftover small item on either side breaks the prefix property.
	if a < len(p) && p[a] < i {
		return false
	}
	if b < len(q) && q[b] < i {
		return false
	}
	return true
}
