// Package mining holds the small pieces of machinery shared by every
// miner: cooperative cancellation (so the bench harness can cut off the
// enumeration baselines exactly where the paper's plots do) and the common
// error values.
package mining

import "errors"

// ErrCanceled is returned by a miner whose run was canceled through its
// Done channel. Partial results already reported remain valid patterns but
// the result set is incomplete.
var ErrCanceled = errors.New("mining: canceled")

// checkInterval balances cancellation latency against overhead; the check
// is a single atomic-free counter decrement in the common case.
const checkInterval = 4096

// Control performs cheap cooperative cancellation checks inside mining
// loops. The zero value (or a nil *Control) never cancels. A Control is
// not safe for concurrent use; give each worker goroutine its own Control
// on the same done channel.
type Control struct {
	done     <-chan struct{}
	budget   int
	canceled bool // latched: once canceled, always canceled
}

// NewControl returns a Control watching done; done may be nil. The first
// Tick polls the channel immediately (so a run that was canceled before it
// started stops on the very first check); later polls are amortized over
// checkInterval calls.
func NewControl(done <-chan struct{}) *Control {
	return &Control{done: done, budget: 1}
}

// Tick must be called periodically from mining inner loops. It returns
// ErrCanceled once done is closed (possibly up to checkInterval calls
// late). Cancellation latches: after the first ErrCanceled every
// subsequent call reports it immediately, so callers that keep polling
// cannot resume mining past a cancellation.
func (c *Control) Tick() error {
	if c == nil || c.done == nil {
		return nil
	}
	if c.canceled {
		return ErrCanceled
	}
	c.budget--
	if c.budget > 0 {
		return nil
	}
	c.budget = checkInterval
	select {
	case <-c.done:
		c.canceled = true
		return ErrCanceled
	default:
		return nil
	}
}

// Canceled reports whether done is already closed, checking immediately.
// Like Tick, the result latches.
func (c *Control) Canceled() bool {
	if c == nil || c.done == nil {
		return false
	}
	if c.canceled {
		return true
	}
	select {
	case <-c.done:
		c.canceled = true
		return true
	default:
		return false
	}
}
