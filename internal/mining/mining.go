// Package mining holds the small pieces of machinery shared by every
// miner: cooperative cancellation (so the bench harness can cut off the
// enumeration baselines exactly where the paper's plots do), resource
// guards (internal/guard budgets threaded through the same tick checks),
// and the common error values.
package mining

import (
	"errors"
	"sync/atomic"

	"repro/internal/guard"
)

// ErrCanceled is returned by a miner whose run was canceled through its
// Done channel. Partial results already reported remain valid patterns but
// the result set is incomplete.
var ErrCanceled = errors.New("mining: canceled")

// checkInterval balances cancellation latency against overhead; the check
// is a single atomic-free counter decrement in the common case. It is a
// variable only for the fault-injection test seam (SetCheckInterval).
var checkInterval = 4096

// SetCheckInterval overrides the amortization interval of all Controls
// created afterwards (and of existing Controls at their next budget
// reset) and returns a function restoring the previous value. It exists
// for deterministic fault-injection tests (internal/faultinject) and must
// only be called while no mining run is active.
func SetCheckInterval(n int) (restore func()) {
	if n < 1 {
		n = 1
	}
	prev := checkInterval
	checkInterval = n
	return func() { checkInterval = prev }
}

// TickHook, when non-nil, is invoked on every amortized tick check of
// every Control. A non-nil return value latches into the Control and
// aborts the run; a panic propagates into the mining code exactly like a
// real in-worker fault. It is a fault-injection seam
// (internal/faultinject) and must only be set while no mining run is
// active.
var TickHook func() error

// Counters accumulates per-run observability counters. A single Counters
// may be shared by many Controls (one per worker goroutine); all fields
// are updated atomically, and only on the Controls' amortized slow paths
// so the mining hot loops stay unchanged. A nil *Counters disables all
// counting.
type Counters struct {
	// Checks counts amortized cancellation checkpoints (Control slow-path
	// checks, one per checkInterval Ticks).
	Checks atomic.Int64
	// Ops counts algorithm work units — intersections performed,
	// candidate extensions tested — as reported by CountOps.
	Ops atomic.Int64
	// NodesPeak tracks the largest repository size (prefix-tree nodes or
	// stored sets) observed through PollNodes.
	NodesPeak atomic.Int64
}

// PeakNodes records n as a candidate repository peak.
func (c *Counters) PeakNodes(n int) {
	if c == nil {
		return
	}
	for {
		cur := c.NodesPeak.Load()
		if int64(n) <= cur || c.NodesPeak.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Control performs cheap cooperative cancellation and budget checks
// inside mining loops. The zero value (or a nil *Control) never cancels.
// A Control is not safe for concurrent use; give each worker goroutine
// its own Control on the same done channel and shared Guard (and,
// optionally, shared Counters).
type Control struct {
	done     <-chan struct{}
	guard    *guard.Guard
	counters *Counters
	budget   int
	ops      int64 // CountOps units not yet flushed to counters
	err      error // latched: once failed, every check reports this error
}

// NewControl returns a Control watching done; done may be nil. The first
// Tick polls the channel immediately (so a run that was canceled before it
// started stops on the very first check); later polls are amortized over
// checkInterval calls.
func NewControl(done <-chan struct{}) *Control {
	return Guarded(done, nil)
}

// Guarded returns a Control watching done and enforcing g's budget
// (deadline and latched resource trips) on the same amortized schedule.
// Both done and g may be nil.
func Guarded(done <-chan struct{}, g *guard.Guard) *Control {
	return &Control{done: done, guard: g, budget: 1}
}

// GuardedCounted is Guarded with an optional shared Counters that the
// Control feeds on its amortized slow path (engine stats). All arguments
// may be nil.
func GuardedCounted(done <-chan struct{}, g *guard.Guard, c *Counters) *Control {
	return &Control{done: done, guard: g, counters: c, budget: 1}
}

// CountOps records n algorithm work units (intersections, extension
// tests). The units accumulate in a Control-local counter and are flushed
// to the shared Counters on the next amortized check or Flush, so the
// call is a plain add on the hot path.
func (c *Control) CountOps(n int) {
	if c == nil || c.counters == nil {
		return
	}
	c.ops += int64(n)
}

// Flush pushes any unflushed counter state to the shared Counters. The
// engine calls it once after a run; miners never need to.
func (c *Control) Flush() {
	if c == nil || c.counters == nil {
		return
	}
	if c.ops > 0 {
		c.counters.Ops.Add(c.ops)
		c.ops = 0
	}
}

// Tick must be called periodically from mining inner loops. It returns
// ErrCanceled once done is closed, or the guard's typed error
// (guard.ErrDeadline, guard.ErrBudget) once the budget trips — possibly
// up to checkInterval calls late. Failure latches: after the first error
// every subsequent call reports it immediately, so callers that keep
// polling cannot resume mining past a cancellation.
func (c *Control) Tick() error {
	if c == nil || (c.done == nil && c.guard == nil && c.counters == nil && TickHook == nil) {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	c.budget--
	if c.budget > 0 {
		return nil
	}
	c.budget = checkInterval
	return c.check()
}

// check is the slow path of Tick: counter flush, fault-injection hook,
// guard deadline, done channel, in that order (so a simultaneous deadline
// and cancellation deterministically reports the deadline).
func (c *Control) check() error {
	if c.counters != nil {
		c.counters.Checks.Add(1)
		if c.ops > 0 {
			c.counters.Ops.Add(c.ops)
			c.ops = 0
		}
	}
	if h := TickHook; h != nil {
		if err := h(); err != nil {
			c.err = err
			return err
		}
	}
	if err := c.guard.Check(); err != nil {
		c.err = err
		return err
	}
	if c.done != nil {
		select {
		case <-c.done:
			c.err = ErrCanceled
			return c.err
		default:
		}
	}
	return nil
}

// Canceled reports whether the run must stop, checking immediately: the
// done channel, the guard's deadline, and any latched error. Like Tick,
// the result latches. It is the probe miners install into long tree
// passes (core.Tree.SetCancel).
func (c *Control) Canceled() bool {
	if c == nil {
		return false
	}
	if c.err != nil {
		return true
	}
	if err := c.guard.Check(); err != nil {
		c.err = err
		return true
	}
	if c.done != nil {
		select {
		case <-c.done:
			c.err = ErrCanceled
			return true
		default:
		}
	}
	return false
}

// PollNodes checks a repository size against the guard's node budget and
// latches (and returns) the budget error when it is exceeded. With no
// guard it always returns nil. The size is also recorded as a repository
// peak when counters are attached, budget or not.
func (c *Control) PollNodes(n int) error {
	if c == nil {
		return nil
	}
	c.counters.PeakNodes(n)
	if c.guard == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	if err := c.guard.PollNodes(n); err != nil {
		c.err = err
		return err
	}
	return nil
}

// Cause returns the latched error of a failed Control — the reason a
// probe (Canceled) fired. Callers that observe an abort through a
// boolean channel (e.g. core.Tree.Aborted) use it to surface the typed
// error instead of a generic cancellation. It returns ErrCanceled if the
// control never latched (a conservative default for abandoned runs).
func (c *Control) Cause() error {
	if c == nil || c.err == nil {
		return ErrCanceled
	}
	return c.err
}
