// Package mining holds the small pieces of machinery shared by every
// miner: cooperative cancellation (so the bench harness can cut off the
// enumeration baselines exactly where the paper's plots do), resource
// guards (internal/guard budgets threaded through the same tick checks),
// and the common error values.
package mining

import (
	"errors"
	"sync/atomic"

	"repro/internal/guard"
)

// ErrCanceled is returned by a miner whose run was canceled through its
// Done channel. Partial results already reported remain valid patterns but
// the result set is incomplete.
var ErrCanceled = errors.New("mining: canceled")

// checkInterval balances cancellation latency against overhead; the check
// is a single atomic-free counter decrement in the common case. It is a
// variable only for the fault-injection test seam (SetCheckInterval).
var checkInterval = 4096

// SetCheckInterval overrides the amortization interval of all Controls
// created afterwards (and of existing Controls at their next budget
// reset) and returns a function restoring the previous value. It exists
// for deterministic fault-injection tests (internal/faultinject) and must
// only be called while no mining run is active.
func SetCheckInterval(n int) (restore func()) {
	if n < 1 {
		n = 1
	}
	prev := checkInterval
	checkInterval = n
	return func() { checkInterval = prev }
}

// tickHook is the process-global fault-injection seam (a successor to
// the former TickHook package variable, whose unguarded writes raced
// with worker reads). Controls sample it once at construction with an
// atomic load, so installing or removing a hook is safe even while runs
// are active: Controls created afterwards see the new hook, existing
// ones keep the one they sampled, and nothing tears.
var tickHook atomic.Pointer[func() error]

// SetTickHook installs h as the tick hook of every Control created
// afterwards and returns a function restoring the previous hook. The
// hook is invoked on each amortized tick check of those Controls: a
// non-nil error return latches into the Control and aborts its run, and
// a panic propagates into the mining code exactly like a real in-worker
// fault. It is a fault-injection seam (internal/faultinject); h must be
// safe for concurrent calls from worker goroutines.
func SetTickHook(h func() error) (restore func()) {
	var p *func() error
	if h != nil {
		p = &h
	}
	prev := tickHook.Swap(p)
	return func() { tickHook.Store(prev) }
}

// Counters accumulates per-run observability counters. A single Counters
// may be shared by many Controls (one per worker goroutine); all fields
// are updated atomically, and only on the Controls' amortized slow paths
// (and the reporting path, for Patterns) so the mining hot loops stay
// unchanged. A nil *Counters disables all counting.
type Counters struct {
	// Checks counts amortized cancellation checkpoints (Control slow-path
	// checks, one per checkInterval Ticks).
	Checks atomic.Int64
	// Ops counts algorithm work units — intersections performed,
	// candidate extensions tested — as reported by CountOps.
	Ops atomic.Int64
	// NodesPeak tracks the largest repository size (prefix-tree nodes or
	// stored sets) observed through PollNodes.
	NodesPeak atomic.Int64
	// Patterns counts the patterns reported so far (engine reporting
	// path; atomic so progress snapshots can read it from any worker).
	Patterns atomic.Int64
	// Isects counts tid-set kernel intersections started (tidset.Stats
	// drained through CountKernel).
	Isects atomic.Int64
	// EarlyStops counts kernel intersections abandoned by the minsup
	// bound before completion.
	EarlyStops atomic.Int64
	// RepSwitches counts kernel representation conversions (promotions,
	// demotions, diffset materializations).
	RepSwitches atomic.Int64
	// Retries counts healed re-attempts of failed work units (shard
	// re-mines, branch re-explorations, retried persistence ops). Updated
	// only on supervisor paths, never in mining loops.
	Retries atomic.Int64
	// Degraded counts work units abandoned after retry exhaustion; a
	// nonzero value means the run returned a typed partial result.
	Degraded atomic.Int64

	// onCheck, when non-nil, is invoked after every amortized slow-path
	// check of every Control sharing this Counters (progress sampling).
	// It is set once, before the run starts, through SetOnCheck.
	onCheck func()
}

// SetOnCheck installs f as the shared observer invoked after each
// amortized slow-path check (with the Control's local counters already
// flushed). It must be called before any Control using c starts ticking;
// f must be safe for concurrent calls from worker goroutines and must
// return quickly — it runs on the mining slow path.
func (c *Counters) SetOnCheck(f func()) {
	if c != nil {
		c.onCheck = f
	}
}

// CountPattern records one reported pattern.
func (c *Counters) CountPattern() {
	if c != nil {
		c.Patterns.Add(1)
	}
}

// CountRetry records one healed re-attempt of a failed work unit.
func (c *Counters) CountRetry() {
	if c != nil {
		c.Retries.Add(1)
	}
}

// CountDegraded records one work unit abandoned after retry exhaustion.
func (c *Counters) CountDegraded() {
	if c != nil {
		c.Degraded.Add(1)
	}
}

// PeakNodes records n as a candidate repository peak.
func (c *Counters) PeakNodes(n int) {
	if c == nil {
		return
	}
	for {
		cur := c.NodesPeak.Load()
		if int64(n) <= cur || c.NodesPeak.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Control performs cheap cooperative cancellation and budget checks
// inside mining loops. The zero value (or a nil *Control) never cancels.
// A Control is not safe for concurrent use; give each worker goroutine
// its own Control on the same done channel and shared Guard (and,
// optionally, shared Counters).
type Control struct {
	done     <-chan struct{}
	guard    *guard.Guard
	counters *Counters
	hook     func() error // per-Control tick hook, sampled from tickHook
	budget   int
	ops      int64 // CountOps units not yet flushed to counters
	isects   int64 // kernel counters not yet flushed to counters
	estops   int64
	switches int64
	err      error // latched: once failed, every check reports this error
}

// NewControl returns a Control watching done; done may be nil. The first
// Tick polls the channel immediately (so a run that was canceled before it
// started stops on the very first check); later polls are amortized over
// checkInterval calls.
func NewControl(done <-chan struct{}) *Control {
	return Guarded(done, nil)
}

// Guarded returns a Control watching done and enforcing g's budget
// (deadline and latched resource trips) on the same amortized schedule.
// Both done and g may be nil.
func Guarded(done <-chan struct{}, g *guard.Guard) *Control {
	return GuardedCounted(done, g, nil)
}

// GuardedCounted is Guarded with an optional shared Counters that the
// Control feeds on its amortized slow path (engine stats, progress
// sampling). All arguments may be nil.
func GuardedCounted(done <-chan struct{}, g *guard.Guard, c *Counters) *Control {
	ctl := &Control{done: done, guard: g, counters: c, budget: 1}
	if p := tickHook.Load(); p != nil {
		ctl.hook = *p
	}
	return ctl
}

// Counters returns the shared Counters this Control feeds (nil when none
// is attached). Parallel engines use it to hand every worker's private
// Control the same Counters, so per-worker work lands in the run's
// stats and progress snapshots.
func (c *Control) Counters() *Counters {
	if c == nil {
		return nil
	}
	return c.counters
}

// CountOps records n algorithm work units (intersections, extension
// tests). The units accumulate in a Control-local counter and are flushed
// to the shared Counters on the next amortized check or Flush, so the
// call is a plain add on the hot path.
func (c *Control) CountOps(n int) {
	if c == nil || c.counters == nil {
		return
	}
	c.ops += int64(n)
}

// CountKernel records drained tid-set kernel statistics (intersections,
// early stops, representation switches). Like CountOps, the counts
// accumulate Control-locally and reach the shared Counters only on the
// amortized slow path, keeping kernel draining off the atomic bus.
func (c *Control) CountKernel(isects, earlyStops, switches int64) {
	if c == nil || c.counters == nil {
		return
	}
	c.isects += isects
	c.estops += earlyStops
	c.switches += switches
}

// Flush pushes any unflushed counter state to the shared Counters. The
// engine calls it once after a run; miners never need to.
func (c *Control) Flush() {
	if c == nil || c.counters == nil {
		return
	}
	c.flushCounts()
}

// flushCounts moves Control-local counts into the shared Counters.
func (c *Control) flushCounts() {
	if c.ops > 0 {
		c.counters.Ops.Add(c.ops)
		c.ops = 0
	}
	if c.isects > 0 {
		c.counters.Isects.Add(c.isects)
		c.isects = 0
	}
	if c.estops > 0 {
		c.counters.EarlyStops.Add(c.estops)
		c.estops = 0
	}
	if c.switches > 0 {
		c.counters.RepSwitches.Add(c.switches)
		c.switches = 0
	}
}

// Tick must be called periodically from mining inner loops. It returns
// ErrCanceled once done is closed, or the guard's typed error
// (guard.ErrDeadline, guard.ErrBudget) once the budget trips — possibly
// up to checkInterval calls late. Failure latches: after the first error
// every subsequent call reports it immediately, so callers that keep
// polling cannot resume mining past a cancellation.
func (c *Control) Tick() error {
	if c == nil || (c.done == nil && c.guard == nil && c.counters == nil && c.hook == nil) {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	c.budget--
	if c.budget > 0 {
		return nil
	}
	c.budget = checkInterval
	return c.check()
}

// check is the slow path of Tick: counter flush, fault-injection hook,
// guard deadline, done channel, progress observer, in that order (so a
// simultaneous deadline and cancellation deterministically reports the
// deadline, and a stopping Control emits no further progress).
func (c *Control) check() error {
	if c.counters != nil {
		c.counters.Checks.Add(1)
		c.flushCounts()
	}
	if c.hook != nil {
		if err := c.hook(); err != nil {
			c.err = err
			return err
		}
	}
	if err := c.guard.Check(); err != nil {
		c.err = err
		return err
	}
	if c.done != nil {
		select {
		case <-c.done:
			c.err = ErrCanceled
			return c.err
		default:
		}
	}
	if c.counters != nil && c.counters.onCheck != nil {
		c.counters.onCheck()
	}
	return nil
}

// Canceled reports whether the run must stop, checking immediately: the
// done channel, the guard's deadline, and any latched error. Like Tick,
// the result latches. It is the probe miners install into long tree
// passes (core.Tree.SetCancel).
func (c *Control) Canceled() bool {
	if c == nil {
		return false
	}
	if c.err != nil {
		return true
	}
	if err := c.guard.Check(); err != nil {
		c.err = err
		return true
	}
	if c.done != nil {
		select {
		case <-c.done:
			c.err = ErrCanceled
			return true
		default:
		}
	}
	return false
}

// PollNodes checks a repository size against the guard's node budget and
// latches (and returns) the budget error when it is exceeded. With no
// guard it always returns nil. The size is also recorded as a repository
// peak when counters are attached, budget or not.
func (c *Control) PollNodes(n int) error {
	if c == nil {
		return nil
	}
	c.counters.PeakNodes(n)
	if c.guard == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	if err := c.guard.PollNodes(n); err != nil {
		c.err = err
		return err
	}
	return nil
}

// Cause returns the latched error of a failed Control — the reason a
// probe (Canceled) fired. Callers that observe an abort through a
// boolean channel (e.g. core.Tree.Aborted) use it to surface the typed
// error instead of a generic cancellation. It returns ErrCanceled if the
// control never latched (a conservative default for abandoned runs).
func (c *Control) Cause() error {
	if c == nil || c.err == nil {
		return ErrCanceled
	}
	return c.err
}
