package mining

import "testing"

func TestNilControlNeverCancels(t *testing.T) {
	var c *Control
	for i := 0; i < 3; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal("nil control must not cancel")
		}
	}
	if c.Canceled() {
		t.Fatal("nil control must not be canceled")
	}
	c2 := NewControl(nil)
	for i := 0; i < 3*4096; i++ {
		if err := c2.Tick(); err != nil {
			t.Fatal("nil-done control must not cancel")
		}
	}
	if c2.Canceled() {
		t.Fatal("nil-done control must not be canceled")
	}
}

func TestControlCancelsWithinInterval(t *testing.T) {
	done := make(chan struct{})
	c := NewControl(done)
	for i := 0; i < 4096; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal("must not cancel before done closes")
		}
	}
	close(done)
	if !c.Canceled() {
		t.Fatal("Canceled must observe the closed channel immediately")
	}
	// Tick must report cancellation within one check interval.
	fired := false
	for i := 0; i < 4097; i++ {
		if err := c.Tick(); err == ErrCanceled {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("Tick never reported cancellation within an interval")
	}
	// Once canceled, it keeps reporting at every interval boundary.
	fired = false
	for i := 0; i < 4097; i++ {
		if err := c.Tick(); err == ErrCanceled {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("cancellation is not sticky")
	}
}
