package mining

import "testing"

func TestNilControlNeverCancels(t *testing.T) {
	var c *Control
	for i := 0; i < 3; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal("nil control must not cancel")
		}
	}
	if c.Canceled() {
		t.Fatal("nil control must not be canceled")
	}
	c2 := NewControl(nil)
	for i := 0; i < 3*4096; i++ {
		if err := c2.Tick(); err != nil {
			t.Fatal("nil-done control must not cancel")
		}
	}
	if c2.Canceled() {
		t.Fatal("nil-done control must not be canceled")
	}
}

func TestControlCancelsWithinInterval(t *testing.T) {
	done := make(chan struct{})
	c := NewControl(done)
	for i := 0; i < 4096; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal("must not cancel before done closes")
		}
	}
	close(done)
	if !c.Canceled() {
		t.Fatal("Canceled must observe the closed channel immediately")
	}
	// Tick must report cancellation within one check interval.
	fired := false
	for i := 0; i < 4097; i++ {
		if err := c.Tick(); err == ErrCanceled {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("Tick never reported cancellation within an interval")
	}
	// Once canceled, it keeps reporting at every interval boundary.
	fired = false
	for i := 0; i < 4097; i++ {
		if err := c.Tick(); err == ErrCanceled {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("cancellation is not sticky")
	}
}

// TestControlLatchesImmediately is the regression test for the budget-reset
// bug: after the first ErrCanceled, Tick used to reset its check budget and
// return nil for the next 4095 calls, letting a caller mine on past the
// cancellation. Every call after the first ErrCanceled must now report
// cancellation, with no nil gap.
func TestControlLatchesImmediately(t *testing.T) {
	done := make(chan struct{})
	c := NewControl(done)
	close(done)
	// Drive Tick to its first cancellation report.
	var first error
	for i := 0; i < 4096 && first == nil; i++ {
		first = c.Tick()
	}
	if first != ErrCanceled {
		t.Fatal("Tick never reported cancellation")
	}
	for i := 0; i < 3; i++ {
		if err := c.Tick(); err != ErrCanceled {
			t.Fatalf("Tick call %d after cancellation returned %v, want ErrCanceled", i+1, err)
		}
	}
	if !c.Canceled() {
		t.Fatal("Canceled must stay latched")
	}

	// The latch must also work the other way around: a Canceled observation
	// makes the very next Tick report, even with a full budget remaining.
	done2 := make(chan struct{})
	c2 := NewControl(done2)
	close(done2)
	if !c2.Canceled() {
		t.Fatal("Canceled must observe the closed channel")
	}
	if err := c2.Tick(); err != ErrCanceled {
		t.Fatalf("Tick after a Canceled observation returned %v, want ErrCanceled", err)
	}
}
