package fim

// Link the built-in algorithm packages: each registers itself with the
// engine from its init function, and internal/parallel attaches the
// parallel engines. Adding a miner to the public API, the command line
// tool, the bench harness, and the conformance suite is one new package
// plus one blank import here.
import (
	_ "repro/internal/apriori"
	_ "repro/internal/carpenter"
	_ "repro/internal/cobbler"
	_ "repro/internal/core"
	_ "repro/internal/eclat"
	_ "repro/internal/fpgrowth"
	_ "repro/internal/lcm"
	_ "repro/internal/naive"
	_ "repro/internal/parallel"
	_ "repro/internal/sam"
)
